#ifndef IDREPAIR_BASELINES_NEIGHBORHOOD_REPAIRER_H_
#define IDREPAIR_BASELINES_NEIGHBORHOOD_REPAIRER_H_

#include <string_view>
#include <utility>

#include "graph/transition_graph.h"
#include "repair/options.h"
#include "repair/repairer.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Adaptation of the neighborhood-constraint label-repair approach of Song
/// et al. (PVLDB 2014) to trajectory ID repair, following the recipe the
/// paper uses for its §6.5.2 comparison: the transition graph Gt is the
/// constraint graph, the trajectory graph Gm the instance graph, and the
/// relabeling cost is the edit distance between ID strings. As in the
/// paper's variant, instance edges are effectively removed whenever no
/// consistent relabel exists, so the greedy always terminates.
///
/// The algorithm performs *isolated, binary* label rewritings under the
/// minimum-change principle: a dirty (invalid) trajectory v may take the
/// label of a single Gm neighbor w when merging v with w alone yields a
/// valid trajectory; candidate rewrites are applied globally in increasing
/// edit-distance order, and both endpoints of an applied rewrite are
/// settled so labels never chain or swap. This inherits exactly the
/// limitations §1.1 attributes to the approach:
///
///  (1) no multi-ID rewrites — an entity fractured into three or more
///      fragments can never be reassembled, because no *pair* of its
///      fragments forms a valid trajectory;
///  (2) binary constraints only — the relationship between several
///      trajectories is never considered jointly;
///  (3) minimum change can prefer a cheap wrong donor over the right
///      repair that a global view would pick.
///
/// As a Repairer it fills rewrites/repaired/timing only (no candidate
/// list — the baseline has no notion of one).
class NeighborhoodRepairer : public Repairer {
 public:
  /// `options` supplies the θ/η bounds used to build the instance graph
  /// (same bounds as the core pipeline, for a fair comparison).
  NeighborhoodRepairer(const TransitionGraph& graph, RepairOptions options)
      : graph_(&graph), options_(std::move(options)) {}

  Result<RepairResult> Repair(const TrajectorySet& set) const override;

  std::string_view name() const override { return "neighborhood"; }

 private:
  const TransitionGraph* graph_;
  RepairOptions options_;
};

}  // namespace idrepair

#endif  // IDREPAIR_BASELINES_NEIGHBORHOOD_REPAIRER_H_
