#include "baselines/id_similarity_repairer.h"

#include <numeric>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "repair/candidates.h"
#include "repair/repairer.h"
#include "sim/edit_distance.h"
#include "sim/similarity.h"

namespace idrepair {

namespace {

/// Baseline instrumentation, the same attempted/completed/work scheme the
/// candidate-based engines emit so chaos runs can compare them uniformly.
/// All counters are pure functions of the input (kStable).
struct IdSimInstruments {
  obs::Counter* attempts;
  obs::Counter* completed;
  obs::Counter* pairs;
  obs::Counter* rewrites;

  static IdSimInstruments& Get() {
    static IdSimInstruments* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* bi = new IdSimInstruments();
      bi->attempts = reg.GetCounter(
          "idrepair_baseline_idsim_attempts_total", obs::Stability::kStable,
          "IdSimilarityRepairer Repair() entries (attempted)");
      bi->completed = reg.GetCounter(
          "idrepair_baseline_idsim_runs_total", obs::Stability::kStable,
          "IdSimilarityRepairer Repair() runs completed");
      bi->pairs = reg.GetCounter(
          "idrepair_baseline_idsim_pairs_total", obs::Stability::kStable,
          "ID pairs compared by the edit-distance clustering pass");
      bi->rewrites = reg.GetCounter(
          "idrepair_baseline_idsim_rewrites_total", obs::Stability::kStable,
          "Trajectory ID rewrites applied by IdSimilarityRepairer");
      return bi;
    }();
    return *m;
  }
};

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<RepairResult> IdSimilarityRepairer::Repair(
    const TrajectorySet& set) const {
  if (obs::Enabled()) IdSimInstruments::Get().attempts->Increment();
  Stopwatch watch;
  RepairResult result;
  result.stats.num_trajectories = set.size();
  size_t n = set.size();
  size_t pairs = 0;
  UnionFind uf(n);
  for (TrajIndex i = 0; i < n; ++i) {
    const std::string& a = set.at(i).id();
    for (TrajIndex j = i + 1; j < n; ++j) {
      ++pairs;
      const std::string& b = set.at(j).id();
      if (EditDistanceBounded(a, b, max_edit_distance_) <=
          max_edit_distance_) {
        uf.Union(i, j);
      }
    }
  }
  // Collect clusters and rewrite every multi-member cluster to its Eq. 5
  // target.
  std::vector<std::vector<TrajIndex>> clusters(n);
  for (TrajIndex i = 0; i < n; ++i) {
    clusters[uf.Find(i)].push_back(i);
  }
  NormalizedEditSimilarity similarity;
  for (const auto& cluster : clusters) {
    if (cluster.size() < 2) continue;
    TrajIndex target = AssignTargetId(set, cluster, similarity);
    const std::string& target_id = set.at(target).id();
    for (TrajIndex m : cluster) {
      if (set.at(m).id() != target_id) result.rewrites[m] = target_id;
    }
  }
  result.repaired = ApplyRewrites(set, result.rewrites);
  result.stats.seconds_total = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    IdSimInstruments& inst = IdSimInstruments::Get();
    inst.pairs->Increment(pairs);
    inst.rewrites->Increment(result.rewrites.size());
    inst.completed->Increment();
  }
  return result;
}

}  // namespace idrepair
