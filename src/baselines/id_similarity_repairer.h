#ifndef IDREPAIR_BASELINES_ID_SIMILARITY_REPAIRER_H_
#define IDREPAIR_BASELINES_ID_SIMILARITY_REPAIRER_H_

#include <cstddef>
#include <string_view>

#include "repair/repairer.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// The ID-similarity baseline of §6.5.2: trajectories whose IDs are within
/// `max_edit_distance` (the paper uses 3) are considered to come from the
/// same entity and are merged. Clustering is transitive (union-find over
/// qualifying pairs); each cluster's target ID is chosen by the same
/// length-weighted rule as the core pipeline (Eq. 5). No movement
/// constraints are consulted — that is the point of the comparison.
///
/// As a Repairer it fills rewrites/repaired/timing only (no candidate
/// list — the baseline has no notion of one).
class IdSimilarityRepairer : public Repairer {
 public:
  explicit IdSimilarityRepairer(size_t max_edit_distance = 3)
      : max_edit_distance_(max_edit_distance) {}

  Result<RepairResult> Repair(const TrajectorySet& set) const override;

  std::string_view name() const override { return "idsim"; }

 private:
  size_t max_edit_distance_;
};

}  // namespace idrepair

#endif  // IDREPAIR_BASELINES_ID_SIMILARITY_REPAIRER_H_
