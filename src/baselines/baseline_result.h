#ifndef IDREPAIR_BASELINES_BASELINE_RESULT_H_
#define IDREPAIR_BASELINES_BASELINE_RESULT_H_

#include <string>
#include <unordered_map>

#include "traj/trajectory_set.h"

namespace idrepair {

/// Output shape shared by the competing repair approaches of §6.5.2, kept
/// deliberately identical to the core pipeline's rewrite map so all three
/// are scored by the same eval::EvaluateRewrites.
struct BaselineResult {
  /// trajectory index -> new ID (only genuinely changed IDs).
  std::unordered_map<TrajIndex, std::string> rewrites;
  /// Rewrites applied and records regrouped.
  TrajectorySet repaired;
  double seconds = 0.0;
};

}  // namespace idrepair

#endif  // IDREPAIR_BASELINES_BASELINE_RESULT_H_
