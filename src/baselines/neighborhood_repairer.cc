#include "baselines/neighborhood_repairer.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "repair/predicates.h"
#include "repair/repairer.h"
#include "repair/trajectory_graph.h"
#include "sim/edit_distance.h"

namespace idrepair {

namespace {

/// Baseline instrumentation, the same attempted/completed/work scheme the
/// candidate-based engines emit so chaos runs can compare them uniformly.
/// All counters are pure functions of the input (kStable).
struct NeighborhoodInstruments {
  obs::Counter* attempts;
  obs::Counter* completed;
  obs::Counter* candidates;
  obs::Counter* rewrites;

  static NeighborhoodInstruments& Get() {
    static NeighborhoodInstruments* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* bi = new NeighborhoodInstruments();
      bi->attempts = reg.GetCounter(
          "idrepair_baseline_neighborhood_attempts_total",
          obs::Stability::kStable,
          "NeighborhoodRepairer Repair() entries (attempted)");
      bi->completed = reg.GetCounter(
          "idrepair_baseline_neighborhood_runs_total",
          obs::Stability::kStable,
          "NeighborhoodRepairer Repair() runs completed");
      bi->candidates = reg.GetCounter(
          "idrepair_baseline_neighborhood_candidates_total",
          obs::Stability::kStable,
          "Isolated-rewrite candidates passing the binary neighborhood "
          "constraint");
      bi->rewrites = reg.GetCounter(
          "idrepair_baseline_neighborhood_rewrites_total",
          obs::Stability::kStable,
          "Trajectory ID rewrites applied by NeighborhoodRepairer");
      return bi;
    }();
    return *m;
  }
};

}  // namespace

Result<RepairResult> NeighborhoodRepairer::Repair(
    const TrajectorySet& set) const {
  IDREPAIR_RETURN_NOT_OK(options_.Validate());
  obs::ApplyOptions(options_.obs);
  if (obs::Enabled()) NeighborhoodInstruments::Get().attempts->Increment();
  Stopwatch watch;
  RepairResult result;
  result.stats.num_trajectories = set.size();

  PredicateEvaluator pred(*graph_, options_.theta, options_.eta);
  TrajectoryGraph gm(set, pred, options_);

  // Candidate isolated rewrites: relabel dirty vertex v to neighbor w's
  // label, valid only when the *pair* v+w merges into a valid trajectory
  // (the binary neighborhood constraint). Neighbors that never satisfy it
  // correspond to removed instance edges.
  struct Candidate {
    size_t cost;
    TrajIndex vertex;
    TrajIndex donor;
  };
  std::vector<Candidate> rewrites;
  for (TrajIndex v = 0; v < set.size(); ++v) {
    if (set.at(v).IsValid(*graph_)) continue;
    for (TrajIndex w : gm.Neighbors(v)) {
      const Trajectory* pair[] = {&set.at(v), &set.at(w)};
      if (!pred.Jnb(pair)) continue;
      rewrites.push_back(
          Candidate{EditDistance(set.at(v).id(), set.at(w).id()), v, w});
    }
  }
  // Minimum change first; both endpoints settle so labels never chain.
  std::sort(rewrites.begin(), rewrites.end(),
            [](const Candidate& a, const Candidate& b) {
              return std::tie(a.cost, a.vertex, a.donor) <
                     std::tie(b.cost, b.vertex, b.donor);
            });
  std::vector<bool> settled(set.size(), false);
  for (const auto& c : rewrites) {
    if (settled[c.vertex] || settled[c.donor]) continue;
    settled[c.vertex] = true;
    settled[c.donor] = true;
    const std::string& label = set.at(c.donor).id();
    if (set.at(c.vertex).id() != label) result.rewrites[c.vertex] = label;
  }
  result.repaired = ApplyRewrites(set, result.rewrites);
  result.stats.seconds_total = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    NeighborhoodInstruments& inst = NeighborhoodInstruments::Get();
    inst.candidates->Increment(rewrites.size());
    inst.rewrites->Increment(result.rewrites.size());
    inst.completed->Increment();
  }
  return result;
}

}  // namespace idrepair
