#include "stream/streaming_repairer.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "common/stopwatch.h"
#include "fault/deadline.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "repair/trajectory_graph.h"
#include "traj/merge.h"

namespace idrepair {

namespace {

/// Streaming-engine instrumentation. The stream itself is single-threaded
/// and deterministic, so the work counters are kStable; poll latency is
/// wall-clock and therefore kRuntime.
struct StreamInstruments {
  obs::Counter* appends;
  obs::Counter* polls;
  obs::Counter* emitted;
  obs::Counter* batch_attempts;
  obs::Counter* batch_completed;
  obs::Counter* dirty_components;
  obs::Counter* records_reused;
  obs::Counter* appends_rejected;
  obs::Counter* generation_runs;
  obs::Histogram* poll_seconds;

  static StreamInstruments& Get() {
    static StreamInstruments* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* si = new StreamInstruments();
      si->appends = reg.GetCounter("idrepair_stream_appends_total",
                                   obs::Stability::kStable,
                                   "Records accepted by Append()");
      si->batch_attempts = reg.GetCounter(
          "idrepair_stream_attempts_total", obs::Stability::kStable,
          "Batch-adapter Repair() entries (attempted)");
      si->batch_completed = reg.GetCounter(
          "idrepair_stream_runs_total", obs::Stability::kStable,
          "Batch-adapter Repair() replays run to completion");
      si->polls = reg.GetCounter("idrepair_stream_polls_total",
                                 obs::Stability::kStable,
                                 "Poll() invocations");
      si->emitted = reg.GetCounter(
          "idrepair_stream_emitted_trajectories_total",
          obs::Stability::kStable,
          "Repaired trajectories emitted by Poll() and Finish()");
      si->dirty_components = reg.GetCounter(
          "idrepair_stream_dirty_components_total", obs::Stability::kStable,
          "Clean components invalidated by an appended record");
      si->records_reused = reg.GetCounter(
          "idrepair_stream_records_reused_total", obs::Stability::kStable,
          "Records that rode through a poll without their component "
          "re-running candidate generation");
      si->appends_rejected = reg.GetCounter(
          "idrepair_stream_appends_rejected_total", obs::Stability::kStable,
          "Appends rejected by bounded-buffer backpressure");
      si->generation_runs = reg.GetCounter(
          "idrepair_stream_generation_runs_total", obs::Stability::kStable,
          "Component-scoped pipeline runs (cache misses)");
      si->poll_seconds = reg.GetHistogram(
          "idrepair_stream_poll_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(), "Poll() wall time");
      return si;
    }();
    return *m;
  }
};

LengthIndexedGrids::Options LigOptionsFrom(const RepairOptions& options) {
  LengthIndexedGrids::Options lig_opts;
  lig_opts.theta = options.theta;
  lig_opts.eta = options.eta;
  lig_opts.time_bin = options.time_bin;
  return lig_opts;
}

std::vector<TrackingRecord> FlattenRecords(const TrajectorySet& set) {
  std::vector<TrackingRecord> records;
  records.reserve(set.total_records());
  for (const auto& t : set.trajectories()) {
    for (const auto& p : t.points()) {
      records.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  return records;
}

}  // namespace

StreamingRepairer::StreamingRepairer(const TransitionGraph& graph,
                                     RepairOptions options,
                                     StreamOptions stream_options)
    : graph_(&graph),
      options_(std::move(options)),
      stream_options_(stream_options),
      pred_(graph, options_.theta, options_.eta),
      inner_(graph, options_) {
  obs::ApplyOptions(options_.obs);
  // Emitted fragments must at least be inert (no future record can join a
  // fragment whose start is more than η behind the watermark), so the
  // horizon is clamped to one η.
  flush_horizon_ = std::max(
      options_.eta,
      static_cast<Timestamp>(stream_options_.flush_horizon_multiplier *
                             static_cast<double>(options_.eta)));
}

StreamingRepairer::StreamingRepairer(const TransitionGraph& graph,
                                     RepairOptions options,
                                     double flush_horizon_multiplier)
    : StreamingRepairer(graph, std::move(options),
                        StreamOptions{flush_horizon_multiplier}) {}

Status StreamingRepairer::Append(const TrackingRecord& record) {
  // Before any state mutation: an injected Append fault drops nothing and
  // moves no watermark — the caller may retry the record.
  IDREPAIR_FAULT_INJECT("stream.append");
  if (saw_any_ && record.ts < watermark_) {
    return Status::OutOfRange(
        "stream records must arrive in non-decreasing timestamp order");
  }
  if (stream_options_.max_buffered > 0 &&
      pending_records_ >= stream_options_.max_buffered) {
    ++appends_rejected_;
    if (obs::Enabled()) {
      StreamInstruments::Get().appends_rejected->Increment();
    }
    return Status::ResourceExhausted(
        "stream buffer full (max_buffered=" +
        std::to_string(stream_options_.max_buffered) +
        "); poll and retry");
  }
  saw_any_ = true;
  watermark_ = record.ts;
  if (!lig_.has_value()) {
    // Anchor the dynamic index at the first record: the watermark never
    // regresses, so every later span starts at or after this base.
    lig_.emplace(
        LengthIndexedGrids::Dynamic(LigOptionsFrom(options_), record.ts));
  }
  uint32_t handle;
  auto it = frag_by_id_.find(record.id);
  if (it != frag_by_id_.end()) {
    handle = it->second;
  } else {
    handle = NewFragment(record);
  }
  frags_[handle].points.push_back(TrajectoryPoint{record.loc, record.ts});
  ++pending_records_;
  RefreshFragment(handle);
  TouchComponent(frags_[handle].component);
  if (obs::Enabled()) StreamInstruments::Get().appends->Increment();
  return Status::OK();
}

uint32_t StreamingRepairer::NewFragment(const TrackingRecord& record) {
  uint32_t handle = static_cast<uint32_t>(frags_.size());
  Fragment frag;
  frag.id = record.id;
  frags_.push_back(std::move(frag));
  frag_by_id_.emplace(record.id, handle);
  // The new fragment starts at the watermark, so it either chains onto the
  // newest component (start gap <= η) or opens the next one. Components
  // never merge after the fact — starts only grow.
  uint32_t cid;
  if (!live_.empty() &&
      record.ts - components_[live_.back()].max_start <= options_.eta) {
    cid = live_.back();
    Component& comp = components_[cid];
    comp.frags.push_back(handle);
    comp.max_start = std::max(comp.max_start, record.ts);
  } else {
    cid = static_cast<uint32_t>(components_.size());
    components_.emplace_back();
    Component& comp = components_.back();
    comp.frags.push_back(handle);
    comp.min_start = record.ts;
    comp.max_start = record.ts;
    live_.push_back(cid);
  }
  frags_[handle].component = cid;
  return handle;
}

void StreamingRepairer::RefreshFragment(uint32_t handle) {
  Fragment& frag = frags_[handle];
  // De-index and unlink the stale fragment state.
  if (frag.indexed && lig_.has_value()) {
    lig_->RemoveSpan(handle, frag.traj.size(), frag.traj.start_time(),
                     frag.traj.end_time());
    frag.indexed = false;
  }
  for (uint32_t e : frag.edges) {
    auto& other = frags_[e].edges;
    other.erase(std::remove(other.begin(), other.end(), handle), other.end());
  }
  frag.edges.clear();
  // Rebuild. The Trajectory constructor sorts points chronologically, so
  // the fragment trajectory is byte-identical to what FromRecords over the
  // same records would build.
  frag.traj = Trajectory(frag.id, frag.points);
  frag.feasible = pred_.InternallyFeasible(frag.traj);
  if (!frag.feasible) return;  // isolated vertex, exactly as in a batch Gm
  // One η-neighborhood probe + exact cex checks reproduces the batch edge
  // set: the LIG probe never drops a cex-passing pair (the
  // LigIsNecessaryForCex property), cex is symmetric, and only feasible
  // fragments are indexed — so re-deriving the changed endpoint's edges is
  // exact, not approximate.
  probe_.clear();
  lig_->CollectCandidatesSpan(frag.traj.size(), frag.traj.start_time(),
                              frag.traj.end_time(), &probe_);
  for (TrajIndex c : probe_) {
    uint32_t other = static_cast<uint32_t>(c);
    if (!frags_[other].alive || !frags_[other].feasible) continue;
    if (pred_.Cex(frag.traj, frags_[other].traj)) {
      frag.edges.push_back(other);
      frags_[other].edges.push_back(handle);
    }
  }
  frag.indexed =
      lig_->InsertSpan(handle, frag.traj.size(), frag.traj.start_time(),
                       frag.traj.end_time());
}

void StreamingRepairer::TouchComponent(uint32_t component) {
  Component& comp = components_[component];
  ++comp.version;
  if (!comp.dirty) {
    comp.dirty = true;
    ++dirty_components_;
    if (obs::Enabled()) {
      StreamInstruments::Get().dirty_components->Increment();
    }
  }
}

std::vector<Trajectory> StreamingRepairer::Poll() {
  // A fired Poll fault yields an empty poll with the state untouched;
  // every record re-enters the next poll, so nothing is lost or repaired
  // twice.
  if (fault::Armed() && !fault::Inject("stream.poll").ok()) return {};
  ++polls_;
  if (!obs::Enabled()) return PollImpl();
  StreamInstruments& inst = StreamInstruments::Get();
  inst.polls->Increment();
  obs::TraceSpan span("stream.poll");
  Stopwatch watch;
  std::vector<Trajectory> out = PollImpl();
  inst.poll_seconds->Observe(watch.ElapsedSeconds());
  inst.emitted->Increment(out.size());
  return out;
}

std::vector<Trajectory> StreamingRepairer::PollImpl() {
  if (pending_records_ == 0) return {};
  const Timestamp inert_before = watermark_ - options_.eta;  // exclusive
  const Timestamp cut = watermark_ - flush_horizon_;
  std::vector<Trajectory> out;
  const size_t start_records = pending_records_;
  poll_fresh_records_ = 0;
  // Settled components form a prefix of the live order (starts ascend and
  // components are separated by > η), so walking in start order emits
  // exactly what FromRecords ordering over the same trajectories would —
  // concatenation of per-component outputs is the global (start, id) sort.
  std::vector<uint32_t> snapshot = live_;
  for (uint32_t cid : snapshot) {
    if (!components_[cid].alive) continue;
    if (components_[cid].max_start < inert_before) {
      EmitSettled(cid, &out);
    } else {
      FlushForced(cid, cut, &out);
    }
  }
  const size_t fresh = std::min(poll_fresh_records_, start_records);
  const size_t reused = start_records - fresh;
  records_reused_ += reused;
  if (reused > 0 && obs::Enabled()) {
    StreamInstruments::Get().records_reused->Increment(reused);
  }
  emitted_ += out.size();
  return out;
}

StreamingRepairer::CachedRepair* StreamingRepairer::RunComponentRepair(
    uint32_t component, std::vector<uint32_t> window, bool* from_cache) {
  Component& comp = components_[component];
  if (comp.cache != nullptr && comp.cached_version == comp.version &&
      comp.cached_window == window) {
    *from_cache = true;
    return comp.cache.get();
  }
  *from_cache = false;
  auto cache = std::make_unique<CachedRepair>();
  std::vector<TrackingRecord> records;
  for (uint32_t h : window) {
    const Fragment& frag = frags_[h];
    for (const auto& p : frag.points) {
      records.push_back(TrackingRecord{frag.id, p.loc, p.ts});
    }
  }
  cache->set = TrajectorySet::FromRecords(records);
  // Project the maintained adjacency onto the window: edge presence depends
  // only on the two endpoint trajectories, so the induced subgraph equals
  // the graph a batch build over exactly these records would produce.
  auto idx = cache->set.BuildIdIndex();
  const size_t n = cache->set.size();
  cache->local_to_frag.assign(n, 0);
  std::unordered_map<uint32_t, TrajIndex> local_of;
  local_of.reserve(window.size());
  for (uint32_t h : window) {
    TrajIndex local = idx.at(frags_[h].id);
    cache->local_to_frag[local] = h;
    local_of.emplace(h, local);
  }
  std::vector<std::vector<TrajIndex>> adj(n);
  for (uint32_t h : window) {
    TrajIndex u = local_of.at(h);
    for (uint32_t e : frags_[h].edges) {
      auto it = local_of.find(e);
      if (it != local_of.end()) adj[u].push_back(it->second);
    }
  }
  TrajectoryGraph gm =
      TrajectoryGraph::FromAdjacency(cache->set, pred_, std::move(adj));
  auto result = inner_.RepairPrebuilt(cache->set, gm, pred_);
  ++generation_runs_;
  if (obs::Enabled()) StreamInstruments::Get().generation_runs->Increment();
  poll_fresh_records_ += cache->set.total_records();
  if (result.ok()) {
    cache->result = std::move(result).value();
    cache->ok = true;
  }
  // An error result (injected fault, configuration) degrades to
  // passthrough at the call sites; the cache still records the window so
  // an unchanged component does not retry a failing pipeline every poll.
  comp.cache = std::move(cache);
  comp.cached_version = comp.version;
  comp.cached_window = std::move(window);
  comp.dirty = false;
  return comp.cache.get();
}

void StreamingRepairer::EmitSettled(uint32_t component,
                                    std::vector<Trajectory>* out) {
  Component& comp = components_[component];
  std::vector<uint32_t> window = comp.frags;
  std::sort(window.begin(), window.end());
  bool from_cache = false;
  CachedRepair* cr =
      RunComponentRepair(component, std::move(window), &from_cache);
  const std::vector<Trajectory>& repaired =
      cr->ok ? cr->result.repaired.trajectories() : cr->set.trajectories();
  if (capture_windows_) {
    captured_.push_back(WindowRepair{FlattenRecords(cr->set), repaired,
                                     /*forced=*/false, from_cache,
                                     /*degraded=*/!cr->ok});
  }
  out->insert(out->end(), repaired.begin(), repaired.end());
  std::vector<uint32_t> all = comp.frags;
  RetireFragments(component, all);
  comp.alive = false;
  comp.cache.reset();
  live_.erase(std::remove(live_.begin(), live_.end(), component),
              live_.end());
}

void StreamingRepairer::FlushForced(uint32_t component, Timestamp cut,
                                    std::vector<Trajectory>* out) {
  Component& comp = components_[component];
  if (comp.min_start > cut) return;  // nothing behind the horizon yet
  // The repair window is the safe fragments plus their full η-context, so
  // no joinable subset is severed: every fragment that could still share a
  // decision with a safe one is on the table.
  std::vector<uint32_t> window;
  for (uint32_t h : comp.frags) {
    if (frags_[h].traj.start_time() <= cut + options_.eta) {
      window.push_back(h);
    }
  }
  std::sort(window.begin(), window.end());
  bool from_cache = false;
  CachedRepair* cr =
      RunComponentRepair(component, std::move(window), &from_cache);
  const size_t n = cr->set.size();
  auto is_safe = [&](TrajIndex local) {
    return frags_[cr->local_to_frag[local]].traj.start_time() <= cut;
  };
  std::vector<bool> consumed(n, false);
  std::vector<bool> deferred(n, false);
  if (cr->ok) {
    for (RepairIndex r : cr->result.selected) {
      Span<const TrajIndex> members = cr->result.candidates.members(r);
      bool all_safe = true;
      for (TrajIndex m : members) {
        if (!is_safe(m)) {
          all_safe = false;
          break;
        }
      }
      if (all_safe) {
        std::vector<const Trajectory*> ptrs;
        ptrs.reserve(members.size());
        for (TrajIndex m : members) {
          ptrs.push_back(&cr->set.at(m));
          consumed[m] = true;
        }
        out->push_back(Join(ptrs, cr->result.candidates.target_id(r)));
      } else {
        // Defer every safe member of a mixed repair; applying it later,
        // once the unsafe members become safe, reproduces the batch
        // decision.
        for (TrajIndex m : members) {
          if (is_safe(m)) deferred[m] = true;
        }
      }
    }
  }
  // Safe fragments in no applied or deferred repair leave the stream
  // unrepaired, in (start, id) order: all of their potential partners were
  // in the window and the selection passed them over.
  for (TrajIndex i = 0; i < n; ++i) {
    if (!is_safe(i) || consumed[i] || deferred[i]) continue;
    out->push_back(cr->set.at(i));
    consumed[i] = true;
  }
  if (capture_windows_) {
    captured_.push_back(WindowRepair{
        FlattenRecords(cr->set),
        cr->ok ? cr->result.repaired.trajectories() : cr->set.trajectories(),
        /*forced=*/true, from_cache, /*degraded=*/!cr->ok});
  }
  std::vector<uint32_t> retired;
  for (TrajIndex i = 0; i < n; ++i) {
    if (consumed[i]) retired.push_back(cr->local_to_frag[i]);
  }
  if (!retired.empty()) {
    RetireFragments(component, retired);
    SplitComponent(component);
  }
}

void StreamingRepairer::RetireFragments(
    uint32_t component, const std::vector<uint32_t>& handles) {
  for (uint32_t h : handles) {
    Fragment& frag = frags_[h];
    if (frag.indexed && lig_.has_value()) {
      lig_->RemoveSpan(h, frag.traj.size(), frag.traj.start_time(),
                       frag.traj.end_time());
      frag.indexed = false;
    }
    for (uint32_t e : frag.edges) {
      if (!frags_[e].alive) continue;  // partner retired in this batch
      auto& other = frags_[e].edges;
      other.erase(std::remove(other.begin(), other.end(), h), other.end());
    }
    frag.edges.clear();
    frag.edges.shrink_to_fit();
    frag.alive = false;
    auto it = frag_by_id_.find(frag.id);
    if (it != frag_by_id_.end() && it->second == h) frag_by_id_.erase(it);
    pending_records_ -= frag.points.size();
    frag.points.clear();
    frag.points.shrink_to_fit();
    frag.traj = Trajectory();
  }
  Component& comp = components_[component];
  comp.frags.erase(
      std::remove_if(comp.frags.begin(), comp.frags.end(),
                     [&](uint32_t h) { return !frags_[h].alive; }),
      comp.frags.end());
  ++comp.version;
}

void StreamingRepairer::SplitComponent(uint32_t component) {
  if (components_[component].frags.empty()) {
    Component& comp = components_[component];
    comp.alive = false;
    comp.cache.reset();
    live_.erase(std::remove(live_.begin(), live_.end(), component),
                live_.end());
    return;
  }
  // Retirement can sever a chain: regroup the remainder at > η start gaps.
  // The first group keeps this id; later groups become new components
  // slotted into live_ right behind it, preserving ascending start order.
  std::vector<uint32_t> order = components_[component].frags;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    Timestamp sa = frags_[a].traj.start_time();
    Timestamp sb = frags_[b].traj.start_time();
    if (sa != sb) return sa < sb;
    return frags_[a].id < frags_[b].id;
  });
  std::vector<std::vector<uint32_t>> groups(1);
  groups.back().push_back(order.front());
  for (size_t i = 1; i < order.size(); ++i) {
    if (frags_[order[i]].traj.start_time() -
            frags_[order[i - 1]].traj.start_time() >
        options_.eta) {
      groups.emplace_back();
    }
    groups.back().push_back(order[i]);
  }
  size_t pos = static_cast<size_t>(
      std::find(live_.begin(), live_.end(), component) - live_.begin());
  for (size_t g = 0; g < groups.size(); ++g) {
    uint32_t cid = component;
    if (g > 0) {
      cid = static_cast<uint32_t>(components_.size());
      components_.emplace_back();
      live_.insert(live_.begin() + static_cast<ptrdiff_t>(pos + g), cid);
    }
    Component& comp = components_[cid];
    comp.frags = groups[g];
    comp.min_start = frags_[groups[g].front()].traj.start_time();
    comp.max_start = frags_[groups[g].back()].traj.start_time();
    comp.alive = true;
    ++comp.version;
    comp.cache.reset();
    comp.cached_version = ~uint64_t{0};
    comp.cached_window.clear();
    for (uint32_t h : groups[g]) frags_[h].component = cid;
  }
}

std::vector<TrackingRecord> StreamingRepairer::TakeAllRecords() {
  std::vector<TrackingRecord> records;
  records.reserve(pending_records_);
  for (const Fragment& frag : frags_) {
    if (!frag.alive) continue;
    for (const auto& p : frag.points) {
      records.push_back(TrackingRecord{frag.id, p.loc, p.ts});
    }
  }
  frags_.clear();
  frag_by_id_.clear();
  components_.clear();
  live_.clear();
  lig_.reset();
  pending_records_ = 0;
  return records;
}

std::vector<Trajectory> StreamingRepairer::Finish() {
  obs::TraceSpan span("stream.finish");
  if (pending_records_ == 0) return {};
  if (fault::Armed() && !fault::Inject("stream.finish").ok()) {
    // Degrade instead of dropping data: the final batch passes through
    // unrepaired, preserving every record.
    auto batch = TakeAllRecords();
    auto out = TrajectorySet::FromRecords(batch).trajectories();
    emitted_ += out.size();
    if (obs::Enabled()) {
      StreamInstruments::Get().emitted->Increment(out.size());
    }
    return out;
  }
  // Every remaining component is effectively closed: repair each one
  // batch-exactly, in start order (concatenation equals the one-batch
  // FromRecords order because components are separated by > η).
  std::vector<Trajectory> out;
  std::vector<uint32_t> snapshot = live_;
  for (uint32_t cid : snapshot) {
    if (components_[cid].alive) EmitSettled(cid, &out);
  }
  TakeAllRecords();  // empties; resets the fragment arena and the index
  emitted_ += out.size();
  if (obs::Enabled()) StreamInstruments::Get().emitted->Increment(out.size());
  return out;
}

Result<RepairResult> StreamingRepairer::Repair(
    const TrajectorySet& set) const {
  IDREPAIR_RETURN_NOT_OK(options_.Validate());
  IDREPAIR_RETURN_NOT_OK(graph_->Validate());
  obs::ApplyOptions(options_.obs);
  if (obs::Enabled()) StreamInstruments::Get().batch_attempts->Increment();
  fault::Deadline deadline = fault::Deadline::FromMillis(options_.deadline_ms);
  Stopwatch total;
  CpuStopwatch total_cpu;

  // Flatten and order by time so the scratch stream accepts every record.
  std::vector<TrackingRecord> records;
  records.reserve(set.total_records());
  for (TrajIndex i = 0; i < set.size(); ++i) {
    for (const auto& p : set.at(i).points()) {
      records.push_back(TrackingRecord{set.at(i).id(), p.loc, p.ts});
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const TrackingRecord& a, const TrackingRecord& b) {
                     return std::tie(a.ts, a.id, a.loc) <
                            std::tie(b.ts, b.id, b.loc);
                   });

  // Replay with a Poll() every `window_slide` of stream time (η unless
  // overridden) — the cadence a live consumer would use — then drain the
  // tail. A bounded buffer inserts an extra Poll() instead of rejecting:
  // an offline replay is its own consumer, so backpressure means "drain
  // now", not "drop". The deadline is probed at those same boundaries:
  // once it expires, replay stops and the unprocessed remainder passes
  // through unrepaired, grouped by observed ID.
  RepairOptions replay_options = options_;
  replay_options.deadline_ms = 0;  // budget enforced here, per replay batch
  StreamOptions replay_stream = stream_options_;
  replay_stream.max_buffered = 0;  // handled via the extra polls below
  StreamingRepairer scratch(*graph_, replay_options, replay_stream);
  const Timestamp slide = stream_options_.window_slide > 0
                              ? stream_options_.window_slide
                              : options_.eta;
  std::vector<Trajectory> emitted;
  Status degraded = Status::OK();
  Timestamp last_poll = records.empty() ? 0 : records.front().ts;
  size_t next = 0;
  for (; next < records.size(); ++next) {
    IDREPAIR_RETURN_NOT_OK(scratch.Append(records[next]));
    bool due = scratch.watermark() - last_poll > slide;
    bool full = stream_options_.max_buffered > 0 &&
                scratch.pending_records() >= stream_options_.max_buffered;
    if (due || full) {
      if (deadline.Expired()) {
        degraded = deadline.Check("stream replay");
        ++next;  // this record was appended; it drains with the buffer
        break;
      }
      auto got = scratch.Poll();
      emitted.insert(emitted.end(), got.begin(), got.end());
      if (due) last_poll = scratch.watermark();
    }
  }
  if (degraded.ok()) {
    auto tail = scratch.Finish();
    emitted.insert(emitted.end(), tail.begin(), tail.end());
  } else {
    std::vector<TrackingRecord> rest = scratch.TakeAllRecords();
    rest.insert(rest.end(), records.begin() + static_cast<ptrdiff_t>(next),
                records.end());
    auto passthrough = TrajectorySet::FromRecords(rest).trajectories();
    emitted.insert(emitted.end(), passthrough.begin(), passthrough.end());
  }

  RepairResult result;
  result.completion = degraded;
  result.stats.num_trajectories = set.size();
  result.stats.threads_used = options_.exec.ResolvedThreads();
  result.stats.stream_polls = scratch.polls_;
  result.stats.stream_dirty_components = scratch.dirty_components_;
  result.stats.stream_records_reused = scratch.records_reused_;
  result.stats.stream_appends_rejected = scratch.appends_rejected_;
  result.stats.stream_generation_runs = scratch.generation_runs_;
  for (TrajIndex i = 0; i < set.size(); ++i) {
    if (!set.at(i).IsValid(*graph_)) ++result.stats.num_invalid;
  }

  // Recover the per-trajectory rewrite map: repair only relabels records,
  // so each input point (loc, ts) reappears verbatim in some emitted
  // trajectory. Bucket emitted IDs by point and let each input trajectory
  // claim one per point, majority-voting its new ID (points of one input
  // always travel together, so the vote is unanimous short of point-level
  // (loc, ts) collisions between distinct inputs).
  std::map<std::pair<LocationId, Timestamp>, std::deque<std::string>> by_point;
  std::vector<TrackingRecord> emitted_records;
  for (const auto& t : emitted) {
    for (const auto& p : t.points()) {
      by_point[{p.loc, p.ts}].push_back(t.id());
      emitted_records.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  for (TrajIndex i = 0; i < set.size(); ++i) {
    const Trajectory& t = set.at(i);
    std::map<std::string, size_t> votes;
    for (const auto& p : t.points()) {
      auto it = by_point.find({p.loc, p.ts});
      if (it == by_point.end() || it->second.empty()) continue;
      ++votes[it->second.front()];
      it->second.pop_front();
    }
    const std::string* winner = nullptr;
    size_t best = 0;
    for (const auto& [id, n] : votes) {
      if (n > best || (n == best && id == t.id())) {
        winner = &id;
        best = n;
      }
    }
    if (winner != nullptr && *winner != t.id()) result.rewrites[i] = *winner;
  }

  result.repaired = TrajectorySet::FromRecords(emitted_records);
  result.stats.seconds_total = total.ElapsedSeconds();
  result.stats.cpu_seconds_total = total_cpu.ElapsedSeconds();
  if (result.completion.ok() && obs::Enabled()) {
    StreamInstruments::Get().batch_completed->Increment();
  }
  return result;
}

}  // namespace idrepair
