#include "stream/streaming_repairer.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <tuple>
#include <unordered_set>

#include "common/stopwatch.h"
#include "fault/deadline.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace idrepair {

namespace {

/// Streaming-engine instrumentation. The stream itself is single-threaded
/// and deterministic, so the work counters are kStable; poll latency is
/// wall-clock and therefore kRuntime.
struct StreamInstruments {
  obs::Counter* appends;
  obs::Counter* polls;
  obs::Counter* emitted;
  obs::Counter* batch_attempts;
  obs::Counter* batch_completed;
  obs::Histogram* poll_seconds;

  static StreamInstruments& Get() {
    static StreamInstruments* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* si = new StreamInstruments();
      si->appends = reg.GetCounter("idrepair_stream_appends_total",
                                   obs::Stability::kStable,
                                   "Records accepted by Append()");
      si->batch_attempts = reg.GetCounter(
          "idrepair_stream_attempts_total", obs::Stability::kStable,
          "Batch-adapter Repair() entries (attempted)");
      si->batch_completed = reg.GetCounter(
          "idrepair_stream_runs_total", obs::Stability::kStable,
          "Batch-adapter Repair() replays run to completion");
      si->polls = reg.GetCounter("idrepair_stream_polls_total",
                                 obs::Stability::kStable,
                                 "Poll() invocations");
      si->emitted = reg.GetCounter(
          "idrepair_stream_emitted_trajectories_total",
          obs::Stability::kStable,
          "Repaired trajectories emitted by Poll() and Finish()");
      si->poll_seconds = reg.GetHistogram(
          "idrepair_stream_poll_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(), "Poll() wall time");
      return si;
    }();
    return *m;
  }
};

}  // namespace

StreamingRepairer::StreamingRepairer(const TransitionGraph& graph,
                                     RepairOptions options,
                                     double flush_horizon_multiplier)
    : graph_(&graph),
      options_(std::move(options)),
      flush_horizon_multiplier_(flush_horizon_multiplier) {
  obs::ApplyOptions(options_.obs);
  // Emitted fragments must at least be inert (no future record can join a
  // fragment whose start is more than η behind the watermark), so the
  // horizon is clamped to one η.
  flush_horizon_ = std::max(
      options_.eta,
      static_cast<Timestamp>(flush_horizon_multiplier *
                             static_cast<double>(options_.eta)));
}

Status StreamingRepairer::Append(const TrackingRecord& record) {
  // Before any state mutation: an injected Append fault drops nothing from
  // the buffer and moves no watermark — the caller may retry the record.
  IDREPAIR_FAULT_INJECT("stream.append");
  if (saw_any_ && record.ts < watermark_) {
    return Status::OutOfRange(
        "stream records must arrive in non-decreasing timestamp order");
  }
  saw_any_ = true;
  watermark_ = record.ts;
  buffer_.push_back(record);
  if (obs::Enabled()) StreamInstruments::Get().appends->Increment();
  return Status::OK();
}

std::vector<Trajectory> StreamingRepairer::Poll() {
  // A fired Poll fault yields an empty poll with the buffer untouched;
  // every record re-enters the next poll, so nothing is lost or repaired
  // twice.
  if (fault::Armed() && !fault::Inject("stream.poll").ok()) return {};
  if (!obs::Enabled()) return PollImpl();
  StreamInstruments& inst = StreamInstruments::Get();
  inst.polls->Increment();
  obs::TraceSpan span("stream.poll");
  Stopwatch watch;
  std::vector<Trajectory> out = PollImpl();
  inst.poll_seconds->Observe(watch.ElapsedSeconds());
  inst.emitted->Increment(out.size());
  return out;
}

std::vector<Trajectory> StreamingRepairer::PollImpl() {
  if (buffer_.empty()) return {};
  // Fragment start times, grouped by observed ID (deterministic order).
  std::map<std::string, Timestamp> fragment_start;
  for (const auto& r : buffer_) {
    auto [it, inserted] = fragment_start.emplace(r.id, r.ts);
    if (!inserted) it->second = std::min(it->second, r.ts);
  }
  struct Frag {
    Timestamp start;
    const std::string* id;
  };
  std::vector<Frag> frags;
  frags.reserve(fragment_start.size());
  for (const auto& [id, start] : fragment_start) {
    frags.push_back(Frag{start, &id});
  }
  std::sort(frags.begin(), frags.end(), [](const Frag& a, const Frag& b) {
    return std::tie(a.start, *a.id) < std::tie(b.start, *b.id);
  });

  const Timestamp inert_before = watermark_ - options_.eta;  // exclusive
  const Timestamp cut = watermark_ - flush_horizon_;

  // Walk chain components (consecutive start gaps <= η). A component whose
  // newest fragment is inert flushes whole — batch-exact. An open component
  // force-flushes only the fragments behind the horizon cut, repairing them
  // *with* their full η-context so no joinable subset is severed: the
  // repair batch contains every fragment with start <= cut + η, but only
  // decisions whose members all start <= cut are applied and emitted;
  // everything else stays buffered for the next poll.
  std::unordered_set<std::string> exact_ids;    // flush fully, batch-exact
  std::unordered_set<std::string> safe_ids;     // emit decisions
  std::unordered_set<std::string> context_ids;  // present but deferred
  size_t i = 0;
  while (i < frags.size()) {
    size_t j = i;
    while (j + 1 < frags.size() &&
           frags[j + 1].start - frags[j].start <= options_.eta) {
      ++j;
    }
    if (frags[j].start < inert_before) {
      for (size_t k = i; k <= j; ++k) exact_ids.insert(*frags[k].id);
    } else {
      for (size_t k = i; k <= j; ++k) {
        if (frags[k].start <= cut) {
          safe_ids.insert(*frags[k].id);
        } else if (frags[k].start <= cut + options_.eta) {
          context_ids.insert(*frags[k].id);
        }
      }
    }
    i = j + 1;
  }
  if (exact_ids.empty() && safe_ids.empty()) return {};

  std::vector<Trajectory> emitted;

  // ---- Exact components: repair and emit everything. ----
  if (!exact_ids.empty()) {
    std::vector<TrackingRecord> batch;
    ExtractRecords(exact_ids, &batch);
    auto repaired = RepairBatch(std::move(batch));
    emitted.insert(emitted.end(), repaired.begin(), repaired.end());
  }

  // ---- Forced flush with context. ----
  if (!safe_ids.empty()) {
    std::vector<TrackingRecord> window;
    window.reserve(buffer_.size());
    for (const auto& r : buffer_) {
      if (safe_ids.count(r.id) > 0 || context_ids.count(r.id) > 0) {
        window.push_back(r);
      }
    }
    TrajectorySet chunk = TrajectorySet::FromRecords(window);
    IdRepairer repairer(*graph_, options_);
    auto result = repairer.Repair(chunk);

    std::unordered_set<std::string> consumed;
    std::unordered_set<std::string> deferred;  // safe but in a mixed repair
    if (result.ok()) {
      for (RepairIndex r : result->selected) {
        Span<const TrajIndex> cand_members = result->candidates.members(r);
        bool all_safe = true;
        for (TrajIndex m : cand_members) {
          if (safe_ids.count(chunk.at(m).id()) == 0) all_safe = false;
        }
        if (all_safe) {
          std::vector<const Trajectory*> members;
          for (TrajIndex m : cand_members) {
            members.push_back(&chunk.at(m));
            consumed.insert(chunk.at(m).id());
          }
          emitted.push_back(Join(members, result->candidates.target_id(r)));
        } else {
          // Defer every safe member of a mixed repair; applying it later,
          // once the unsafe members become safe, reproduces the batch
          // decision.
          for (TrajIndex m : cand_members) {
            if (safe_ids.count(chunk.at(m).id()) > 0) {
              deferred.insert(chunk.at(m).id());
            }
          }
        }
      }
    }
    // Safe fragments in no applied or deferred repair leave the stream
    // unrepaired: all of their potential partners were in the window and
    // the selection passed them over.
    for (const std::string& id : safe_ids) {
      if (consumed.count(id) > 0 || deferred.count(id) > 0) continue;
      std::vector<TrajectoryPoint> points;
      for (const auto& r : buffer_) {
        if (r.id == id) points.push_back(TrajectoryPoint{r.loc, r.ts});
      }
      emitted.emplace_back(id, std::move(points));
      consumed.insert(id);
    }
    // Drop consumed records from the buffer.
    std::vector<TrackingRecord> kept;
    kept.reserve(buffer_.size());
    for (auto& r : buffer_) {
      if (consumed.count(r.id) == 0) kept.push_back(std::move(r));
    }
    buffer_ = std::move(kept);
  }
  emitted_ += emitted.size();
  return emitted;
}

Result<RepairResult> StreamingRepairer::Repair(
    const TrajectorySet& set) const {
  IDREPAIR_RETURN_NOT_OK(options_.Validate());
  IDREPAIR_RETURN_NOT_OK(graph_->Validate());
  obs::ApplyOptions(options_.obs);
  if (obs::Enabled()) StreamInstruments::Get().batch_attempts->Increment();
  fault::Deadline deadline = fault::Deadline::FromMillis(options_.deadline_ms);
  Stopwatch total;
  CpuStopwatch total_cpu;

  // Flatten and order by time so the scratch stream accepts every record.
  std::vector<TrackingRecord> records;
  records.reserve(set.total_records());
  for (TrajIndex i = 0; i < set.size(); ++i) {
    for (const auto& p : set.at(i).points()) {
      records.push_back(TrackingRecord{set.at(i).id(), p.loc, p.ts});
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const TrackingRecord& a, const TrackingRecord& b) {
                     return std::tie(a.ts, a.id, a.loc) <
                            std::tie(b.ts, b.id, b.loc);
                   });

  // Replay with a Poll() every η of stream time — the cadence a live
  // consumer would use — then drain the tail. The deadline is probed at
  // those same replay boundaries: once it expires, replay stops and the
  // unprocessed remainder (buffered + never-appended records) passes
  // through unrepaired, grouped by observed ID.
  RepairOptions replay_options = options_;
  replay_options.deadline_ms = 0;  // budget enforced here, per replay batch
  StreamingRepairer scratch(*graph_, replay_options,
                            flush_horizon_multiplier_);
  std::vector<Trajectory> emitted;
  Status degraded = Status::OK();
  Timestamp last_poll = records.empty() ? 0 : records.front().ts;
  size_t next = 0;
  for (; next < records.size(); ++next) {
    IDREPAIR_RETURN_NOT_OK(scratch.Append(records[next]));
    if (scratch.watermark() - last_poll > options_.eta) {
      if (deadline.Expired()) {
        degraded = deadline.Check("stream replay");
        ++next;  // this record was appended; it drains with the buffer
        break;
      }
      auto got = scratch.Poll();
      emitted.insert(emitted.end(), got.begin(), got.end());
      last_poll = scratch.watermark();
    }
  }
  if (degraded.ok()) {
    auto tail = scratch.Finish();
    emitted.insert(emitted.end(), tail.begin(), tail.end());
  } else {
    std::vector<TrackingRecord> rest = std::move(scratch.buffer_);
    rest.insert(rest.end(), records.begin() + static_cast<ptrdiff_t>(next),
                records.end());
    auto passthrough = TrajectorySet::FromRecords(rest).trajectories();
    emitted.insert(emitted.end(), passthrough.begin(), passthrough.end());
  }

  RepairResult result;
  result.completion = degraded;
  result.stats.num_trajectories = set.size();
  result.stats.threads_used = options_.exec.ResolvedThreads();
  for (TrajIndex i = 0; i < set.size(); ++i) {
    if (!set.at(i).IsValid(*graph_)) ++result.stats.num_invalid;
  }

  // Recover the per-trajectory rewrite map: repair only relabels records,
  // so each input point (loc, ts) reappears verbatim in some emitted
  // trajectory. Bucket emitted IDs by point and let each input trajectory
  // claim one per point, majority-voting its new ID (points of one input
  // always travel together, so the vote is unanimous short of point-level
  // (loc, ts) collisions between distinct inputs).
  std::map<std::pair<LocationId, Timestamp>, std::deque<std::string>> by_point;
  std::vector<TrackingRecord> emitted_records;
  for (const auto& t : emitted) {
    for (const auto& p : t.points()) {
      by_point[{p.loc, p.ts}].push_back(t.id());
      emitted_records.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  for (TrajIndex i = 0; i < set.size(); ++i) {
    const Trajectory& t = set.at(i);
    std::map<std::string, size_t> votes;
    for (const auto& p : t.points()) {
      auto it = by_point.find({p.loc, p.ts});
      if (it == by_point.end() || it->second.empty()) continue;
      ++votes[it->second.front()];
      it->second.pop_front();
    }
    const std::string* winner = nullptr;
    size_t best = 0;
    for (const auto& [id, n] : votes) {
      if (n > best || (n == best && id == t.id())) {
        winner = &id;
        best = n;
      }
    }
    if (winner != nullptr && *winner != t.id()) result.rewrites[i] = *winner;
  }

  result.repaired = TrajectorySet::FromRecords(emitted_records);
  result.stats.seconds_total = total.ElapsedSeconds();
  result.stats.cpu_seconds_total = total_cpu.ElapsedSeconds();
  if (result.completion.ok() && obs::Enabled()) {
    StreamInstruments::Get().batch_completed->Increment();
  }
  return result;
}

std::vector<Trajectory> StreamingRepairer::Finish() {
  obs::TraceSpan span("stream.finish");
  std::vector<TrackingRecord> batch = std::move(buffer_);
  buffer_.clear();
  if (batch.empty()) return {};
  if (fault::Armed() && !fault::Inject("stream.finish").ok()) {
    // Degrade instead of dropping data: the final batch passes through
    // unrepaired, preserving every record.
    auto out = TrajectorySet::FromRecords(batch).trajectories();
    emitted_ += out.size();
    if (obs::Enabled()) {
      StreamInstruments::Get().emitted->Increment(out.size());
    }
    return out;
  }
  auto out = RepairBatch(std::move(batch));
  emitted_ += out.size();
  if (obs::Enabled()) StreamInstruments::Get().emitted->Increment(out.size());
  return out;
}

void StreamingRepairer::ExtractRecords(
    const std::unordered_set<std::string>& ids,
    std::vector<TrackingRecord>* out) {
  std::vector<TrackingRecord> kept;
  kept.reserve(buffer_.size());
  for (auto& r : buffer_) {
    if (ids.count(r.id) > 0) {
      out->push_back(std::move(r));
    } else {
      kept.push_back(std::move(r));
    }
  }
  buffer_ = std::move(kept);
}

std::vector<Trajectory> StreamingRepairer::RepairBatch(
    std::vector<TrackingRecord> records) {
  TrajectorySet set = TrajectorySet::FromRecords(records);
  IdRepairer repairer(*graph_, options_);
  auto result = repairer.Repair(set);
  std::vector<Trajectory> out;
  if (result.ok()) {
    out = result->repaired.trajectories();
  } else {
    // Configuration errors surface at the first batch; pass records through
    // unrepaired rather than dropping data.
    out = set.trajectories();
  }
  return out;
}

}  // namespace idrepair
