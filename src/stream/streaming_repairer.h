#ifndef IDREPAIR_STREAM_STREAMING_REPAIRER_H_
#define IDREPAIR_STREAM_STREAMING_REPAIRER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/transition_graph.h"
#include "lig/length_indexed_grids.h"
#include "repair/options.h"
#include "repair/predicates.h"
#include "repair/repairer.h"
#include "traj/tracking_record.h"
#include "traj/trajectory.h"

namespace idrepair {

/// Knobs of the incremental streaming engine, separate from RepairOptions
/// (which configures the repair pipeline each component runs through).
struct StreamOptions {
  /// Force-flush fragments older than multiplier·η even mid-chain (clamped
  /// to at least 1·η so emitted fragments are always inert).
  double flush_horizon_multiplier = 2.0;
  /// Bounded-buffer backpressure: when > 0, Append() returns
  /// ResourceExhausted while `max_buffered` records are already pending —
  /// the caller should Poll() (or slow the producer) and retry. The batch
  /// adapter never rejects; it inserts an extra Poll() instead (an offline
  /// replay can always drain itself). 0 means unbounded.
  size_t max_buffered = 0;
  /// Poll cadence of the batch adapter's replay, in stream seconds. 0 means
  /// η — the cadence a live consumer would use.
  Timestamp window_slide = 0;
};

/// Online ID repair over a record stream — the paper's §8 future-work
/// direction ("solutions that could perform ID repair as the tracking
/// records stream in"), with incrementally maintained repair state.
///
/// Records arrive in timestamp order and accrete into trajectory
/// *fragments* (grouped by observed ID). Fragments chain into *components*
/// — maximal runs of fragment start times within η of their neighbors — and
/// because the stream's watermark (largest timestamp seen) only moves
/// forward, components only ever grow at the tail: a new fragment either
/// joins the newest component or opens the next one, and two existing
/// components can never merge. That monotonicity is what makes incremental
/// maintenance exact rather than approximate.
///
/// ### What Append() maintains in place
///  * a dynamic Length-Indexed Grids index over the live fragments
///    (`LengthIndexedGrids::InsertSpan`/`RemoveSpan`), so each changed
///    fragment probes only its η-neighborhood instead of the whole window;
///  * the trajectory-graph (Gm) adjacency, edge by edge: the changed
///    fragment's edges are dropped and re-derived via one LIG probe plus
///    exact cex checks, which reproduces exactly the edge set a batch build
///    over the same window would compute (cex never links fragments whose
///    starts differ by more than η, so edges stay within one component);
///  * a dirty flag and version per component, invalidating only the
///    component the record landed in — settled components keep their
///    cached candidate state untouched (the amortized-cost invariant the
///    differential tier asserts by counter).
///
/// ### What Poll() emits (watermark semantics)
/// Only components whose records can no longer be affected by in-window
/// arrivals: a component whose newest fragment start is more than η behind
/// the watermark is *settled* and is repaired exactly as the batch pipeline
/// would repair it (`IdRepairer::RepairPrebuilt` over the maintained
/// adjacency). Under continuously dense traffic a chain may never settle on
/// its own; fragments older than the flush horizon are force-flushed
/// together with their full η-context, and only repair decisions whose
/// members are all behind the cut are applied — mixed decisions stay
/// buffered and re-enter the next poll, so quality stays close to batch
/// even under frequent polling. Emitted trajectories are final: no later
/// append can re-emit or mutate them.
///
/// As a batch Repairer (the polymorphic engine interface), a streaming
/// instance replays the whole set through a scratch stream in timestamp
/// order with a Poll() every `window_slide` of stream time — so the batch
/// call exercises the genuine incremental path, flushes included, rather
/// than degenerating to one big Finish(). Component repairs run on the
/// shared exec pool via the inner IdRepairer (RepairOptions::exec).
class StreamingRepairer : public Repairer {
 public:
  StreamingRepairer(const TransitionGraph& graph, RepairOptions options,
                    StreamOptions stream_options);

  /// Legacy two-knob constructor (flush horizon only).
  StreamingRepairer(const TransitionGraph& graph, RepairOptions options,
                    double flush_horizon_multiplier = 2.0);

  /// Folds one record into the incremental state: its fragment is rebuilt,
  /// re-indexed, and re-linked in O(affected neighborhood); its component
  /// is marked dirty. Records must arrive in non-decreasing timestamp order
  /// (an OutOfRange error reports a regression; the record is dropped).
  /// With StreamOptions::max_buffered set, a full buffer rejects the record
  /// with ResourceExhausted — nothing is mutated and the caller may retry
  /// after polling.
  Status Append(const TrackingRecord& record);

  /// Repairs and returns every trajectory whose component has settled under
  /// the current watermark (plus forced flushes past the horizon). May
  /// return an empty vector.
  std::vector<Trajectory> Poll();

  /// Flushes everything still buffered, repairing each remaining component.
  std::vector<Trajectory> Finish();

  /// Batch adapter (Repairer interface): replays `set` through a scratch
  /// streaming instance (this one is untouched) and reassembles the
  /// emitted trajectories into a RepairResult. Candidate-level fields
  /// (`candidates`, `selected`, `total_effectiveness`) stay empty — the
  /// streaming path applies its decisions incrementally and does not keep
  /// a global candidate list. The scratch stream's incremental counters
  /// land in RepairStats::stream_*.
  Result<RepairResult> Repair(const TrajectorySet& set) const override;

  std::string_view name() const override { return "streaming"; }

  /// Largest timestamp observed so far.
  Timestamp watermark() const { return watermark_; }

  /// Records currently buffered (not yet emitted).
  size_t pending_records() const { return pending_records_; }

  /// Total trajectories emitted over the lifetime of the stream.
  size_t emitted_trajectories() const { return emitted_; }

  /// Incremental-state introspection, mirrored into the obs counters and
  /// (through the batch adapter) RepairStats::stream_*. The differential
  /// tier's amortized-cost assertion reads generation_runs(): appending to
  /// one component must not grow it for settled components.
  size_t generation_runs() const { return generation_runs_; }
  size_t dirty_components_seen() const { return dirty_components_; }
  size_t records_reused() const { return records_reused_; }
  size_t appends_rejected() const { return appends_rejected_; }
  size_t poll_count() const { return polls_; }
  size_t live_components() const { return live_.size(); }

  /// One repaired window, captured for the batch-equivalence differential
  /// tier: `records` is exactly what the engine repaired together and
  /// `repaired` the pipeline's output over them, so a test can replay
  /// `records` through a batch IdRepairer and demand byte-identical output.
  struct WindowRepair {
    std::vector<TrackingRecord> records;
    std::vector<Trajectory> repaired;
    bool forced = false;      // horizon flush (context window), not settled
    bool from_cache = false;  // served from the component's cached repair
    bool degraded = false;    // pipeline error; records passed through
  };
  void set_capture_windows(bool on) { capture_windows_ = on; }
  const std::vector<WindowRepair>& captured_windows() const {
    return captured_;
  }

 private:
  /// One live trajectory fragment (all records of one observed ID still in
  /// the window). `edges` holds the fragment handles its cex edges point
  /// at — the incrementally maintained Gm adjacency, always symmetric.
  struct Fragment {
    std::string id;
    std::vector<TrajectoryPoint> points;
    Trajectory traj;
    std::vector<uint32_t> edges;
    uint32_t component = 0;
    bool alive = true;
    bool feasible = false;
    bool indexed = false;
  };

  /// A cached component repair: the window set it was computed over plus
  /// the pipeline result. Valid while the owning component's version and
  /// window membership are unchanged.
  struct CachedRepair {
    TrajectorySet set;
    std::vector<uint32_t> local_to_frag;  // set order -> fragment handle
    RepairResult result;
    bool ok = false;
  };

  /// One chain component: fragment handles plus the start-time envelope.
  /// `version` bumps on every membership or content change; the cache is
  /// valid only for (version, window) it was computed at.
  struct Component {
    std::vector<uint32_t> frags;
    Timestamp min_start = 0;
    Timestamp max_start = 0;
    bool alive = true;
    bool dirty = false;
    uint64_t version = 0;
    uint64_t cached_version = ~uint64_t{0};
    std::vector<uint32_t> cached_window;
    std::unique_ptr<CachedRepair> cache;
  };

  /// Poll() minus instrumentation (Poll wraps this in a trace span and the
  /// poll-latency histogram when obs is enabled).
  std::vector<Trajectory> PollImpl();

  /// Creates the fragment for a first-seen ID and assigns it to the newest
  /// component (start gap <= η) or a fresh one.
  uint32_t NewFragment(const TrackingRecord& record);

  /// Re-derives one fragment's trajectory, feasibility, LIG entry, and cex
  /// edges after its record set changed — the per-record incremental step.
  void RefreshFragment(uint32_t handle);

  /// Marks the fragment's component dirty (counting clean->dirty
  /// transitions) and bumps its version.
  void TouchComponent(uint32_t component);

  /// Runs (or reuses) the component repair over `window` (fragment handles,
  /// ascending). Returns the cache slot; `*from_cache` reports reuse.
  CachedRepair* RunComponentRepair(uint32_t component,
                                   std::vector<uint32_t> window,
                                   bool* from_cache);

  /// Repairs the whole component batch-exactly, appends the result to
  /// `out`, and retires it. `forced=false` capture.
  void EmitSettled(uint32_t component, std::vector<Trajectory>* out);

  /// Forced horizon flush: repairs the safe fragments (start <= cut) with
  /// their η-context, applies only all-safe decisions, defers the rest.
  void FlushForced(uint32_t component, Timestamp cut,
                   std::vector<Trajectory>* out);

  /// Removes fragments from the index, the adjacency, and their component;
  /// bumps the component version.
  void RetireFragments(uint32_t component,
                       const std::vector<uint32_t>& handles);

  /// Re-derives the component's start envelope after retirement and splits
  /// it where consecutive start gaps exceed η (retirement can sever a
  /// chain). New components slot into live_ right after the original so
  /// start order is preserved.
  void SplitComponent(uint32_t component);

  /// Drains every pending record (any order) and resets all incremental
  /// state; watermark and lifetime counters survive.
  std::vector<TrackingRecord> TakeAllRecords();

  const TransitionGraph* graph_;
  RepairOptions options_;
  StreamOptions stream_options_;
  Timestamp flush_horizon_;
  Timestamp watermark_ = 0;
  bool saw_any_ = false;
  size_t emitted_ = 0;
  size_t pending_records_ = 0;

  /// Shared across every component repair: the evaluator (with its
  /// Floyd–Warshall closure, built once) and the inner pipeline.
  PredicateEvaluator pred_;
  IdRepairer inner_;

  std::vector<Fragment> frags_;
  std::unordered_map<std::string, uint32_t> frag_by_id_;  // alive only
  std::vector<Component> components_;
  std::vector<uint32_t> live_;  // alive components, ascending start
  std::optional<LengthIndexedGrids> lig_;  // dynamic; anchored lazily
  std::vector<TrajIndex> probe_;           // scratch for LIG probes

  size_t generation_runs_ = 0;
  size_t dirty_components_ = 0;
  size_t records_reused_ = 0;
  size_t appends_rejected_ = 0;
  size_t polls_ = 0;
  size_t poll_fresh_records_ = 0;  // records regenerated in current poll

  bool capture_windows_ = false;
  std::vector<WindowRepair> captured_;
};

}  // namespace idrepair

#endif  // IDREPAIR_STREAM_STREAMING_REPAIRER_H_
