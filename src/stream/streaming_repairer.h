#ifndef IDREPAIR_STREAM_STREAMING_REPAIRER_H_
#define IDREPAIR_STREAM_STREAMING_REPAIRER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/transition_graph.h"
#include "repair/options.h"
#include "repair/repairer.h"
#include "traj/tracking_record.h"
#include "traj/trajectory.h"

namespace idrepair {

/// Online ID repair over a record stream — the paper's §8 future-work
/// direction ("solutions that could perform ID repair as the tracking
/// records stream in"), built on the batch pipeline.
///
/// Records arrive in timestamp order and are buffered as trajectory
/// fragments (grouped by observed ID). The time-span bound η makes old
/// fragments inert: a fragment whose start time is more than η behind the
/// stream watermark (largest timestamp seen) can never gain another record,
/// because every joinable subset spans at most η. Poll() flushes fragments
/// in *chain components* — maximal runs of fragments whose start times are
/// within η of their neighbors — so that a fragment is only repaired once
/// everything it could possibly be joined with is on the table. A component
/// whose newest fragment is inert is repaired exactly as the batch pipeline
/// would repair it.
///
/// Under continuously dense traffic a chain may never close on its own;
/// `flush_horizon_multiplier` bounds buffering by force-flushing fragments
/// older than multiplier·η even mid-chain (clamped to at least 1·η so
/// emitted fragments are always inert). A forced flush is repaired together
/// with its full η-context — every fragment that could still share a
/// joinable subset with it — and only decisions whose members are all
/// behind the cut are applied; mixed decisions stay buffered and re-enter
/// the next poll, so quality stays close to batch even under frequent
/// polling.
///
/// As a batch Repairer (the polymorphic engine interface), a streaming
/// instance replays the whole set through a scratch stream in timestamp
/// order with a Poll() every η of stream time — so the batch call
/// exercises the genuine incremental path, flushes included, rather than
/// degenerating to one big Finish(). Flush batches run on the shared exec
/// pool via the inner IdRepairer (RepairOptions::exec).
class StreamingRepairer : public Repairer {
 public:
  StreamingRepairer(const TransitionGraph& graph, RepairOptions options,
                    double flush_horizon_multiplier = 2.0);

  /// Buffers one record. Records must arrive in non-decreasing timestamp
  /// order (an OutOfRange error reports a regression; the record is
  /// dropped).
  Status Append(const TrackingRecord& record);

  /// Repairs and returns every trajectory whose fragment group has expired
  /// under the current watermark. May return an empty vector.
  std::vector<Trajectory> Poll();

  /// Flushes everything still buffered, repairing one final batch.
  std::vector<Trajectory> Finish();

  /// Batch adapter (Repairer interface): replays `set` through a scratch
  /// streaming instance (this one is untouched) and reassembles the
  /// emitted trajectories into a RepairResult. Candidate-level fields
  /// (`candidates`, `selected`, `total_effectiveness`) stay empty — the
  /// streaming path applies its decisions incrementally and does not keep
  /// a global candidate list.
  Result<RepairResult> Repair(const TrajectorySet& set) const override;

  std::string_view name() const override { return "streaming"; }

  /// Largest timestamp observed so far.
  Timestamp watermark() const { return watermark_; }

  /// Records currently buffered (not yet emitted).
  size_t pending_records() const { return buffer_.size(); }

  /// Total trajectories emitted over the lifetime of the stream.
  size_t emitted_trajectories() const { return emitted_; }

 private:
  /// Poll() minus instrumentation (Poll wraps this in a trace span and the
  /// poll-latency histogram when obs is enabled).
  std::vector<Trajectory> PollImpl();

  /// Moves all records whose ID is in `ids` out of the buffer into `out`.
  void ExtractRecords(const std::unordered_set<std::string>& ids,
                      std::vector<TrackingRecord>* out);

  std::vector<Trajectory> RepairBatch(std::vector<TrackingRecord> records);

  const TransitionGraph* graph_;
  RepairOptions options_;
  double flush_horizon_multiplier_;
  Timestamp flush_horizon_;
  Timestamp watermark_ = 0;
  bool saw_any_ = false;
  std::vector<TrackingRecord> buffer_;
  size_t emitted_ = 0;
};

}  // namespace idrepair

#endif  // IDREPAIR_STREAM_STREAMING_REPAIRER_H_
