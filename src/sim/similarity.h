#ifndef IDREPAIR_SIM_SIMILARITY_H_
#define IDREPAIR_SIM_SIMILARITY_H_

#include <cassert>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace idrepair {

/// Strategy interface for ID similarity. The paper (§2.2.1) uses normalized
/// edit similarity but explicitly allows swapping in other metrics ("there
/// have been dozens of metrics proposed in the literature"); the repair
/// pipeline takes any implementation of this interface.
///
/// Implementations must be symmetric, return values in [0, 1], and return 1
/// exactly for equal strings.
class IdSimilarity {
 public:
  virtual ~IdSimilarity() = default;

  /// Similarity of two IDs in [0, 1]; 1 means identical.
  virtual double Similarity(std::string_view a, std::string_view b) const = 0;

  /// Stable metric name for configs and logs.
  virtual std::string_view name() const = 0;
};

/// Eq. (1) of the paper: 1 - editDistance(a, b) / max(|a|, |b|).
class NormalizedEditSimilarity final : public IdSimilarity {
 public:
  double Similarity(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "edit"; }
};

/// Jaro–Winkler similarity (prefix-boosted Jaro), a common alternative for
/// short identifier strings.
class JaroWinklerSimilarity final : public IdSimilarity {
 public:
  /// `prefix_scale` is the Winkler prefix bonus weight, at most 0.25.
  explicit JaroWinklerSimilarity(double prefix_scale = 0.1)
      : prefix_scale_(prefix_scale) {}

  double Similarity(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "jaro_winkler"; }

 private:
  double prefix_scale_;
};

/// Cosine similarity over character bigram frequency vectors.
class BigramCosineSimilarity final : public IdSimilarity {
 public:
  double Similarity(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "bigram_cosine"; }
};

/// Overlap coefficient over character bigram sets:
/// |A ∩ B| / min(|A|, |B|) (mentioned in §2.2.1).
class OverlapCoefficientSimilarity final : public IdSimilarity {
 public:
  double Similarity(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "overlap"; }
};

/// Debug-mode guard enforcing the IdSimilarity contract: forwards to the
/// wrapped metric and asserts every returned value lies in [0, 1]. The
/// repair pipeline wraps user-supplied metrics with this in debug builds,
/// so an out-of-range metric fails loudly at its first use instead of
/// silently corrupting effectiveness scores. The wrapped metric is not
/// owned and must outlive the wrapper.
class RangeCheckedSimilarity final : public IdSimilarity {
 public:
  explicit RangeCheckedSimilarity(const IdSimilarity& inner)
      : inner_(&inner) {}

  double Similarity(std::string_view a, std::string_view b) const override {
    double v = inner_->Similarity(a, b);
    assert(v >= 0.0 && v <= 1.0 &&
           "IdSimilarity implementations must return values in [0, 1]");
    return v;
  }

  std::string_view name() const override { return inner_->name(); }

 private:
  const IdSimilarity* inner_;
};

/// Creates a similarity metric by its stable name ("edit", "jaro_winkler",
/// "bigram_cosine", "overlap").
Result<std::unique_ptr<IdSimilarity>> MakeSimilarity(std::string_view name);

}  // namespace idrepair

#endif  // IDREPAIR_SIM_SIMILARITY_H_
