#include "sim/similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/edit_distance.h"

namespace idrepair {

namespace {

// Packs a character bigram into a 16-bit key.
uint16_t BigramKey(char a, char b) {
  return static_cast<uint16_t>((static_cast<uint8_t>(a) << 8) |
                               static_cast<uint8_t>(b));
}

std::unordered_map<uint16_t, int> BigramCounts(std::string_view s) {
  std::unordered_map<uint16_t, int> counts;
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    ++counts[BigramKey(s[i], s[i + 1])];
  }
  return counts;
}

}  // namespace

double NormalizedEditSimilarity::Similarity(std::string_view a,
                                            std::string_view b) const {
  if (a.empty() && b.empty()) return 1.0;
  // The banded form returns the same exact integer distance as the full
  // DP, so this similarity is bit-identical to the unbanded one.
  size_t max_len = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(EditDistanceBanded(a, b)) /
                   static_cast<double>(max_len);
}

double JaroWinklerSimilarity::Similarity(std::string_view a,
                                         std::string_view b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t match_window =
      std::max(a.size(), b.size()) / 2 == 0
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Transpositions: matched characters in order of appearance.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double jaro = (m / static_cast<double>(a.size()) +
                 m / static_cast<double>(b.size()) +
                 (m - static_cast<double>(transpositions) / 2.0) / m) /
                3.0;
  // Winkler prefix bonus on the common prefix (capped at 4).
  size_t prefix = 0;
  size_t max_prefix = std::min({size_t{4}, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale_ * (1.0 - jaro);
}

double BigramCosineSimilarity::Similarity(std::string_view a,
                                          std::string_view b) const {
  if (a == b) return 1.0;
  auto ca = BigramCounts(a);
  auto cb = BigramCounts(b);
  if (ca.empty() || cb.empty()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (const auto& [k, v] : ca) {
    na += static_cast<double>(v) * v;
    auto it = cb.find(k);
    if (it != cb.end()) dot += static_cast<double>(v) * it->second;
  }
  for (const auto& [k, v] : cb) nb += static_cast<double>(v) * v;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double OverlapCoefficientSimilarity::Similarity(std::string_view a,
                                                std::string_view b) const {
  if (a == b) return 1.0;
  auto ca = BigramCounts(a);
  auto cb = BigramCounts(b);
  if (ca.empty() || cb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& [k, v] : ca) {
    (void)v;
    if (cb.count(k) > 0) ++inter;
  }
  return static_cast<double>(inter) /
         static_cast<double>(std::min(ca.size(), cb.size()));
}

Result<std::unique_ptr<IdSimilarity>> MakeSimilarity(std::string_view name) {
  if (name == "edit") {
    return std::unique_ptr<IdSimilarity>(new NormalizedEditSimilarity());
  }
  if (name == "jaro_winkler") {
    return std::unique_ptr<IdSimilarity>(new JaroWinklerSimilarity());
  }
  if (name == "bigram_cosine") {
    return std::unique_ptr<IdSimilarity>(new BigramCosineSimilarity());
  }
  if (name == "overlap") {
    return std::unique_ptr<IdSimilarity>(new OverlapCoefficientSimilarity());
  }
  return Status::NotFound("unknown similarity metric: " + std::string(name));
}

}  // namespace idrepair
