#ifndef IDREPAIR_SIM_COMPOSITE_ID_H_
#define IDREPAIR_SIM_COMPOSITE_ID_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/similarity.h"

namespace idrepair {

/// Support for composite IDs (§1 of the paper: "a composite one consisting
/// of multiple features, such as name, color and shape"; §2.2.1: "even if
/// attempts are made to camouflage the entities with a fake name, the
/// remaining components of the IDs ... are more difficult to conceal").
///
/// A composite ID is encoded into the ordinary string ID slot as fields
/// joined by '|' (e.g. "evergreen|green|cargo"), so the whole repair
/// pipeline works unchanged; CompositeIdSimilarity then scores the fields
/// independently and combines them with configurable weights.
///
/// Encoding with EncodeCompositeId and decoding with DecodeCompositeId
/// round-trip exactly; field values must not contain '|'.

/// Joins fields into the encoded form. Returns InvalidArgument when a field
/// contains the separator or no fields are given.
Result<std::string> EncodeCompositeId(const std::vector<std::string>& fields);

/// Splits an encoded composite ID back into fields.
std::vector<std::string> DecodeCompositeId(std::string_view id);

/// Weighted per-field similarity over encoded composite IDs.
///
/// Each field is scored with the wrapped metric (normalized edit similarity
/// by default) and the results are combined as a weighted mean. When two
/// IDs have different field counts (e.g. a plain ID meets a composite one),
/// the whole-string fallback metric is used instead — the comparison
/// degrades gracefully rather than failing.
class CompositeIdSimilarity final : public IdSimilarity {
 public:
  /// `weights` must be non-empty with a positive sum; its size fixes the
  /// expected field count. `field_metric` scores one field pair (defaults
  /// to normalized edit similarity; not owned when provided).
  static Result<CompositeIdSimilarity> Create(
      std::vector<double> weights,
      const IdSimilarity* field_metric = nullptr);

  double Similarity(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "composite"; }

  size_t num_fields() const { return weights_.size(); }

 private:
  CompositeIdSimilarity(std::vector<double> weights,
                        const IdSimilarity* field_metric)
      : weights_(std::move(weights)), field_metric_(field_metric) {}

  const IdSimilarity& metric() const {
    return field_metric_ != nullptr ? *field_metric_ : default_metric_;
  }

  std::vector<double> weights_;
  const IdSimilarity* field_metric_;
  NormalizedEditSimilarity default_metric_;
};

}  // namespace idrepair

#endif  // IDREPAIR_SIM_COMPOSITE_ID_H_
