#include "sim/edit_distance.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace idrepair {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];  // D[i-1][j]
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, sub});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t EditDistanceBounded(std::string_view a, std::string_view b,
                           size_t limit) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > limit) return limit + 1;
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    size_t row_min = row[0];
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, sub});
      row_min = std::min(row_min, row[j]);
      diag = up;
    }
    if (row_min > limit) return limit + 1;  // no cell can recover
  }
  return row[b.size()];
}

}  // namespace idrepair
