#include "sim/edit_distance.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace idrepair {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];  // D[i-1][j]
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, sub});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t EditDistanceBounded(std::string_view a, std::string_view b,
                           size_t limit) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > limit) return limit + 1;
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    size_t row_min = row[0];
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, sub});
      row_min = std::min(row_min, row[j]);
      diag = up;
    }
    if (row_min > limit) return limit + 1;  // no cell can recover
  }
  return row[b.size()];
}

namespace {

/// The banded DP kernel: exact distance when it is <= band, otherwise
/// band + 1. `a` must be the longer string. Only cells with |i - j| <= band
/// are evaluated; the sentinel writes just outside the band stand in for
/// the never-computed out-of-band cells (their true values exceed band).
size_t EditDistanceWithinBand(std::string_view a, std::string_view b,
                              size_t band) {
  const size_t kInf = band + 1;
  std::vector<size_t> prev(b.size() + 1, kInf);
  std::vector<size_t> cur(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), band); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t lo = i > band ? i - band : 0;
    size_t hi = std::min(b.size(), i + band);
    if (lo > b.size()) return kInf;  // band left the table entirely
    size_t best = kInf;
    size_t j = lo;
    if (lo == 0) {
      cur[0] = std::min(i, kInf);
      best = cur[0];
      j = 1;
    } else if (lo >= 1) {
      cur[lo - 1] = kInf;  // sentinel: insertion source outside the band
    }
    for (; j <= hi; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t del = prev[j] + 1;
      size_t ins = cur[j - 1] + 1;
      size_t v = std::min({sub, del, ins});
      cur[j] = std::min(v, kInf);
      best = std::min(best, cur[j]);
    }
    if (hi + 1 <= b.size()) cur[hi + 1] = kInf;  // sentinel for next row
    if (best > band) return kInf;  // no in-band cell can recover
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

size_t EditDistanceBanded(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  // The distance is at least the length gap and at most |a|, so the
  // doubling search always terminates with an in-band (exact) result.
  size_t band = std::max<size_t>(a.size() - b.size(), 1);
  while (band < a.size()) {
    size_t d = EditDistanceWithinBand(a, b, band);
    if (d <= band) return d;
    band *= 2;
  }
  return EditDistanceWithinBand(a, b, a.size());
}

}  // namespace idrepair
