#ifndef IDREPAIR_SIM_EDIT_DISTANCE_H_
#define IDREPAIR_SIM_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace idrepair {

/// Levenshtein distance (unit-cost substitution/insertion/deletion) between
/// two byte strings. O(|a|·|b|) time, O(min(|a|,|b|)) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// Early-exiting variant: returns the exact distance when it is <= `limit`,
/// otherwise any value > `limit`. Used by the ID-similarity baseline, whose
/// merge rule is a distance threshold (§6.5.2).
size_t EditDistanceBounded(std::string_view a, std::string_view b,
                           size_t limit);

/// Banded Levenshtein with iterative deepening (Ukkonen): evaluates only
/// the DP cells within `band` of the diagonal, starting from
/// band = max(1, ||a|-|b||) and doubling until the result fits the band —
/// at which point it is provably the exact distance (a path leaving the
/// band costs more than the band). Always returns the exact integer
/// distance, so similarities derived from it are bit-identical to the full
/// DP's; for near-identical IDs (the common case when comparing a
/// trajectory's misread variants) it runs in O(d·min(|a|,|b|)) instead of
/// O(|a|·|b|). The cutoff rule is documented in DESIGN.md §9.
size_t EditDistanceBanded(std::string_view a, std::string_view b);

}  // namespace idrepair

#endif  // IDREPAIR_SIM_EDIT_DISTANCE_H_
