#ifndef IDREPAIR_SIM_EDIT_DISTANCE_H_
#define IDREPAIR_SIM_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace idrepair {

/// Levenshtein distance (unit-cost substitution/insertion/deletion) between
/// two byte strings. O(|a|·|b|) time, O(min(|a|,|b|)) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// Early-exiting variant: returns the exact distance when it is <= `limit`,
/// otherwise any value > `limit`. Used by the ID-similarity baseline, whose
/// merge rule is a distance threshold (§6.5.2).
size_t EditDistanceBounded(std::string_view a, std::string_view b,
                           size_t limit);

}  // namespace idrepair

#endif  // IDREPAIR_SIM_EDIT_DISTANCE_H_
