#include "sim/composite_id.h"

#include "common/string_util.h"

namespace idrepair {

namespace {
constexpr char kSeparator = '|';
}  // namespace

Result<std::string> EncodeCompositeId(
    const std::vector<std::string>& fields) {
  if (fields.empty()) {
    return Status::InvalidArgument("composite ID needs at least one field");
  }
  for (const auto& f : fields) {
    if (f.find(kSeparator) != std::string::npos) {
      return Status::InvalidArgument("field contains the '|' separator: " +
                                     f);
    }
  }
  return Join(fields, std::string(1, kSeparator));
}

std::vector<std::string> DecodeCompositeId(std::string_view id) {
  return Split(id, kSeparator);
}

Result<CompositeIdSimilarity> CompositeIdSimilarity::Create(
    std::vector<double> weights, const IdSimilarity* field_metric) {
  if (weights.empty()) {
    return Status::InvalidArgument("composite similarity needs weights");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("weights must be non-negative");
    }
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("weights must have a positive sum");
  }
  for (double& w : weights) w /= sum;  // normalize once
  return CompositeIdSimilarity(std::move(weights), field_metric);
}

double CompositeIdSimilarity::Similarity(std::string_view a,
                                         std::string_view b) const {
  auto fa = DecodeCompositeId(a);
  auto fb = DecodeCompositeId(b);
  if (fa.size() != weights_.size() || fb.size() != weights_.size()) {
    // Graceful fallback for non-composite or malformed IDs.
    return metric().Similarity(a, b);
  }
  double score = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    score += weights_[i] * metric().Similarity(fa[i], fb[i]);
  }
  return score;
}

}  // namespace idrepair
