#ifndef IDREPAIR_TRAJ_TRAJECTORY_H_
#define IDREPAIR_TRAJ_TRAJECTORY_H_

#include <cassert>
#include <string>
#include <vector>

#include "graph/transition_graph.h"
#include "graph/types.h"
#include "traj/tracking_record.h"

namespace idrepair {

/// One spatio-temporal sample of a trajectory (the ID is stored once on the
/// owning Trajectory).
struct TrajectoryPoint {
  LocationId loc = kInvalidLocation;
  Timestamp ts = 0;

  friend bool operator==(const TrajectoryPoint& a,
                         const TrajectoryPoint& b) = default;
};

/// A trajectory: the chronologically ordered tracking records sharing one
/// observed ID (Definition 2.4).
class Trajectory {
 public:
  Trajectory() = default;

  /// Builds a trajectory from points, sorting them chronologically
  /// (ties broken by location for determinism).
  Trajectory(std::string id, std::vector<TrajectoryPoint> points);

  const std::string& id() const { return id_; }

  /// Number of tracking records, written |T| in the paper.
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const TrajectoryPoint& point(size_t i) const { return points_[i]; }
  const std::vector<TrajectoryPoint>& points() const { return points_; }

  /// Timestamp of the earliest record (Definition 5.1). Requires non-empty.
  Timestamp start_time() const {
    assert(!empty());
    return points_.front().ts;
  }
  /// Timestamp of the latest record (Definition 5.1). Requires non-empty.
  Timestamp end_time() const {
    assert(!empty());
    return points_.back().ts;
  }
  /// end_time() - start_time().
  Timestamp TimeSpan() const { return end_time() - start_time(); }

  /// The location sequence of the trajectory.
  std::vector<LocationId> LocationSequence() const;

  /// True iff the location sequence is a valid path w.r.t. `graph`
  /// (a VT, Definition 2.4) and timestamps are strictly increasing.
  bool IsValid(const TransitionGraph& graph) const;

  /// "id<A -> B -> C>" rendering used in the paper's tables.
  std::string ToString(const TransitionGraph& graph) const;

  friend bool operator==(const Trajectory& a, const Trajectory& b) = default;

 private:
  std::string id_;
  std::vector<TrajectoryPoint> points_;
};

}  // namespace idrepair

#endif  // IDREPAIR_TRAJ_TRAJECTORY_H_
