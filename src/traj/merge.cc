#include "traj/merge.h"

#include <algorithm>
#include <tuple>

namespace idrepair {

std::vector<MergedPoint> MergeChronological(
    std::span<const Trajectory* const> trajectories) {
  size_t total = 0;
  for (const Trajectory* t : trajectories) total += t->size();
  std::vector<MergedPoint> out;
  out.reserve(total);
  for (uint32_t s = 0; s < trajectories.size(); ++s) {
    for (const auto& p : trajectories[s]->points()) {
      out.push_back(MergedPoint{p.loc, p.ts, s});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MergedPoint& a, const MergedPoint& b) {
              return std::tie(a.ts, a.loc, a.source) <
                     std::tie(b.ts, b.loc, b.source);
            });
  return out;
}

std::vector<MergedPoint> MergeChronological(const Trajectory& a,
                                            const Trajectory& b) {
  const Trajectory* pair[] = {&a, &b};
  return MergeChronological(pair);
}

Trajectory Join(std::span<const Trajectory* const> trajectories,
                std::string target_id) {
  auto merged = MergeChronological(trajectories);
  std::vector<TrajectoryPoint> points;
  points.reserve(merged.size());
  for (const auto& m : merged) points.push_back(TrajectoryPoint{m.loc, m.ts});
  return Trajectory(std::move(target_id), std::move(points));
}

}  // namespace idrepair
