#ifndef IDREPAIR_TRAJ_TRACKING_RECORD_H_
#define IDREPAIR_TRAJ_TRACKING_RECORD_H_

#include <cstdint>
#include <string>
#include <tuple>

#include "graph/types.h"

namespace idrepair {

/// Capture timestamp, in seconds (any epoch; only differences matter).
using Timestamp = int64_t;

/// A tracking record (id, loc, ts) — Definition 2.3. `id` is the *observed*
/// entity identifier, which may be erroneous; location and timestamp are
/// assumed correct (fixed devices, synchronized clocks).
struct TrackingRecord {
  std::string id;
  LocationId loc = kInvalidLocation;
  Timestamp ts = 0;

  friend bool operator==(const TrackingRecord& a,
                         const TrackingRecord& b) = default;
};

/// Chronological-then-deterministic record ordering used everywhere a stable
/// total order is required (grouping, merging).
inline bool RecordChronoLess(const TrackingRecord& a,
                             const TrackingRecord& b) {
  return std::tie(a.ts, a.loc, a.id) < std::tie(b.ts, b.loc, b.id);
}

}  // namespace idrepair

#endif  // IDREPAIR_TRAJ_TRACKING_RECORD_H_
