#ifndef IDREPAIR_TRAJ_TRAJECTORY_SET_H_
#define IDREPAIR_TRAJ_TRAJECTORY_SET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/transition_graph.h"
#include "traj/tracking_record.h"
#include "traj/trajectory.h"

namespace idrepair {

/// Dense index of a trajectory within a TrajectorySet.
using TrajIndex = uint32_t;

/// The input of the repair problem: a set of trajectories composed from raw
/// tracking records by grouping on the observed ID (assumption 1 of §2.3:
/// identical IDs, correct or not, belong to the same entity).
class TrajectorySet {
 public:
  TrajectorySet() = default;

  /// Groups `records` by observed ID and sorts each group chronologically.
  /// Trajectory order is deterministic: by start time, then by ID.
  static TrajectorySet FromRecords(const std::vector<TrackingRecord>& records);

  /// Builds directly from already-formed trajectories (kept in given order).
  explicit TrajectorySet(std::vector<Trajectory> trajectories);

  size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }

  const Trajectory& at(TrajIndex i) const { return trajectories_[i]; }
  const std::vector<Trajectory>& trajectories() const { return trajectories_; }

  /// Total number of tracking records across all trajectories.
  size_t total_records() const { return total_records_; }

  /// Indices of trajectories that are invalid w.r.t. `graph` (IVTs).
  std::vector<TrajIndex> InvalidTrajectories(
      const TransitionGraph& graph) const;

  /// Index of the trajectory with the given observed ID, if any.
  /// IDs are unique within a set by construction of FromRecords.
  std::unordered_map<std::string, TrajIndex> BuildIdIndex() const;

 private:
  std::vector<Trajectory> trajectories_;
  size_t total_records_ = 0;
};

}  // namespace idrepair

#endif  // IDREPAIR_TRAJ_TRAJECTORY_SET_H_
