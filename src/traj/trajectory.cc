#include "traj/trajectory.h"

#include <algorithm>
#include <tuple>

namespace idrepair {

Trajectory::Trajectory(std::string id, std::vector<TrajectoryPoint> points)
    : id_(std::move(id)), points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const TrajectoryPoint& a, const TrajectoryPoint& b) {
              return std::tie(a.ts, a.loc) < std::tie(b.ts, b.loc);
            });
}

std::vector<LocationId> Trajectory::LocationSequence() const {
  std::vector<LocationId> seq;
  seq.reserve(points_.size());
  for (const auto& p : points_) seq.push_back(p.loc);
  return seq;
}

bool Trajectory::IsValid(const TransitionGraph& graph) const {
  if (empty()) return false;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    if (points_[i].ts >= points_[i + 1].ts) return false;
  }
  auto seq = LocationSequence();
  return graph.IsValidPath(seq);
}

std::string Trajectory::ToString(const TransitionGraph& graph) const {
  std::string out = id_;
  out += "<";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += graph.LocationName(points_[i].loc);
  }
  out += ">";
  return out;
}

}  // namespace idrepair
