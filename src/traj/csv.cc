#include "traj/csv.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "fault/failpoint.h"

namespace idrepair {

Result<std::vector<TrackingRecord>> ReadRecordsCsv(
    std::istream& in, const TransitionGraph& graph) {
  IDREPAIR_FAULT_INJECT("io.csv.read");
  std::vector<TrackingRecord> records;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (line_no == 1 && trimmed == "id,loc,ts") continue;  // header
    auto fields = Split(trimmed, ',');
    if (fields.size() != 3) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected 3 fields, got " +
                                std::to_string(fields.size()));
    }
    std::string id(Trim(fields[0]));
    if (id.empty()) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": empty id");
    }
    auto loc = graph.FindLocation(Trim(fields[1]));
    if (!loc) {
      return Status::NotFound("line " + std::to_string(line_no) +
                              ": unknown location '" + fields[1] + "'");
    }
    std::string_view ts_str = Trim(fields[2]);
    Timestamp ts = 0;
    auto [ptr, ec] =
        std::from_chars(ts_str.data(), ts_str.data() + ts_str.size(), ts);
    if (ec != std::errc() || ptr != ts_str.data() + ts_str.size()) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": bad timestamp '" + std::string(ts_str) +
                                "'");
    }
    records.push_back(TrackingRecord{std::move(id), *loc, ts});
  }
  return records;
}

Result<std::vector<TrackingRecord>> ReadRecordsCsvFile(
    const std::string& path, const TransitionGraph& graph) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadRecordsCsv(in, graph);
}

Status WriteRecordsCsv(std::ostream& out, const TransitionGraph& graph,
                       const std::vector<TrackingRecord>& records) {
  IDREPAIR_FAULT_INJECT("io.csv.write");
  out << "id,loc,ts\n";
  for (const auto& r : records) {
    if (r.loc >= graph.num_locations()) {
      return Status::InvalidArgument("record references unknown location id");
    }
    out << r.id << ',' << graph.LocationName(r.loc) << ',' << r.ts << '\n';
  }
  if (!out) return Status::IoError("write failed");
  return Status::OK();
}

Status WriteRecordsCsvFile(const std::string& path,
                           const TransitionGraph& graph,
                           const std::vector<TrackingRecord>& records) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  return WriteRecordsCsv(out, graph, records);
}

}  // namespace idrepair
