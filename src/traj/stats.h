#ifndef IDREPAIR_TRAJ_STATS_H_
#define IDREPAIR_TRAJ_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "graph/transition_graph.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Descriptive statistics of a trajectory set — what a practitioner looks
/// at before choosing the θ/η/ζ bounds (§2.3: "by carefully choosing the
/// bounds, we can reduce the running time ... significantly").
struct TrajectorySetStats {
  size_t num_trajectories = 0;
  size_t num_records = 0;
  size_t num_valid = 0;
  size_t num_invalid = 0;

  size_t min_length = 0;
  size_t max_length = 0;
  double mean_length = 0.0;

  Timestamp min_span = 0;
  Timestamp max_span = 0;
  double mean_span = 0.0;

  /// length -> trajectory count.
  std::map<size_t, size_t> length_histogram;
  /// span bucket (seconds, floor to `span_bucket`) -> trajectory count.
  std::map<Timestamp, size_t> span_histogram;
  Timestamp span_bucket = 60;

  /// Suggested bounds covering the given quantile of the *valid*
  /// trajectories (e.g. 0.99): the smallest θ/η that keep that share of
  /// observed valid trajectories repertoire intact.
  size_t suggested_theta = 0;
  Timestamp suggested_eta = 0;
};

/// Computes stats over `set` w.r.t. `graph`. `quantile` controls the
/// suggested θ/η (fraction of trajectories the bounds must cover).
TrajectorySetStats ComputeStats(const TrajectorySet& set,
                                const TransitionGraph& graph,
                                double quantile = 0.99,
                                Timestamp span_bucket = 60);

/// Multi-line human-readable rendering.
std::string DescribeStats(const TrajectorySetStats& stats);

}  // namespace idrepair

#endif  // IDREPAIR_TRAJ_STATS_H_
