#ifndef IDREPAIR_TRAJ_MERGE_H_
#define IDREPAIR_TRAJ_MERGE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "traj/trajectory.h"

namespace idrepair {

/// One element of a chronologically merged record sequence; `source` is the
/// ordinal of the contributing trajectory within the merged group.
struct MergedPoint {
  LocationId loc = kInvalidLocation;
  Timestamp ts = 0;
  uint32_t source = 0;
};

/// Merges the records of several trajectories chronologically (the sequence
/// the cex/jnb/pck predicates operate on). Ties are broken by location, then
/// source ordinal, for determinism; predicates reject equal adjacent
/// timestamps anyway, since an entity cannot be at two places at once.
std::vector<MergedPoint> MergeChronological(
    std::span<const Trajectory* const> trajectories);

/// Convenience overload for two trajectories (the cex predicate case).
std::vector<MergedPoint> MergeChronological(const Trajectory& a,
                                            const Trajectory& b);

/// The join operation of Definition 2.5: rewrites every trajectory's ID to
/// `target_id` and merges all records chronologically into one trajectory.
Trajectory Join(std::span<const Trajectory* const> trajectories,
                std::string target_id);

}  // namespace idrepair

#endif  // IDREPAIR_TRAJ_MERGE_H_
