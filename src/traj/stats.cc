#include "traj/stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace idrepair {

TrajectorySetStats ComputeStats(const TrajectorySet& set,
                                const TransitionGraph& graph,
                                double quantile, Timestamp span_bucket) {
  TrajectorySetStats stats;
  stats.span_bucket = std::max<Timestamp>(1, span_bucket);
  stats.num_trajectories = set.size();
  stats.num_records = set.total_records();
  if (set.empty()) return stats;

  std::vector<size_t> lengths;
  std::vector<Timestamp> spans;
  lengths.reserve(set.size());
  spans.reserve(set.size());
  for (const auto& t : set.trajectories()) {
    if (t.IsValid(graph)) {
      ++stats.num_valid;
    } else {
      ++stats.num_invalid;
    }
    lengths.push_back(t.size());
    spans.push_back(t.TimeSpan());
    ++stats.length_histogram[t.size()];
    ++stats.span_histogram[(t.TimeSpan() / stats.span_bucket) *
                           stats.span_bucket];
  }
  std::sort(lengths.begin(), lengths.end());
  std::sort(spans.begin(), spans.end());
  stats.min_length = lengths.front();
  stats.max_length = lengths.back();
  stats.min_span = spans.front();
  stats.max_span = spans.back();
  double length_sum = 0.0;
  double span_sum = 0.0;
  for (size_t l : lengths) length_sum += static_cast<double>(l);
  for (Timestamp s : spans) span_sum += static_cast<double>(s);
  stats.mean_length = length_sum / static_cast<double>(lengths.size());
  stats.mean_span = span_sum / static_cast<double>(spans.size());

  // Suggested bounds: quantiles over the distribution. A fragment can be
  // shorter than its entity's full trajectory, so practitioners should
  // treat these as a floor; still, a bound below these values provably
  // discards observed behavior.
  double q = std::clamp(quantile, 0.0, 1.0);
  size_t idx = std::min(
      lengths.size() - 1,
      static_cast<size_t>(q * static_cast<double>(lengths.size())));
  stats.suggested_theta = lengths[idx];
  stats.suggested_eta = spans[idx];
  return stats;
}

std::string DescribeStats(const TrajectorySetStats& stats) {
  std::ostringstream out;
  out << "trajectories: " << stats.num_trajectories << " ("
      << stats.num_valid << " valid, " << stats.num_invalid
      << " invalid), records: " << stats.num_records << "\n";
  if (stats.num_trajectories == 0) return out.str();
  out << "length: min " << stats.min_length << ", mean "
      << ToFixed(stats.mean_length, 2) << ", max " << stats.max_length
      << "\n";
  out << "span (s): min " << stats.min_span << ", mean "
      << ToFixed(stats.mean_span, 1) << ", max " << stats.max_span << "\n";
  out << "suggested bounds: theta >= " << stats.suggested_theta
      << ", eta >= " << stats.suggested_eta << "\n";
  out << "length histogram:";
  for (const auto& [len, count] : stats.length_histogram) {
    out << " " << len << ":" << count;
  }
  out << "\n";
  return out.str();
}

}  // namespace idrepair
