#ifndef IDREPAIR_TRAJ_CSV_H_
#define IDREPAIR_TRAJ_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/transition_graph.h"
#include "traj/tracking_record.h"

namespace idrepair {

/// Reads tracking records from CSV lines of the form `id,location,timestamp`
/// (a header line `id,loc,ts` is skipped if present). Location names are
/// resolved against `graph`; unknown names are a NotFound error.
Result<std::vector<TrackingRecord>> ReadRecordsCsv(
    std::istream& in, const TransitionGraph& graph);

/// File-path convenience overload.
Result<std::vector<TrackingRecord>> ReadRecordsCsvFile(
    const std::string& path, const TransitionGraph& graph);

/// Writes records as `id,location,timestamp` with a header line.
Status WriteRecordsCsv(std::ostream& out, const TransitionGraph& graph,
                       const std::vector<TrackingRecord>& records);

/// File-path convenience overload.
Status WriteRecordsCsvFile(const std::string& path,
                           const TransitionGraph& graph,
                           const std::vector<TrackingRecord>& records);

}  // namespace idrepair

#endif  // IDREPAIR_TRAJ_CSV_H_
