#include "traj/trajectory_set.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace idrepair {

TrajectorySet TrajectorySet::FromRecords(
    const std::vector<TrackingRecord>& records) {
  // std::map keeps ID grouping deterministic regardless of input order.
  std::map<std::string, std::vector<TrajectoryPoint>> by_id;
  for (const auto& r : records) {
    by_id[r.id].push_back(TrajectoryPoint{r.loc, r.ts});
  }
  std::vector<Trajectory> trajs;
  trajs.reserve(by_id.size());
  for (auto& [id, points] : by_id) {
    trajs.emplace_back(id, std::move(points));
  }
  std::sort(trajs.begin(), trajs.end(),
            [](const Trajectory& a, const Trajectory& b) {
              return std::forward_as_tuple(a.start_time(), a.id()) <
                     std::forward_as_tuple(b.start_time(), b.id());
            });
  return TrajectorySet(std::move(trajs));
}

TrajectorySet::TrajectorySet(std::vector<Trajectory> trajectories)
    : trajectories_(std::move(trajectories)) {
  for (const auto& t : trajectories_) total_records_ += t.size();
}

std::vector<TrajIndex> TrajectorySet::InvalidTrajectories(
    const TransitionGraph& graph) const {
  std::vector<TrajIndex> out;
  for (TrajIndex i = 0; i < trajectories_.size(); ++i) {
    if (!trajectories_[i].IsValid(graph)) out.push_back(i);
  }
  return out;
}

std::unordered_map<std::string, TrajIndex> TrajectorySet::BuildIdIndex()
    const {
  std::unordered_map<std::string, TrajIndex> index;
  index.reserve(trajectories_.size());
  for (TrajIndex i = 0; i < trajectories_.size(); ++i) {
    index.emplace(trajectories_[i].id(), i);
  }
  return index;
}

}  // namespace idrepair
