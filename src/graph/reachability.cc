#include "graph/reachability.h"

#include <numeric>

namespace idrepair {

ReachabilityMatrix ReachabilityMatrix::Build(const TransitionGraph& graph) {
  size_t n = graph.num_locations();
  std::vector<uint32_t> hops(n * n, kUnreachable);
  for (LocationId u = 0; u < n; ++u) {
    for (LocationId v : graph.OutNeighbors(u)) {
      uint32_t& cell = hops[static_cast<size_t>(u) * n + v];
      cell = std::min<uint32_t>(cell, 1);
    }
  }
  // Floyd–Warshall without zero-initializing the diagonal: hops[i][i] then
  // converges to the shortest cycle length through i.
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      uint32_t ik = hops[i * n + k];
      if (ik == kUnreachable) continue;
      const uint32_t* row_k = &hops[k * n];
      uint32_t* row_i = &hops[i * n];
      for (size_t j = 0; j < n; ++j) {
        if (row_k[j] == kUnreachable) continue;
        uint32_t via = ik + row_k[j];
        if (via < row_i[j]) row_i[j] = via;
      }
    }
  }
  return ReachabilityMatrix(n, std::move(hops));
}

ReachabilityMatrix ReachabilityMatrix::BuildBounded(const TransitionGraph& graph,
                                                    uint32_t max_hops) {
  size_t n = graph.num_locations();
  std::vector<size_t> offsets(n + 1, 0);
  std::vector<LocationId> targets;
  std::vector<uint32_t> ball_hops;
  // Stamped visitation: one mark/dist array reused across sources so each
  // BFS costs O(ball), not O(n).
  std::vector<uint32_t> mark(n, 0);
  std::vector<uint32_t> dist(n, 0);
  std::vector<LocationId> found;
  uint32_t stamp = 0;
  for (LocationId u = 0; u < n; ++u) {
    ++stamp;
    found.clear();
    // The source is deliberately NOT pre-marked: if some walk returns to it
    // within the bound, it enters `found` with its shortest cycle length —
    // preserving the diagonal-as-shortest-cycle semantics of the dense
    // build.
    if (max_hops >= 1) {
      for (LocationId v : graph.OutNeighbors(u)) {
        if (mark[v] != stamp) {
          mark[v] = stamp;
          dist[v] = 1;
          found.push_back(v);
        }
      }
      for (size_t head = 0; head < found.size(); ++head) {
        LocationId v = found[head];
        uint32_t d = dist[v];
        if (d >= max_hops) break;  // BFS order: all later nodes are >= d
        for (LocationId w : graph.OutNeighbors(v)) {
          if (mark[w] != stamp) {
            mark[w] = stamp;
            dist[w] = d + 1;
            found.push_back(w);
          }
        }
      }
    }
    std::sort(found.begin(), found.end());
    for (LocationId v : found) {
      targets.push_back(v);
      ball_hops.push_back(dist[v]);
    }
    offsets[u + 1] = targets.size();
  }
  return ReachabilityMatrix(n, max_hops, std::move(offsets),
                            std::move(targets), std::move(ball_hops));
}

}  // namespace idrepair
