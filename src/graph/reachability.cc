#include "graph/reachability.h"

namespace idrepair {

ReachabilityMatrix ReachabilityMatrix::Build(const TransitionGraph& graph) {
  size_t n = graph.num_locations();
  std::vector<uint32_t> hops(n * n, kUnreachable);
  for (LocationId u = 0; u < n; ++u) {
    for (LocationId v : graph.OutNeighbors(u)) {
      uint32_t& cell = hops[static_cast<size_t>(u) * n + v];
      cell = std::min<uint32_t>(cell, 1);
    }
  }
  // Floyd–Warshall without zero-initializing the diagonal: hops[i][i] then
  // converges to the shortest cycle length through i.
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      uint32_t ik = hops[i * n + k];
      if (ik == kUnreachable) continue;
      const uint32_t* row_k = &hops[k * n];
      uint32_t* row_i = &hops[i * n];
      for (size_t j = 0; j < n; ++j) {
        if (row_k[j] == kUnreachable) continue;
        uint32_t via = ik + row_k[j];
        if (via < row_i[j]) row_i[j] = via;
      }
    }
  }
  return ReachabilityMatrix(n, std::move(hops));
}

}  // namespace idrepair
