#include "graph/paths.h"

namespace idrepair {

namespace {

// Iterative DFS over partial paths; appends completed valid paths to `out`.
Status EnumerateFrom(const TransitionGraph& graph, LocationId start,
                     size_t max_len, size_t max_paths,
                     std::vector<std::vector<LocationId>>* out) {
  std::vector<LocationId> path = {start};
  // Stack of (depth, next-neighbor-index) frames.
  std::vector<size_t> next_index = {0};
  while (!next_index.empty()) {
    size_t depth = next_index.size() - 1;
    LocationId cur = path[depth];
    if (next_index[depth] == 0 && graph.IsExit(cur)) {
      out->push_back(path);
      if (out->size() > max_paths) {
        return Status::OutOfRange("valid path space exceeds max_paths");
      }
    }
    const auto& nbrs = graph.OutNeighbors(cur);
    if (path.size() < max_len && next_index[depth] < nbrs.size()) {
      LocationId nxt = nbrs[next_index[depth]++];
      if (!graph.CanReachExit(nxt)) continue;  // dead branch
      path.push_back(nxt);
      next_index.push_back(0);
    } else {
      path.pop_back();
      next_index.pop_back();
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<LocationId>>> EnumerateValidPaths(
    const TransitionGraph& graph, size_t max_len, size_t max_paths) {
  IDREPAIR_RETURN_NOT_OK(graph.Validate());
  if (max_len == 0) {
    return Status::InvalidArgument("max_len must be positive");
  }
  std::vector<std::vector<LocationId>> out;
  for (LocationId entrance : graph.entrances()) {
    IDREPAIR_RETURN_NOT_OK(
        EnumerateFrom(graph, entrance, max_len, max_paths, &out));
  }
  return out;
}

Result<ValidPathSampler> ValidPathSampler::Create(const TransitionGraph& graph,
                                                  size_t max_len,
                                                  size_t max_paths) {
  auto paths = EnumerateValidPaths(graph, max_len, max_paths);
  if (!paths.ok()) return paths.status();
  if (paths->empty()) {
    return Status::NotFound("graph has no valid path within max_len");
  }
  return ValidPathSampler(std::move(*paths));
}

}  // namespace idrepair
