#ifndef IDREPAIR_GRAPH_REACHABILITY_H_
#define IDREPAIR_GRAPH_REACHABILITY_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/transition_graph.h"
#include "graph/types.h"

namespace idrepair {

/// Shortest hop counts for a transition graph, answering the cex
/// predicate's reachability queries in O(1)/O(log ball) (the preprocessing
/// step of §4.1.1). Two build modes share one query interface:
///
///  * Build — the dense all-pairs Floyd–Warshall matrix, O(|V|^3) time and
///    O(|V|^2) space. Exact for every hop count; the right choice for the
///    paper-scale graphs (tens to hundreds of locations).
///  * BuildBounded — a per-source breadth-first search capped at `max_hops`,
///    stored sparsely (only the vertices inside each hop ball). O(|V|·ball)
///    time and space, which is what makes 10k+-vertex road networks
///    feasible: every production query is Reachable(u, v, θ−1), and for
///    max_hops >= θ−1 the bounded matrix answers it exactly.
///
/// Semantics differ from the textbook matrix in one deliberate way: the
/// diagonal entry Hops(u, u) is the length of the *shortest directed cycle*
/// through u (kUnreachable when none exists), not 0. The cex predicate asks
/// "can a second visit to this location occur later on the same path?", and
/// in an acyclic graph the answer must be no — this is what makes
/// cex(T1, T3) false in Example 3.1 of the paper.
class ReachabilityMatrix {
 public:
  /// Hop count representing "not reachable by any non-empty walk".
  static constexpr uint32_t kUnreachable =
      std::numeric_limits<uint32_t>::max();

  /// Builds the dense matrix for `graph` in O(|V|^3).
  static ReachabilityMatrix Build(const TransitionGraph& graph);

  /// Builds the hop-bounded sparse matrix: Hops(u, v) is exact whenever the
  /// true value is <= `max_hops` and kUnreachable otherwise, so
  /// Reachable(u, v, h) is exact for every h <= `max_hops`.
  static ReachabilityMatrix BuildBounded(const TransitionGraph& graph,
                                         uint32_t max_hops);

  /// Minimum number of edges on a walk from `from` to `to`; for from == to,
  /// the shortest cycle length. kUnreachable if no such walk exists (or, in
  /// bounded mode, exceeds the build bound).
  uint32_t Hops(LocationId from, LocationId to) const {
    if (dense()) return hops_[static_cast<size_t>(from) * n_ + to];
    size_t lo = offsets_[from];
    size_t hi = offsets_[from + 1];
    auto first = targets_.begin() + static_cast<ptrdiff_t>(lo);
    auto last = targets_.begin() + static_cast<ptrdiff_t>(hi);
    auto it = std::lower_bound(first, last, to);
    if (it == last || *it != to) return kUnreachable;
    return ball_hops_[static_cast<size_t>(it - targets_.begin())];
  }

  /// True iff `to` is reachable from `from` by a non-empty walk of at most
  /// `max_hops` edges. In bounded mode `max_hops` must not exceed the build
  /// bound (the answer would be a false negative beyond it).
  bool Reachable(LocationId from, LocationId to, uint32_t max_hops) const {
    assert(dense() || max_hops <= bound_);
    uint32_t h = Hops(from, to);
    return h != kUnreachable && h <= max_hops;
  }

  size_t num_locations() const { return n_; }

  /// True for the dense Floyd–Warshall build (exact at any hop count).
  bool dense() const { return bound_ == kUnreachable; }

  /// The hop cap of a bounded build; kUnreachable for a dense build.
  uint32_t bound() const { return bound_; }

 private:
  ReachabilityMatrix(size_t n, std::vector<uint32_t> hops)
      : n_(n), hops_(std::move(hops)) {}

  ReachabilityMatrix(size_t n, uint32_t bound, std::vector<size_t> offsets,
                     std::vector<LocationId> targets,
                     std::vector<uint32_t> ball_hops)
      : n_(n),
        bound_(bound),
        offsets_(std::move(offsets)),
        targets_(std::move(targets)),
        ball_hops_(std::move(ball_hops)) {}

  size_t n_ = 0;
  uint32_t bound_ = kUnreachable;  // kUnreachable = dense mode
  // Dense mode: row-major n x n hop counts.
  std::vector<uint32_t> hops_;
  // Bounded mode: CSR over hop balls — targets_[offsets_[u]..offsets_[u+1])
  // are the vertices reachable from u within bound_ hops (sorted by id),
  // ball_hops_ the matching hop counts.
  std::vector<size_t> offsets_;
  std::vector<LocationId> targets_;
  std::vector<uint32_t> ball_hops_;
};

}  // namespace idrepair

#endif  // IDREPAIR_GRAPH_REACHABILITY_H_
