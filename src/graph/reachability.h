#ifndef IDREPAIR_GRAPH_REACHABILITY_H_
#define IDREPAIR_GRAPH_REACHABILITY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/transition_graph.h"
#include "graph/types.h"

namespace idrepair {

/// All-pairs shortest hop counts for a transition graph, computed once with
/// Floyd–Warshall (the preprocessing step of §4.1.1) so that the cex
/// predicate answers reachability queries in O(1).
///
/// Semantics differ from the textbook matrix in one deliberate way: the
/// diagonal entry Hops(u, u) is the length of the *shortest directed cycle*
/// through u (kUnreachable when none exists), not 0. The cex predicate asks
/// "can a second visit to this location occur later on the same path?", and
/// in an acyclic graph the answer must be no — this is what makes
/// cex(T1, T3) false in Example 3.1 of the paper.
class ReachabilityMatrix {
 public:
  /// Hop count representing "not reachable by any non-empty walk".
  static constexpr uint32_t kUnreachable =
      std::numeric_limits<uint32_t>::max();

  /// Builds the matrix for `graph` in O(|V|^3).
  static ReachabilityMatrix Build(const TransitionGraph& graph);

  /// Minimum number of edges on a walk from `from` to `to`; for from == to,
  /// the shortest cycle length. kUnreachable if no such walk exists.
  uint32_t Hops(LocationId from, LocationId to) const {
    return hops_[static_cast<size_t>(from) * n_ + to];
  }

  /// True iff `to` is reachable from `from` by a non-empty walk of at most
  /// `max_hops` edges.
  bool Reachable(LocationId from, LocationId to, uint32_t max_hops) const {
    uint32_t h = Hops(from, to);
    return h != kUnreachable && h <= max_hops;
  }

  size_t num_locations() const { return n_; }

 private:
  ReachabilityMatrix(size_t n, std::vector<uint32_t> hops)
      : n_(n), hops_(std::move(hops)) {}

  size_t n_ = 0;
  std::vector<uint32_t> hops_;
};

}  // namespace idrepair

#endif  // IDREPAIR_GRAPH_REACHABILITY_H_
