#ifndef IDREPAIR_GRAPH_PATHS_H_
#define IDREPAIR_GRAPH_PATHS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/transition_graph.h"
#include "graph/types.h"

namespace idrepair {

/// Enumerates valid paths (entrance → edges → exit, Definition 2.2) with at
/// most `max_len` locations, in DFS order. Enumeration stops with an
/// OutOfRange error once more than `max_paths` paths exist, which guards
/// against dense/cyclic graphs whose path space explodes.
Result<std::vector<std::vector<LocationId>>> EnumerateValidPaths(
    const TransitionGraph& graph, size_t max_len, size_t max_paths = 100000);

/// Samples random valid paths for synthetic data generation (§6.1.1 of the
/// paper: "repeatedly sample random valid paths"). Paths of at most
/// `max_len` locations are enumerated once up front and then drawn uniformly.
class ValidPathSampler {
 public:
  /// Fails when the graph has no valid path of length <= max_len or when the
  /// path space exceeds `max_paths`.
  static Result<ValidPathSampler> Create(const TransitionGraph& graph,
                                         size_t max_len,
                                         size_t max_paths = 100000);

  /// Draws one valid path uniformly at random.
  const std::vector<LocationId>& Sample(Rng& rng) const {
    return paths_[rng.UniformIndex(paths_.size())];
  }

  /// Number of distinct valid paths available.
  size_t num_paths() const { return paths_.size(); }

  /// All enumerated paths (useful for tests and exhaustive workloads).
  const std::vector<std::vector<LocationId>>& paths() const { return paths_; }

 private:
  explicit ValidPathSampler(std::vector<std::vector<LocationId>> paths)
      : paths_(std::move(paths)) {}

  std::vector<std::vector<LocationId>> paths_;
};

}  // namespace idrepair

#endif  // IDREPAIR_GRAPH_PATHS_H_
