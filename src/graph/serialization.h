#ifndef IDREPAIR_GRAPH_SERIALIZATION_H_
#define IDREPAIR_GRAPH_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/transition_graph.h"

namespace idrepair {

/// Reads a transition graph from the plain-text format:
///
///   # comment / blank lines ignored
///   location <name>
///   edge <from> <to>
///   entrance <name>
///   exit <name>
///
/// Locations referenced by edge/entrance/exit lines must have been declared
/// first. The graph is validated (non-empty entrance and exit sets) before
/// being returned.
Result<TransitionGraph> ReadTransitionGraph(std::istream& in);

/// File-path convenience overload.
Result<TransitionGraph> ReadTransitionGraphFile(const std::string& path);

/// Writes a graph in the same text format (locations first, then edges,
/// entrances and exits; reading it back reproduces the graph exactly,
/// including ids).
Status WriteTransitionGraph(std::ostream& out, const TransitionGraph& graph);

/// File-path convenience overload.
Status WriteTransitionGraphFile(const std::string& path,
                                const TransitionGraph& graph);

/// Renders the graph in Graphviz DOT, with entrances drawn as double
/// circles and exits as double octagons — handy for documentation and
/// debugging.
std::string ToDot(const TransitionGraph& graph);

}  // namespace idrepair

#endif  // IDREPAIR_GRAPH_SERIALIZATION_H_
