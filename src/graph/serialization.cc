#include "graph/serialization.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "fault/failpoint.h"

namespace idrepair {

namespace {

// Splits a directive line on whitespace into at most 3 tokens.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream iss{std::string(line)};
  std::string tok;
  while (iss >> tok) tokens.push_back(tok);
  return tokens;
}

Status LineError(size_t line_no, const std::string& message) {
  return Status::Corruption("line " + std::to_string(line_no) + ": " +
                            message);
}

}  // namespace

Result<TransitionGraph> ReadTransitionGraph(std::istream& in) {
  IDREPAIR_FAULT_INJECT("io.graph.load");
  TransitionGraph graph;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto tokens = Tokenize(trimmed);
    const std::string& directive = tokens[0];
    if (directive == "location") {
      if (tokens.size() != 2) {
        return LineError(line_no, "location expects one name");
      }
      graph.AddLocation(tokens[1]);
    } else if (directive == "edge") {
      if (tokens.size() != 3) {
        return LineError(line_no, "edge expects two location names");
      }
      Status s = graph.AddEdge(tokens[1], tokens[2]);
      if (!s.ok()) return LineError(line_no, s.ToString());
    } else if (directive == "entrance" || directive == "exit") {
      if (tokens.size() != 2) {
        return LineError(line_no, directive + " expects one location name");
      }
      auto loc = graph.FindLocation(tokens[1]);
      if (!loc) {
        return LineError(line_no, "unknown location '" + tokens[1] + "'");
      }
      Status s = directive == "entrance" ? graph.MarkEntrance(*loc)
                                         : graph.MarkExit(*loc);
      if (!s.ok()) return LineError(line_no, s.ToString());
    } else {
      return LineError(line_no, "unknown directive '" + directive + "'");
    }
  }
  IDREPAIR_RETURN_NOT_OK(graph.Validate());
  return graph;
}

Result<TransitionGraph> ReadTransitionGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadTransitionGraph(in);
}

Status WriteTransitionGraph(std::ostream& out, const TransitionGraph& graph) {
  IDREPAIR_FAULT_INJECT("io.graph.save");
  out << "# transition graph: " << graph.num_locations() << " locations, "
      << graph.num_edges() << " edges\n";
  for (LocationId v = 0; v < graph.num_locations(); ++v) {
    out << "location " << graph.LocationName(v) << "\n";
  }
  for (LocationId u = 0; u < graph.num_locations(); ++u) {
    for (LocationId v : graph.OutNeighbors(u)) {
      out << "edge " << graph.LocationName(u) << " " << graph.LocationName(v)
          << "\n";
    }
  }
  for (LocationId v : graph.entrances()) {
    out << "entrance " << graph.LocationName(v) << "\n";
  }
  for (LocationId v : graph.exits()) {
    out << "exit " << graph.LocationName(v) << "\n";
  }
  if (!out) return Status::IoError("write failed");
  return Status::OK();
}

Status WriteTransitionGraphFile(const std::string& path,
                                const TransitionGraph& graph) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  return WriteTransitionGraph(out, graph);
}

std::string ToDot(const TransitionGraph& graph) {
  std::ostringstream out;
  out << "digraph transition_graph {\n  rankdir=LR;\n";
  for (LocationId v = 0; v < graph.num_locations(); ++v) {
    out << "  \"" << graph.LocationName(v) << "\"";
    if (graph.IsEntrance(v)) {
      out << " [shape=doublecircle]";
    } else if (graph.IsExit(v)) {
      out << " [shape=doubleoctagon]";
    } else {
      out << " [shape=circle]";
    }
    out << ";\n";
  }
  for (LocationId u = 0; u < graph.num_locations(); ++u) {
    for (LocationId v : graph.OutNeighbors(u)) {
      out << "  \"" << graph.LocationName(u) << "\" -> \""
          << graph.LocationName(v) << "\";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace idrepair
