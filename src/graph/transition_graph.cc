#include "graph/transition_graph.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace idrepair {

TransitionGraph::TransitionGraph(const TransitionGraph& other)
    : names_(other.names_),
      name_to_id_(other.name_to_id_),
      out_(other.out_),
      in_(other.in_),
      is_entrance_(other.is_entrance_),
      is_exit_(other.is_exit_),
      entrances_(other.entrances_),
      exits_(other.exits_),
      num_edges_(other.num_edges_),
      can_reach_exit_(other.can_reach_exit_),
      exit_reach_dirty_(
          other.exit_reach_dirty_.load(std::memory_order_acquire)),
      edge_bits_(other.edge_bits_),
      matrix_stride_(other.matrix_stride_),
      compact_matrix_(other.compact_matrix_),
      compact_matrix_dirty_(
          other.compact_matrix_dirty_.load(std::memory_order_acquire)) {}

TransitionGraph& TransitionGraph::operator=(const TransitionGraph& other) {
  if (this == &other) return *this;
  names_ = other.names_;
  name_to_id_ = other.name_to_id_;
  out_ = other.out_;
  in_ = other.in_;
  is_entrance_ = other.is_entrance_;
  is_exit_ = other.is_exit_;
  entrances_ = other.entrances_;
  exits_ = other.exits_;
  num_edges_ = other.num_edges_;
  can_reach_exit_ = other.can_reach_exit_;
  exit_reach_dirty_.store(
      other.exit_reach_dirty_.load(std::memory_order_acquire),
      std::memory_order_release);
  edge_bits_ = other.edge_bits_;
  matrix_stride_ = other.matrix_stride_;
  compact_matrix_ = other.compact_matrix_;
  compact_matrix_dirty_.store(
      other.compact_matrix_dirty_.load(std::memory_order_acquire),
      std::memory_order_release);
  return *this;
}

TransitionGraph::TransitionGraph(TransitionGraph&& other) noexcept
    : names_(std::move(other.names_)),
      name_to_id_(std::move(other.name_to_id_)),
      out_(std::move(other.out_)),
      in_(std::move(other.in_)),
      is_entrance_(std::move(other.is_entrance_)),
      is_exit_(std::move(other.is_exit_)),
      entrances_(std::move(other.entrances_)),
      exits_(std::move(other.exits_)),
      num_edges_(other.num_edges_),
      can_reach_exit_(std::move(other.can_reach_exit_)),
      exit_reach_dirty_(
          other.exit_reach_dirty_.load(std::memory_order_acquire)),
      edge_bits_(std::move(other.edge_bits_)),
      matrix_stride_(other.matrix_stride_),
      compact_matrix_(std::move(other.compact_matrix_)),
      compact_matrix_dirty_(
          other.compact_matrix_dirty_.load(std::memory_order_acquire)) {}

TransitionGraph& TransitionGraph::operator=(TransitionGraph&& other) noexcept {
  if (this == &other) return *this;
  names_ = std::move(other.names_);
  name_to_id_ = std::move(other.name_to_id_);
  out_ = std::move(other.out_);
  in_ = std::move(other.in_);
  is_entrance_ = std::move(other.is_entrance_);
  is_exit_ = std::move(other.is_exit_);
  entrances_ = std::move(other.entrances_);
  exits_ = std::move(other.exits_);
  num_edges_ = other.num_edges_;
  can_reach_exit_ = std::move(other.can_reach_exit_);
  exit_reach_dirty_.store(
      other.exit_reach_dirty_.load(std::memory_order_acquire),
      std::memory_order_release);
  edge_bits_ = std::move(other.edge_bits_);
  matrix_stride_ = other.matrix_stride_;
  compact_matrix_ = std::move(other.compact_matrix_);
  compact_matrix_dirty_.store(
      other.compact_matrix_dirty_.load(std::memory_order_acquire),
      std::memory_order_release);
  return *this;
}

LocationId TransitionGraph::AddLocation(std::string name) {
  auto it = name_to_id_.find(name);
  if (it != name_to_id_.end()) return it->second;
  LocationId id = static_cast<LocationId>(names_.size());
  name_to_id_.emplace(name, id);
  names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  is_entrance_.push_back(false);
  is_exit_.push_back(false);
  exit_reach_dirty_.store(true, std::memory_order_relaxed);
  compact_matrix_dirty_.store(true, std::memory_order_relaxed);
  // The stride grows geometrically, so the O(stride^2) remap amortizes to
  // O(1) per insertion — city-scale generators add tens of thousands of
  // locations, and a compact remap per insertion would be cubic overall.
  if (names_.size() > matrix_stride_) GrowMatrixStride();
  return id;
}

void TransitionGraph::GrowMatrixStride() {
  size_t stride = std::max<size_t>(64, matrix_stride_ * 2);
  stride = std::max(stride, names_.size());
  // Rebuilding from the adjacency lists is O(stride^2 / 64 + E) — cheaper
  // and simpler than remapping bit rows between layouts.
  DynamicBitset grown(stride * stride);
  for (size_t u = 0; u < out_.size(); ++u) {
    for (LocationId v : out_[u]) grown.Set(u * stride + v);
  }
  edge_bits_ = std::move(grown);
  matrix_stride_ = stride;
}

Status TransitionGraph::AddEdge(LocationId from, LocationId to) {
  if (from >= num_locations() || to >= num_locations()) {
    return Status::InvalidArgument("AddEdge: location id out of range");
  }
  size_t cell = static_cast<size_t>(from) * matrix_stride_ + to;
  if (edge_bits_.Test(cell)) return Status::OK();  // idempotent
  edge_bits_.Set(cell);
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++num_edges_;
  exit_reach_dirty_.store(true, std::memory_order_relaxed);
  compact_matrix_dirty_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status TransitionGraph::AddEdge(std::string_view from, std::string_view to) {
  auto f = FindLocation(from);
  auto t = FindLocation(to);
  if (!f || !t) {
    return Status::NotFound("AddEdge: unknown location name");
  }
  return AddEdge(*f, *t);
}

Status TransitionGraph::MarkEntrance(LocationId loc) {
  if (loc >= num_locations()) {
    return Status::InvalidArgument("MarkEntrance: location id out of range");
  }
  if (!is_entrance_[loc]) {
    is_entrance_[loc] = true;
    entrances_.push_back(loc);
  }
  return Status::OK();
}

Status TransitionGraph::MarkExit(LocationId loc) {
  if (loc >= num_locations()) {
    return Status::InvalidArgument("MarkExit: location id out of range");
  }
  if (!is_exit_[loc]) {
    is_exit_[loc] = true;
    exits_.push_back(loc);
    exit_reach_dirty_.store(true, std::memory_order_relaxed);
  }
  return Status::OK();
}

bool TransitionGraph::HasEdge(LocationId from, LocationId to) const {
  if (from >= num_locations() || to >= num_locations()) return false;
  return edge_bits_.Test(static_cast<size_t>(from) * matrix_stride_ + to);
}

const DynamicBitset& TransitionGraph::EdgeMatrix() const {
  // Same double-checked pattern as CanReachExit: the acquire load pairs
  // with the release store in RebuildCompactMatrix.
  if (compact_matrix_dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(compact_matrix_mutex_);
    if (compact_matrix_dirty_.load(std::memory_order_relaxed)) {
      RebuildCompactMatrix();
    }
  }
  return compact_matrix_;
}

void TransitionGraph::RebuildCompactMatrix() const {
  size_t n = num_locations();
  compact_matrix_.Assign(n * n, false);
  for (size_t u = 0; u < n; ++u) {
    for (LocationId v : out_[u]) compact_matrix_.Set(u * n + v);
  }
  compact_matrix_dirty_.store(false, std::memory_order_release);
}

std::optional<LocationId> TransitionGraph::FindLocation(
    std::string_view name) const {
  auto it = name_to_id_.find(std::string(name));
  if (it == name_to_id_.end()) return std::nullopt;
  return it->second;
}

bool TransitionGraph::IsValidPath(std::span<const LocationId> path) const {
  if (path.empty()) return false;
  if (path.front() >= num_locations() || !is_entrance_[path.front()]) {
    return false;
  }
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (!HasEdge(path[i], path[i + 1])) return false;
  }
  return path.back() < num_locations() && is_exit_[path.back()];
}

bool TransitionGraph::IsValidPathPrefix(
    std::span<const LocationId> path) const {
  if (path.empty()) return false;
  if (path.front() >= num_locations() || !is_entrance_[path.front()]) {
    return false;
  }
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (!HasEdge(path[i], path[i + 1])) return false;
  }
  // A completion to a valid path must exist from the last location.
  return path.back() < num_locations() && CanReachExit(path.back());
}

bool TransitionGraph::CanReachExit(LocationId loc) const {
  // Double-checked rebuild: the acquire load pairs with the release store
  // at the end of RecomputeExitReachability, so a reader that sees the flag
  // clear also sees the fully built cache. Racing dirty readers serialize
  // through the mutex and the winner rebuilds once.
  if (exit_reach_dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(exit_reach_mutex_);
    if (exit_reach_dirty_.load(std::memory_order_relaxed)) {
      RecomputeExitReachability();
    }
  }
  return loc < can_reach_exit_.size() && can_reach_exit_.Test(loc);
}

void TransitionGraph::RecomputeExitReachability() const {
  size_t n = num_locations();
  can_reach_exit_.Assign(n, false);
  std::deque<LocationId> queue;
  for (LocationId e : exits_) {
    can_reach_exit_.Set(e);
    queue.push_back(e);
  }
  // Reverse BFS from the exit set.
  while (!queue.empty()) {
    LocationId v = queue.front();
    queue.pop_front();
    for (LocationId u : in_[v]) {
      if (!can_reach_exit_.Test(u)) {
        can_reach_exit_.Set(u);
        queue.push_back(u);
      }
    }
  }
  exit_reach_dirty_.store(false, std::memory_order_release);
}

Status TransitionGraph::Validate() const {
  if (num_locations() == 0) {
    return Status::InvalidArgument("transition graph has no locations");
  }
  if (entrances_.empty()) {
    return Status::InvalidArgument("transition graph has no entrance");
  }
  if (exits_.empty()) {
    return Status::InvalidArgument("transition graph has no exit");
  }
  return Status::OK();
}

}  // namespace idrepair
