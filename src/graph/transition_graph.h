#ifndef IDREPAIR_GRAPH_TRANSITION_GRAPH_H_
#define IDREPAIR_GRAPH_TRANSITION_GRAPH_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/span.h"
#include "common/status.h"
#include "graph/types.h"

namespace idrepair {

/// A transition graph Gt = (V, E, I, O): a directed graph whose vertices are
/// capture locations, whose edges are feasible direct moves, and whose
/// designated entrance (I) / exit (O) locations bound where entities may
/// enter or leave the area of interest (Definition 2.1 of the paper).
///
/// A location sequence is a *valid path* iff it starts at an entrance,
/// follows edges, and ends at an exit (Definition 2.2).
class TransitionGraph {
 public:
  TransitionGraph() = default;

  // The reachability cache carries a mutex and an atomic dirty flag, so the
  // compiler-generated copies are unavailable; these hand-written ones copy
  // the graph data, snapshot the flag, and give the destination a fresh
  // mutex. Copying/moving while another thread uses the source is not
  // supported (the usual single-writer rule for mutations).
  TransitionGraph(const TransitionGraph& other);
  TransitionGraph& operator=(const TransitionGraph& other);
  TransitionGraph(TransitionGraph&& other) noexcept;
  TransitionGraph& operator=(TransitionGraph&& other) noexcept;

  /// Adds a location with a unique display name and returns its dense id.
  /// Adding a name that already exists returns the existing id.
  LocationId AddLocation(std::string name);

  /// Adds the directed edge (from, to). Idempotent. Self-loops are permitted
  /// (a device may capture the same entity twice in place) but none of the
  /// bundled generators create them.
  Status AddEdge(LocationId from, LocationId to);

  /// Name-based convenience overload; both locations must already exist.
  Status AddEdge(std::string_view from, std::string_view to);

  /// Marks a location as an entrance (member of I).
  Status MarkEntrance(LocationId loc);
  /// Marks a location as an exit (member of O).
  Status MarkExit(LocationId loc);

  size_t num_locations() const { return out_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// True iff the directed edge (from, to) exists.
  bool HasEdge(LocationId from, LocationId to) const;

  /// Out-neighbors of `loc` in insertion order. View into graph-owned
  /// storage; valid until the next AddLocation/AddEdge (DESIGN.md §9).
  Span<const LocationId> OutNeighbors(LocationId loc) const {
    return Span<const LocationId>(out_[loc]);
  }
  /// In-neighbors of `loc` in insertion order (same lifetime rule).
  Span<const LocationId> InNeighbors(LocationId loc) const {
    return Span<const LocationId>(in_[loc]);
  }

  bool IsEntrance(LocationId loc) const { return is_entrance_[loc]; }
  bool IsExit(LocationId loc) const { return is_exit_[loc]; }

  /// All entrance locations, in marking order.
  const std::vector<LocationId>& entrances() const { return entrances_; }
  /// All exit locations, in marking order.
  const std::vector<LocationId>& exits() const { return exits_; }

  /// Display name of a location id.
  const std::string& LocationName(LocationId loc) const {
    return names_[loc];
  }

  /// Looks up a location by display name.
  std::optional<LocationId> FindLocation(std::string_view name) const;

  /// True iff `path` is a valid path w.r.t. this graph: non-empty, starts at
  /// an entrance, every consecutive pair is an edge, ends at an exit
  /// (Definition 2.2).
  bool IsValidPath(std::span<const LocationId> path) const;

  /// True iff `path` is a prefix of some valid path: non-empty, starts at an
  /// entrance, every consecutive pair is an edge, and a (possibly empty)
  /// suffix reaching an exit exists. Used by the pck predicate (§5.2).
  bool IsValidPathPrefix(std::span<const LocationId> path) const;

  /// True iff some exit is reachable from `loc` (including loc itself being
  /// an exit). Amortized O(1): the reachability set is cached and rebuilt
  /// after mutations. Thread-safe for concurrent const callers: the lazy
  /// rebuild is guarded by a mutex with a double-checked atomic dirty flag,
  /// so racing readers either see the published cache or serialize through
  /// one rebuild. (Mutations remain single-threaded, like all non-const
  /// methods.)
  bool CanReachExit(LocationId loc) const;

  /// Checks structural sanity: at least one location, entrance and exit sets
  /// non-empty.
  Status Validate() const;

  /// The dense edge-membership matrix, bit (from * n + to) set iff the edge
  /// exists. A pure function of the edge set — the snapshot format stores
  /// it as its own section and cross-checks it against the matrix rebuilt
  /// from the edge list on load, catching payload tampering that a file
  /// checksum alone cannot attribute.
  ///
  /// Lazily rebuilt from the adjacency lists (internal edge membership uses
  /// a grown row stride, so this compact layout is a derived cache). The
  /// returned reference is valid until the next mutation; the rebuild is
  /// mutex-guarded, so concurrent const callers are safe.
  const DynamicBitset& EdgeMatrix() const;

  /// Materializes the lazily rebuilt caches now, so the sharing point is
  /// explicit and no shard ever waits on the rebuild mutex. Concurrent
  /// const readers are safe even without this call (CanReachExit guards its
  /// rebuild), but the parallel engines still front-load it before
  /// dispatch.
  void PrepareForConcurrentUse() const {
    if (num_locations() > 0) CanReachExit(0);
  }

 private:
  void RecomputeExitReachability() const;
  void GrowMatrixStride();
  void RebuildCompactMatrix() const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, LocationId> name_to_id_;
  std::vector<std::vector<LocationId>> out_;
  std::vector<std::vector<LocationId>> in_;
  std::vector<bool> is_entrance_;
  std::vector<bool> is_exit_;
  std::vector<LocationId> entrances_;
  std::vector<LocationId> exits_;
  size_t num_edges_ = 0;

  // Lazily rebuilt caches (mutable: logically const accessors). The dirty
  // flag is atomic and the rebuild itself runs under exit_reach_mutex_, so
  // CanReachExit is safe from concurrent const readers; see the accessor
  // comment.
  mutable DynamicBitset can_reach_exit_;
  mutable std::atomic<bool> exit_reach_dirty_{true};
  mutable std::mutex exit_reach_mutex_;

  // Dense edge membership for O(1) HasEdge, packed 1 bit per pair: n^2
  // bits instead of n^2 bytes, so the row scans of IsValidPath stay in
  // cache even for graphs with a few thousand locations. Rows are laid out
  // with a geometrically grown stride (cell = from * matrix_stride_ + to)
  // so AddLocation is amortized O(1); remapping a compact n x n matrix on
  // every insertion made building a 10k-vertex road network cubic in n.
  DynamicBitset edge_bits_;
  size_t matrix_stride_ = 0;

  // The compact (from * n + to) matrix EdgeMatrix() exposes, derived from
  // the adjacency lists on demand (same double-checked pattern as the
  // exit-reach cache).
  mutable DynamicBitset compact_matrix_;
  mutable std::atomic<bool> compact_matrix_dirty_{true};
  mutable std::mutex compact_matrix_mutex_;
};

}  // namespace idrepair

#endif  // IDREPAIR_GRAPH_TRANSITION_GRAPH_H_
