#ifndef IDREPAIR_GRAPH_GENERATORS_H_
#define IDREPAIR_GRAPH_GENERATORS_H_

#include <cstddef>

#include "common/rng.h"
#include "graph/transition_graph.h"

namespace idrepair {

/// The running-example transition graph of Figure 1(b): locations A..E,
/// edges A->B, B->C, B->D, C->D, D->E, entrances {A, C}, exit {E}.
TransitionGraph MakePaperExampleGraph();

/// A stand-in for the real-dataset transition graph of Figure 9(b)
/// (see DESIGN.md §5): locations A..D, edges A->B, B->C, B->D, C->D,
/// entrances {A, C}, exit {D}. Valid paths have 2–4 locations, matching the
/// real dataset's ~2.9 records/trajectory and default θ=4.
TransitionGraph MakeRealLikeGraph();

/// A simple chain loc1 -> loc2 -> ... -> locN with entrance {loc1} and exit
/// {locN}; the base graph of the §6.3.1 experiments (Figure 11).
TransitionGraph MakeChainGraph(size_t num_locations);

/// Randomly adds `count` distinct forward "shortcut" edges (i -> j with
/// i < j, skipping existing edges) to `graph`, increasing its density as in
/// the Figure 11(b) experiment. Forward-only edges keep the valid-path space
/// finite. Returns the number of edges actually added (the graph may
/// saturate).
size_t AddRandomForwardEdges(TransitionGraph& graph, size_t count, Rng& rng);

/// Randomly adds `count` distinct directed edges (any direction, no
/// self-loops, skipping existing edges) — the §6.3.1 density protocol.
/// Backward edges create cycles, so valid paths may revisit locations;
/// callers should keep path enumeration bounded by a max length. Returns
/// the number of edges actually added.
size_t AddRandomEdges(TransitionGraph& graph, size_t count, Rng& rng);

/// A planar directed grid road network standing in for the SNAP California
/// road-network sample (DESIGN.md §5): `rows` x `cols` intersections with
/// rightward and downward streets plus every second diagonal. Entrances are
/// the west-column vertices, exits the east-column vertices.
TransitionGraph MakeGridNetwork(size_t rows, size_t cols);

}  // namespace idrepair

#endif  // IDREPAIR_GRAPH_GENERATORS_H_
