#include "graph/generators.h"

#include <string>
#include <utility>
#include <vector>

namespace idrepair {

TransitionGraph MakePaperExampleGraph() {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  LocationId c = g.AddLocation("C");
  LocationId d = g.AddLocation("D");
  LocationId e = g.AddLocation("E");
  (void)g.AddEdge(a, b);
  (void)g.AddEdge(b, c);
  (void)g.AddEdge(b, d);
  (void)g.AddEdge(c, d);
  (void)g.AddEdge(d, e);
  (void)g.MarkEntrance(a);
  (void)g.MarkEntrance(c);
  (void)g.MarkExit(e);
  return g;
}

TransitionGraph MakeRealLikeGraph() {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  LocationId c = g.AddLocation("C");
  LocationId d = g.AddLocation("D");
  (void)g.AddEdge(a, b);
  (void)g.AddEdge(b, c);
  (void)g.AddEdge(b, d);
  (void)g.AddEdge(c, d);
  (void)g.MarkEntrance(a);
  (void)g.MarkEntrance(c);
  (void)g.MarkExit(d);
  return g;
}

TransitionGraph MakeChainGraph(size_t num_locations) {
  TransitionGraph g;
  std::vector<LocationId> ids;
  ids.reserve(num_locations);
  for (size_t i = 0; i < num_locations; ++i) {
    ids.push_back(g.AddLocation("loc" + std::to_string(i + 1)));
  }
  for (size_t i = 0; i + 1 < num_locations; ++i) {
    (void)g.AddEdge(ids[i], ids[i + 1]);
  }
  if (!ids.empty()) {
    (void)g.MarkEntrance(ids.front());
    (void)g.MarkExit(ids.back());
  }
  return g;
}

size_t AddRandomForwardEdges(TransitionGraph& graph, size_t count, Rng& rng) {
  size_t n = graph.num_locations();
  std::vector<std::pair<LocationId, LocationId>> candidates;
  for (LocationId i = 0; i < n; ++i) {
    for (LocationId j = i + 1; j < n; ++j) {
      if (!graph.HasEdge(i, j)) candidates.emplace_back(i, j);
    }
  }
  rng.Shuffle(candidates.begin(), candidates.end());
  size_t added = 0;
  for (const auto& [u, v] : candidates) {
    if (added == count) break;
    if (graph.AddEdge(u, v).ok()) ++added;
  }
  return added;
}

size_t AddRandomEdges(TransitionGraph& graph, size_t count, Rng& rng) {
  size_t n = graph.num_locations();
  std::vector<std::pair<LocationId, LocationId>> candidates;
  for (LocationId i = 0; i < n; ++i) {
    for (LocationId j = 0; j < n; ++j) {
      if (i != j && !graph.HasEdge(i, j)) candidates.emplace_back(i, j);
    }
  }
  rng.Shuffle(candidates.begin(), candidates.end());
  size_t added = 0;
  for (const auto& [u, v] : candidates) {
    if (added == count) break;
    if (graph.AddEdge(u, v).ok()) ++added;
  }
  return added;
}

TransitionGraph MakeGridNetwork(size_t rows, size_t cols) {
  TransitionGraph g;
  std::vector<std::vector<LocationId>> id(rows, std::vector<LocationId>(cols));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      std::string name = "x";
      name += std::to_string(r);
      name += 'y';
      name += std::to_string(c);
      id[r][c] = g.AddLocation(std::move(name));
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) (void)g.AddEdge(id[r][c], id[r][c + 1]);
      if (r + 1 < rows) (void)g.AddEdge(id[r][c], id[r + 1][c]);
      // Every second intersection also offers a diagonal street.
      if (c + 1 < cols && r + 1 < rows && (r + c) % 2 == 0) {
        (void)g.AddEdge(id[r][c], id[r + 1][c + 1]);
      }
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    (void)g.MarkEntrance(id[r][0]);
    (void)g.MarkExit(id[r][cols - 1]);
  }
  return g;
}

}  // namespace idrepair
