#ifndef IDREPAIR_GRAPH_TYPES_H_
#define IDREPAIR_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace idrepair {

/// Dense identifier of a location (a vertex of the transition graph, i.e. a
/// surveillance capture site). Assigned by TransitionGraph::AddLocation.
using LocationId = uint32_t;

/// Sentinel for "no location".
inline constexpr LocationId kInvalidLocation =
    std::numeric_limits<LocationId>::max();

}  // namespace idrepair

#endif  // IDREPAIR_GRAPH_TYPES_H_
