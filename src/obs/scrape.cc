#include "obs/scrape.h"

#include <chrono>
#include <fstream>
#include <utility>

#include "obs/metrics.h"

namespace idrepair {
namespace obs {

MetricsScraper::MetricsScraper(Options options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<MetricsScraper>> MetricsScraper::Start(
    Options options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("metrics scraper: path must be non-empty");
  }
  if (options.interval_ms <= 0) {
    return Status::InvalidArgument(
        "metrics scraper: interval_ms must be >= 1");
  }
  {
    std::ofstream probe(options.path, std::ios::app);
    if (!probe) {
      return Status::IoError("metrics scraper: cannot open '" + options.path +
                             "' for append");
    }
  }
  std::unique_ptr<MetricsScraper> scraper(
      new MetricsScraper(std::move(options)));
  scraper->thread_ = std::thread([s = scraper.get()] { s->Run(); });
  return scraper;
}

MetricsScraper::~MetricsScraper() { Stop(); }

void MetricsScraper::Stop() {
  bool expected = false;
  if (!stop_initiated_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Status MetricsScraper::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void MetricsScraper::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    bool woken = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this] { return stop_requested_; });
    if (woken) break;
    lock.unlock();
    ScrapeOnce();
    lock.lock();
  }
  lock.unlock();
  // The final scrape: every run ends with a complete exposition on disk.
  ScrapeOnce();
}

void MetricsScraper::ScrapeOnce() {
  uint64_t seq = scrapes_.load(std::memory_order_relaxed) + 1;
  std::string body =
      MetricsRegistry::Global().RenderPrometheus(options_.include_runtime);
  std::ofstream out(options_.path, std::ios::app);
  if (!out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (last_error_.ok()) {
      last_error_ =
          Status::IoError("metrics scraper: append to '" + options_.path +
                          "' failed");
    }
    return;
  }
  out << "# idrepair scrape seq=" << seq << "\n" << body << "\n";
  scrapes_.store(seq, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace idrepair
