#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace idrepair {
namespace obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  size_t n = bounds_.size() + 1;  // +Inf bucket
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<uint64_t>[]>(n);
    for (size_t b = 0; b < n; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  // lower_bound: first bound >= value, i.e. bounds are *inclusive* upper
  // bounds (Prometheus `le` semantics — a value equal to a bound belongs
  // to that bound's bucket).
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& s = shards_[ThreadShard()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.sum_ticks.fetch_add(static_cast<int64_t>(std::llround(value *
                                                          kTicksPerUnit)),
                        std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < merged.size(); ++b) {
      merged[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  int64_t ticks = 0;
  for (const Shard& s : shards_) {
    ticks += s.sum_ticks.load(std::memory_order_relaxed);
  }
  return static_cast<double>(ticks) / kTicksPerUnit;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (size_t b = 0; b < bounds_.size() + 1; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
    s.sum_ticks.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> DefaultLatencyBuckets() {
  // 10 µs … ~84 s in ×2 steps: 24 buckets cover everything from a stolen
  // micro-task to a whole-dataset repair.
  return ExponentialBuckets(1e-5, 2.0, 24);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     Stability stability,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.type = MetricSnapshot::Type::kCounter;
    entry.stability = stability;
    entry.help = help;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(entry)).first;
  }
  if (it->second.type != MetricSnapshot::Type::kCounter) {
    assert(false && "metric re-registered as a different type");
    orphan_counters_.push_back(std::make_unique<Counter>());
    return orphan_counters_.back().get();
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Stability stability,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.type = MetricSnapshot::Type::kGauge;
    entry.stability = stability;
    entry.help = help;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(entry)).first;
  }
  if (it->second.type != MetricSnapshot::Type::kGauge) {
    assert(false && "metric re-registered as a different type");
    orphan_gauges_.push_back(std::make_unique<Gauge>());
    return orphan_gauges_.back().get();
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Stability stability,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.type = MetricSnapshot::Type::kHistogram;
    entry.stability = stability;
    entry.help = help;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(name, std::move(entry)).first;
  }
  if (it->second.type != MetricSnapshot::Type::kHistogram) {
    assert(false && "metric re-registered as a different type");
    orphan_histograms_.push_back(
        std::make_unique<Histogram>(std::move(bounds)));
    return orphan_histograms_.back().get();
  }
  return it->second.histogram.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.type) {
      case MetricSnapshot::Type::kCounter:
        entry.counter->Reset();
        break;
      case MetricSnapshot::Type::kGauge:
        entry.gauge->Reset();
        break;
      case MetricSnapshot::Type::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

std::vector<MetricSnapshot> MetricsRegistry::Collect(
    bool include_runtime) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    if (!include_runtime && entry.stability == Stability::kRuntime) continue;
    MetricSnapshot snap;
    snap.name = name;
    snap.help = entry.help;
    snap.type = entry.type;
    snap.stability = entry.stability;
    switch (entry.type) {
      case MetricSnapshot::Type::kCounter:
        snap.counter_value = entry.counter->Value();
        break;
      case MetricSnapshot::Type::kGauge:
        snap.gauge_value = entry.gauge->Value();
        break;
      case MetricSnapshot::Type::kHistogram:
        snap.bounds = entry.histogram->bounds();
        snap.bucket_counts = entry.histogram->BucketCounts();
        for (uint64_t c : snap.bucket_counts) snap.total_count += c;
        snap.sum = entry.histogram->Sum();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

namespace {

/// Renders a histogram bound for a `le` label: fixed 9-decimal, trailing
/// zeros trimmed ("0.00016384" not "1.6384e-04"), so the output is
/// platform-independent and stable.
std::string FormatBound(double bound) {
  std::string s = ToFixed(bound, 9);
  size_t last = s.find_last_not_of('0');
  if (last != std::string::npos && s[last] == '.') --last;
  return s.substr(0, last + 1);
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus(bool include_runtime) const {
  std::ostringstream out;
  for (const MetricSnapshot& m : Collect(include_runtime)) {
    if (!m.help.empty()) {
      out << "# HELP " << m.name << " " << m.help << "\n";
    }
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        out << "# TYPE " << m.name << " counter\n";
        out << m.name << " " << m.counter_value << "\n";
        break;
      case MetricSnapshot::Type::kGauge:
        out << "# TYPE " << m.name << " gauge\n";
        out << m.name << " " << m.gauge_value << "\n";
        break;
      case MetricSnapshot::Type::kHistogram: {
        out << "# TYPE " << m.name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
          cumulative += m.bucket_counts[b];
          std::string le =
              b < m.bounds.size() ? FormatBound(m.bounds[b]) : "+Inf";
          out << m.name << "_bucket{le=\"" << le << "\"} " << cumulative
              << "\n";
        }
        out << m.name << "_sum " << FormatBound(m.sum) << "\n";
        out << m.name << "_count " << cumulative << "\n";
        break;
      }
    }
  }
  return out.str();
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace obs
}  // namespace idrepair
