#ifndef IDREPAIR_OBS_SCRAPE_H_
#define IDREPAIR_OBS_SCRAPE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace idrepair {
namespace obs {

/// A background thread that periodically appends the global registry's
/// Prometheus rendering to a file — the `--metrics-interval` follow-up from
/// the ROADMAP. Each scrape is one self-delimiting block:
///
///   # idrepair scrape seq=<n>
///   <RenderPrometheus output>
///   <blank line>
///
/// so a long-running daemon's metrics file is a time series of expositions
/// rather than a single end-of-run snapshot. Stop() (and the destructor)
/// always writes one final scrape, so even a run shorter than the interval
/// leaves a complete exposition behind.
class MetricsScraper {
 public:
  struct Options {
    /// File the scrapes are appended to. Required.
    std::string path;
    /// Scrape period, milliseconds; must be >= 1 (an interval of 0 means
    /// "no periodic scraping" and callers simply do not start a scraper).
    int64_t interval_ms = 1000;
    /// Forwarded to MetricsRegistry::RenderPrometheus.
    bool include_runtime = true;
  };

  /// Validates options, verifies the file is appendable (fail fast at
  /// startup, not on the first timer tick), and starts the scrape thread.
  static Result<std::unique_ptr<MetricsScraper>> Start(Options options);

  /// Stops the thread and writes the final scrape. Idempotent.
  void Stop();

  ~MetricsScraper();

  MetricsScraper(const MetricsScraper&) = delete;
  MetricsScraper& operator=(const MetricsScraper&) = delete;

  /// Scrapes written so far (periodic + final).
  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

  /// First write error observed, if any (the scraper keeps trying; a full
  /// disk mid-run should not kill a daemon).
  Status last_error() const;

 private:
  explicit MetricsScraper(Options options);

  void Run();
  void ScrapeOnce();

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;       // guarded by mu_, read by the thread
  std::atomic<bool> stop_initiated_{false};
  Status last_error_;  // guarded by mu_
  std::atomic<uint64_t> scrapes_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace idrepair

#endif  // IDREPAIR_OBS_SCRAPE_H_
