#ifndef IDREPAIR_OBS_OBS_H_
#define IDREPAIR_OBS_OBS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace idrepair {

/// Observability knobs, embedded in RepairOptions (RepairOptions::obs) so
/// every engine (batch, partitioned, streaming) can switch instrumentation
/// on without separate plumbing. Observability never changes what a repair
/// computes — only what is recorded about it.
struct ObsOptions {
  /// Master switch. Off (the default) costs one relaxed atomic load and a
  /// predictable branch per instrumentation site — see the overhead
  /// contract in DESIGN.md §"Observability".
  bool enabled = false;

  /// Capacity, in events, of each per-thread trace ring buffer. Applies to
  /// ring buffers created after this option takes effect; a full ring
  /// overwrites its oldest events, so memory stays bounded no matter how
  /// long the process runs.
  size_t trace_capacity = 8192;

  /// Period, in milliseconds, of the background Prometheus scrape that
  /// appends to the --metrics-out file (MetricsScraper, scrape.h). 0 (the
  /// default) disables periodic scraping: the CLI then writes one final
  /// scrape at exit, exactly as before this knob existed. Consumed by the
  /// CLI and the daemon, never by the engines — like all obs knobs it can
  /// not change what a repair computes.
  int64_t metrics_interval_ms = 0;

  Status Validate() const {
    if (trace_capacity == 0) {
      return Status::InvalidArgument("obs.trace_capacity must be >= 1");
    }
    if (metrics_interval_ms < 0) {
      return Status::InvalidArgument("obs.metrics_interval_ms must be >= 0");
    }
    return Status::OK();
  }
};

namespace obs {

namespace internal {
/// The process-wide enable flag behind Enabled(). Relaxed is enough: the
/// flag only gates *whether* metrics are recorded, never guards data that
/// the reader dereferences.
inline std::atomic<bool> g_enabled{false};
}  // namespace internal

/// True when runtime observability is switched on. Every instrumentation
/// site branches on this; when false the site costs a single relaxed load.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the process-wide switch. Typically called once at startup (CLI) or
/// through ApplyOptions from an engine whose RepairOptions enable obs.
inline void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

/// Small dense id of the calling thread, assigned on first use. Shared by
/// the metric shard selection and the trace exporter's "tid" field, so a
/// thread's samples correlate across both systems.
uint32_t ThreadId();

/// Applies engine-level options to the process-wide observability state:
/// enables instrumentation and sizes the global trace sink's ring buffers.
/// A disabled ObsOptions is a no-op — it never *disables* globally, because
/// another concurrent run (or the CLI) may have switched obs on.
void ApplyOptions(const ObsOptions& options);

}  // namespace obs
}  // namespace idrepair

#endif  // IDREPAIR_OBS_OBS_H_
