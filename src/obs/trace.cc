#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <tuple>

#include "common/json.h"

namespace idrepair {
namespace obs {

namespace {

std::atomic<uint32_t> g_next_thread_id{0};
thread_local uint32_t tls_thread_id = UINT32_MAX;

std::atomic<uint64_t> g_next_sink_id{1};

/// One-entry cache: the last (sink, buffer) pair this thread recorded
/// through. Sink ids are never reused, so a stale entry can only miss.
struct TlsSinkCache {
  uint64_t sink_id = 0;
  void* buffer = nullptr;
};
thread_local TlsSinkCache tls_sink_cache;

/// Per-thread span nesting depth (shared across sinks; spans on one thread
/// nest strictly, whichever sink they target).
thread_local uint32_t tls_span_depth = 0;

}  // namespace

uint32_t ThreadId() {
  if (tls_thread_id == UINT32_MAX) {
    tls_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

uint64_t TraceNowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

TraceSink::TraceSink(size_t capacity_per_thread)
    : sink_id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(capacity_per_thread > 0 ? capacity_per_thread : 1) {}

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();  // never freed
  return *sink;
}

void TraceSink::SetCapacity(size_t capacity_per_thread) {
  capacity_.store(capacity_per_thread > 0 ? capacity_per_thread : 1,
                  std::memory_order_relaxed);
}

TraceSink::ThreadBuffer* TraceSink::BufferForThisThread() {
  if (tls_sink_cache.sink_id == sink_id_) {
    return static_cast<ThreadBuffer*>(tls_sink_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::thread::id self = std::this_thread::get_id();
  for (const auto& buf : buffers_) {
    if (buf->owner == self) {
      tls_sink_cache = {sink_id_, buf.get()};
      return buf.get();
    }
  }
  auto buf = std::make_unique<ThreadBuffer>();
  buf->owner = self;
  buf->tid = ThreadId();
  buf->ring.reserve(capacity_.load(std::memory_order_relaxed));
  ThreadBuffer* raw = buf.get();
  buffers_.push_back(std::move(buf));
  tls_sink_cache = {sink_id_, raw};
  return raw;
}

void TraceSink::Record(const TraceEvent& event) {
  ThreadBuffer* buf = BufferForThisThread();
  size_t capacity = capacity_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->ring.size() < capacity) {
    buf->ring.push_back(event);
  } else {
    buf->ring[buf->next % buf->ring.size()] = event;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ++buf->next;
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    out.insert(out.end(), buf->ring.begin(), buf->ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.start_us, a.tid, a.depth) <
                     std::tie(b.start_us, b.tid, b.depth);
            });
  return out;
}

void TraceSink::WriteJson(std::ostream& out) const {
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const TraceEvent& e : Events()) {
    json.BeginObject();
    json.Key("name");
    json.String(e.name != nullptr ? e.name : "?");
    json.Key("cat");
    json.String("idrepair");
    json.Key("ph");
    json.String("X");
    json.Key("ts");
    json.Uint(e.start_us);
    json.Key("dur");
    json.Uint(e.dur_us);
    json.Key("pid");
    json.Uint(1);
    json.Key("tid");
    json.Uint(e.tid);
    if (e.has_arg) {
      json.Key("args");
      json.BeginObject();
      json.Key("n");
      json.Uint(e.arg);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.EndObject();
}

Status TraceSink::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open trace file '" + path + "'");
  WriteJson(out);
  out.flush();
  if (!out) return Status::IoError("failed writing trace file '" + path + "'");
  return Status::OK();
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->ring.clear();
    buf->next = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name)
    : TraceSpan(Enabled() ? &TraceSink::Global() : nullptr, name, 0, false) {}

TraceSpan::TraceSpan(const char* name, uint64_t arg)
    : TraceSpan(Enabled() ? &TraceSink::Global() : nullptr, name, arg, true) {}

TraceSpan::TraceSpan(TraceSink* sink, const char* name)
    : TraceSpan(sink, name, 0, false) {}

TraceSpan::TraceSpan(TraceSink* sink, const char* name, uint64_t arg)
    : TraceSpan(sink, name, arg, true) {}

TraceSpan::TraceSpan(TraceSink* sink, const char* name, uint64_t arg,
                     bool has_arg)
    : sink_(sink),
      name_(name),
      arg_(arg),
      has_arg_(has_arg),
      start_us_(0),
      depth_(0) {
  if (sink_ == nullptr) return;
  depth_ = tls_span_depth++;
  start_us_ = TraceNowMicros();
}

TraceSpan::~TraceSpan() {
  if (sink_ == nullptr) return;
  --tls_span_depth;
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = TraceNowMicros() - start_us_;
  event.tid = ThreadId();
  event.depth = depth_;
  event.arg = arg_;
  event.has_arg = has_arg_;
  sink_->Record(event);
}

void ApplyOptions(const ObsOptions& options) {
  if (!options.enabled) return;
  TraceSink::Global().SetCapacity(options.trace_capacity);
  SetEnabled(true);
}

}  // namespace obs
}  // namespace idrepair
