#ifndef IDREPAIR_OBS_METRICS_H_
#define IDREPAIR_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace idrepair {
namespace obs {

/// How a metric's value relates to the work performed:
///  - kStable: a pure function of the input and the repair options
///    (excluding execution width) — clique counts, candidates, partitions.
///    Stable metrics are byte-identical across thread counts, which the
///    obs tests enforce.
///  - kRuntime: depends on scheduling, timing, or the decomposition width —
///    latencies, steals, queue depth, task counts. Real and useful, but
///    never compared across runs for equality.
enum class Stability { kStable, kRuntime };

/// Number of counter/histogram shards. Threads map onto shards by
/// ThreadId() % kMetricShards; two threads sharing a shard is correct
/// (atomics), just mildly contended. 16 cache lines per counter is the
/// memory price of uncontended increments on typical pools.
inline constexpr size_t kMetricShards = 16;

/// Index of the calling thread's shard.
inline size_t ThreadShard() {
  return static_cast<size_t>(ThreadId()) % kMetricShards;
}

/// A monotonically increasing count, sharded per thread. Increment is a
/// relaxed fetch_add on the caller's own shard — lock-free and (on distinct
/// shards) contention-free. Value() merges the shards; integer addition is
/// order-independent, so the merged value is exact and deterministic for
/// deterministic workloads.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    shards_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Zeroes every shard (MetricsRegistry::Reset).
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// A value that can go up and down (queue depth, buffered records). A
/// single relaxed atomic: gauges are set/adjusted far less often than
/// counters are bumped, so sharding would buy nothing.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A fixed-bucket histogram, sharded per thread like Counter. Bucket
/// bounds are inclusive upper bounds in ascending order with an implicit
/// +Inf bucket at the end (Prometheus convention). The running sum is kept
/// in integer ticks of 1e-9 (nanosecond resolution for values in seconds),
/// so merging shards is integer addition — order-independent and therefore
/// byte-stable for deterministic observations, unlike a floating-point sum
/// whose association would depend on which thread observed which value.
class Histogram {
 public:
  /// Resolution of the integer sum: one tick = 1e-9 in observed units.
  static constexpr double kTicksPerUnit = 1e9;

  explicit Histogram(std::vector<double> bounds);

  /// Records one observation. Values above the last bound land in the
  /// implicit +Inf bucket. Not meaningful for values whose magnitude
  /// exceeds ~9e9 units (the sum would overflow its int64 tick count).
  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }

  /// Merged per-bucket counts; size is bounds().size() + 1 (+Inf last).
  std::vector<uint64_t> BucketCounts() const;

  uint64_t TotalCount() const;

  /// Merged sum of observations, reconstructed from integer ticks.
  double Sum() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<int64_t> sum_ticks{0};
  };
  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// `count` buckets growing geometrically from `start` by `factor`:
/// {start, start·factor, …}. The workhorse for latency histograms.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

/// Default bounds for phase/task latencies in seconds: 10 µs … ~84 s.
std::vector<double> DefaultLatencyBuckets();

/// One metric's merged state at a point in time (MetricsRegistry::Collect).
struct MetricSnapshot {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Type type = Type::kCounter;
  Stability stability = Stability::kRuntime;
  uint64_t counter_value = 0;              // kCounter
  int64_t gauge_value = 0;                 // kGauge
  std::vector<double> bounds;              // kHistogram
  std::vector<uint64_t> bucket_counts;     // kHistogram, +Inf last
  uint64_t total_count = 0;                // kHistogram
  double sum = 0.0;                        // kHistogram
};

/// Registry of named instruments. Get* registers on first use and returns a
/// stable pointer; instrumentation sites cache that pointer so the hot path
/// never touches the registry lock. Snapshots merge the per-thread shards
/// in fixed shard order, and registrations live in a name-sorted map, so a
/// rendered snapshot is a deterministic function of the recorded values —
/// for Stability::kStable metrics that means byte-identical output at any
/// thread count.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

  /// Get-or-create. Help text is recorded on first registration. A name
  /// already registered as a different metric type is a programming bug:
  /// debug builds assert; release builds return a detached instrument so
  /// callers never receive nullptr.
  Counter* GetCounter(const std::string& name, Stability stability,
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, Stability stability,
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, Stability stability,
                          std::vector<double> bounds,
                          const std::string& help = "");

  /// Zeroes every registered instrument's value. Registrations (and the
  /// pointers instrumentation sites cached) stay valid — this resets the
  /// numbers, not the schema. Used by tests and long-lived servers that
  /// scrape-and-reset.
  void Reset();

  /// Merged state of every instrument, name-sorted. `include_runtime`
  /// false filters to Stability::kStable metrics (the cross-thread-count
  /// determinism surface).
  std::vector<MetricSnapshot> Collect(bool include_runtime = true) const;

  /// Prometheus text exposition format (text/plain; version=0.0.4):
  /// # HELP / # TYPE headers, histogram _bucket/_sum/_count series.
  std::string RenderPrometheus(bool include_runtime = true) const;

  size_t NumMetrics() const;

 private:
  struct Entry {
    MetricSnapshot::Type type;
    Stability stability;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  // Instruments handed out on a type mismatch; detached from rendering.
  std::vector<std::unique_ptr<Counter>> orphan_counters_;
  std::vector<std::unique_ptr<Gauge>> orphan_gauges_;
  std::vector<std::unique_ptr<Histogram>> orphan_histograms_;
};

}  // namespace obs
}  // namespace idrepair

#endif  // IDREPAIR_OBS_METRICS_H_
