#ifndef IDREPAIR_OBS_TRACE_H_
#define IDREPAIR_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/obs.h"

namespace idrepair {
namespace obs {

/// One completed span. `name` must be a string with static storage duration
/// (a literal at the instrumentation site) — events store the pointer, not
/// a copy, so recording stays allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;  // microseconds since the process trace epoch
  uint64_t dur_us = 0;
  uint32_t tid = 0;       // obs::ThreadId() of the recording thread
  uint32_t depth = 0;     // span nesting depth on that thread (0 = root)
  uint64_t arg = 0;       // optional site-specific payload (shard index…)
  bool has_arg = false;
};

/// Collects TraceEvents into per-thread ring buffers and exports them as
/// Chrome Trace Event JSON (load the file in chrome://tracing or Perfetto).
///
/// Each thread records into its own fixed-capacity ring, guarded by a
/// per-ring mutex that only that thread and an exporting reader ever touch,
/// so recording is an uncontended lock plus a slot write — bounded overhead
/// while enabled, race-free by construction. A full ring overwrites its
/// oldest events; memory never grows with trace length.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity_per_thread = 8192);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Process-wide sink used by all built-in instrumentation (TraceSpan's
  /// implicit target).
  static TraceSink& Global();

  /// Capacity for ring buffers created *after* this call; existing threads
  /// keep their rings. Call before the instrumented run starts.
  void SetCapacity(size_t capacity_per_thread);

  /// Appends one event to the calling thread's ring.
  void Record(const TraceEvent& event);

  /// Merged copy of every buffered event, ordered by (start, tid). Rings
  /// that wrapped contribute only their newest `capacity` events.
  std::vector<TraceEvent> Events() const;

  /// Total events overwritten by ring wraparound since the last Clear().
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome Trace Event JSON ("X" complete events, one pid, tid =
  /// obs::ThreadId).
  void WriteJson(std::ostream& out) const;
  Status WriteJsonFile(const std::string& path) const;

  /// Discards all buffered events (rings stay allocated).
  void Clear();

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::thread::id owner;
    uint32_t tid = 0;
    uint64_t next = 0;  // monotonically increasing write index
    std::vector<TraceEvent> ring;
  };

  ThreadBuffer* BufferForThisThread();

  const uint64_t sink_id_;  // process-unique, for the thread-local cache
  std::atomic<size_t> capacity_;
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;  // guards buffers_ (registration + export walk)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII trace scope. The two-argument constructors target the global sink
/// and are no-ops unless obs::Enabled() — the disabled cost is one relaxed
/// load. The explicit-sink constructor records unconditionally (tests).
///
///   { TraceSpan span("repair.gm"); BuildGm(); }   // one "X" event
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, uint64_t arg);
  TraceSpan(TraceSink* sink, const char* name);
  TraceSpan(TraceSink* sink, const char* name, uint64_t arg);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSpan(TraceSink* sink, const char* name, uint64_t arg, bool has_arg);

  TraceSink* sink_;  // nullptr when the span is inactive
  const char* name_;
  uint64_t arg_;
  bool has_arg_;
  uint64_t start_us_;
  uint32_t depth_;
};

/// Microseconds since the process-wide trace epoch (steady clock; the
/// epoch is captured on first use).
uint64_t TraceNowMicros();

}  // namespace obs
}  // namespace idrepair

#endif  // IDREPAIR_OBS_TRACE_H_
