#ifndef IDREPAIR_OBS_PHASE_H_
#define IDREPAIR_OBS_PHASE_H_

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace idrepair {
namespace obs {

/// RAII phase timer: the single source of truth for per-phase timings.
/// On destruction it
///   1. adds elapsed wall seconds to *wall_seconds (a RepairStats field),
///   2. adds elapsed process-CPU seconds to *cpu_seconds (optional),
///   3. observes the wall time into `histogram` (optional, only when obs
///      is enabled),
///   4. closes a trace span named `name` (only when obs is enabled).
/// Steps 1–2 always run — RepairStats keeps its timings whether or not
/// observability is on; the obs sinks just see the same measurement.
class PhaseScope {
 public:
  PhaseScope(const char* name, double* wall_seconds,
             double* cpu_seconds = nullptr, Histogram* histogram = nullptr)
      : wall_out_(wall_seconds),
        cpu_out_(cpu_seconds),
        histogram_(histogram),
        span_(name) {}

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  ~PhaseScope() {
    double wall = watch_.ElapsedSeconds();
    if (wall_out_ != nullptr) *wall_out_ += wall;
    if (cpu_out_ != nullptr) *cpu_out_ += cpu_watch_.ElapsedSeconds();
    if (histogram_ != nullptr && Enabled()) histogram_->Observe(wall);
    // span_ destructs after this body, ending the trace span.
  }

 private:
  double* wall_out_;
  double* cpu_out_;
  Histogram* histogram_;
  Stopwatch watch_;
  CpuStopwatch cpu_watch_;
  TraceSpan span_;
};

}  // namespace obs
}  // namespace idrepair

#endif  // IDREPAIR_OBS_PHASE_H_
