#include "lig/length_indexed_grids.h"

#include <algorithm>
#include <cstdint>

namespace idrepair {

LengthIndexedGrids::LengthIndexedGrids(const TrajectorySet& set,
                                       const Options& options)
    : set_(set), options_(options) {
  Timestamp min_start = 0;
  Timestamp max_end = 0;
  bool first = true;
  for (const auto& t : set.trajectories()) {
    if (t.empty()) continue;
    if (first) {
      min_start = t.start_time();
      max_end = t.end_time();
      first = false;
    } else {
      min_start = std::min(min_start, t.start_time());
      max_end = std::max(max_end, t.end_time());
    }
  }
  base_time_ = min_start;
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  num_bins_ = static_cast<size_t>((max_end - base_time_) / tb) + 1;
  band_ = static_cast<size_t>(options_.eta / tb) + 2;

  // CSR fill in two scans: count each cell's population, prefix-sum into
  // offsets, then place indices. Scanning i ascending keeps every bucket
  // sorted, matching the old push_back order.
  size_t num_cells = options_.theta * num_bins_ * band_;
  cell_offsets_.assign(num_cells + 1, 0);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    size_t cell = CellFor(set.at(i));
    if (cell != SIZE_MAX) ++cell_offsets_[cell + 1];
  }
  for (size_t c = 0; c < num_cells; ++c) {
    cell_offsets_[c + 1] += cell_offsets_[c];
  }
  cell_entries_.resize(cell_offsets_[num_cells]);
  std::vector<uint32_t> cursor(cell_offsets_.begin(),
                               cell_offsets_.end() - 1);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    size_t cell = CellFor(set.at(i));
    if (cell == SIZE_MAX) continue;
    cell_entries_[cursor[cell]++] = i;
    ++num_indexed_;
  }
}

LengthIndexedGrids::Parts LengthIndexedGrids::ToParts() const {
  Parts parts;
  parts.options = options_;
  parts.base_time = base_time_;
  parts.num_bins = num_bins_;
  parts.band = band_;
  parts.num_indexed = num_indexed_;
  parts.cell_offsets = cell_offsets_;
  parts.cell_entries = cell_entries_;
  return parts;
}

LengthIndexedGrids::LengthIndexedGrids(const TrajectorySet& set, Parts parts)
    : set_(set),
      options_(parts.options),
      base_time_(parts.base_time),
      num_bins_(static_cast<size_t>(parts.num_bins)),
      band_(static_cast<size_t>(parts.band)),
      num_indexed_(static_cast<size_t>(parts.num_indexed)),
      cell_offsets_(std::move(parts.cell_offsets)),
      cell_entries_(std::move(parts.cell_entries)) {}

Result<std::unique_ptr<LengthIndexedGrids>> LengthIndexedGrids::FromParts(
    const TrajectorySet& set, Parts parts) {
  if (parts.options.theta == 0) {
    return Status::InvalidArgument("lig parts: theta must be >= 1");
  }
  if (parts.num_bins == 0 || parts.band == 0) {
    return Status::InvalidArgument("lig parts: num_bins and band must be >= 1");
  }
  uint64_t num_cells =
      static_cast<uint64_t>(parts.options.theta) * parts.num_bins * parts.band;
  if (parts.cell_offsets.size() != num_cells + 1) {
    return Status::InvalidArgument("lig parts: offset table size mismatch");
  }
  if (parts.cell_offsets.front() != 0) {
    return Status::InvalidArgument("lig parts: offsets must start at 0");
  }
  for (size_t c = 0; c + 1 < parts.cell_offsets.size(); ++c) {
    if (parts.cell_offsets[c] > parts.cell_offsets[c + 1]) {
      return Status::InvalidArgument("lig parts: offsets must be monotone");
    }
  }
  if (parts.cell_offsets.back() != parts.cell_entries.size()) {
    return Status::InvalidArgument(
        "lig parts: entry arena size disagrees with final offset");
  }
  if (parts.num_indexed != parts.cell_entries.size()) {
    return Status::InvalidArgument(
        "lig parts: num_indexed disagrees with entry count");
  }
  for (TrajIndex e : parts.cell_entries) {
    if (static_cast<size_t>(e) >= set.size()) {
      return Status::InvalidArgument(
          "lig parts: entry index out of range for the given set");
    }
  }
  return std::unique_ptr<LengthIndexedGrids>(
      new LengthIndexedGrids(set, std::move(parts)));
}

size_t LengthIndexedGrids::CellFor(const Trajectory& t) const {
  if (t.empty() || t.size() > options_.theta) return SIZE_MAX;
  if (t.TimeSpan() > options_.eta) return SIZE_MAX;  // can never join
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  size_t sbin = static_cast<size_t>((t.start_time() - base_time_) / tb);
  size_t ebin = static_cast<size_t>((t.end_time() - base_time_) / tb);
  size_t off = ebin - sbin;
  if (off >= band_) return SIZE_MAX;  // fits η but straddles bin edges
  return CellIndex(t.size(), sbin, off);
}

void LengthIndexedGrids::CollectCandidates(TrajIndex k,
                                           std::vector<TrajIndex>* out) const {
  const Trajectory& t = set_.at(k);
  if (t.empty() || t.size() >= options_.theta) return;  // no room for a peer
  size_t max_len = options_.theta - t.size();
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  Timestamp window_lo = t.end_time() - options_.eta;
  Timestamp window_hi = t.start_time() + options_.eta;
  if (window_lo > window_hi) return;
  int64_t lo_bin_signed = (window_lo - base_time_) / tb;
  if (window_lo < base_time_) lo_bin_signed = 0;
  size_t lo_bin = static_cast<size_t>(lo_bin_signed);
  size_t hi_bin = std::min(
      num_bins_ - 1,
      static_cast<size_t>(std::max<Timestamp>(0, window_hi - base_time_) / tb));
  if (lo_bin > hi_bin) return;
  for (size_t len = 1; len <= max_len; ++len) {
    for (size_t sbin = lo_bin; sbin <= hi_bin; ++sbin) {
      for (size_t off = 0; off < band_; ++off) {
        size_t ebin = sbin + off;
        if (ebin > hi_bin) break;  // candidate end beyond the window
        for (TrajIndex c : Bucket(len, sbin, off)) {
          if (c != k) out->push_back(c);
        }
      }
    }
  }
}

}  // namespace idrepair
