#include "lig/length_indexed_grids.h"

#include <algorithm>

namespace idrepair {

LengthIndexedGrids::LengthIndexedGrids(const TrajectorySet& set,
                                       const Options& options)
    : set_(set), options_(options) {
  Timestamp min_start = 0;
  Timestamp max_end = 0;
  bool first = true;
  for (const auto& t : set.trajectories()) {
    if (t.empty()) continue;
    if (first) {
      min_start = t.start_time();
      max_end = t.end_time();
      first = false;
    } else {
      min_start = std::min(min_start, t.start_time());
      max_end = std::max(max_end, t.end_time());
    }
  }
  base_time_ = min_start;
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  num_bins_ = static_cast<size_t>((max_end - base_time_) / tb) + 1;
  band_ = static_cast<size_t>(options_.eta / tb) + 2;
  cells_.assign(options_.theta * num_bins_ * band_, {});

  for (TrajIndex i = 0; i < set.size(); ++i) {
    const Trajectory& t = set.at(i);
    if (t.empty() || t.size() > options_.theta) continue;
    if (t.TimeSpan() > options_.eta) continue;  // can never join anything
    size_t sbin = static_cast<size_t>((t.start_time() - base_time_) / tb);
    size_t ebin = static_cast<size_t>((t.end_time() - base_time_) / tb);
    size_t off = ebin - sbin;
    if (off >= band_) continue;  // span fits η but straddles bin edges
    cells_[CellIndex(t.size(), sbin, off)].push_back(i);
    ++num_indexed_;
  }
}

void LengthIndexedGrids::CollectCandidates(TrajIndex k,
                                           std::vector<TrajIndex>* out) const {
  const Trajectory& t = set_.at(k);
  if (t.empty() || t.size() >= options_.theta) return;  // no room for a peer
  size_t max_len = options_.theta - t.size();
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  Timestamp window_lo = t.end_time() - options_.eta;
  Timestamp window_hi = t.start_time() + options_.eta;
  if (window_lo > window_hi) return;
  int64_t lo_bin_signed = (window_lo - base_time_) / tb;
  if (window_lo < base_time_) lo_bin_signed = 0;
  size_t lo_bin = static_cast<size_t>(lo_bin_signed);
  size_t hi_bin = std::min(
      num_bins_ - 1,
      static_cast<size_t>(std::max<Timestamp>(0, window_hi - base_time_) / tb));
  if (lo_bin > hi_bin) return;
  for (size_t len = 1; len <= max_len; ++len) {
    for (size_t sbin = lo_bin; sbin <= hi_bin; ++sbin) {
      for (size_t off = 0; off < band_; ++off) {
        size_t ebin = sbin + off;
        if (ebin > hi_bin) break;  // candidate end beyond the window
        for (TrajIndex c : cells_[CellIndex(len, sbin, off)]) {
          if (c != k) out->push_back(c);
        }
      }
    }
  }
}

}  // namespace idrepair
