#include "lig/length_indexed_grids.h"

#include <algorithm>
#include <cstdint>

namespace idrepair {

namespace {

/// Bound TrajectorySet of indices created with Dynamic(): entries are
/// caller-defined handles, so no real set backs them. One shared empty set
/// keeps the reference member valid for the index's whole lifetime.
const TrajectorySet& EmptySet() {
  static const TrajectorySet* kEmpty = new TrajectorySet();
  return *kEmpty;
}

}  // namespace

LengthIndexedGrids::LengthIndexedGrids(const TrajectorySet& set,
                                       const Options& options)
    : set_(set), options_(options) {
  Timestamp min_start = 0;
  Timestamp max_end = 0;
  bool first = true;
  for (const auto& t : set.trajectories()) {
    if (t.empty()) continue;
    if (first) {
      min_start = t.start_time();
      max_end = t.end_time();
      first = false;
    } else {
      min_start = std::min(min_start, t.start_time());
      max_end = std::max(max_end, t.end_time());
    }
  }
  base_time_ = min_start;
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  num_bins_ = static_cast<size_t>((max_end - base_time_) / tb) + 1;
  band_ = static_cast<size_t>(options_.eta / tb) + 2;

  // CSR fill in two scans: count each cell's population, prefix-sum into
  // offsets, then place indices. Scanning i ascending keeps every bucket
  // sorted, matching the old push_back order.
  size_t num_cells = options_.theta * num_bins_ * band_;
  cell_offsets_.assign(num_cells + 1, 0);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    size_t cell = CellFor(set.at(i));
    if (cell != SIZE_MAX) ++cell_offsets_[cell + 1];
  }
  for (size_t c = 0; c < num_cells; ++c) {
    cell_offsets_[c + 1] += cell_offsets_[c];
  }
  cell_entries_.resize(cell_offsets_[num_cells]);
  std::vector<uint32_t> cursor(cell_offsets_.begin(),
                               cell_offsets_.end() - 1);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    size_t cell = CellFor(set.at(i));
    if (cell == SIZE_MAX) continue;
    cell_entries_[cursor[cell]++] = i;
    ++num_indexed_;
  }
}

LengthIndexedGrids LengthIndexedGrids::Dynamic(const Options& options,
                                               Timestamp base_time) {
  LengthIndexedGrids lig(EmptySet(), options);
  lig.base_time_ = base_time;
  lig.dynamic_ = true;
  lig.cell_offsets_.clear();
  lig.cell_entries_.clear();
  return lig;
}

LengthIndexedGrids::Parts LengthIndexedGrids::ToParts() const {
  Parts parts;
  parts.options = options_;
  parts.base_time = base_time_;
  parts.num_bins = num_bins_;
  parts.band = band_;
  parts.num_indexed = num_indexed_;
  if (!dynamic_) {
    parts.cell_offsets = cell_offsets_;
    parts.cell_entries = cell_entries_;
    return parts;
  }
  // Canonical re-linearization: lexicographic (length, sbin, off) map order
  // is ascending CellIndex order, so a single ordered pass rebuilds exactly
  // the CSR a from-scratch constructor over the same members produces.
  size_t num_cells = options_.theta * num_bins_ * band_;
  parts.cell_offsets.assign(num_cells + 1, 0);
  for (const auto& [key, bucket] : dyn_cells_) {
    auto [len, sbin, off] = key;
    parts.cell_offsets[CellIndex(len, sbin, off) + 1] +=
        static_cast<uint32_t>(bucket.size());
  }
  for (size_t c = 0; c < num_cells; ++c) {
    parts.cell_offsets[c + 1] += parts.cell_offsets[c];
  }
  parts.cell_entries.reserve(num_indexed_);
  for (const auto& [key, bucket] : dyn_cells_) {
    parts.cell_entries.insert(parts.cell_entries.end(), bucket.begin(),
                              bucket.end());
  }
  return parts;
}

LengthIndexedGrids::LengthIndexedGrids(const TrajectorySet& set, Parts parts)
    : set_(set),
      options_(parts.options),
      base_time_(parts.base_time),
      num_bins_(static_cast<size_t>(parts.num_bins)),
      band_(static_cast<size_t>(parts.band)),
      num_indexed_(static_cast<size_t>(parts.num_indexed)),
      cell_offsets_(std::move(parts.cell_offsets)),
      cell_entries_(std::move(parts.cell_entries)) {}

Result<std::unique_ptr<LengthIndexedGrids>> LengthIndexedGrids::FromParts(
    const TrajectorySet& set, Parts parts) {
  if (parts.options.theta == 0) {
    return Status::InvalidArgument("lig parts: theta must be >= 1");
  }
  if (parts.num_bins == 0 || parts.band == 0) {
    return Status::InvalidArgument("lig parts: num_bins and band must be >= 1");
  }
  uint64_t num_cells =
      static_cast<uint64_t>(parts.options.theta) * parts.num_bins * parts.band;
  if (parts.cell_offsets.size() != num_cells + 1) {
    return Status::InvalidArgument("lig parts: offset table size mismatch");
  }
  if (parts.cell_offsets.front() != 0) {
    return Status::InvalidArgument("lig parts: offsets must start at 0");
  }
  for (size_t c = 0; c + 1 < parts.cell_offsets.size(); ++c) {
    if (parts.cell_offsets[c] > parts.cell_offsets[c + 1]) {
      return Status::InvalidArgument("lig parts: offsets must be monotone");
    }
  }
  if (parts.cell_offsets.back() != parts.cell_entries.size()) {
    return Status::InvalidArgument(
        "lig parts: entry arena size disagrees with final offset");
  }
  if (parts.num_indexed != parts.cell_entries.size()) {
    return Status::InvalidArgument(
        "lig parts: num_indexed disagrees with entry count");
  }
  for (TrajIndex e : parts.cell_entries) {
    if (static_cast<size_t>(e) >= set.size()) {
      return Status::InvalidArgument(
          "lig parts: entry index out of range for the given set");
    }
  }
  return std::unique_ptr<LengthIndexedGrids>(
      new LengthIndexedGrids(set, std::move(parts)));
}

size_t LengthIndexedGrids::CellFor(const Trajectory& t) const {
  if (t.empty() || t.size() > options_.theta) return SIZE_MAX;
  if (t.TimeSpan() > options_.eta) return SIZE_MAX;  // can never join
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  size_t sbin = static_cast<size_t>((t.start_time() - base_time_) / tb);
  size_t ebin = static_cast<size_t>((t.end_time() - base_time_) / tb);
  size_t off = ebin - sbin;
  if (off >= band_) return SIZE_MAX;  // fits η but straddles bin edges
  return CellIndex(t.size(), sbin, off);
}

bool LengthIndexedGrids::SpanGeometry(size_t length, Timestamp start,
                                      Timestamp end, size_t* sbin,
                                      size_t* off) const {
  if (length == 0 || length > options_.theta) return false;
  if (end < start || start < base_time_) return false;
  if (end - start > options_.eta) return false;  // can never join
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  size_t s = static_cast<size_t>((start - base_time_) / tb);
  size_t e = static_cast<size_t>((end - base_time_) / tb);
  if (e - s >= band_) return false;  // fits η but straddles bin edges
  *sbin = s;
  *off = e - s;
  return true;
}

void LengthIndexedGrids::EnterDynamic() {
  if (dynamic_) return;
  dynamic_ = true;
  for (size_t len = 1; len <= options_.theta; ++len) {
    for (size_t sbin = 0; sbin < num_bins_; ++sbin) {
      for (size_t off = 0; off < band_; ++off) {
        size_t cell = CellIndex(len, sbin, off);
        uint32_t begin = cell_offsets_[cell];
        uint32_t end = cell_offsets_[cell + 1];
        if (begin == end) continue;
        dyn_cells_.emplace(
            std::make_tuple(len, sbin, off),
            std::vector<TrajIndex>(cell_entries_.begin() + begin,
                                   cell_entries_.begin() + end));
      }
    }
  }
  cell_offsets_.clear();
  cell_offsets_.shrink_to_fit();
  cell_entries_.clear();
  cell_entries_.shrink_to_fit();
}

bool LengthIndexedGrids::Insert(TrajIndex i) {
  const Trajectory& t = set_.at(i);
  if (t.empty()) return false;
  return InsertSpan(i, t.size(), t.start_time(), t.end_time());
}

bool LengthIndexedGrids::Remove(TrajIndex i) {
  const Trajectory& t = set_.at(i);
  if (t.empty()) return false;
  return RemoveSpan(i, t.size(), t.start_time(), t.end_time());
}

bool LengthIndexedGrids::InsertSpan(TrajIndex handle, size_t length,
                                    Timestamp start, Timestamp end) {
  size_t sbin = 0;
  size_t off = 0;
  if (!SpanGeometry(length, start, end, &sbin, &off)) return false;
  EnterDynamic();
  num_bins_ = std::max(num_bins_, sbin + off + 1);
  auto& bucket = dyn_cells_[std::make_tuple(length, sbin, off)];
  auto it = std::lower_bound(bucket.begin(), bucket.end(), handle);
  if (it != bucket.end() && *it == handle) return false;  // already present
  bucket.insert(it, handle);
  ++num_indexed_;
  return true;
}

bool LengthIndexedGrids::RemoveSpan(TrajIndex handle, size_t length,
                                    Timestamp start, Timestamp end) {
  size_t sbin = 0;
  size_t off = 0;
  if (!SpanGeometry(length, start, end, &sbin, &off)) return false;
  EnterDynamic();
  auto cell = dyn_cells_.find(std::make_tuple(length, sbin, off));
  if (cell == dyn_cells_.end()) return false;
  auto& bucket = cell->second;
  auto it = std::lower_bound(bucket.begin(), bucket.end(), handle);
  if (it == bucket.end() || *it != handle) return false;
  bucket.erase(it);
  if (bucket.empty()) dyn_cells_.erase(cell);
  --num_indexed_;
  return true;
}

Span<const TrajIndex> LengthIndexedGrids::Bucket(size_t length,
                                                 size_t start_bin,
                                                 size_t span_off) const {
  if (!dynamic_) {
    size_t cell = CellIndex(length, start_bin, span_off);
    return Span<const TrajIndex>(
        cell_entries_.data() + cell_offsets_[cell],
        cell_offsets_[cell + 1] - cell_offsets_[cell]);
  }
  auto it = dyn_cells_.find(std::make_tuple(length, start_bin, span_off));
  if (it == dyn_cells_.end()) return Span<const TrajIndex>();
  return Span<const TrajIndex>(it->second.data(), it->second.size());
}

size_t LengthIndexedGrids::MemoryBytes() const {
  size_t bytes = cell_offsets_.capacity() * sizeof(uint32_t) +
                 cell_entries_.capacity() * sizeof(TrajIndex);
  // Dynamic buckets: entry storage plus one node (key + vector header +
  // red-black bookkeeping, ~4 words) per nonempty cell.
  for (const auto& [key, bucket] : dyn_cells_) {
    bytes += bucket.capacity() * sizeof(TrajIndex);
    bytes += sizeof(key) + sizeof(bucket) + 4 * sizeof(void*);
  }
  return bytes;
}

void LengthIndexedGrids::CollectCandidates(TrajIndex k,
                                           std::vector<TrajIndex>* out) const {
  const Trajectory& t = set_.at(k);
  if (t.empty() || t.size() >= options_.theta) return;  // no room for a peer
  size_t before = out->size();
  CollectCandidatesSpan(t.size(), t.start_time(), t.end_time(), out);
  // Self-exclusion: the set-bound probe never reports k itself.
  out->erase(std::remove(out->begin() + static_cast<ptrdiff_t>(before),
                         out->end(), k),
             out->end());
}

void LengthIndexedGrids::CollectCandidatesSpan(
    size_t length, Timestamp start, Timestamp end,
    std::vector<TrajIndex>* out) const {
  if (length == 0 || length >= options_.theta) return;  // no room for a peer
  size_t max_len = options_.theta - length;
  Timestamp tb = std::max<Timestamp>(1, options_.time_bin);
  Timestamp window_lo = end - options_.eta;
  Timestamp window_hi = start + options_.eta;
  if (window_lo > window_hi) return;
  int64_t lo_bin_signed = (window_lo - base_time_) / tb;
  if (window_lo < base_time_) lo_bin_signed = 0;
  size_t lo_bin = static_cast<size_t>(lo_bin_signed);
  if (num_bins_ == 0) return;
  size_t hi_bin = std::min(
      num_bins_ - 1,
      static_cast<size_t>(std::max<Timestamp>(0, window_hi - base_time_) / tb));
  if (lo_bin > hi_bin) return;
  for (size_t len = 1; len <= max_len; ++len) {
    for (size_t sbin = lo_bin; sbin <= hi_bin; ++sbin) {
      for (size_t off = 0; off < band_; ++off) {
        size_t ebin = sbin + off;
        if (ebin > hi_bin) break;  // candidate end beyond the window
        for (TrajIndex c : Bucket(len, sbin, off)) {
          out->push_back(c);
        }
      }
    }
  }
}

}  // namespace idrepair
