#ifndef IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_
#define IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "traj/tracking_record.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Length-Indexed Grids (LIG, §5.1 of the paper): a three-dimensional index
/// over (trajectory length, start time, end time) that prunes candidate
/// pairs before the cex predicate runs. Given a probe trajectory Tk, only
/// trajectories with |Tu| <= θ − |Tk| and with both start and end times in
/// [Tk.end − η, Tk.start + η] can share a joinable subset with Tk.
///
/// Implementation notes: time is discretized into fixed-size bins of
/// `time_bin` seconds; because an indexed trajectory's span never exceeds η
/// (longer ones cannot join anything and are skipped), the (start, end) grid
/// is stored as a diagonal band, keeping memory linear in the time window
/// rather than quadratic. The index is an over-approximation — cex re-checks
/// the exact bounds — but never misses a feasible candidate.
class LengthIndexedGrids {
 public:
  struct Options {
    /// Maximum valid-trajectory length θ (records).
    size_t theta = 8;
    /// Maximum valid-trajectory time span η (seconds).
    Timestamp eta = 600;
    /// Grid bin width tb (seconds).
    Timestamp time_bin = 60;
  };

  /// The complete serializable state of a built index. Together with the
  /// indexed TrajectorySet this reconstructs the index exactly — the
  /// snapshot format persists Parts so daemon startup is load-not-rebuild.
  struct Parts {
    Options options;
    Timestamp base_time = 0;
    uint64_t num_bins = 0;
    uint64_t band = 0;
    uint64_t num_indexed = 0;
    std::vector<uint32_t> cell_offsets;
    std::vector<TrajIndex> cell_entries;
  };

  /// Builds the index over `set` in Θ(|set|).
  LengthIndexedGrids(const TrajectorySet& set, const Options& options);

  /// Copies out the serializable state. Building a fresh index over the
  /// same set with parts.options yields byte-identical Parts (the CSR fill
  /// is deterministic), which the snapshot round-trip tests rely on.
  Parts ToParts() const;

  /// Reconstructs an index over `set` from previously captured Parts,
  /// validating every structural invariant (offset table shape, monotone
  /// offsets, entry bounds, the num_indexed == entries count identity).
  /// `set` must outlive the returned index, exactly as for the building
  /// constructor.
  static Result<std::unique_ptr<LengthIndexedGrids>> FromParts(
      const TrajectorySet& set, Parts parts);

  /// Appends to `out` all indexed trajectories (other than `k` itself) that
  /// satisfy the grid-level length and time-window criteria for pairing
  /// with trajectory `k`. A superset of the exact answer.
  void CollectCandidates(TrajIndex k, std::vector<TrajIndex>* out) const;

  /// Number of trajectories actually indexed (those with length <= θ and
  /// span <= η).
  size_t num_indexed() const { return num_indexed_; }

  /// The trajectories of length `length` starting in bin `start_bin` and
  /// ending in bin `start_bin + span_off`, ascending. View into the index's
  /// CSR arena, valid for the index's lifetime (the index is immutable
  /// after construction; DESIGN.md §9).
  Span<const TrajIndex> Bucket(size_t length, size_t start_bin,
                               size_t span_off) const {
    size_t cell = CellIndex(length, start_bin, span_off);
    return Span<const TrajIndex>(cell_entries_.data() + cell_offsets_[cell],
                                 cell_offsets_[cell + 1] -
                                     cell_offsets_[cell]);
  }

  /// Heap bytes of the CSR offset table and entry arena.
  size_t MemoryBytes() const {
    return cell_offsets_.capacity() * sizeof(uint32_t) +
           cell_entries_.capacity() * sizeof(TrajIndex);
  }

  const Options& options() const { return options_; }

  /// The set this index was built over. Identity matters: a prebuilt index
  /// is only valid for probes into this exact object (see
  /// RepairOptions::resident_lig).
  const TrajectorySet& indexed_set() const { return set_; }

 private:
  /// FromParts' trusting constructor — validation happens in the factory.
  LengthIndexedGrids(const TrajectorySet& set, Parts parts);

  size_t CellIndex(size_t length, size_t start_bin, size_t span_off) const {
    return ((length - 1) * num_bins_ + start_bin) * band_ + span_off;
  }

  /// The cell a trajectory indexes into, or SIZE_MAX when it is skipped
  /// (too long, span exceeds η, or straddles the band).
  size_t CellFor(const Trajectory& t) const;

  const TrajectorySet& set_;
  Options options_;
  Timestamp base_time_ = 0;
  size_t num_bins_ = 0;
  size_t band_ = 0;  // max (end_bin - start_bin) + 1 for indexed spans
  size_t num_indexed_ = 0;
  // Grid buckets in CSR form: the trajectories of cell c occupy
  // cell_entries_[cell_offsets_[c] .. cell_offsets_[c+1]). One flat arena
  // replaces a vector-of-vectors whose headers alone dominated the index
  // footprint (most cells are empty).
  std::vector<uint32_t> cell_offsets_;
  std::vector<TrajIndex> cell_entries_;
};

}  // namespace idrepair

#endif  // IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_
