#ifndef IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_
#define IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_

#include <cstdint>
#include <vector>

#include "traj/tracking_record.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Length-Indexed Grids (LIG, §5.1 of the paper): a three-dimensional index
/// over (trajectory length, start time, end time) that prunes candidate
/// pairs before the cex predicate runs. Given a probe trajectory Tk, only
/// trajectories with |Tu| <= θ − |Tk| and with both start and end times in
/// [Tk.end − η, Tk.start + η] can share a joinable subset with Tk.
///
/// Implementation notes: time is discretized into fixed-size bins of
/// `time_bin` seconds; because an indexed trajectory's span never exceeds η
/// (longer ones cannot join anything and are skipped), the (start, end) grid
/// is stored as a diagonal band, keeping memory linear in the time window
/// rather than quadratic. The index is an over-approximation — cex re-checks
/// the exact bounds — but never misses a feasible candidate.
class LengthIndexedGrids {
 public:
  struct Options {
    /// Maximum valid-trajectory length θ (records).
    size_t theta = 8;
    /// Maximum valid-trajectory time span η (seconds).
    Timestamp eta = 600;
    /// Grid bin width tb (seconds).
    Timestamp time_bin = 60;
  };

  /// Builds the index over `set` in Θ(|set|).
  LengthIndexedGrids(const TrajectorySet& set, const Options& options);

  /// Appends to `out` all indexed trajectories (other than `k` itself) that
  /// satisfy the grid-level length and time-window criteria for pairing
  /// with trajectory `k`. A superset of the exact answer.
  void CollectCandidates(TrajIndex k, std::vector<TrajIndex>* out) const;

  /// Number of trajectories actually indexed (those with length <= θ and
  /// span <= η).
  size_t num_indexed() const { return num_indexed_; }

  const Options& options() const { return options_; }

 private:
  size_t CellIndex(size_t length, size_t start_bin, size_t span_off) const {
    return ((length - 1) * num_bins_ + start_bin) * band_ + span_off;
  }

  const TrajectorySet& set_;
  Options options_;
  Timestamp base_time_ = 0;
  size_t num_bins_ = 0;
  size_t band_ = 0;  // max (end_bin - start_bin) + 1 for indexed spans
  size_t num_indexed_ = 0;
  // cells_[CellIndex(len, sbin, off)] lists trajectories of that length
  // whose start falls in sbin and whose end bin is sbin + off.
  std::vector<std::vector<TrajIndex>> cells_;
};

}  // namespace idrepair

#endif  // IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_
