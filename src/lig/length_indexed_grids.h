#ifndef IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_
#define IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "traj/tracking_record.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Length-Indexed Grids (LIG, §5.1 of the paper): a three-dimensional index
/// over (trajectory length, start time, end time) that prunes candidate
/// pairs before the cex predicate runs. Given a probe trajectory Tk, only
/// trajectories with |Tu| <= θ − |Tk| and with both start and end times in
/// [Tk.end − η, Tk.start + η] can share a joinable subset with Tk.
///
/// Implementation notes: time is discretized into fixed-size bins of
/// `time_bin` seconds; because an indexed trajectory's span never exceeds η
/// (longer ones cannot join anything and are skipped), the (start, end) grid
/// is stored as a diagonal band, keeping memory linear in the time window
/// rather than quadratic. The index is an over-approximation — cex re-checks
/// the exact bounds — but never misses a feasible candidate.
///
/// ### Two representations
/// A freshly built index is a flat CSR arena (immutable, cache-friendly —
/// the batch pipeline's hot path). The first call to a mutating operation
/// (`Insert`/`Remove`/`InsertSpan`/`RemoveSpan`) explodes the CSR into
/// per-cell buckets keyed by (length, start_bin, span_off), after which the
/// index supports O(log cells + bucket) maintenance — the streaming engine's
/// per-record path. Both representations answer the same probes with the
/// same candidates in the same order (buckets stay ascending), and
/// `ToParts()` of a dynamic index canonically re-linearizes to the CSR a
/// from-scratch build over the same members would produce, which is what the
/// insert∘remove fixed-point tests pin.
class LengthIndexedGrids {
 public:
  struct Options {
    /// Maximum valid-trajectory length θ (records).
    size_t theta = 8;
    /// Maximum valid-trajectory time span η (seconds).
    Timestamp eta = 600;
    /// Grid bin width tb (seconds).
    Timestamp time_bin = 60;
  };

  /// The complete serializable state of a built index. Together with the
  /// indexed TrajectorySet this reconstructs the index exactly — the
  /// snapshot format persists Parts so daemon startup is load-not-rebuild.
  struct Parts {
    Options options;
    Timestamp base_time = 0;
    uint64_t num_bins = 0;
    uint64_t band = 0;
    uint64_t num_indexed = 0;
    std::vector<uint32_t> cell_offsets;
    std::vector<TrajIndex> cell_entries;
  };

  /// Builds the index over `set` in Θ(|set|).
  LengthIndexedGrids(const TrajectorySet& set, const Options& options);

  /// An empty dynamic index anchored at `base_time` (every inserted span
  /// must start at or after it). Entries are caller-defined handles fed via
  /// InsertSpan/RemoveSpan; the set-bound probes (`CollectCandidates`,
  /// `Insert`/`Remove` by TrajIndex) are not meaningful on a dynamic index —
  /// use `CollectCandidatesSpan`.
  static LengthIndexedGrids Dynamic(const Options& options,
                                    Timestamp base_time);

  /// Copies out the serializable state. Building a fresh index over the
  /// same set with parts.options yields byte-identical Parts (the CSR fill
  /// is deterministic, and a dynamic index re-linearizes canonically),
  /// which the snapshot round-trip and fixed-point tests rely on.
  Parts ToParts() const;

  /// Reconstructs an index over `set` from previously captured Parts,
  /// validating every structural invariant (offset table shape, monotone
  /// offsets, entry bounds, the num_indexed == entries count identity).
  /// `set` must outlive the returned index, exactly as for the building
  /// constructor.
  static Result<std::unique_ptr<LengthIndexedGrids>> FromParts(
      const TrajectorySet& set, Parts parts);

  /// Appends to `out` all indexed trajectories (other than `k` itself) that
  /// satisfy the grid-level length and time-window criteria for pairing
  /// with trajectory `k`. A superset of the exact answer.
  void CollectCandidates(TrajIndex k, std::vector<TrajIndex>* out) const;

  /// CollectCandidates for an explicit probe geometry instead of a set
  /// member: appends every indexed entry whose bucket passes the grid-level
  /// length and time-window criteria against a probe of `length` records
  /// spanning [start, end]. Works in both representations; does not
  /// self-exclude (a probe that is itself indexed appears in its own
  /// answer — streaming callers de-index before re-probing).
  void CollectCandidatesSpan(size_t length, Timestamp start, Timestamp end,
                             std::vector<TrajIndex>* out) const;

  /// Adds set member `i` to the index (switching to the dynamic
  /// representation on first use). Returns false when the trajectory is not
  /// indexable (empty, longer than θ, span over η, or band-straddling) or
  /// is already present — exactly the trajectories a from-scratch build
  /// would skip, so insert∘remove round-trips are fixed points.
  bool Insert(TrajIndex i);

  /// Removes set member `i` from the index (switching to the dynamic
  /// representation on first use). Returns false when `i` was not indexed.
  bool Remove(TrajIndex i);

  /// Insert/Remove with explicit geometry for caller-defined handles (the
  /// streaming engine indexes fragment handles, not TrajectorySet members).
  /// `start` must be >= the index base time. Same indexability rules and
  /// return-value contract as Insert/Remove.
  bool InsertSpan(TrajIndex handle, size_t length, Timestamp start,
                  Timestamp end);
  bool RemoveSpan(TrajIndex handle, size_t length, Timestamp start,
                  Timestamp end);

  /// Number of trajectories actually indexed (those with length <= θ and
  /// span <= η).
  size_t num_indexed() const { return num_indexed_; }

  /// The trajectories of length `length` starting in bin `start_bin` and
  /// ending in bin `start_bin + span_off`, ascending. A view into the
  /// index's storage, valid until the next mutating call (indefinitely for
  /// a never-mutated index; DESIGN.md §9).
  Span<const TrajIndex> Bucket(size_t length, size_t start_bin,
                               size_t span_off) const;

  /// Heap bytes of the index storage (CSR arena, or the dynamic buckets).
  size_t MemoryBytes() const;

  const Options& options() const { return options_; }

  /// The set this index was built over. Identity matters: a prebuilt index
  /// is only valid for probes into this exact object (see
  /// RepairOptions::resident_lig).
  const TrajectorySet& indexed_set() const { return set_; }

 private:
  /// FromParts' trusting constructor — validation happens in the factory.
  LengthIndexedGrids(const TrajectorySet& set, Parts parts);

  size_t CellIndex(size_t length, size_t start_bin, size_t span_off) const {
    return ((length - 1) * num_bins_ + start_bin) * band_ + span_off;
  }

  /// The cell a trajectory indexes into, or SIZE_MAX when it is skipped
  /// (too long, span exceeds η, or straddles the band).
  size_t CellFor(const Trajectory& t) const;

  /// Grid coordinates for an explicit geometry, or false when the span is
  /// not indexable (same skip rules as CellFor). Grows nothing.
  bool SpanGeometry(size_t length, Timestamp start, Timestamp end,
                    size_t* sbin, size_t* off) const;

  /// Switches to the dynamic per-cell representation (no-op when already
  /// dynamic). Buckets keep their CSR (ascending) order.
  void EnterDynamic();

  const TrajectorySet& set_;
  Options options_;
  Timestamp base_time_ = 0;
  size_t num_bins_ = 0;
  size_t band_ = 0;  // max (end_bin - start_bin) + 1 for indexed spans
  size_t num_indexed_ = 0;
  // Grid buckets in CSR form: the trajectories of cell c occupy
  // cell_entries_[cell_offsets_[c] .. cell_offsets_[c+1]). One flat arena
  // replaces a vector-of-vectors whose headers alone dominated the index
  // footprint (most cells are empty).
  std::vector<uint32_t> cell_offsets_;
  std::vector<TrajIndex> cell_entries_;
  // Dynamic representation: only nonempty cells, keyed (length, start_bin,
  // span_off). The ordered map makes ToParts' re-linearization canonical —
  // lexicographic key order is exactly ascending CellIndex order.
  bool dynamic_ = false;
  std::map<std::tuple<size_t, size_t, size_t>, std::vector<TrajIndex>>
      dyn_cells_;
};

}  // namespace idrepair

#endif  // IDREPAIR_LIG_LENGTH_INDEXED_GRIDS_H_
