#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace idrepair {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    // The comma (if any) was written with the key.
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) Raw(",");
    has_element_.back() = true;
  }
}

void JsonWriter::Escaped(std::string_view text) {
  Raw("\"");
  for (char c : text) {
    switch (c) {
      case '"':
        Raw("\\\"");
        break;
      case '\\':
        Raw("\\\\");
        break;
      case '\n':
        Raw("\\n");
        break;
      case '\r':
        Raw("\\r");
        break;
      case '\t':
        Raw("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          Raw(buf);
        } else {
          out_->put(c);
        }
    }
  }
  Raw("\"");
}

void JsonWriter::BeginObject() {
  BeforeValue();
  Raw("{");
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  Raw("}");
}

void JsonWriter::BeginArray() {
  BeforeValue();
  Raw("[");
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  Raw("]");
}

void JsonWriter::Key(std::string_view key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) Raw(",");
    has_element_.back() = true;
  }
  Escaped(key);
  Raw(":");
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  Escaped(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  *out_ << value;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  *out_ << value;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    Raw("null");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  Raw(buf);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  Raw(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  Raw("null");
}

void JsonWriter::NumberOrString(std::string_view cell) {
  if (!cell.empty()) {
    std::string copy(cell);
    char* end = nullptr;
    double parsed = std::strtod(copy.c_str(), &end);
    if (end == copy.c_str() + copy.size() && std::isfinite(parsed)) {
      Double(parsed);
      return;
    }
  }
  String(cell);
}

}  // namespace idrepair
