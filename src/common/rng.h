#ifndef IDREPAIR_COMMON_RNG_H_
#define IDREPAIR_COMMON_RNG_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace idrepair {

/// Deterministic pseudo-random source used by all generators in the library.
/// Wraps a fixed engine so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    assert(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Log-normal sample where the underlying normal has the given
  /// location/scale parameters.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Samples an index according to non-negative weights (not necessarily
  /// normalized). Requires at least one positive weight.
  size_t WeightedIndex(const std::vector<double>& weights) {
    assert(!weights.empty());
    return std::discrete_distribution<size_t>(weights.begin(), weights.end())(
        engine_);
  }

  /// Random lowercase letter 'a'..'z'.
  char LowercaseLetter() { return static_cast<char>('a' + UniformInt(0, 25)); }

  template <typename It>
  void Shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  /// Derives an independent child RNG; useful to decouple generation stages
  /// so adding draws to one stage does not perturb another.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_RNG_H_
