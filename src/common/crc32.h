#ifndef IDREPAIR_COMMON_CRC32_H_
#define IDREPAIR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace idrepair {

/// CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320), the integrity
/// check of the snapshot file format. Table-driven, one byte per step —
/// snapshots are written rarely and read once at startup, so simplicity
/// beats a slice-by-8 here.
///
/// `seed` is a previous Crc32 return value, so checksums can be computed
/// incrementally over non-contiguous buffers:
///   uint32_t c = Crc32(a.data(), a.size());
///   c = Crc32(b.data(), b.size(), c);
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_CRC32_H_
