#ifndef IDREPAIR_COMMON_STATUS_H_
#define IDREPAIR_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace idrepair {

/// Error categories used across the library. Mirrors the Status idiom used
/// by storage-engine codebases (RocksDB/Arrow): fallible operations return a
/// Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kIoError,
  kUnimplemented,
  kInternal,
  kResourceExhausted,  // allocation/budget failure (possibly injected)
  kCancelled,          // cooperative cancellation observed
  kDeadlineExceeded,   // a RepairOptions::deadline_ms budget ran out
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the success path
/// (no allocation); errors carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error holder. Accessing the value of an error Result is a
/// programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define IDREPAIR_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::idrepair::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_STATUS_H_
