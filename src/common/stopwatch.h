#ifndef IDREPAIR_COMMON_STOPWATCH_H_
#define IDREPAIR_COMMON_STOPWATCH_H_

#include <chrono>
#include <ctime>

namespace idrepair {

/// Monotonic wall-clock stopwatch for the benchmark harness and the repair
/// pipeline's per-phase statistics.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process-CPU-time stopwatch: the sum of CPU seconds burned by *all*
/// threads of the process since construction or the last Restart(). The
/// wall/CPU pair in RepairStats makes parallel speedup visible: wall time
/// drops with more threads while CPU time stays roughly flat.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

  /// Stable name of the clock backing this stopwatch, detected once per
  /// process: "process_cputime" (POSIX CLOCK_PROCESS_CPUTIME_ID, sums all
  /// threads) or "std_clock" (the portable std::clock() fallback, whose
  /// meaning varies by platform). Recorded in RepairStats so CPU-second
  /// numbers from different builds are never compared unknowingly.
  static const char* SourceName() {
    return UsesProcessCpuTime() ? "process_cputime" : "std_clock";
  }

 private:
  /// Probes the preferred clock once; the result never changes within a
  /// process, so Now() and SourceName() stay consistent with each other.
  static bool UsesProcessCpuTime() {
#if defined(__linux__) || defined(__APPLE__)
    static const bool available = [] {
      timespec ts{};
      return clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0;
    }();
    return available;
#else
    return false;
#endif
  }

  static double Now() {
#if defined(__linux__) || defined(__APPLE__)
    if (UsesProcessCpuTime()) {
      timespec ts{};
      if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
      }
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double start_;
};

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_STOPWATCH_H_
