#ifndef IDREPAIR_COMMON_STOPWATCH_H_
#define IDREPAIR_COMMON_STOPWATCH_H_

#include <chrono>

namespace idrepair {

/// Monotonic wall-clock stopwatch for the benchmark harness and the repair
/// pipeline's per-phase statistics.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_STOPWATCH_H_
