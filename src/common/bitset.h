#ifndef IDREPAIR_COMMON_BITSET_H_
#define IDREPAIR_COMMON_BITSET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace idrepair {

/// A packed fixed-universe bitset over 64-bit words: the compact membership
/// structure behind the transition-graph edge matrix and the repair-graph
/// conflict (cover) index. Eight bits per byte where the seed stored one —
/// and, more importantly, word-granular OR/popcount so "discard every
/// candidate conflicting with a committed repair" is O(n/64) instead of a
/// per-neighbor scatter.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t num_bits) { Resize(num_bits); }

  /// Grows or shrinks to exactly `num_bits`; newly exposed bits are clear.
  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.resize(WordCount(num_bits), 0);
    ClearTail();
  }

  void Assign(size_t num_bits, bool value) {
    num_bits_ = num_bits;
    words_.assign(WordCount(num_bits), value ? ~uint64_t{0} : 0);
    ClearTail();
  }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool Test(size_t i) const {
    assert(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Reset(size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Sets bit `i` and reports whether it was previously clear — the
  /// "newly invalidated?" probe the selection counters need.
  bool TestAndSet(size_t i) {
    assert(i < num_bits_);
    uint64_t& w = words_[i >> 6];
    uint64_t mask = uint64_t{1} << (i & 63);
    bool was_clear = (w & mask) == 0;
    w |= mask;
    return was_clear;
  }

  /// this |= other, returning how many bits flipped 0→1. Both bitsets must
  /// share a universe. O(words), the conflict-invalidation fast path.
  size_t OrWithCount(const DynamicBitset& other) {
    assert(num_bits_ == other.num_bits_);
    size_t flipped = 0;
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t before = words_[w];
      uint64_t merged = before | other.words_[w];
      flipped += static_cast<size_t>(std::popcount(merged & ~before));
      words_[w] = merged;
    }
    return flipped;
  }

  /// True iff this and `other` share any set bit. O(words).
  bool Intersects(const DynamicBitset& other) const {
    assert(num_bits_ == other.num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  /// Heap bytes held by the word array (footprint accounting).
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

  /// The packed word array, low bit of words()[0] = bit 0. Bits past
  /// size() in the last word are guaranteed zero (ClearTail), so the raw
  /// words are a canonical encoding of the bitset — the snapshot format
  /// serializes and cross-checks them directly.
  const std::vector<uint64_t>& words() const { return words_; }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  static size_t WordCount(size_t num_bits) { return (num_bits + 63) / 64; }

 private:
  // Bits past num_bits_ in the last word stay zero so Count()/OrWithCount()
  // never see garbage.
  void ClearTail() {
    size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  std::vector<uint64_t> words_;
  size_t num_bits_ = 0;
};

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_BITSET_H_
