#include "common/string_util.h"

#include <cctype>
#include <iomanip>
#include <sstream>

namespace idrepair {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToFixed(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return oss.str();
}

bool IsLowercaseAlpha(std::string_view s) {
  for (char c : s) {
    if (c < 'a' || c > 'z') return false;
  }
  return true;
}

}  // namespace idrepair
