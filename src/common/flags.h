#ifndef IDREPAIR_COMMON_FLAGS_H_
#define IDREPAIR_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace idrepair {

/// Minimal command-line parser for the CLI tool: positional arguments plus
/// `--key=value` / `--key value` flags and boolean `--switch` flags.
class FlagParser {
 public:
  /// Parses argv (excluding argv[0]). A token starting with "--" is a flag;
  /// everything else is positional. `--key value` binds the next token as
  /// the value unless the flag was declared boolean via `bool_flags`.
  static Result<FlagParser> Parse(int argc, const char* const* argv,
                                  const std::vector<std::string>& bool_flags
                                  = {});

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  /// String flag with default.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Integer flag with default; InvalidArgument on malformed values.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;

  /// Double flag with default; InvalidArgument on malformed values.
  Result<double> GetDouble(const std::string& key, double fallback) const;

  /// Boolean switch (present => true).
  bool GetBool(const std::string& key) const { return Has(key); }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_FLAGS_H_
