#include "common/flags.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>

namespace idrepair {

Result<FlagParser> FlagParser::Parse(
    int argc, const char* const* argv,
    const std::vector<std::string>& bool_flags) {
  FlagParser parser;
  for (int i = 0; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      parser.positional_.push_back(std::move(token));
      continue;
    }
    std::string body = token.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      parser.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    bool is_bool = std::find(bool_flags.begin(), bool_flags.end(), body) !=
                   bool_flags.end();
    if (is_bool) {
      parser.flags_[body] = "true";
    } else {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + body + " needs a value");
      }
      parser.flags_[body] = argv[++i];
    }
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

Result<int64_t> FlagParser::GetInt(const std::string& key,
                                   int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  int64_t value = 0;
  const std::string& s = it->second;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("flag --" + key +
                                   " expects an integer, got '" + s + "'");
  }
  return value;
}

Result<double> FlagParser::GetDouble(const std::string& key,
                                     double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  // std::from_chars for double is incomplete in some libstdc++ versions;
  // strtod with full-consumption check is equivalent here.
  const std::string& s = it->second;
  char* end = nullptr;
  double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty()) {
    return Status::InvalidArgument("flag --" + key +
                                   " expects a number, got '" + s + "'");
  }
  return value;
}

}  // namespace idrepair
