#ifndef IDREPAIR_COMMON_RESOURCE_H_
#define IDREPAIR_COMMON_RESOURCE_H_

#include <cstddef>

namespace idrepair {

/// Peak resident set size of this process in bytes, from getrusage(2).
/// Monotone over the process lifetime — useful as a high-water mark in
/// bench reports, not as a before/after delta within one run. Returns 0 on
/// platforms where the measurement is unavailable.
size_t PeakRssBytes();

/// Current resident set size in bytes (/proc/self/statm on Linux), or 0
/// when unavailable. Unlike the peak, this can go down, so bench stages can
/// report their own live footprint.
size_t CurrentRssBytes();

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_RESOURCE_H_
