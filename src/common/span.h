#ifndef IDREPAIR_COMMON_SPAN_H_
#define IDREPAIR_COMMON_SPAN_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <type_traits>
#include <vector>

namespace idrepair {

/// A non-owning view of a contiguous element range — the data-plane return
/// type of every hot accessor (graph neighbor lists, candidate member sets,
/// LIG buckets). Unlike returning `const std::vector<T>&`, a Span keeps the
/// container layout out of the public contract, so the storage behind an
/// accessor can move to a CSR arena or an interned pool without touching
/// callers.
///
/// Differences from std::span<const T> that earn it a home here: ordered
/// value comparison against any contiguous container (the byte-identity
/// suites compare neighbor lists against golden vectors), gtest-friendly
/// streaming, and an implicit vector conversion for call sites that must
/// materialize (map keys).
///
/// Lifetime: a Span is valid only while the structure it was read from is
/// alive and unmutated. Accessors document their invalidation rules; the
/// blanket rule is "no views held across mutation" (DESIGN.md §9).
template <typename T>
class Span {
 public:
  /// The element type with cv stripped, so Span<const T> still converts
  /// from std::vector<T> (vector<const T> is not a thing).
  using value_type = std::remove_cv_t<T>;
  using const_iterator = const T*;

  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// Views a whole vector. Implicit on purpose: accessors migrating from
  /// `const std::vector<T>&` keep working call sites source-compatible.
  Span(const std::vector<value_type>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}
  /// Views a braced literal. The backing array lives only to the end of the
  /// full expression, so this is for immediate-consumption arguments only —
  /// exactly the case GCC's init-list-lifetime warning cannot distinguish.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
  Span(std::initializer_list<value_type> il)  // NOLINT(runtime/explicit)
      : data_(il.begin()), size_(il.size()) {}
#pragma GCC diagnostic pop

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  const T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  const T& front() const {
    assert(size_ > 0);
    return data_[0];
  }
  const T& back() const {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

  Span subspan(size_t offset, size_t count) const {
    assert(offset + count <= size_);
    return Span(data_ + offset, count);
  }

  /// Materializes a copy (map keys, mutation staging).
  std::vector<value_type> ToVector() const {
    return std::vector<value_type>(begin(), end());
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

template <typename T>
bool operator==(Span<T> a, Span<T> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <typename T>
bool operator!=(Span<T> a, Span<T> b) {
  return !(a == b);
}

template <typename T>
bool operator==(Span<T> a, const std::vector<typename Span<T>::value_type>& b) {
  return a == Span<T>(b);
}

template <typename T>
bool operator==(const std::vector<typename Span<T>::value_type>& a, Span<T> b) {
  return Span<T>(a) == b;
}

template <typename T>
bool operator!=(Span<T> a, const std::vector<typename Span<T>::value_type>& b) {
  return !(a == b);
}

template <typename T>
bool operator!=(const std::vector<typename Span<T>::value_type>& a, Span<T> b) {
  return !(a == b);
}

template <typename T>
std::ostream& operator<<(std::ostream& os, Span<T> s) {
  os << "[";
  for (size_t i = 0; i < s.size(); ++i) os << (i ? ", " : "") << s[i];
  return os << "]";
}

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_SPAN_H_
