#include "common/resource.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace idrepair {

size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // ru_maxrss is bytes on macOS...
  return static_cast<size_t>(usage.ru_maxrss);
#else
  // ...and kilobytes on Linux.
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

size_t CurrentRssBytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long resident = 0;
  int matched = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  long page = sysconf(_SC_PAGESIZE);
  return static_cast<size_t>(resident) * static_cast<size_t>(page);
#else
  return 0;
#endif
}

}  // namespace idrepair
