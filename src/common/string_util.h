#ifndef IDREPAIR_COMMON_STRING_UTIL_H_
#define IDREPAIR_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace idrepair {

/// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` ({"a","b"} -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Formats a double with fixed decimal digits (no std::format in GCC 12).
std::string ToFixed(double value, int digits);

/// True if `s` consists only of characters in [a-z].
bool IsLowercaseAlpha(std::string_view s);

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_STRING_UTIL_H_
