#ifndef IDREPAIR_COMMON_FLAT_HASH_H_
#define IDREPAIR_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace idrepair {

/// SplitMix64 finalizer: a full-avalanche mix so low bits of the table
/// index depend on every input bit — required because FlatHash64Map masks
/// with a power-of-2 capacity instead of dividing by a prime.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Open-addressing hash map from uint64 keys to small trivially-copyable
/// values: linear probing over two parallel flat arrays, power-of-2
/// capacity, ≤ 7/8 load. Exists because the interning dictionary and the
/// pair-similarity memo put a map lookup on the per-candidate hot path,
/// where std::unordered_map's modulo-prime bucketing (an integer division
/// per probe) and node-per-entry chaining dominated the generation profile.
///
/// Contract: no erase, key `kEmptyKey` (all ones) is reserved as the empty
/// slot marker, Insert requires the key to be absent (callers always Find
/// first). Values are stored by value; pointers returned by Find are valid
/// until the next Insert.
template <typename V>
class FlatHash64Map {
 public:
  static constexpr uint64_t kEmptyKey = ~0ull;

  /// Pointer to the value for `key`, or nullptr. Never grows the table.
  V* Find(uint64_t key) {
    if (keys_.empty()) return nullptr;
    const size_t mask = keys_.size() - 1;
    for (size_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) return &values_[i];
      if (keys_[i] == kEmptyKey) return nullptr;
    }
  }

  /// Inserts an absent key. Invalidates pointers from earlier Finds when
  /// it triggers growth.
  void Insert(uint64_t key, V value) {
    if ((size_ + 1) * 8 > keys_.size() * 7) Grow();
    const size_t mask = keys_.size() - 1;
    size_t i = Mix64(key) & mask;
    while (keys_[i] != kEmptyKey) i = (i + 1) & mask;
    keys_[i] = key;
    values_[i] = value;
    ++size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Empties the map but KEEPS its capacity: one fill of the key array
  /// instead of a rebuild-from-64 growth ladder. This is the per-task
  /// reset of pool-owned scratch memos — entries from a previous input
  /// must not leak across tasks, but the table footprint should.
  void Reset() {
    if (!keys_.empty()) keys_.assign(keys_.size(), kEmptyKey);
    size_ = 0;
  }

  /// Releases all storage (capacity included) — the Freeze() primitive.
  void Clear() {
    keys_.clear();
    keys_.shrink_to_fit();
    values_.clear();
    values_.shrink_to_fit();
    size_ = 0;
  }

  size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(uint64_t) +
           values_.capacity() * sizeof(V);
  }

 private:
  void Grow() {
    const size_t cap = keys_.empty() ? 64 : keys_.size() * 2;
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(cap, kEmptyKey);
    values_.assign(cap, V());
    const size_t mask = cap - 1;
    for (size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == kEmptyKey) continue;
      size_t i = Mix64(old_keys[j]) & mask;
      while (keys_[i] != kEmptyKey) i = (i + 1) & mask;
      keys_[i] = old_keys[j];
      values_[i] = old_values[j];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  size_t size_ = 0;
};

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_FLAT_HASH_H_
