#ifndef IDREPAIR_COMMON_JSON_H_
#define IDREPAIR_COMMON_JSON_H_

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace idrepair {

/// Minimal streaming JSON writer (no dependency, no DOM). Used by the
/// observability exporters (Chrome trace, metrics snapshots), the CLI's
/// --stats-json dump, and the bench harness's BENCH_*.json mirror.
///
/// The writer tracks the container stack and inserts commas automatically;
/// the caller is responsible for well-formedness beyond that (a Key must be
/// followed by exactly one value, arrays contain values only).
///
///   JsonWriter w(&out);
///   w.BeginObject();
///   w.Key("name"); w.String("fig14");
///   w.Key("rows"); w.BeginArray(); w.Int(1); w.Int(2); w.EndArray();
///   w.EndObject();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object member key; escapes like String.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  /// Finite doubles render with up to 17 significant digits (round-trip
  /// exact); NaN and infinities render as null (JSON has no spelling for
  /// them).
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Writes the cell as a number when it parses fully as one ("12.5",
  /// "3e4"), else as a string ("yes", "2.13x"). The bench mirror uses this
  /// so numeric table cells stay machine-readable.
  void NumberOrString(std::string_view cell);

 private:
  void BeforeValue();
  void Raw(std::string_view text) { *out_ << text; }
  void Escaped(std::string_view text);

  std::ostream* out_;
  // One frame per open container: true once the first element was written
  // (so the next one needs a comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace idrepair

#endif  // IDREPAIR_COMMON_JSON_H_
