#ifndef IDREPAIR_EVAL_DIAGNOSTICS_H_
#define IDREPAIR_EVAL_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "gen/dataset.h"
#include "repair/options.h"
#include "repair/repairer.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Why an erroneous trajectory was not correctly repaired.
enum class FailureReason {
  kFixed,                 // not a failure: rewritten to the true ID
  kEntitySpanExceedsEta,  // the true trajectory's span violates η
  kEntityLengthExceedsTheta,   // its record count violates θ
  kEntityFragmentsExceedZeta,  // it fractured into more than ζ pieces
  kWrongTargetChosen,     // the correct joinable subset became a candidate,
                          // but Eq. (5) picked an erroneous member's ID
                          // (typically an equal-length tie)
  kCandidateMissing,      // no candidate matches the entity's fragment set
                          // for another reason (e.g. predicate bounds on a
                          // sub-merge)
  kCorrectCandidateNotSelected,  // generated but lost the selection phase
};

/// Returns a stable display name for a failure reason.
const char* FailureReasonToString(FailureReason reason);

/// Per-trajectory diagnosis plus aggregate counts.
struct RepairDiagnostics {
  /// reason per *erroneous* observed trajectory, aligned with `erroneous`.
  std::vector<TrajIndex> erroneous;
  std::vector<FailureReason> reasons;
  /// histogram over FailureReason (index = enum value).
  std::vector<size_t> counts;

  size_t total_erroneous() const { return erroneous.size(); }

  /// Multi-line human-readable summary.
  std::string Describe() const;
};

/// Explains, against ground truth, what happened to every erroneous
/// trajectory in a repair run: fixed, structurally irreparable under the
/// θ/η/ζ bounds, mis-targeted by Eq. (5), lost in selection, or missing a
/// candidate altogether. This is the tool that turns "f-measure = 0.85"
/// into an actionable account of the residual 0.15.
RepairDiagnostics DiagnoseRepair(const Dataset& dataset,
                                 const TrajectorySet& observed,
                                 const RepairResult& result,
                                 const RepairOptions& options);

}  // namespace idrepair

#endif  // IDREPAIR_EVAL_DIAGNOSTICS_H_
