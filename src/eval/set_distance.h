#ifndef IDREPAIR_EVAL_SET_DISTANCE_H_
#define IDREPAIR_EVAL_SET_DISTANCE_H_

#include "traj/trajectory.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// A principled distance between *sets* of trajectories, OSPA-style after
/// Bento & Zhu ("A metric for sets of trajectories that is practical and
/// mathematically consistent"): trajectories are matched one-to-one, each
/// matched pair contributes its trajectory distance, every unmatched
/// trajectory contributes the cutoff, and the total is normalized by the
/// larger cardinality — so the result lives in [0, cutoff], is symmetric,
/// and 0 iff the sets are identical. The scenario tier uses it as a repair
/// oracle stronger than exact-match f-measure: repairs that merge, split,
/// or mislabel fragments all move the distance, not just the rewritten-ID
/// tally.
struct SetDistanceOptions {
  /// Per-trajectory cost cap (the "c" of OSPA): the price of an unmatched
  /// trajectory, and the ceiling of any matched pair's distance.
  double cutoff = 1.0;
  /// Weight of the ID term vs the record-overlap term in the per-pair
  /// distance (both in [0, 1]).
  double id_weight = 0.5;
};

/// Per-pair base distance in [0, 1]:
///   id_weight     * normalized edit distance of the two IDs
/// + (1-id_weight) * Jaccard distance of the two (loc, ts) record sets.
/// 0 iff same ID and identical records.
double TrajectoryDistance(const Trajectory& a, const Trajectory& b,
                          const SetDistanceOptions& options = {});

/// Greedy-assignment OSPA distance between the two sets, in [0, cutoff].
/// Exact-ID pairs are matched first, the remainder greedily by cheapest
/// pair; the greedy sum upper-bounds the optimal assignment, so asserting
/// `TrajectorySetDistance(...) <= bound` certifies the true OSPA distance
/// is within `bound` as well.
double TrajectorySetDistance(const TrajectorySet& a, const TrajectorySet& b,
                             const SetDistanceOptions& options = {});

}  // namespace idrepair

#endif  // IDREPAIR_EVAL_SET_DISTANCE_H_
