#include "eval/diagnostics.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "eval/metrics.h"
#include "fault/failpoint.h"

namespace idrepair {

const char* FailureReasonToString(FailureReason reason) {
  switch (reason) {
    case FailureReason::kFixed:
      return "fixed";
    case FailureReason::kEntitySpanExceedsEta:
      return "entity span exceeds eta";
    case FailureReason::kEntityLengthExceedsTheta:
      return "entity length exceeds theta";
    case FailureReason::kEntityFragmentsExceedZeta:
      return "entity fragments exceed zeta";
    case FailureReason::kWrongTargetChosen:
      return "wrong target chosen (Eq. 5)";
    case FailureReason::kCandidateMissing:
      return "correct candidate missing";
    case FailureReason::kCorrectCandidateNotSelected:
      return "correct candidate not selected";
  }
  return "unknown";
}

std::string RepairDiagnostics::Describe() const {
  std::ostringstream out;
  out << "erroneous trajectories: " << total_erroneous() << "\n";
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    out << "  " << FailureReasonToString(static_cast<FailureReason>(i))
        << ": " << counts[i] << "\n";
  }
  return out.str();
}

RepairDiagnostics DiagnoseRepair(const Dataset& dataset,
                                 const TrajectorySet& observed,
                                 const RepairResult& result,
                                 const RepairOptions& options) {
  fault::MaybePerturb("eval.diagnostics.diagnose");
  RepairDiagnostics diag;
  diag.counts.assign(7, 0);
  auto truth = ComputeFragmentTruth(dataset, observed);

  // Entity -> its fragments (ascending, matching candidate member sets).
  std::unordered_map<std::string, std::vector<TrajIndex>> fragments;
  for (TrajIndex t = 0; t < observed.size(); ++t) {
    fragments[truth[t]].push_back(t);
  }

  // Index the candidate set: does a candidate with exactly this member set
  // exist, and with which target? Keys materialize the interned spans (map
  // keys must own their storage).
  std::map<std::vector<TrajIndex>, std::vector<size_t>> by_members;
  for (size_t r = 0; r < result.candidates.size(); ++r) {
    by_members[result.candidates.members(r).ToVector()].push_back(r);
  }

  auto classify = [&](TrajIndex t) -> FailureReason {
    auto it = result.rewrites.find(t);
    if (it != result.rewrites.end() && it->second == truth[t]) {
      return FailureReason::kFixed;
    }
    const auto& frags = fragments.at(truth[t]);
    // Structural bounds on the whole entity.
    size_t records = 0;
    Timestamp lo = 0;
    Timestamp hi = 0;
    bool first = true;
    for (TrajIndex f : frags) {
      records += observed.at(f).size();
      Timestamp s = observed.at(f).start_time();
      Timestamp e = observed.at(f).end_time();
      if (first) {
        lo = s;
        hi = e;
        first = false;
      } else {
        lo = std::min(lo, s);
        hi = std::max(hi, e);
      }
    }
    if (hi - lo > options.eta) return FailureReason::kEntitySpanExceedsEta;
    if (records > options.theta) {
      return FailureReason::kEntityLengthExceedsTheta;
    }
    if (frags.size() > options.zeta) {
      return FailureReason::kEntityFragmentsExceedZeta;
    }
    auto cand_it = by_members.find(frags);
    if (cand_it == by_members.end()) {
      return FailureReason::kCandidateMissing;
    }
    for (size_t cand : cand_it->second) {
      if (result.candidates.target_id(cand) == truth[t]) {
        return FailureReason::kCorrectCandidateNotSelected;
      }
    }
    return FailureReason::kWrongTargetChosen;
  };

  for (TrajIndex t = 0; t < observed.size(); ++t) {
    if (observed.at(t).id() == truth[t]) continue;
    FailureReason reason = classify(t);
    diag.erroneous.push_back(t);
    diag.reasons.push_back(reason);
    ++diag.counts[static_cast<size_t>(reason)];
  }
  return diag;
}

}  // namespace idrepair
