#include "eval/set_distance.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "sim/edit_distance.h"

namespace idrepair {

namespace {

/// Multiset intersection size of two point lists. Trajectory points are
/// already sorted by (ts, loc) — see the Trajectory constructor — so a
/// linear merge suffices.
size_t SharedPoints(const std::vector<TrajectoryPoint>& a,
                    const std::vector<TrajectoryPoint>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t shared = 0;
  while (i < a.size() && j < b.size()) {
    auto ka = std::tie(a[i].ts, a[i].loc);
    auto kb = std::tie(b[j].ts, b[j].loc);
    if (ka < kb) {
      ++i;
    } else if (kb < ka) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

double JaccardDistance(const Trajectory& a, const Trajectory& b) {
  size_t shared = SharedPoints(a.points(), b.points());
  size_t unioned = a.size() + b.size() - shared;
  if (unioned == 0) return 0.0;
  return 1.0 - static_cast<double>(shared) / static_cast<double>(unioned);
}

double NormalizedIdDistance(const std::string& a, const std::string& b) {
  size_t longer = std::max(a.size(), b.size());
  if (longer == 0) return 0.0;
  return static_cast<double>(EditDistanceBanded(a, b)) /
         static_cast<double>(longer);
}

}  // namespace

double TrajectoryDistance(const Trajectory& a, const Trajectory& b,
                          const SetDistanceOptions& options) {
  return options.id_weight * NormalizedIdDistance(a.id(), b.id()) +
         (1.0 - options.id_weight) * JaccardDistance(a, b);
}

double TrajectorySetDistance(const TrajectorySet& a, const TrajectorySet& b,
                             const SetDistanceOptions& options) {
  size_t n = std::max(a.size(), b.size());
  size_t m = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  if (m == 0) return options.cutoff;

  // Phase 1 — prematch identical IDs. IDs are unique within each set
  // (TrajectorySet groups by ID), so an exact-ID pair is the assignment any
  // sensible matching would make; taking it first keeps the leftover
  // all-pairs phase quadratic only in the *disagreeing* trajectories.
  std::unordered_map<std::string, TrajIndex> b_by_id = b.BuildIdIndex();
  std::vector<bool> b_matched(b.size(), false);
  std::vector<TrajIndex> a_rest;
  double cost = 0.0;
  for (TrajIndex i = 0; i < a.size(); ++i) {
    auto it = b_by_id.find(a.at(i).id());
    if (it != b_by_id.end()) {
      b_matched[it->second] = true;
      cost += std::min(TrajectoryDistance(a.at(i), b.at(it->second), options),
                       options.cutoff);
    } else {
      a_rest.push_back(i);
    }
  }
  std::vector<TrajIndex> b_rest;
  for (TrajIndex j = 0; j < b.size(); ++j) {
    if (!b_matched[j]) b_rest.push_back(j);
  }

  // Phase 2 — greedy matching of the remainder by cheapest pair. Greedy
  // never beats the optimal assignment, so the returned distance
  // upper-bounds the true OSPA value: a passing `<= bound` oracle is sound.
  struct Pair {
    double d;
    TrajIndex ai;
    TrajIndex bj;
  };
  std::vector<Pair> pairs;
  pairs.reserve(a_rest.size() * b_rest.size());
  for (TrajIndex ai : a_rest) {
    for (TrajIndex bj : b_rest) {
      double d = TrajectoryDistance(a.at(ai), b.at(bj), options);
      if (d < options.cutoff) pairs.push_back(Pair{d, ai, bj});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
    return std::tie(x.d, x.ai, x.bj) < std::tie(y.d, y.ai, y.bj);
  });
  std::vector<bool> a_used(a.size(), false);
  std::vector<bool> b_used(b.size(), false);
  size_t matched = a.size() - a_rest.size();
  for (const Pair& p : pairs) {
    if (a_used[p.ai] || b_used[p.bj]) continue;
    a_used[p.ai] = true;
    b_used[p.bj] = true;
    cost += p.d;
    ++matched;
  }
  // Anything still unmatched — cardinality mismatch, or pairs at or above
  // the cutoff (matching those at cutoff cost is equivalent) — pays cutoff.
  cost += static_cast<double>(n - matched) * options.cutoff;
  return cost / static_cast<double>(n);
}

}  // namespace idrepair
