#ifndef IDREPAIR_EVAL_METRICS_H_
#define IDREPAIR_EVAL_METRICS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "gen/dataset.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// The per-trajectory ground truth: for each observed trajectory (fragment),
/// the true entity ID — the majority ground-truth ID among its records
/// (ties break lexicographically; non-majority mixtures only arise under
/// rare observed-ID collisions).
std::vector<std::string> ComputeFragmentTruth(const Dataset& dataset,
                                              const TrajectorySet& observed);

/// The paper's effectiveness metrics (§6.1.2): with Te the trajectories
/// whose observed ID is erroneous, Tr those rewritten by the applied
/// repairs, and Tc those rewritten to the correct ID:
///   recall = |Tc| / |Te|, precision = |Tc| / |Tr|,
///   f-measure = 2·precision·recall / (precision + recall).
struct QualityMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  size_t num_erroneous = 0;  // |Te|
  size_t num_rewritten = 0;  // |Tr|
  size_t num_correct = 0;    // |Tc|
};

/// Evaluates a set of ID rewrites (trajectory index -> new ID) against the
/// fragment truth of `observed`. Degenerate denominators count as perfect:
/// no erroneous trajectories -> recall 1, nothing rewritten -> precision 1.
QualityMetrics EvaluateRewrites(
    const std::vector<std::string>& fragment_truth,
    const TrajectorySet& observed,
    const std::unordered_map<TrajIndex, std::string>& rewrites);

/// Trajectory accuracy (§6.5.1): the fraction of trajectories whose
/// (rewritten or original) ID equals the true ID. The paper measures repair
/// quality improvement as the increase of this ratio under rewrites only
/// (no merging, so the denominator stays fixed).
double TrajectoryAccuracy(
    const std::vector<std::string>& fragment_truth,
    const TrajectorySet& observed,
    const std::unordered_map<TrajIndex, std::string>& rewrites);

}  // namespace idrepair

#endif  // IDREPAIR_EVAL_METRICS_H_
