#include "eval/metrics.h"

#include <map>

#include "fault/failpoint.h"

namespace idrepair {

std::vector<std::string> ComputeFragmentTruth(const Dataset& dataset,
                                              const TrajectorySet& observed) {
  // Delay-only site: quality evaluation returns plain values (no Status
  // channel), so chaos runs can stall it but not fail it.
  fault::MaybePerturb("eval.metrics.fragment_truth");
  // observed_id -> (true_id -> record count). std::map for deterministic
  // tie-breaking on the majority vote.
  std::unordered_map<std::string, std::map<std::string, size_t>> votes;
  for (const auto& r : dataset.records) {
    ++votes[r.observed_id][r.true_id];
  }
  std::vector<std::string> truth(observed.size());
  for (TrajIndex i = 0; i < observed.size(); ++i) {
    const auto& counts = votes.at(observed.at(i).id());
    const std::string* best = nullptr;
    size_t best_count = 0;
    for (const auto& [id, count] : counts) {
      if (count > best_count) {
        best = &id;
        best_count = count;
      }
    }
    truth[i] = *best;
  }
  return truth;
}

QualityMetrics EvaluateRewrites(
    const std::vector<std::string>& fragment_truth,
    const TrajectorySet& observed,
    const std::unordered_map<TrajIndex, std::string>& rewrites) {
  fault::MaybePerturb("eval.metrics.evaluate");
  QualityMetrics m;
  for (TrajIndex i = 0; i < observed.size(); ++i) {
    if (observed.at(i).id() != fragment_truth[i]) ++m.num_erroneous;
  }
  for (const auto& [traj, new_id] : rewrites) {
    ++m.num_rewritten;
    if (new_id == fragment_truth[traj]) ++m.num_correct;
  }
  m.recall = m.num_erroneous == 0
                 ? 1.0
                 : static_cast<double>(m.num_correct) /
                       static_cast<double>(m.num_erroneous);
  m.precision = m.num_rewritten == 0
                    ? 1.0
                    : static_cast<double>(m.num_correct) /
                          static_cast<double>(m.num_rewritten);
  m.f_measure = (m.precision + m.recall) == 0.0
                    ? 0.0
                    : 2.0 * m.precision * m.recall /
                          (m.precision + m.recall);
  return m;
}

double TrajectoryAccuracy(
    const std::vector<std::string>& fragment_truth,
    const TrajectorySet& observed,
    const std::unordered_map<TrajIndex, std::string>& rewrites) {
  if (observed.empty()) return 1.0;
  size_t correct = 0;
  for (TrajIndex i = 0; i < observed.size(); ++i) {
    auto it = rewrites.find(i);
    const std::string& id =
        it != rewrites.end() ? it->second : observed.at(i).id();
    if (id == fragment_truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(observed.size());
}

}  // namespace idrepair
