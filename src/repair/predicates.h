#ifndef IDREPAIR_REPAIR_PREDICATES_H_
#define IDREPAIR_REPAIR_PREDICATES_H_

#include <span>
#include <vector>

#include "graph/reachability.h"
#include "graph/transition_graph.h"
#include "traj/merge.h"
#include "traj/trajectory.h"
#include "traj/tracking_record.h"

namespace idrepair {

/// Evaluates the three joinability predicates of the paper over a fixed
/// transition graph:
///
///  * cex (§3.2.1, Algorithm 1) — can two trajectories coexist in some
///    joinable subset? Necessary condition for an edge of the trajectory
///    graph Gm.
///  * jnb (§3.2.1) — is a set of trajectories a joinable subset, i.e. does
///    the chronological merge of their records form a valid path within the
///    θ/η bounds?
///  * pck (§5.2) — does the minimum cover prefix of a (start-time-sorted)
///    set form a prefix of a valid path? Used to prune clique generation
///    (Theorem 5.3).
///
/// The reachability matrix is built once at construction so each cex hop
/// query is O(1) (the preprocessing of §4.1.1): dense Floyd–Warshall for
/// paper-scale graphs, the hop-bounded sparse build (bound θ−1 — the only
/// hop budget the evaluator ever queries) past 512 locations so city-scale
/// road networks stay feasible.
class PredicateEvaluator {
 public:
  PredicateEvaluator(const TransitionGraph& graph, size_t theta,
                     Timestamp eta);

  /// True iff a trajectory could be a fragment of some valid trajectory on
  /// its own: strictly increasing timestamps, length <= θ, span <= η, and
  /// every consecutive location pair reachable within θ−1 hops. Trajectories
  /// failing this can never appear in any joinable subset.
  bool InternallyFeasible(const Trajectory& t) const;

  /// The cex predicate (Algorithm 1). Assumes both arguments are
  /// individually internally feasible (callers pre-filter with
  /// InternallyFeasible); only cross-trajectory adjacencies are re-checked,
  /// exactly as in the paper's algorithm.
  bool Cex(const Trajectory& a, const Trajectory& b) const;

  /// The jnb predicate over a trajectory set.
  bool Jnb(std::span<const Trajectory* const> trajectories) const;

  /// jnb over an already-merged record sequence.
  bool JnbMerged(const std::vector<MergedPoint>& merged) const;

  /// The pck predicate over a trajectory set sorted by start time: the
  /// minimum cover prefix must be a prefix of a valid path.
  bool Pck(std::span<const Trajectory* const> trajectories) const;

  /// pck over an already-merged record sequence; `num_sources` is the number
  /// of distinct trajectories contributing to it.
  bool PckMerged(const std::vector<MergedPoint>& merged,
                 uint32_t num_sources) const;

  const ReachabilityMatrix& reachability() const { return reach_; }
  const TransitionGraph& graph() const { return *graph_; }
  size_t theta() const { return theta_; }
  Timestamp eta() const { return eta_; }

 private:
  const TransitionGraph* graph_;
  ReachabilityMatrix reach_;
  size_t theta_;
  Timestamp eta_;
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_PREDICATES_H_
