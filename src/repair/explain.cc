#include "repair/explain.h"

#include <sstream>

#include "common/string_util.h"
#include "traj/merge.h"

namespace idrepair {

std::string ExplainCandidate(const TrajectorySet& set,
                             const TransitionGraph& graph,
                             const CandidateRepair& candidate,
                             const RepairOptions& options) {
  std::ostringstream out;
  out << "join {";
  for (size_t i = 0; i < candidate.members.size(); ++i) {
    const Trajectory& t = set.at(candidate.members[i]);
    out << (i ? ", " : "") << t.ToString(graph);
  }
  out << "} -> " << candidate.target_id;
  out << "  [sim=" << ToFixed(candidate.similarity, 3)
      << ", |ivt|=" << candidate.num_invalid()
      << ", rarity=" << candidate.rarity << ", omega=sim+"
      << ToFixed(options.lambda, 2) << "*log_"
      << candidate.rarity + options.rarity_base_offset << "("
      << candidate.num_invalid()
      << ")=" << ToFixed(candidate.effectiveness, 3) << "]";
  return out.str();
}

std::string ExplainRepair(const TrajectorySet& set,
                          const TransitionGraph& graph,
                          const RepairResult& result,
                          const RepairOptions& options, size_t max_repairs) {
  std::ostringstream out;
  out << "candidates: " << result.stats.num_candidates
      << ", selected: " << result.selected.size()
      << ", total omega: " << ToFixed(result.total_effectiveness, 3) << "\n";
  size_t shown = 0;
  for (RepairIndex r : result.selected) {
    if (max_repairs != 0 && shown == max_repairs) {
      out << "  ... (" << result.selected.size() - shown << " more)\n";
      break;
    }
    const CandidateRepair& cand = result.candidates[r];
    out << "  " << ExplainCandidate(set, graph, cand, options) << "\n";
    // Show the join outcome.
    std::vector<const Trajectory*> members;
    for (TrajIndex m : cand.members) members.push_back(&set.at(m));
    Trajectory joined = Join(members, cand.target_id);
    out << "    => " << joined.ToString(graph) << "\n";
    ++shown;
  }
  out << "phases: Gm " << ToFixed(result.stats.seconds_gm * 1e3, 1)
      << " ms (" << result.stats.gm_edges << " edges), generation "
      << ToFixed(result.stats.seconds_generation * 1e3, 1) << " ms ("
      << result.stats.cliques_enumerated << " cliques, "
      << result.stats.pck_pruned << " pruned), selection "
      << ToFixed(result.stats.seconds_selection * 1e3, 1) << " ms\n";
  return out.str();
}

}  // namespace idrepair
