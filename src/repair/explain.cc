#include "repair/explain.h"

#include <sstream>

#include "common/string_util.h"
#include "traj/merge.h"

namespace idrepair {

std::string ExplainCandidate(const TrajectorySet& set,
                             const TransitionGraph& graph,
                             const CandidateSet& candidates, size_t r,
                             const RepairOptions& options) {
  std::ostringstream out;
  Span<const TrajIndex> members = candidates.members(r);
  out << "join {";
  for (size_t i = 0; i < members.size(); ++i) {
    const Trajectory& t = set.at(members[i]);
    out << (i ? ", " : "") << t.ToString(graph);
  }
  out << "} -> " << candidates.target_id(r);
  out << "  [sim=" << ToFixed(candidates.similarity(r), 3)
      << ", |ivt|=" << candidates.num_invalid(r)
      << ", rarity=" << candidates.rarity(r) << ", omega=sim+"
      << ToFixed(options.lambda, 2) << "*log_"
      << candidates.rarity(r) + options.rarity_base_offset << "("
      << candidates.num_invalid(r)
      << ")=" << ToFixed(candidates.effectiveness(r), 3) << "]";
  return out.str();
}

std::string ExplainRepair(const TrajectorySet& set,
                          const TransitionGraph& graph,
                          const RepairResult& result,
                          const RepairOptions& options, size_t max_repairs) {
  std::ostringstream out;
  out << "candidates: " << result.stats.num_candidates
      << ", selected: " << result.selected.size()
      << ", total omega: " << ToFixed(result.total_effectiveness, 3) << "\n";
  size_t shown = 0;
  for (RepairIndex r : result.selected) {
    if (max_repairs != 0 && shown == max_repairs) {
      out << "  ... (" << result.selected.size() - shown << " more)\n";
      break;
    }
    out << "  " << ExplainCandidate(set, graph, result.candidates, r, options)
        << "\n";
    // Show the join outcome.
    std::vector<const Trajectory*> members;
    for (TrajIndex m : result.candidates.members(r)) {
      members.push_back(&set.at(m));
    }
    Trajectory joined = Join(members, result.candidates.target_id(r));
    out << "    => " << joined.ToString(graph) << "\n";
    ++shown;
  }
  out << "phases: Gm " << ToFixed(result.stats.seconds_gm * 1e3, 1)
      << " ms (" << result.stats.gm_edges << " edges), generation "
      << ToFixed(result.stats.seconds_generation * 1e3, 1) << " ms ("
      << result.stats.cliques_enumerated << " cliques, "
      << result.stats.pck_pruned << " pruned), selection "
      << ToFixed(result.stats.seconds_selection * 1e3, 1) << " ms\n";
  return out.str();
}

}  // namespace idrepair
