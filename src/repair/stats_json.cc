#include "repair/stats_json.h"

#include <fstream>

#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace idrepair {

const char* SelectionName(SelectionAlgorithm selection) {
  switch (selection) {
    case SelectionAlgorithm::kEmax: return "emax";
    case SelectionAlgorithm::kDmin: return "dmin";
    case SelectionAlgorithm::kDmax: return "dmax";
    case SelectionAlgorithm::kExact: return "exact";
  }
  return "unknown";
}

void WriteMetricsJson(JsonWriter& w) {
  w.BeginArray();
  for (const auto& m : obs::MetricsRegistry::Global().Collect()) {
    w.BeginObject();
    w.Key("name");
    w.String(m.name);
    w.Key("stability");
    w.String(m.stability == obs::Stability::kStable ? "stable" : "runtime");
    switch (m.type) {
      case obs::MetricSnapshot::Type::kCounter:
        w.Key("type");
        w.String("counter");
        w.Key("value");
        w.Uint(m.counter_value);
        break;
      case obs::MetricSnapshot::Type::kGauge:
        w.Key("type");
        w.String("gauge");
        w.Key("value");
        w.Int(m.gauge_value);
        break;
      case obs::MetricSnapshot::Type::kHistogram:
        w.Key("type");
        w.String("histogram");
        w.Key("count");
        w.Uint(m.total_count);
        w.Key("sum");
        w.Double(m.sum);
        w.Key("bounds");
        w.BeginArray();
        for (double b : m.bounds) w.Double(b);
        w.EndArray();
        w.Key("bucket_counts");
        w.BeginArray();
        for (uint64_t c : m.bucket_counts) w.Uint(c);
        w.EndArray();
        break;
    }
    w.EndObject();
  }
  w.EndArray();
}

void WriteStatsJson(std::ostream& out, std::string_view engine,
                    const RepairOptions& options, const RepairResult& result) {
  const RepairStats& s = result.stats;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("engine");
  w.String(engine);
  w.Key("threads");
  w.Int(options.exec.num_threads);
  w.Key("options");
  w.BeginObject();
  w.Key("theta");
  w.Uint(options.theta);
  w.Key("eta");
  w.Int(options.eta);
  w.Key("zeta");
  w.Uint(options.zeta);
  w.Key("lambda");
  w.Double(options.lambda);
  w.Key("time_bin");
  w.Int(options.time_bin);
  w.Key("use_lig");
  w.Bool(options.use_lig);
  w.Key("use_mcp_pruning");
  w.Bool(options.use_mcp_pruning);
  w.Key("selection");
  w.String(SelectionName(options.selection));
  w.Key("num_threads");
  w.Int(options.exec.num_threads);
  w.Key("min_partition_grain");
  w.Uint(options.exec.min_partition_grain);
  w.Key("min_candidate_grain");
  w.Uint(options.exec.min_candidate_grain);
  w.Key("min_selection_grain");
  w.Uint(options.exec.min_selection_grain);
  w.Key("obs_enabled");
  w.Bool(options.obs.enabled);
  w.Key("trace_capacity");
  w.Uint(options.obs.trace_capacity);
  w.Key("deadline_ms");
  w.Int(options.deadline_ms);
  w.Key("metrics_interval_ms");
  w.Int(options.obs.metrics_interval_ms);
  w.EndObject();
  w.Key("stats");
  w.BeginObject();
  w.Key("num_trajectories");
  w.Uint(s.num_trajectories);
  w.Key("num_invalid");
  w.Uint(s.num_invalid);
  w.Key("gm_edges");
  w.Uint(s.gm_edges);
  w.Key("cex_evaluations");
  w.Uint(s.cex_evaluations);
  w.Key("cliques_enumerated");
  w.Uint(s.cliques_enumerated);
  w.Key("pck_pruned");
  w.Uint(s.pck_pruned);
  w.Key("jnb_checks");
  w.Uint(s.jnb_checks);
  w.Key("joinable_subsets");
  w.Uint(s.joinable_subsets);
  w.Key("num_candidates");
  w.Uint(s.num_candidates);
  w.Key("gr_edges");
  w.Uint(s.gr_edges);
  w.Key("num_selected");
  w.Uint(s.num_selected);
  w.Key("seconds_gm");
  w.Double(s.seconds_gm);
  w.Key("seconds_generation");
  w.Double(s.seconds_generation);
  w.Key("seconds_selection");
  w.Double(s.seconds_selection);
  w.Key("seconds_total");
  w.Double(s.seconds_total);
  w.Key("cpu_seconds_gm");
  w.Double(s.cpu_seconds_gm);
  w.Key("cpu_seconds_generation");
  w.Double(s.cpu_seconds_generation);
  w.Key("cpu_seconds_total");
  w.Double(s.cpu_seconds_total);
  w.Key("cpu_clock_source");
  w.String(s.cpu_clock_source);
  w.Key("threads_used");
  w.Int(s.threads_used);
  w.Key("num_partitions");
  w.Uint(s.num_partitions);
  w.Key("largest_partition");
  w.Uint(s.largest_partition);
  w.EndObject();
  // Steal/imbalance summary of the generation phase's dynamic scheduler
  // (ParallelForDynamic): how the clique-seed blocks actually landed on
  // workers. Runtime-dependent by nature (imbalance reflects timing), so
  // golden comparisons should treat the imbalance value as informational.
  w.Key("scheduler");
  w.BeginObject();
  w.Key("generation_blocks");
  w.Uint(s.sched_blocks);
  w.Key("generation_workers");
  w.Uint(s.sched_workers);
  w.Key("generation_imbalance");
  w.Double(s.sched_imbalance);
  w.EndObject();
  // Incremental-streaming footprint: how the StreamingRepairer's replay
  // actually behaved (polls, dirty-component invalidations, reuse,
  // backpressure). All zero for batch engines, keeping the pinned key order
  // engine-independent.
  w.Key("stream");
  w.BeginObject();
  w.Key("polls");
  w.Uint(s.stream_polls);
  w.Key("dirty_components");
  w.Uint(s.stream_dirty_components);
  w.Key("records_reused");
  w.Uint(s.stream_records_reused);
  w.Key("appends_rejected");
  w.Uint(s.stream_appends_rejected);
  w.Key("generation_runs");
  w.Uint(s.stream_generation_runs);
  w.EndObject();
  w.Key("total_effectiveness");
  w.Double(result.total_effectiveness);
  w.Key("num_rewrites");
  w.Uint(result.rewrites.size());
  w.Key("completion");
  w.BeginObject();
  w.Key("code");
  w.String(StatusCodeToString(result.completion.code()));
  w.Key("message");
  w.String(result.completion.message());
  w.EndObject();
  w.Key("fault");
  w.BeginObject();
  w.Key("armed_sites");
  w.Uint(fault::FailPointRegistry::Global().NumArmed());
  w.Key("total_fires");
  w.Uint(fault::FailPointRegistry::Global().TotalFires());
  {
    // Per-site breakdown, only for sites the run touched (armed or
    // evaluated) — so a clean run's fault block stays exactly two keys and
    // the golden key-order test never depends on which sites exist.
    std::vector<fault::FailPointInfo> touched;
    for (fault::FailPointInfo& info :
         fault::FailPointRegistry::Global().Snapshot()) {
      if (info.armed || info.hits > 0 || info.fires > 0) {
        touched.push_back(std::move(info));
      }
    }
    if (!touched.empty()) {
      w.Key("sites");
      w.BeginArray();
      for (const fault::FailPointInfo& info : touched) {
        w.BeginObject();
        w.Key("name");
        w.String(info.name);
        w.Key("armed");
        w.Bool(info.armed);
        w.Key("hits");
        w.Uint(info.hits);
        w.Key("fires");
        w.Uint(info.fires);
        w.EndObject();
      }
      w.EndArray();
    }
  }
  w.EndObject();
  // Daemon admission counters, read back from the metric registry by name
  // (the repair library cannot link the server library; the daemon exports
  // them as runtime metrics). Zero in a one-shot CLI run, so the pinned key
  // order is identical with and without a daemon in the process.
  {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    int64_t queue_peak = 0;
    for (const auto& m : obs::MetricsRegistry::Global().Collect()) {
      if (m.name == "idrepair_server_admitted_total") {
        admitted = m.counter_value;
      } else if (m.name == "idrepair_server_rejected_total") {
        rejected = m.counter_value;
      } else if (m.name == "idrepair_server_queue_peak") {
        queue_peak = m.gauge_value;
      }
    }
    w.Key("server");
    w.BeginObject();
    w.Key("admitted");
    w.Uint(admitted);
    w.Key("rejected");
    w.Uint(rejected);
    w.Key("queue_peak");
    w.Int(queue_peak);
    w.EndObject();
  }
  if (obs::Enabled()) {
    w.Key("metrics");
    WriteMetricsJson(w);
  }
  w.EndObject();
  out << "\n";
}

Status WriteStatsJsonFile(const std::string& path, std::string_view engine,
                          const RepairOptions& options,
                          const RepairResult& result) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  WriteStatsJson(out, engine, options, result);
  if (!out.good()) return Status::IoError("failed writing '" + path + "'");
  return Status::OK();
}

}  // namespace idrepair
