#ifndef IDREPAIR_REPAIR_CANDIDATES_H_
#define IDREPAIR_REPAIR_CANDIDATES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/span.h"
#include "repair/cliques.h"
#include "repair/member_set_dictionary.h"
#include "repair/options.h"
#include "repair/predicates.h"
#include "repair/trajectory_graph.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// The candidate repairs R = (T', r) of Definition 2.6 in columnar form:
/// one column per field, indexed by RepairIndex-compatible row number, with
/// the two set-valued columns (jns(R) members and ivt(R) invalid members)
/// interned in a shared MemberSetDictionary instead of one heap vector per
/// candidate per column. On a dense instance this replaces ~2 allocations
/// plus ~48 bytes of vector headers per candidate with two 4-byte set ids
/// into a flat pooled arena — the storage-layer contract is DESIGN.md §9.
///
/// Set accessors return Span views into the arena; views are invalidated by
/// Append/AppendFrom/AppendRemapped (never by score fills), so hold no view
/// across a mutation.
class CandidateSet {
 public:
  using SetId = MemberSetDictionary::SetId;

  CandidateSet() = default;

  // Movable, not copyable: rows reference the embedded dictionary, and the
  // pipeline only ever hands the set forward.
  CandidateSet(CandidateSet&&) = default;
  CandidateSet& operator=(CandidateSet&&) = default;
  CandidateSet(const CandidateSet&) = delete;
  CandidateSet& operator=(const CandidateSet&) = delete;

  size_t size() const { return member_sets_.size(); }
  bool empty() const { return member_sets_.empty(); }

  /// jns(R): joinable subset of candidate `r`, ascending TrajectorySet
  /// indices. View into the pooled arena.
  Span<const TrajIndex> members(size_t r) const {
    return dict_.Get(member_sets_[r]);
  }

  /// ivt(R): the members that are invalid trajectories, ascending.
  Span<const TrajIndex> invalid_members(size_t r) const {
    return dict_.Get(invalid_sets_[r]);
  }

  size_t num_members(size_t r) const { return dict_.set_size(member_sets_[r]); }
  size_t num_invalid(size_t r) const { return dict_.set_size(invalid_sets_[r]); }

  /// Target ID r (always the ID of one member, per the paper: repairs never
  /// invent new values).
  const std::string& target_id(size_t r) const { return target_ids_[r]; }

  /// sim(R) of Eq. (1): minimum member-to-target similarity.
  double similarity(size_t r) const { return similarity_[r]; }

  /// ra(R) of Eq. (2); filled by ComputeEffectiveness.
  uint32_t rarity(size_t r) const { return rarity_[r]; }

  /// ω(R) of Eq. (3); filled by ComputeEffectiveness.
  double effectiveness(size_t r) const { return effectiveness_[r]; }

  void set_scores(size_t r, uint32_t rarity, double effectiveness) {
    rarity_[r] = rarity;
    effectiveness_[r] = effectiveness;
  }

  /// Appends one candidate. Both sets must be sorted ascending; `invalid`
  /// must be a subset of `members`. Returns the new row index.
  size_t Append(Span<const TrajIndex> members, Span<const TrajIndex> invalid,
                std::string target_id, double similarity);

  /// Appends row `r` of `other` verbatim (re-interning its sets into this
  /// set's dictionary). The deterministic shard-order merge primitive.
  size_t AppendFrom(const CandidateSet& other, size_t r);

  /// Appends row `r` of `other` with every member index translated through
  /// `index_map` (local -> global), preserving element order. Used by the
  /// partitioned engine's merge; scores are copied as-is and must be
  /// recomputed or revalidated by the caller if the global degree profile
  /// differs.
  size_t AppendRemapped(const CandidateSet& other, size_t r,
                        const std::vector<TrajIndex>& index_map);

  void Reserve(size_t rows);

  /// Drops the dictionary's dedup index once the set is fully built (a
  /// later Append still works but stops deduping against earlier sets).
  /// Engines call this when a result is finalized; it sheds the hash-map
  /// footprint without touching any row or view.
  void Freeze() { dict_.Freeze(); }

  const MemberSetDictionary& dict() const { return dict_; }

  /// Heap bytes of every column plus the pooled dictionary.
  size_t MemoryBytes() const;

 private:
  MemberSetDictionary dict_;
  std::vector<SetId> member_sets_;
  std::vector<SetId> invalid_sets_;
  std::vector<std::string> target_ids_;
  std::vector<double> similarity_;
  std::vector<uint32_t> rarity_;
  std::vector<double> effectiveness_;
  std::vector<TrajIndex> remap_scratch_;
};

/// Chooses the target ID for a joinable subset by Eq. (5): the member ID
/// maximizing the length-weighted sum of similarities to all member IDs
/// (longer trajectories get precedence, since repeated misreads across many
/// locations are unlikely). Ties break to the earlier member. `members`
/// must be non-empty.
TrajIndex AssignTargetId(const TrajectorySet& set,
                         Span<const TrajIndex> members,
                         const IdSimilarity& similarity);

/// Phase-1 statistics for the benchmark harness.
struct GenerationStats {
  CliqueEnumerator::Stats clique_stats;
  size_t jnb_checks = 0;
  size_t joinable_subsets = 0;
  /// Pairwise-similarity calls answered from the per-shard memo instead of
  /// recomputed (cliques overlap heavily, so most calls repeat).
  size_t similarity_cache_hits = 0;

  /// Scheduling footprint of the dynamic clique-granularity scheduler
  /// (ParallelForDynamic): seed blocks claimed, worker tasks that claimed
  /// at least one, and the worst max/mean busy-time ratio observed (1.0 =
  /// perfectly balanced). Observational only — results never depend on it.
  size_t sched_blocks = 0;
  size_t sched_workers = 0;
  double sched_imbalance = 1.0;

  /// Deterministic reduction of per-shard stats: every counter adds, so the
  /// merged totals are identical for any shard decomposition — the sharded
  /// generator folds shards in fixed shard order and 1/2/8-thread runs
  /// report the same numbers. The sched_* footprint aggregates across
  /// invocations (blocks add, workers and imbalance take the max); it is a
  /// property of the schedule, not of the output.
  void MergeFrom(const GenerationStats& other) {
    clique_stats.MergeFrom(other.clique_stats);
    jnb_checks += other.jnb_checks;
    joinable_subsets += other.joinable_subsets;
    similarity_cache_hits += other.similarity_cache_hits;
    sched_blocks += other.sched_blocks;
    sched_workers = sched_workers > other.sched_workers
                        ? sched_workers
                        : other.sched_workers;
    sched_imbalance = sched_imbalance > other.sched_imbalance
                          ? sched_imbalance
                          : other.sched_imbalance;
  }
};

/// Phase 1 — candidate repair generation (§3.2): enumerates qualified
/// cliques of Gm, keeps those passing jnb (true joinable subsets), assigns
/// each a target ID, and computes sim(R). Repairs that fix no invalid
/// trajectory (|ivt| = 0, e.g. the identity repair of a valid trajectory)
/// are dropped: their effectiveness is 0 by Eq. (3) and they are never
/// selected (Example 4.2).
///
/// Runs over the clique-enumeration seed vertices on the shared exec pool,
/// split into fixed blocks of `options.exec.min_candidate_grain` seeds
/// (kGrainAuto selects the cost model in exec/grain.h) that workers CLAIM
/// dynamically — a seed rooting a heavy clique subtree delays only the
/// worker that claimed it, so one giant component no longer serializes
/// behind a fixed range split. Each block enumerates, jnb-checks, and
/// scores its subtrees sequentially (AssignTargetId tie-breaks and the
/// sim(R) minimum are per-clique, so no cross-block float order exists);
/// block outputs and stats are merged in fixed block order, making output
/// bit-identical at every thread count and any claim schedule. The
/// pairwise-similarity memo caches a pure function of the two ID strings
/// (cached and recomputed values are the same doubles); its table and the
/// invalid-member buffer live in pool-owned per-thread scratch, reused
/// across blocks instead of reallocated per shard. The schedule's
/// footprint is reported in the sched_* stats fields.
///
/// Rarity and effectiveness are *not* filled here — they depend on the full
/// candidate set; call ComputeEffectiveness next.
///
/// Errors: a shard that fails (today only via the `repair.generation.shard`
/// failpoint) propagates through the TaskGroup's deterministic first-error
/// rule and surfaces here as a non-OK Result; no partial candidate set is
/// returned.
Result<CandidateSet> GenerateCandidates(
    const TrajectorySet& set, const TrajectoryGraph& gm,
    const PredicateEvaluator& pred, const RepairOptions& options,
    const IdSimilarity& similarity, const std::vector<bool>& is_valid,
    GenerationStats* stats = nullptr);

/// Fills rarity (Eq. 2) and effectiveness ω (Eq. 3) across the whole
/// candidate set: d(T) is the number of candidates covering the invalid
/// trajectory T, rarity aggregates member degrees per
/// `options.rarity_aggregation`, and
/// ω = sim + λ · log_{rarity + rarity_base_offset}(|ivt|).
///
/// Shares the generator's sharding (`options.exec`, min_candidate_grain,
/// here over candidates): the degree pass accumulates into per-shard count
/// arrays reduced in index order, and the scoring pass writes each
/// candidate's own fields — both bit-identical at every thread count
/// (degree sums are integers; ω is computed per candidate from its shard-
/// independent inputs). A propagated shard error leaves `candidates` with
/// possibly part-filled rarity/effectiveness fields; callers must discard
/// the set on error.
Status ComputeEffectiveness(CandidateSet& candidates,
                            const RepairOptions& options, size_t num_trajs);

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_CANDIDATES_H_
