#ifndef IDREPAIR_REPAIR_CANDIDATES_H_
#define IDREPAIR_REPAIR_CANDIDATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "repair/cliques.h"
#include "repair/options.h"
#include "repair/predicates.h"
#include "repair/trajectory_graph.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// A candidate repair R = (T', r) (Definition 2.6): a joinable subset given
/// by member indices plus the target ID all members would be rewritten to.
struct CandidateRepair {
  /// Joinable subset jns(R), ascending TrajectorySet indices.
  std::vector<TrajIndex> members;
  /// Target ID r (always the ID of one member, per the paper: repairs never
  /// invent new values).
  std::string target_id;
  /// ivt(R): the members that are invalid trajectories, ascending.
  std::vector<TrajIndex> invalid_members;
  /// sim(R) of Eq. (1): minimum member-to-target similarity.
  double similarity = 0.0;
  /// ra(R) of Eq. (2); filled by ComputeEffectiveness.
  uint32_t rarity = 0;
  /// ω(R) of Eq. (3); filled by ComputeEffectiveness.
  double effectiveness = 0.0;

  size_t num_invalid() const { return invalid_members.size(); }
};

/// Chooses the target ID for a joinable subset by Eq. (5): the member ID
/// maximizing the length-weighted sum of similarities to all member IDs
/// (longer trajectories get precedence, since repeated misreads across many
/// locations are unlikely). Ties break to the earlier member. `members`
/// must be non-empty.
TrajIndex AssignTargetId(const TrajectorySet& set,
                         const std::vector<TrajIndex>& members,
                         const IdSimilarity& similarity);

/// Phase-1 statistics for the benchmark harness.
struct GenerationStats {
  CliqueEnumerator::Stats clique_stats;
  size_t jnb_checks = 0;
  size_t joinable_subsets = 0;

  /// Deterministic reduction of per-shard stats: every counter adds, so the
  /// merged totals are identical for any shard decomposition — the sharded
  /// generator folds shards in fixed shard order and 1/2/8-thread runs
  /// report the same numbers.
  void MergeFrom(const GenerationStats& other) {
    clique_stats.MergeFrom(other.clique_stats);
    jnb_checks += other.jnb_checks;
    joinable_subsets += other.joinable_subsets;
  }
};

/// Phase 1 — candidate repair generation (§3.2): enumerates qualified
/// cliques of Gm, keeps those passing jnb (true joinable subsets), assigns
/// each a target ID, and computes sim(R). Repairs that fix no invalid
/// trajectory (|ivt| = 0, e.g. the identity repair of a valid trajectory)
/// are dropped: their effectiveness is 0 by Eq. (3) and they are never
/// selected (Example 4.2).
///
/// Runs sharded over the clique-enumeration seed vertices on the shared
/// exec pool (`options.exec`: num_threads width, min_candidate_grain seeds
/// per shard), so one giant chain component no longer serializes. Each
/// shard enumerates, jnb-checks, and scores its subtrees sequentially
/// (AssignTargetId tie-breaks and the sim(R) minimum are per-clique, so no
/// cross-shard float order exists); shard outputs and stats are merged in
/// fixed shard order. Output is bit-identical at every thread count.
///
/// Rarity and effectiveness are *not* filled here — they depend on the full
/// candidate set; call ComputeEffectiveness next.
///
/// Errors: a shard that fails (today only via the `repair.generation.shard`
/// failpoint) propagates through the TaskGroup's deterministic first-error
/// rule and surfaces here as a non-OK Result; no partial candidate set is
/// returned.
Result<std::vector<CandidateRepair>> GenerateCandidates(
    const TrajectorySet& set, const TrajectoryGraph& gm,
    const PredicateEvaluator& pred, const RepairOptions& options,
    const IdSimilarity& similarity, const std::vector<bool>& is_valid,
    GenerationStats* stats = nullptr);

/// Fills rarity (Eq. 2) and effectiveness ω (Eq. 3) across the whole
/// candidate set: d(T) is the number of candidates covering the invalid
/// trajectory T, rarity aggregates member degrees per
/// `options.rarity_aggregation`, and
/// ω = sim + λ · log_{rarity + rarity_base_offset}(|ivt|).
///
/// Shares the generator's sharding (`options.exec`, min_candidate_grain,
/// here over candidates): the degree pass accumulates into per-shard count
/// arrays reduced in index order, and the scoring pass writes each
/// candidate's own fields — both bit-identical at every thread count
/// (degree sums are integers; ω is computed per candidate from its shard-
/// independent inputs). A propagated shard error leaves `candidates` with
/// possibly part-filled rarity/effectiveness fields; callers must discard
/// the set on error.
Status ComputeEffectiveness(std::vector<CandidateRepair>& candidates,
                            const RepairOptions& options, size_t num_trajs);

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_CANDIDATES_H_
