#ifndef IDREPAIR_REPAIR_EXPLAIN_H_
#define IDREPAIR_REPAIR_EXPLAIN_H_

#include <string>

#include "graph/transition_graph.h"
#include "repair/repairer.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Renders one candidate repair as a human-readable line:
/// members, target, and the ω decomposition of Eq. (3)
/// (similarity + λ·log_{ra+offset}|ivt| = ω).
std::string ExplainCandidate(const TrajectorySet& set,
                             const TransitionGraph& graph,
                             const CandidateSet& candidates, size_t r,
                             const RepairOptions& options);

/// Renders a full repair run: every selected repair with its ω
/// decomposition and the join it produces, followed by the phase stats.
/// `max_repairs` caps the listing (0 = no cap).
std::string ExplainRepair(const TrajectorySet& set,
                          const TransitionGraph& graph,
                          const RepairResult& result,
                          const RepairOptions& options,
                          size_t max_repairs = 20);

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_EXPLAIN_H_
