#ifndef IDREPAIR_REPAIR_SELECTORS_H_
#define IDREPAIR_REPAIR_SELECTORS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "repair/options.h"
#include "repair/repair_graph.h"

namespace idrepair {

/// Phase 2 — compatible repair selection (§3.3, §4.2): pick an independent
/// set of the repair graph. Implementations return candidate indices in
/// ascending order; the returned set is always independent (compatible).
class RepairSelector {
 public:
  virtual ~RepairSelector() = default;

  virtual std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const std::vector<CandidateRepair>& candidates) const = 0;

  /// Stable algorithm name for logs and the Fig 15 harness.
  virtual std::string_view name() const = 0;
};

/// Maximum-effectiveness first (Algorithm 3, "EMAX"): repeatedly take the
/// highest-ω repair and discard its neighbors. Zero-effectiveness repairs
/// are never taken (Example 4.2). O(|Vr| log |Vr| + |Er|).
class EmaxSelector final : public RepairSelector {
 public:
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const std::vector<CandidateRepair>& candidates) const override;
  std::string_view name() const override { return "EMAX"; }
};

/// Minimum-degree first (DMIN, §6.5.1): repeatedly take a remaining vertex
/// of minimum *current* degree and discard its neighbors — the classic
/// greedy independent-set heuristic, blind to ω.
class DminSelector final : public RepairSelector {
 public:
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const std::vector<CandidateRepair>& candidates) const override;
  std::string_view name() const override { return "DMIN"; }
};

/// Maximum-degree first (DMAX, §6.5.1): the adversarial twin of DMIN.
class DmaxSelector final : public RepairSelector {
 public:
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const std::vector<CandidateRepair>& candidates) const override;
  std::string_view name() const override { return "DMAX"; }
};

/// Exact maximum-weight independent set via branch-and-bound with connected
/// component decomposition. Exponential worst case — intended for the small
/// datasets of the Fig 15 experiment, exactly as in the paper.
class ExactSelector final : public RepairSelector {
 public:
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const std::vector<CandidateRepair>& candidates) const override;
  std::string_view name() const override { return "exact"; }
};

/// The paper's "optimal selection" oracle (§6.5.1): armed with ground truth,
/// it applies exactly the *correct* candidate repairs — those whose members
/// are all fragments of one entity, cover every fragment of that entity, and
/// whose target is the entity's true ID — regardless of ω. Requires the
/// per-trajectory true IDs (majority ground-truth ID of each observed
/// trajectory's records).
class OracleSelector final : public RepairSelector {
 public:
  explicit OracleSelector(std::vector<std::string> true_id_per_traj)
      : true_ids_(std::move(true_id_per_traj)) {}

  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const std::vector<CandidateRepair>& candidates) const override;
  std::string_view name() const override { return "optimal"; }

 private:
  std::vector<std::string> true_ids_;
};

/// Factory over the SelectionAlgorithm enum (the oracle is excluded: it
/// needs ground truth and is constructed explicitly).
std::unique_ptr<RepairSelector> MakeSelector(SelectionAlgorithm algorithm);

/// Total effectiveness Ω of a selected set (Eq. 4's objective).
double TotalEffectiveness(const std::vector<CandidateRepair>& candidates,
                          const std::vector<RepairIndex>& selected);

/// EMAX without materializing the repair graph: identical output to
/// EmaxSelector::Select, but incompatibility is tracked with a
/// per-trajectory mask instead of Gr adjacency — O(Σ|members| + n log n)
/// rather than O(|Er|). Used by IdRepairer on large inputs, where Gr can
/// hold hundreds of millions of edges.
std::vector<RepairIndex> SelectEmaxByCover(
    const std::vector<CandidateRepair>& candidates, size_t num_trajs);

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_SELECTORS_H_
