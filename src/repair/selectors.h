#ifndef IDREPAIR_REPAIR_SELECTORS_H_
#define IDREPAIR_REPAIR_SELECTORS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fault/deadline.h"
#include "repair/options.h"
#include "repair/repair_graph.h"

namespace idrepair {

/// Execution context for Phase 2 selection. `exec` controls how the
/// parallel selectors shard their sort / invalidation work (num_threads=1
/// or a small input keeps everything on the serial reference path);
/// `deadline`, when non-null, is probed before every commit so selection
/// degrades to a well-formed *prefix* of the commit sequence — the partial
/// selection is still pairwise compatible. `commit_order`, when non-null,
/// receives the selected indices in commit (pick) order, which the verifier
/// tests pin; the returned vector itself is always ascending.
struct SelectionContext {
  ExecOptions exec;
  const fault::Deadline* deadline = nullptr;
  std::vector<RepairIndex>* commit_order = nullptr;
};

/// Phase 2 — compatible repair selection (§3.3, §4.2): pick an independent
/// set of the repair graph. Implementations return candidate indices in
/// ascending order; the returned set is always independent (compatible).
///
/// Two entry points: the 2-arg Select is the serial reference — simple,
/// obviously correct, no failure modes. The 3-arg ctx overload is the
/// production path: it may shard work over the exec pool and evaluate the
/// "repair.selection.*" failpoints, and must return byte-identical indices
/// to the reference at every thread count (tests/selectors_parallel_test.cc
/// enforces this).
class RepairSelector {
 public:
  virtual ~RepairSelector() = default;

  virtual std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const CandidateSet& candidates) const = 0;

  /// Context-aware selection. The default forwards to the serial reference
  /// (correct for selectors with no parallel form, e.g. the oracle).
  virtual Result<std::vector<RepairIndex>> Select(
      const RepairGraph& gr, const CandidateSet& candidates,
      const SelectionContext& ctx) const {
    (void)ctx;
    return Select(gr, candidates);
  }

  /// Stable algorithm name for logs and the Fig 15 harness.
  virtual std::string_view name() const = 0;
};

/// Maximum-effectiveness first (Algorithm 3, "EMAX"): repeatedly take the
/// highest-ω repair and discard its neighbors. Zero-effectiveness repairs
/// are never taken (Example 4.2). O(|Vr| log |Vr| + |Er|). The parallel
/// form shard-sorts the pick order and fans neighbor invalidation out over
/// the pool; the commit loop itself stays serial (DESIGN.md §3).
class EmaxSelector final : public RepairSelector {
 public:
  using RepairSelector::Select;
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const CandidateSet& candidates) const override;
  Result<std::vector<RepairIndex>> Select(
      const RepairGraph& gr, const CandidateSet& candidates,
      const SelectionContext& ctx) const override;
  std::string_view name() const override { return "EMAX"; }
};

/// Minimum-degree first (DMIN, §6.5.1): repeatedly take a remaining vertex
/// of minimum *current* degree and discard its neighbors — the classic
/// greedy independent-set heuristic, blind to ω. The parallel form replaces
/// the O(|Vr|²) rescan with a lazy-invalidation heap and fans the degree
/// re-scoring after each commit out over the pool.
class DminSelector final : public RepairSelector {
 public:
  using RepairSelector::Select;
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const CandidateSet& candidates) const override;
  Result<std::vector<RepairIndex>> Select(
      const RepairGraph& gr, const CandidateSet& candidates,
      const SelectionContext& ctx) const override;
  std::string_view name() const override { return "DMIN"; }
};

/// Maximum-degree first (DMAX, §6.5.1): the adversarial twin of DMIN.
class DmaxSelector final : public RepairSelector {
 public:
  using RepairSelector::Select;
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const CandidateSet& candidates) const override;
  Result<std::vector<RepairIndex>> Select(
      const RepairGraph& gr, const CandidateSet& candidates,
      const SelectionContext& ctx) const override;
  std::string_view name() const override { return "DMAX"; }
};

/// Exact maximum-weight independent set via branch-and-bound with connected
/// component decomposition. Exponential worst case — intended for the small
/// datasets of the Fig 15 experiment, exactly as in the paper.
class ExactSelector final : public RepairSelector {
 public:
  using RepairSelector::Select;
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const CandidateSet& candidates) const override;
  std::string_view name() const override { return "exact"; }
};

/// The paper's "optimal selection" oracle (§6.5.1): armed with ground truth,
/// it applies exactly the *correct* candidate repairs — those whose members
/// are all fragments of one entity, cover every fragment of that entity, and
/// whose target is the entity's true ID — regardless of ω. Requires the
/// per-trajectory true IDs (majority ground-truth ID of each observed
/// trajectory's records).
class OracleSelector final : public RepairSelector {
 public:
  explicit OracleSelector(std::vector<std::string> true_id_per_traj)
      : true_ids_(std::move(true_id_per_traj)) {}

  using RepairSelector::Select;
  std::vector<RepairIndex> Select(
      const RepairGraph& gr,
      const CandidateSet& candidates) const override;
  std::string_view name() const override { return "optimal"; }

 private:
  std::vector<std::string> true_ids_;
};

/// Factory over the SelectionAlgorithm enum (the oracle is excluded: it
/// needs ground truth and is constructed explicitly).
std::unique_ptr<RepairSelector> MakeSelector(SelectionAlgorithm algorithm);

/// Total effectiveness Ω of a selected set (Eq. 4's objective).
double TotalEffectiveness(const CandidateSet& candidates,
                          const std::vector<RepairIndex>& selected);

/// EMAX without materializing the repair graph: identical output to
/// EmaxSelector::Select, but incompatibility is tracked with a
/// per-trajectory mask instead of Gr adjacency — O(Σ|members| + n log n)
/// rather than O(|Er|). Used by IdRepairer on large inputs, where Gr can
/// hold hundreds of millions of edges.
std::vector<RepairIndex> SelectEmaxByCover(
    const CandidateSet& candidates, size_t num_trajs);

/// Context-aware form of the cover-mask EMAX: shard-sorts the pick order
/// over ctx.exec, evaluates the selection failpoints, and honors
/// ctx.deadline with a compatible-prefix cutoff. Byte-identical indices to
/// the 2-arg form at any thread count.
Result<std::vector<RepairIndex>> SelectEmaxByCover(
    const CandidateSet& candidates, size_t num_trajs,
    const SelectionContext& ctx);

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_SELECTORS_H_
