#include "repair/predicates.h"

#include <algorithm>

namespace idrepair {

namespace {

// Past this many locations the dense O(|V|^3) Floyd–Warshall build stops
// being viable (a 10k-vertex road network would need ~10^12 relaxations and
// a 400 MB matrix). Every query the evaluator issues is bounded by θ−1
// hops, so the sparse BFS build answers them all exactly at O(|V|·ball)
// cost. Small graphs keep the dense build: it is cheap there and its
// reachability() accessor stays exact at any hop count.
constexpr size_t kDenseReachabilityLimit = 512;

ReachabilityMatrix BuildReachability(const TransitionGraph& graph,
                                     size_t theta) {
  if (graph.num_locations() <= kDenseReachabilityLimit) {
    return ReachabilityMatrix::Build(graph);
  }
  uint32_t bound = theta == 0 ? 0 : static_cast<uint32_t>(theta) - 1;
  return ReachabilityMatrix::BuildBounded(graph, bound);
}

}  // namespace

PredicateEvaluator::PredicateEvaluator(const TransitionGraph& graph,
                                       size_t theta, Timestamp eta)
    : graph_(&graph),
      reach_(BuildReachability(graph, theta)),
      theta_(theta),
      eta_(eta) {}

bool PredicateEvaluator::InternallyFeasible(const Trajectory& t) const {
  if (t.empty() || t.size() > theta_) return false;
  if (t.TimeSpan() > eta_) return false;
  uint32_t max_hops = static_cast<uint32_t>(theta_) - 1;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t.point(i).ts >= t.point(i + 1).ts) return false;
    if (!reach_.Reachable(t.point(i).loc, t.point(i + 1).loc, max_hops)) {
      return false;
    }
  }
  return true;
}

bool PredicateEvaluator::Cex(const Trajectory& a, const Trajectory& b) const {
  // Line 1–2 of Algorithm 1: the length bound θ.
  if (a.size() + b.size() > theta_) return false;
  // Cheap span pre-check before paying for the merge.
  Timestamp lo = std::min(a.start_time(), b.start_time());
  Timestamp hi = std::max(a.end_time(), b.end_time());
  if (hi - lo > eta_) return false;  // lines 3–5
  auto merged = MergeChronological(a, b);
  // Lines 6–9: cross-trajectory adjacencies must be reachable within θ−1
  // hops. Equal timestamps are rejected — an entity cannot be captured at
  // two places at once, so no superset of {a, b} could ever satisfy jnb.
  uint32_t max_hops = static_cast<uint32_t>(theta_) - 1;
  for (size_t i = 0; i + 1 < merged.size(); ++i) {
    if (merged[i].source == merged[i + 1].source) continue;
    if (merged[i].ts == merged[i + 1].ts) return false;
    if (!reach_.Reachable(merged[i].loc, merged[i + 1].loc, max_hops)) {
      return false;
    }
  }
  return true;
}

bool PredicateEvaluator::Jnb(
    std::span<const Trajectory* const> trajectories) const {
  if (trajectories.empty()) return false;
  size_t total = 0;
  for (const Trajectory* t : trajectories) total += t->size();
  if (total == 0 || total > theta_) return false;
  return JnbMerged(MergeChronological(trajectories));
}

bool PredicateEvaluator::JnbMerged(
    const std::vector<MergedPoint>& merged) const {
  if (merged.empty() || merged.size() > theta_) return false;
  if (merged.back().ts - merged.front().ts > eta_) return false;
  // Every adjacent pair — same trajectory or not — must be an edge of Gt,
  // with strictly increasing timestamps; the ends must be entrance/exit.
  if (!graph_->IsEntrance(merged.front().loc)) return false;
  if (!graph_->IsExit(merged.back().loc)) return false;
  for (size_t i = 0; i + 1 < merged.size(); ++i) {
    if (merged[i].ts >= merged[i + 1].ts) return false;
    if (!graph_->HasEdge(merged[i].loc, merged[i + 1].loc)) return false;
  }
  return true;
}

bool PredicateEvaluator::Pck(
    std::span<const Trajectory* const> trajectories) const {
  if (trajectories.empty()) return false;
  return PckMerged(MergeChronological(trajectories),
                   static_cast<uint32_t>(trajectories.size()));
}

bool PredicateEvaluator::PckMerged(const std::vector<MergedPoint>& merged,
                                   uint32_t num_sources) const {
  if (merged.empty()) return false;
  // The minimum cover prefix ends at the first position where every source
  // trajectory has contributed at least one record (Definition 5.2).
  std::vector<bool> seen(num_sources, false);
  uint32_t distinct = 0;
  size_t prefix_end = merged.size();  // exclusive
  for (size_t i = 0; i < merged.size(); ++i) {
    if (!seen[merged[i].source]) {
      seen[merged[i].source] = true;
      if (++distinct == num_sources) {
        prefix_end = i + 1;
        break;
      }
    }
  }
  // Prefix of a valid path: starts at an entrance, consecutive edges,
  // strictly increasing timestamps, and an exit still reachable at the end.
  if (!graph_->IsEntrance(merged.front().loc)) return false;
  for (size_t i = 0; i + 1 < prefix_end; ++i) {
    if (merged[i].ts >= merged[i + 1].ts) return false;
    if (!graph_->HasEdge(merged[i].loc, merged[i + 1].loc)) return false;
  }
  return graph_->CanReachExit(merged[prefix_end - 1].loc);
}

}  // namespace idrepair
