#ifndef IDREPAIR_REPAIR_REPAIRER_H_
#define IDREPAIR_REPAIR_REPAIRER_H_

#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "repair/candidates.h"
#include "repair/options.h"
#include "repair/predicates.h"
#include "repair/selectors.h"
#include "traj/trajectory_set.h"

namespace idrepair {

class TrajectoryGraph;

/// Per-phase timings and counters of one repair run, powering the paper's
/// running-time plots.
struct RepairStats {
  size_t num_trajectories = 0;
  size_t num_invalid = 0;           // IVTs in the input
  size_t gm_edges = 0;
  size_t cex_evaluations = 0;
  size_t cliques_enumerated = 0;
  size_t pck_pruned = 0;
  size_t jnb_checks = 0;
  size_t joinable_subsets = 0;      // all joinable subsets found (phase 1)
  size_t num_candidates = 0;        // |R| (repairs with |ivt| >= 1)
  size_t gr_edges = 0;              // 0 when the EMAX fast path skips Gr
  size_t num_selected = 0;          // |R'|
  double seconds_gm = 0.0;          // trajectory-graph construction
  double seconds_generation = 0.0;  // cliques + jnb + target assignment
  double seconds_selection = 0.0;   // Gr + selection
  double seconds_total = 0.0;
  // Wall/CPU split of the run: cpu_* sums the CPU seconds of every thread
  // that worked on the phase, so cpu ≈ wall when sequential and
  // cpu ≈ wall × threads when the phase scales. The per-phase cpu entries
  // are only filled by engines that own the phase (IdRepairer).
  double cpu_seconds_gm = 0.0;
  double cpu_seconds_generation = 0.0;  // cliques + jnb + scoring
  double cpu_seconds_total = 0.0;
  // Which clock produced the cpu_seconds_* fields ("process_cputime" or the
  // "std_clock" fallback), so CPU numbers from different platforms are
  // never compared unknowingly. Constant within a process.
  std::string cpu_clock_source = CpuStopwatch::SourceName();
  // Parallel-execution footprint: the decomposition width this run was
  // allowed (ExecOptions::ResolvedThreads, >= 1).
  int threads_used = 1;
  // Chain-component decomposition (PartitionedRepairer; 0 / 0 when the
  // engine does not partition).
  size_t num_partitions = 0;
  size_t largest_partition = 0;     // trajectories in the biggest component
  // Dynamic-scheduler footprint of the generation phase (ParallelForDynamic
  // over clique seeds): blocks claimed, worker tasks that claimed at least
  // one, and the worst max/mean busy-time ratio (1.0 = balanced). Under the
  // partitioned engine these aggregate across partitions (blocks add,
  // workers and imbalance take the max). Observational only — never feeds
  // back into results.
  size_t sched_blocks = 0;
  size_t sched_workers = 0;
  double sched_imbalance = 1.0;
  // Incremental-streaming footprint (StreamingRepairer's batch adapter;
  // all zero for the batch engines): polls the replay issued, component
  // dirty-set invalidations, records that rode through a poll without
  // re-running generation for their component, appends the bounded buffer
  // rejected (backpressure), and component-scoped generation runs.
  size_t stream_polls = 0;
  size_t stream_dirty_components = 0;
  size_t stream_records_reused = 0;
  size_t stream_appends_rejected = 0;
  size_t stream_generation_runs = 0;
};

/// The outcome of one repair run.
///
/// ### Partial-result semantics
/// A Repair() call can end three ways:
///  1. Complete: `completion` is OK and every field is fully populated.
///  2. Degraded (deadline): the RepairOptions::deadline_ms budget ran out
///     mid-run. The engine stopped starting new work at a safe boundary —
///     phase (IdRepairer), partition (PartitionedRepairer), or replay batch
///     (StreamingRepairer's batch adapter) — and passed the unprocessed
///     remainder through unrepaired. `completion` carries
///     StatusCode::kDeadlineExceeded; everything populated is still
///     internally consistent (record conservation holds, every emitted
///     repair is a valid merge, `selected` indexes `candidates`,
///     `rewrites` matches `repaired`).
///  3. Error: the Result itself is non-OK (an injected fault, I/O failure,
///     ...). No RepairResult is produced and no caller-visible state was
///     mutated.
/// Consumers that must distinguish 1 from 2 check `completion`; consumers
/// that only need a usable trajectory set can ignore it.
struct RepairResult {
  /// Phase-1 output: every candidate repair with |ivt| >= 1, with rarity and
  /// effectiveness filled in (columnar; set columns interned, DESIGN.md §9).
  CandidateSet candidates;
  /// Phase-2 output: indices into `candidates`, ascending, compatible.
  std::vector<RepairIndex> selected;
  /// ID rewrites the selected repairs apply: trajectory index -> target ID.
  /// Only genuinely changed IDs appear.
  std::unordered_map<TrajIndex, std::string> rewrites;
  /// The repaired trajectory set: selected repairs joined, untouched
  /// trajectories passed through.
  TrajectorySet repaired;
  /// Ω(R') — the objective value of Eq. (4) attained by `selected`.
  double total_effectiveness = 0.0;
  /// OK for a complete run; kDeadlineExceeded for a graceful partial result
  /// (see the partial-result semantics above).
  Status completion = Status::OK();
  RepairStats stats;
};

/// Abstract repair engine: anything that turns a TrajectorySet into a
/// RepairResult. Implemented by the core two-phase pipeline (IdRepairer),
/// its chain-component decomposition (PartitionedRepairer), the streaming
/// adapter (StreamingRepairer), and both §6.5.2 baselines, so benches, the
/// CLI, and tests can swap engines polymorphically.
///
/// Engines differ in how much of RepairResult they fill: all of them
/// produce `rewrites`, `repaired`, and timing stats; only the candidate-
/// based engines (IdRepairer, PartitionedRepairer) expose `candidates`,
/// `selected`, and `total_effectiveness`.
class Repairer {
 public:
  virtual ~Repairer() = default;

  /// Repairs `set`. Implementations are const — one engine may serve many
  /// concurrent Repair calls.
  virtual Result<RepairResult> Repair(const TrajectorySet& set) const = 0;

  /// Stable engine name for logs and the CLI's --engine flag.
  virtual std::string_view name() const = 0;
};

/// Facade over the two-phase repair paradigm (§3): candidate repair
/// generation followed by compatible repair selection, with the LIG index
/// and MCP pruning optimizations applied per RepairOptions.
///
/// Typical use:
///   IdRepairer repairer(graph, options);
///   auto result = repairer.Repair(trajectories);
class IdRepairer : public Repairer {
 public:
  /// The graph must outlive the repairer. Options are validated at Repair
  /// time.
  IdRepairer(const TransitionGraph& graph, RepairOptions options);

  /// Runs the full pipeline on `set`. When `selector` is non-null it
  /// overrides options.selection (used by the Fig 15 harness to plug in the
  /// oracle).
  Result<RepairResult> Repair(const TrajectorySet& set,
                              const RepairSelector* selector) const;

  Result<RepairResult> Repair(const TrajectorySet& set) const override {
    return Repair(set, nullptr);
  }

  /// Runs the pipeline downstream of Gm construction against a trajectory
  /// graph the caller already holds — the component-scoped entry point of
  /// the incremental streaming engine, which maintains `gm`'s adjacency
  /// edge-by-edge and shares one PredicateEvaluator (and its Floyd–Warshall
  /// closure) across every component repair. `gm` must be a graph over
  /// exactly `set` (num_vertices == set.size()) built against the same θ/η
  /// as `pred`, or InvalidArgument is returned. stats.seconds_gm stays 0.
  Result<RepairResult> RepairPrebuilt(const TrajectorySet& set,
                                      const TrajectoryGraph& gm,
                                      const PredicateEvaluator& pred) const;

  std::string_view name() const override { return "core"; }

  const RepairOptions& options() const { return options_; }
  const TransitionGraph& graph() const { return *graph_; }

 private:
  /// Shared pipeline body: `prebuilt`/`external_pred` are both null on the
  /// building path and both non-null on the RepairPrebuilt path.
  Result<RepairResult> RepairImpl(const TrajectorySet& set,
                                  const RepairSelector* selector,
                                  const TrajectoryGraph* prebuilt,
                                  const PredicateEvaluator* external_pred) const;

  const TransitionGraph* graph_;
  RepairOptions options_;
  NormalizedEditSimilarity default_similarity_;
  // Evaluator shared across Repair() calls: graph and θ/η are fixed per
  // repairer, so the reachability build (the expensive part on city-scale
  // graphs) happens once, not once per call — PartitionedRepairer issues one
  // Repair per chain component against a single inner IdRepairer, possibly
  // concurrently, hence the call_once.
  mutable std::once_flag pred_once_;
  mutable std::optional<PredicateEvaluator> shared_pred_;
};

/// Applies `rewrites` to the records of `set` and regroups, yielding the
/// merged (joined) trajectory set. Exposed separately so baselines and the
/// streaming repairer can share it.
TrajectorySet ApplyRewrites(
    const TrajectorySet& set,
    const std::unordered_map<TrajIndex, std::string>& rewrites);

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_REPAIRER_H_
