#ifndef IDREPAIR_REPAIR_TRAJECTORY_GRAPH_H_
#define IDREPAIR_REPAIR_TRAJECTORY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "lig/length_indexed_grids.h"
#include "repair/options.h"
#include "repair/predicates.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// The trajectory graph Gm (§3.1): one vertex per trajectory, an undirected
/// edge wherever the cex predicate holds. Cliques of Gm are the candidate
/// joinable subsets (Theorem 3.2).
///
/// Vertices inherit the TrajectorySet order, which FromRecords makes a
/// start-time order — the property the MCP pruning of clique generation
/// relies on (Theorem 5.3).
class TrajectoryGraph {
 public:
  /// Statistics of one construction, for the Fig 14(a) experiment.
  struct BuildStats {
    size_t cex_evaluations = 0;   // full predicate evaluations performed
    size_t candidate_pairs = 0;   // pairs surviving the index/pre-filter
    size_t edges = 0;
    bool used_lig = false;
  };

  /// Builds Gm over `set`. When `options.use_lig` is set, candidate pairs
  /// come from a Length-Indexed Grids index (§5.1); otherwise every pair is
  /// tested. Internally infeasible trajectories become isolated vertices.
  TrajectoryGraph(const TrajectorySet& set, const PredicateEvaluator& pred,
                  const RepairOptions& options);

  /// Wraps an adjacency the caller maintained incrementally (the streaming
  /// engine's per-component edge cache) into a Gm over `set`. `adj` must
  /// be symmetric, self-loop-free, with every endpoint < set.size();
  /// feasibility is recomputed from `pred`, neighbor lists are sorted, and
  /// an edge whose endpoint `pred` deems infeasible is a caller bug (the
  /// building constructor never produces one). cex_evaluations stays 0 —
  /// the caller already paid them at append time.
  static TrajectoryGraph FromAdjacency(const TrajectorySet& set,
                                       const PredicateEvaluator& pred,
                                       std::vector<std::vector<TrajIndex>> adj);

  size_t num_vertices() const { return adj_.size(); }
  size_t num_edges() const { return stats_.edges; }

  /// Sorted neighbor list of vertex `v`.
  const std::vector<TrajIndex>& Neighbors(TrajIndex v) const {
    return adj_[v];
  }

  /// O(log deg) adjacency test.
  bool HasEdge(TrajIndex u, TrajIndex v) const;

  /// True iff the trajectory can participate in some joinable subset on its
  /// own merits (InternallyFeasible).
  bool IsFeasible(TrajIndex v) const { return feasible_[v]; }

  const BuildStats& stats() const { return stats_; }

 private:
  TrajectoryGraph() = default;  // FromAdjacency's shell

  void AddEdge(TrajIndex u, TrajIndex v);

  std::vector<std::vector<TrajIndex>> adj_;
  std::vector<bool> feasible_;
  BuildStats stats_;
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_TRAJECTORY_GRAPH_H_
