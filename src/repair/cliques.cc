#include "repair/cliques.h"

#include <tuple>

namespace idrepair {

namespace {

/// Two-way merge of an already-merged sequence with one more trajectory's
/// points, preserving the (ts, loc, source) order used everywhere. The new
/// trajectory gets the next source ordinal.
std::vector<MergedPoint> MergeInto(const std::vector<MergedPoint>& merged,
                                   const Trajectory& t, uint32_t source) {
  std::vector<MergedPoint> out;
  out.reserve(merged.size() + t.size());
  size_t i = 0;
  size_t j = 0;
  while (i < merged.size() || j < t.size()) {
    bool take_new;
    if (i == merged.size()) {
      take_new = true;
    } else if (j == t.size()) {
      take_new = false;
    } else {
      const MergedPoint& a = merged[i];
      const TrajectoryPoint& b = t.point(j);
      take_new = std::tie(b.ts, b.loc, source) <
                 std::tie(a.ts, a.loc, a.source);
    }
    if (take_new) {
      out.push_back(MergedPoint{t.point(j).loc, t.point(j).ts, source});
      ++j;
    } else {
      out.push_back(merged[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace

std::vector<TrajIndex> CliqueEnumerator::SeedVertices() const {
  std::vector<TrajIndex> all;
  all.reserve(graph_->num_vertices());
  for (TrajIndex v = 0; v < graph_->num_vertices(); ++v) {
    // Isolated infeasible vertices cannot join anything; they would also be
    // filtered by jnb, but skipping them here avoids useless singletons.
    if (graph_->IsFeasible(v)) all.push_back(v);
  }
  return all;
}

CliqueEnumerator::Stats CliqueEnumerator::Enumerate(const Callback& cb) const {
  std::vector<TrajIndex> seeds = SeedVertices();
  return EnumerateSeedRange(seeds, 0, seeds.size(), cb);
}

CliqueEnumerator::Stats CliqueEnumerator::EnumerateSeedRange(
    const std::vector<TrajIndex>& seeds, size_t begin, size_t end,
    const Callback& cb) const {
  Stats stats;
  std::vector<TrajIndex> clique;
  const std::vector<MergedPoint> empty;
  for (size_t idx = begin; idx < end && idx < seeds.size(); ++idx) {
    VisitNode(seeds, idx, clique, empty, cb, &stats);
  }
  return stats;
}

void CliqueEnumerator::Extend(std::vector<TrajIndex>& clique,
                              const std::vector<MergedPoint>& merged,
                              const std::vector<TrajIndex>& candidates,
                              const Callback& cb, Stats* stats) const {
  for (size_t idx = 0; idx < candidates.size(); ++idx) {
    VisitNode(candidates, idx, clique, merged, cb, stats);
  }
}

void CliqueEnumerator::VisitNode(const std::vector<TrajIndex>& candidates,
                                 size_t idx, std::vector<TrajIndex>& clique,
                                 const std::vector<MergedPoint>& merged,
                                 const Callback& cb, Stats* stats) const {
  TrajIndex v = candidates[idx];
  const Trajectory& tv = set_->at(v);
  if (merged.size() + tv.size() > options_->theta) return;
  ++stats->nodes_visited;
  clique.push_back(v);
  std::vector<MergedPoint> next_merged =
      MergeInto(merged, tv, static_cast<uint32_t>(clique.size() - 1));

  bool keep = true;
  if (options_->use_mcp_pruning) {
    // Members are in start-time order, so the MCP condition of
    // Theorem 5.3 applies to the current prefix set.
    keep = pred_->PckMerged(next_merged,
                            static_cast<uint32_t>(clique.size()));
    if (!keep) ++stats->pck_pruned;
  }

  if (keep) {
    ++stats->cliques_emitted;
    cb(clique, next_merged);
    if (clique.size() < options_->zeta) {
      // Candidates after v that are adjacent to v (and, inductively, to
      // every earlier member).
      std::vector<TrajIndex> next;
      for (size_t j = idx + 1; j < candidates.size(); ++j) {
        TrajIndex w = candidates[j];
        if (graph_->HasEdge(v, w)) next.push_back(w);
      }
      if (!next.empty()) {
        Extend(clique, next_merged, next, cb, stats);
      }
    }
  }
  clique.pop_back();
}

}  // namespace idrepair
