#ifndef IDREPAIR_REPAIR_CLIQUES_H_
#define IDREPAIR_REPAIR_CLIQUES_H_

#include <functional>
#include <vector>

#include "repair/options.h"
#include "repair/predicates.h"
#include "repair/trajectory_graph.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Enumerates the qualified cliques of the trajectory graph (Algorithm 2):
/// every non-empty clique whose member trajectories hold at most θ records
/// in total and whose size is at most ζ. Vertices are added in TrajectorySet
/// order (= start-time order), which both makes the enumeration
/// deterministic and enables the minimum-cover-prefix pruning of Algorithm 4
/// when `options.use_mcp_pruning` is set: a partial clique whose MCP is not
/// a prefix of a valid path is discarded together with its whole subtree
/// (Theorem 5.3).
class CliqueEnumerator {
 public:
  /// Called for each qualified clique (members in ascending index order)
  /// together with the chronologically merged record sequence of its
  /// members. The merge is maintained incrementally during the search —
  /// one O(q) two-way merge per node — and shared between the pck check
  /// and the caller's jnb check, so no sequence is built twice.
  using Callback = std::function<void(const std::vector<TrajIndex>&,
                                      const std::vector<MergedPoint>&)>;

  struct Stats {
    size_t cliques_emitted = 0;
    size_t nodes_visited = 0;  // search-tree nodes, including pruned ones
    size_t pck_pruned = 0;     // subtrees cut by the MCP condition

    /// Deterministic reduction for sharded enumeration: counters add.
    void MergeFrom(const Stats& other) {
      cliques_emitted += other.cliques_emitted;
      nodes_visited += other.nodes_visited;
      pck_pruned += other.pck_pruned;
    }
  };

  CliqueEnumerator(const TrajectorySet& set, const TrajectoryGraph& graph,
                   const PredicateEvaluator& pred,
                   const RepairOptions& options)
      : set_(&set), graph_(&graph), pred_(&pred), options_(&options) {}

  /// Runs the enumeration, invoking `cb` per clique. Returns statistics.
  Stats Enumerate(const Callback& cb) const;

  /// The top-level search roots: every feasible vertex, ascending. Each
  /// seed owns the subtree of cliques whose smallest member it is, so the
  /// full enumeration is exactly the concatenation of the per-seed
  /// subtrees in seed order — the unit the parallel generator shards over.
  std::vector<TrajIndex> SeedVertices() const;

  /// Enumerates only the cliques rooted at seeds[begin, end) (subtrees may
  /// extend to later vertices of `seeds`; they never reach earlier ones).
  /// Running disjoint contiguous ranges and concatenating the emissions in
  /// range order reproduces Enumerate() exactly, callbacks and stats both.
  Stats EnumerateSeedRange(const std::vector<TrajIndex>& seeds, size_t begin,
                           size_t end, const Callback& cb) const;

 private:
  void Extend(std::vector<TrajIndex>& clique,
              const std::vector<MergedPoint>& merged,
              const std::vector<TrajIndex>& candidates, const Callback& cb,
              Stats* stats) const;

  /// One search-tree node: adds candidates[idx] to the clique, emits, and
  /// recurses. Factored out of Extend so the seed-range entry point shares
  /// the exact traversal.
  void VisitNode(const std::vector<TrajIndex>& candidates, size_t idx,
                 std::vector<TrajIndex>& clique,
                 const std::vector<MergedPoint>& merged, const Callback& cb,
                 Stats* stats) const;

  const TrajectorySet* set_;
  const TrajectoryGraph* graph_;
  const PredicateEvaluator* pred_;
  const RepairOptions* options_;
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_CLIQUES_H_
