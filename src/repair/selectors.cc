#include "repair/selectors.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <unordered_map>
#include <utility>

#include "common/bitset.h"
#include "exec/grain.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace idrepair {

namespace {

/// Selection-phase instrumentation, resolved once (same pattern as
/// RepairInstruments). Both counters are pure functions of the input and
/// options — the parallel selectors produce the same commit/invalidation
/// totals at any thread count — hence Stability::kStable.
struct SelectionInstruments {
  obs::Counter* commits;
  obs::Counter* invalidations;

  static SelectionInstruments& Get() {
    static SelectionInstruments* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* si = new SelectionInstruments();
      si->commits = reg.GetCounter(
          "idrepair_selection_commits_total", obs::Stability::kStable,
          "Candidate repairs committed by the selection phase");
      si->invalidations = reg.GetCounter(
          "idrepair_selection_invalidations_total", obs::Stability::kStable,
          "Candidates invalidated by committed repairs (conflict-neighbor "
          "discards on the graph path; cover-mask rejections on the EMAX "
          "fast path)");
      return si;
    }();
    return *m;
  }
};

void RecordSelection(uint64_t commits, uint64_t invalidations) {
  if (!obs::Enabled()) return;
  SelectionInstruments& inst = SelectionInstruments::Get();
  inst.commits->Increment(commits);
  inst.invalidations->Increment(invalidations);
}

/// The EMAX pick order as a strict total order: higher ω first, candidate
/// index breaking ties. Because no two entries compare equal, a plain sort
/// under it yields exactly what std::stable_sort by descending ω yields —
/// and the result is independent of how the range was sharded first.
struct EffectivenessOrder {
  const CandidateSet* candidates;
  bool operator()(RepairIndex a, RepairIndex b) const {
    double ea = candidates->effectiveness(a);
    double eb = candidates->effectiveness(b);
    if (ea != eb) return ea > eb;
    return a < b;
  }
};

/// Candidate indices sorted into EMAX pick order, shard-sorted over the
/// exec pool above the grain and k-way-merged on the calling thread. The
/// merge compares shard heads under the same total order, so the output is
/// byte-identical to a serial sort at any thread count.
Result<std::vector<RepairIndex>> OrderByEffectiveness(
    const CandidateSet& candidates, const ExecOptions& exec) {
  const size_t n = candidates.size();
  std::vector<RepairIndex> order(n);
  std::iota(order.begin(), order.end(), RepairIndex{0});
  EffectivenessOrder before{&candidates};

  const int threads = exec.ResolvedThreads();
  auto shards = SplitRange(n, threads,
                           ResolveGrain(exec.min_selection_grain, n, threads,
                                        kSelectionGrainCalibration));
  if (shards.size() <= 1) {
    if (n != 0) IDREPAIR_FAULT_INJECT("repair.selection.shard");
    std::sort(order.begin(), order.end(), before);
    return order;
  }

  IDREPAIR_RETURN_NOT_OK(ParallelFor(
      &ThreadPool::Default(), shards,
      [&](size_t shard, size_t begin, size_t end) {
        IDREPAIR_FAULT_INJECT("repair.selection.shard");
        obs::TraceSpan span("selection.sort.shard", shard);
        std::sort(order.begin() + begin, order.begin() + end, before);
        return Status::OK();
      }));

  std::vector<RepairIndex> merged;
  merged.reserve(n);
  std::vector<size_t> head(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) head[s] = shards[s].first;
  while (merged.size() < n) {
    size_t best = shards.size();
    for (size_t s = 0; s < shards.size(); ++s) {
      if (head[s] == shards[s].second) continue;
      if (best == shards.size() ||
          before(order[head[s]], order[head[best]])) {
        best = s;
      }
    }
    merged.push_back(order[head[best]++]);
  }
  return merged;
}

/// Shared greedy skeleton: visit vertices in the order produced by
/// `ordered`, take each undiscarded one, discard its neighbors.
std::vector<RepairIndex> GreedyByOrder(const RepairGraph& gr,
                                       const std::vector<RepairIndex>& order,
                                       const std::vector<bool>* skip) {
  std::vector<bool> discarded(gr.num_vertices(), false);
  std::vector<RepairIndex> out;
  for (RepairIndex v : order) {
    if (discarded[v]) continue;
    if (skip != nullptr && (*skip)[v]) continue;
    out.push_back(v);
    for (RepairIndex w : gr.Neighbors(v)) discarded[w] = true;
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<RepairIndex> EmaxSelector::Select(
    const RepairGraph& gr,
    const CandidateSet& candidates) const {
  std::vector<RepairIndex> order(gr.num_vertices());
  std::iota(order.begin(), order.end(), RepairIndex{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](RepairIndex a, RepairIndex b) {
                     return candidates.effectiveness(a) >
                            candidates.effectiveness(b);
                   });
  std::vector<bool> skip(gr.num_vertices(), false);
  for (RepairIndex v = 0; v < gr.num_vertices(); ++v) {
    skip[v] = candidates.effectiveness(v) <= 0.0;
  }
  return GreedyByOrder(gr, order, &skip);
}

Result<std::vector<RepairIndex>> EmaxSelector::Select(
    const RepairGraph& gr, const CandidateSet& candidates,
    const SelectionContext& ctx) const {
  auto order = OrderByEffectiveness(candidates, ctx.exec);
  IDREPAIR_RETURN_NOT_OK(order.status());

  // The commit loop is inherently serial — whether vertex k commits depends
  // on every earlier commit — so it stays on this thread; only the
  // neighbor-invalidation fan after each commit is sharded. Shards touch
  // disjoint entries of `discarded` (neighbor lists are sorted-unique) and
  // the flags are bytes, not vector<bool> bits, so there is no write
  // overlap to race on.
  std::vector<uint8_t> discarded(gr.num_vertices(), 0);
  std::vector<RepairIndex> out;
  uint64_t commits = 0;
  uint64_t invalidations = 0;
  const int threads = ctx.exec.ResolvedThreads();
  // Hoisted per-commit scratch: the fan re-sizes it in place instead of
  // allocating a fresh vector per committed repair.
  std::vector<uint64_t> shard_invalidations;
  for (RepairIndex v : *order) {
    if (discarded[v]) continue;
    if (candidates.effectiveness(v) <= 0.0) continue;
    IDREPAIR_FAULT_INJECT("repair.selection.commit");
    if (ctx.deadline != nullptr && ctx.deadline->Expired()) break;
    out.push_back(v);
    ++commits;
    if (ctx.commit_order != nullptr) ctx.commit_order->push_back(v);

    Span<const RepairIndex> nbrs = gr.Neighbors(v);
    auto shards = SplitRange(
        nbrs.size(), threads,
        ResolveGrain(ctx.exec.min_selection_grain, nbrs.size(), threads,
                     kSelectionGrainCalibration));
    if (shards.size() <= 1) {
      for (RepairIndex w : nbrs) {
        if (!discarded[w]) {
          discarded[w] = 1;
          ++invalidations;
        }
      }
    } else {
      shard_invalidations.assign(shards.size(), 0);
      IDREPAIR_RETURN_NOT_OK(ParallelFor(
          &ThreadPool::Default(), shards,
          [&](size_t shard, size_t begin, size_t end) {
            IDREPAIR_FAULT_INJECT("repair.selection.shard");
            for (size_t i = begin; i < end; ++i) {
              RepairIndex w = nbrs[i];
              if (!discarded[w]) {
                discarded[w] = 1;
                ++shard_invalidations[shard];
              }
            }
            return Status::OK();
          }));
      for (uint64_t c : shard_invalidations) invalidations += c;
    }
  }
  std::sort(out.begin(), out.end());
  RecordSelection(commits, invalidations);
  return out;
}

namespace {

/// Dynamic degree-driven greedy shared by DMIN and DMAX.
std::vector<RepairIndex> DegreeGreedy(const RepairGraph& gr, bool minimize) {
  size_t n = gr.num_vertices();
  std::vector<bool> removed(n, false);
  std::vector<size_t> degree(n);
  for (RepairIndex v = 0; v < n; ++v) degree[v] = gr.Degree(v);
  std::vector<RepairIndex> out;
  size_t remaining = n;
  while (remaining > 0) {
    RepairIndex best = 0;
    bool found = false;
    for (RepairIndex v = 0; v < n; ++v) {
      if (removed[v]) continue;
      if (!found || (minimize ? degree[v] < degree[best]
                              : degree[v] > degree[best])) {
        best = v;
        found = true;
      }
    }
    assert(found);
    out.push_back(best);
    // Remove `best` and its surviving neighbors, updating degrees.
    auto remove_vertex = [&](RepairIndex v) {
      removed[v] = true;
      --remaining;
      for (RepairIndex w : gr.Neighbors(v)) {
        if (!removed[w]) --degree[w];
      }
    };
    remove_vertex(best);
    for (RepairIndex w : gr.Neighbors(best)) {
      if (!removed[w]) remove_vertex(w);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Lazy-invalidation form of DegreeGreedy: same output, but the O(|Vr|)
/// full rescan per pick becomes a heap pop, and the degree re-scoring after
/// each commit fans out over the pool for heavy batches.
///
/// Heap entries are (degree-at-push, vertex); a vertex's entry goes stale
/// when its degree drops, and every drop pushes a fresh entry, so the live
/// vertex set always has current entries and stale ones are skipped on pop.
/// Keys are unique (degree ties break by vertex, and one vertex never
/// repeats a degree — degrees only decrease), so the pop sequence is a pure
/// function of the key set: push order, and therefore sharding, cannot
/// change it.
Result<std::vector<RepairIndex>> DegreeGreedyLazy(const RepairGraph& gr,
                                                  bool minimize,
                                                  const SelectionContext& ctx) {
  const size_t n = gr.num_vertices();
  std::vector<uint8_t> removed(n, 0);
  std::vector<size_t> degree(n);
  using Entry = std::pair<size_t, RepairIndex>;
  // priority_queue pops the Compare-greatest entry, so "worse" orders the
  // next pick last-to-first: DMIN pops the smallest (degree, vertex) pair,
  // DMAX the largest degree with the smallest vertex — exactly the vertex
  // the reference's ascending scan with strict improvement would pick.
  auto worse = [minimize](const Entry& a, const Entry& b) {
    if (a.first != b.first) {
      return minimize ? a.first > b.first : a.first < b.first;
    }
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(worse);
  for (RepairIndex v = 0; v < n; ++v) {
    degree[v] = gr.Degree(v);
    heap.push({degree[v], v});
  }

  std::vector<RepairIndex> out;
  std::vector<RepairIndex> batch;
  uint64_t commits = 0;
  uint64_t invalidations = 0;
  const int threads = ctx.exec.ResolvedThreads();
  // An explicit grain doubles as the fan-out gate (small batches stay
  // serial); the auto sentinel would gate at 0 edges and shard every
  // batch, so it maps to the calibrated edge threshold instead.
  const size_t rescore_gate = ctx.exec.min_selection_grain == kGrainAuto
                                  ? kSelectionRescoreGateEdges
                                  : ctx.exec.min_selection_grain;
  // Hoisted per-commit scratch (inner vectors keep their capacity).
  std::vector<std::vector<RepairIndex>> shard_touched;
  while (!heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    RepairIndex v = top.second;
    if (removed[v] || top.first != degree[v]) continue;  // stale entry
    IDREPAIR_FAULT_INJECT("repair.selection.commit");
    if (ctx.deadline != nullptr && ctx.deadline->Expired()) break;
    out.push_back(v);
    ++commits;
    if (ctx.commit_order != nullptr) ctx.commit_order->push_back(v);

    // Commit removes v and its surviving neighbors as one batch.
    batch.clear();
    batch.push_back(v);
    removed[v] = 1;
    for (RepairIndex w : gr.Neighbors(v)) {
      if (!removed[w]) {
        removed[w] = 1;
        ++invalidations;
        batch.push_back(w);
      }
    }

    // Re-scoring: every surviving neighbor of a batch member loses one
    // incident edge per adjacent batch member. Gathering the touched lists
    // only reads `removed` (all batch writes happened above, on this
    // thread); the decrements and heap pushes are applied serially in shard
    // order, so heap contents are identical at any thread count.
    size_t batch_edges = 0;
    for (RepairIndex u : batch) batch_edges += gr.Degree(u);
    auto shards = batch_edges >= rescore_gate
                      ? SplitRange(batch.size(), threads, 1)
                      : std::vector<std::pair<size_t, size_t>>();
    if (shards.size() <= 1) {
      for (RepairIndex u : batch) {
        for (RepairIndex w : gr.Neighbors(u)) {
          if (!removed[w]) {
            --degree[w];
            heap.push({degree[w], w});
          }
        }
      }
    } else {
      if (shard_touched.size() < shards.size()) {
        shard_touched.resize(shards.size());
      }
      for (auto& touched : shard_touched) touched.clear();
      IDREPAIR_RETURN_NOT_OK(ParallelFor(
          &ThreadPool::Default(), shards,
          [&](size_t shard, size_t begin, size_t end) {
            IDREPAIR_FAULT_INJECT("repair.selection.shard");
            std::vector<RepairIndex>& touched = shard_touched[shard];
            for (size_t i = begin; i < end; ++i) {
              for (RepairIndex w : gr.Neighbors(batch[i])) {
                if (!removed[w]) touched.push_back(w);
              }
            }
            return Status::OK();
          }));
      for (const std::vector<RepairIndex>& touched : shard_touched) {
        for (RepairIndex w : touched) {
          --degree[w];
          heap.push({degree[w], w});
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  RecordSelection(commits, invalidations);
  return out;
}

}  // namespace

std::vector<RepairIndex> DminSelector::Select(
    const RepairGraph& gr,
    const CandidateSet& candidates) const {
  (void)candidates;
  return DegreeGreedy(gr, /*minimize=*/true);
}

Result<std::vector<RepairIndex>> DminSelector::Select(
    const RepairGraph& gr, const CandidateSet& candidates,
    const SelectionContext& ctx) const {
  (void)candidates;
  return DegreeGreedyLazy(gr, /*minimize=*/true, ctx);
}

std::vector<RepairIndex> DmaxSelector::Select(
    const RepairGraph& gr,
    const CandidateSet& candidates) const {
  (void)candidates;
  return DegreeGreedy(gr, /*minimize=*/false);
}

Result<std::vector<RepairIndex>> DmaxSelector::Select(
    const RepairGraph& gr, const CandidateSet& candidates,
    const SelectionContext& ctx) const {
  (void)candidates;
  return DegreeGreedyLazy(gr, /*minimize=*/false, ctx);
}

namespace {

/// Branch-and-bound maximum-weight independent set over one connected
/// component (vertex ids are component-local). Uses degree-0/1 reductions,
/// a greedy-matching upper bound (for every matched edge at most one
/// endpoint can be taken, so the lighter endpoint's weight is provably
/// unreachable), and max-degree pivoting.
class ComponentSolver {
 public:
  ComponentSolver(const std::vector<std::vector<uint32_t>>& adj,
                  const std::vector<double>& weight)
      : adj_(adj), weight_(weight), n_(weight.size()) {}

  std::vector<uint32_t> Solve() {
    std::vector<uint32_t> avail(n_);
    std::iota(avail.begin(), avail.end(), 0u);
    best_value_ = -1.0;
    std::vector<uint32_t> chosen;
    Recurse(std::move(avail), 0.0, chosen);
    return best_set_;
  }

  double best_value() const { return best_value_; }

 private:
  bool Adjacent(uint32_t u, uint32_t v) const {
    return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
  }

  void Recurse(std::vector<uint32_t> avail, double current,
               std::vector<uint32_t>& chosen) {
    size_t chosen_mark = chosen.size();
    std::vector<uint8_t> in_avail(n_, 0);
    std::vector<uint32_t> degree(n_, 0);
    std::vector<uint32_t> only_neighbor(n_, 0);

    // ---- Reductions to a fixpoint ----
    // degree-0: always take. degree-1 with weight >= its neighbor: take it
    // and drop the neighbor (domination).
    bool changed = true;
    while (changed && !avail.empty()) {
      changed = false;
      for (uint32_t v : avail) in_avail[v] = 1;
      for (uint32_t v : avail) {
        uint32_t d = 0;
        uint32_t last = 0;
        for (uint32_t w : adj_[v]) {
          if (in_avail[w]) {
            ++d;
            last = w;
          }
        }
        degree[v] = d;
        only_neighbor[v] = last;
      }
      for (uint32_t v : avail) {
        if (!in_avail[v]) continue;
        if (degree[v] == 0) {
          chosen.push_back(v);
          current += weight_[v];
          in_avail[v] = 0;
          changed = true;
        } else if (degree[v] == 1) {
          uint32_t u = only_neighbor[v];
          if (in_avail[u] && weight_[v] >= weight_[u]) {
            chosen.push_back(v);
            current += weight_[v];
            in_avail[v] = 0;
            in_avail[u] = 0;
            changed = true;
          }
        }
      }
      if (changed) {
        std::vector<uint32_t> next;
        next.reserve(avail.size());
        for (uint32_t v : avail) {
          if (in_avail[v]) next.push_back(v);
        }
        for (uint32_t v : avail) in_avail[v] = 0;  // reset for next pass
        avail = std::move(next);
      }
    }

    if (avail.empty()) {
      if (current > best_value_) {
        best_value_ = current;
        best_set_ = chosen;
      }
      chosen.resize(chosen_mark);
      return;
    }
    // The reduction loop exits with in_avail set for the surviving set.
    for (uint32_t v : avail) in_avail[v] = 1;

    // ---- Greedy-matching upper bound ----
    double avail_weight = 0.0;
    for (uint32_t v : avail) avail_weight += weight_[v];
    double penalty = 0.0;
    {
      std::vector<uint8_t> matched(n_, 0);
      for (uint32_t v : avail) {
        if (matched[v]) continue;
        for (uint32_t w : adj_[v]) {
          if (w <= v || !in_avail[w] || matched[w]) continue;
          matched[v] = 1;
          matched[w] = 1;
          penalty += std::min(weight_[v], weight_[w]);
          break;
        }
      }
    }
    if (current + avail_weight - penalty <= best_value_) {
      chosen.resize(chosen_mark);
      return;
    }

    // ---- Branch on the max-degree (ties: heaviest) vertex ----
    uint32_t pivot = avail.front();
    uint32_t pivot_degree = 0;
    bool have_pivot = false;
    for (uint32_t v : avail) {
      uint32_t d = degree[v];
      if (!have_pivot || d > pivot_degree ||
          (d == pivot_degree && weight_[v] > weight_[pivot])) {
        pivot = v;
        pivot_degree = d;
        have_pivot = true;
      }
    }

    // Include branch: drop pivot and its neighbors.
    {
      std::vector<uint32_t> next;
      next.reserve(avail.size());
      for (uint32_t v : avail) {
        if (v != pivot && !Adjacent(pivot, v)) next.push_back(v);
      }
      chosen.push_back(pivot);
      Recurse(std::move(next), current + weight_[pivot], chosen);
      chosen.pop_back();
    }
    // Exclude branch: drop pivot only.
    {
      std::vector<uint32_t> next;
      next.reserve(avail.size());
      for (uint32_t v : avail) {
        if (v != pivot) next.push_back(v);
      }
      Recurse(std::move(next), current, chosen);
    }
    chosen.resize(chosen_mark);
  }

  const std::vector<std::vector<uint32_t>>& adj_;
  const std::vector<double>& weight_;
  size_t n_;
  double best_value_ = -1.0;
  std::vector<uint32_t> best_set_;
};

}  // namespace

std::vector<RepairIndex> ExactSelector::Select(
    const RepairGraph& gr,
    const CandidateSet& candidates) const {
  size_t n = gr.num_vertices();
  // Connected components (repairs in different components never conflict).
  std::vector<int64_t> component(n, -1);
  std::vector<RepairIndex> out;
  std::vector<RepairIndex> stack;
  int64_t num_components = 0;
  for (RepairIndex s = 0; s < n; ++s) {
    if (component[s] >= 0) continue;
    int64_t c = num_components++;
    stack.push_back(s);
    component[s] = c;
    std::vector<RepairIndex> members;
    while (!stack.empty()) {
      RepairIndex v = stack.back();
      stack.pop_back();
      members.push_back(v);
      for (RepairIndex w : gr.Neighbors(v)) {
        if (component[w] < 0) {
          component[w] = c;
          stack.push_back(w);
        }
      }
    }
    // Solve this component with local ids.
    std::sort(members.begin(), members.end());
    std::unordered_map<RepairIndex, uint32_t> local;
    local.reserve(members.size());
    for (uint32_t i = 0; i < members.size(); ++i) local[members[i]] = i;
    std::vector<std::vector<uint32_t>> adj(members.size());
    std::vector<double> weight(members.size());
    for (uint32_t i = 0; i < members.size(); ++i) {
      weight[i] = candidates.effectiveness(members[i]);
      for (RepairIndex w : gr.Neighbors(members[i])) {
        adj[i].push_back(local.at(w));
      }
      std::sort(adj[i].begin(), adj[i].end());
    }
    ComponentSolver solver(adj, weight);
    for (uint32_t v : solver.Solve()) out.push_back(members[v]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RepairIndex> OracleSelector::Select(
    const RepairGraph& gr,
    const CandidateSet& candidates) const {
  (void)gr;
  // Fragment sets per entity: entity -> sorted trajectory indices.
  std::unordered_map<std::string, std::vector<TrajIndex>> fragments;
  for (TrajIndex t = 0; t < true_ids_.size(); ++t) {
    fragments[true_ids_[t]].push_back(t);
  }
  std::vector<RepairIndex> out;
  for (RepairIndex r = 0; r < candidates.size(); ++r) {
    Span<const TrajIndex> members = candidates.members(r);
    const std::string& entity = true_ids_[members.front()];
    if (candidates.target_id(r) != entity) continue;
    auto it = fragments.find(entity);
    // Correct iff the members are exactly the entity's fragments (members
    // are already ascending; fragments built in ascending order).
    if (it != fragments.end() && members == it->second) out.push_back(r);
  }
  return out;
}

std::unique_ptr<RepairSelector> MakeSelector(SelectionAlgorithm algorithm) {
  switch (algorithm) {
    case SelectionAlgorithm::kEmax:
      return std::make_unique<EmaxSelector>();
    case SelectionAlgorithm::kDmin:
      return std::make_unique<DminSelector>();
    case SelectionAlgorithm::kDmax:
      return std::make_unique<DmaxSelector>();
    case SelectionAlgorithm::kExact:
      return std::make_unique<ExactSelector>();
  }
  return nullptr;
}

std::vector<RepairIndex> SelectEmaxByCover(
    const CandidateSet& candidates, size_t num_trajs) {
  std::vector<RepairIndex> order(candidates.size());
  std::iota(order.begin(), order.end(), RepairIndex{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](RepairIndex a, RepairIndex b) {
                     return candidates.effectiveness(a) >
                            candidates.effectiveness(b);
                   });
  DynamicBitset used(num_trajs);
  std::vector<RepairIndex> out;
  for (RepairIndex r : order) {
    if (candidates.effectiveness(r) <= 0.0) continue;
    Span<const TrajIndex> members = candidates.members(r);
    bool free = true;
    for (TrajIndex m : members) {
      if (used.Test(m)) {
        free = false;
        break;
      }
    }
    if (!free) continue;
    for (TrajIndex m : members) used.Set(m);
    out.push_back(r);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<RepairIndex>> SelectEmaxByCover(
    const CandidateSet& candidates, size_t num_trajs,
    const SelectionContext& ctx) {
  auto order = OrderByEffectiveness(candidates, ctx.exec);
  IDREPAIR_RETURN_NOT_OK(order.status());
  DynamicBitset used(num_trajs);
  std::vector<RepairIndex> out;
  uint64_t commits = 0;
  uint64_t invalidations = 0;
  for (RepairIndex r : *order) {
    if (candidates.effectiveness(r) <= 0.0) continue;
    Span<const TrajIndex> members = candidates.members(r);
    bool free = true;
    for (TrajIndex m : members) {
      if (used.Test(m)) {
        free = false;
        break;
      }
    }
    if (!free) {
      ++invalidations;
      continue;
    }
    IDREPAIR_FAULT_INJECT("repair.selection.commit");
    if (ctx.deadline != nullptr && ctx.deadline->Expired()) break;
    for (TrajIndex m : members) used.Set(m);
    out.push_back(r);
    ++commits;
    if (ctx.commit_order != nullptr) ctx.commit_order->push_back(r);
  }
  std::sort(out.begin(), out.end());
  RecordSelection(commits, invalidations);
  return out;
}

double TotalEffectiveness(const CandidateSet& candidates,
                          const std::vector<RepairIndex>& selected) {
  double total = 0.0;
  for (RepairIndex r : selected) total += candidates.effectiveness(r);
  return total;
}

}  // namespace idrepair
