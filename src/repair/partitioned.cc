#include "repair/partitioned.h"

#include <algorithm>

namespace idrepair {

std::vector<std::vector<TrajIndex>> PartitionedRepairer::Partition(
    const TrajectorySet& set) const {
  // TrajectorySet order is start-time order (FromRecords sorts), so chain
  // components are contiguous index ranges; still sort defensively in case
  // the set was constructed directly from unordered trajectories.
  std::vector<TrajIndex> order(set.size());
  for (TrajIndex i = 0; i < set.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](TrajIndex a, TrajIndex b) {
                     return set.at(a).start_time() < set.at(b).start_time();
                   });
  std::vector<std::vector<TrajIndex>> partitions;
  Timestamp eta = repairer_.options().eta;
  for (size_t i = 0; i < order.size(); ++i) {
    bool new_partition =
        partitions.empty() ||
        set.at(order[i]).start_time() -
                set.at(order[i - 1]).start_time() > eta;
    if (new_partition) partitions.emplace_back();
    partitions.back().push_back(order[i]);
  }
  for (auto& p : partitions) std::sort(p.begin(), p.end());
  return partitions;
}

Result<RepairResult> PartitionedRepairer::Repair(
    const TrajectorySet& set, PartitionStats* stats) const {
  IDREPAIR_RETURN_NOT_OK(repairer_.options().Validate());
  auto partitions = Partition(set);

  RepairResult combined;
  PartitionStats local;
  local.num_partitions = partitions.size();
  combined.stats.num_trajectories = set.size();

  std::vector<TrackingRecord> repaired_records;
  repaired_records.reserve(set.total_records());

  for (const auto& partition : partitions) {
    local.largest_partition =
        std::max(local.largest_partition, partition.size());
    // Build the partition's own TrajectorySet; its internal order matches
    // the global order restricted to the partition (both start-time
    // sorted), so results map back through `partition`.
    std::vector<Trajectory> trajs;
    trajs.reserve(partition.size());
    for (TrajIndex t : partition) trajs.push_back(set.at(t));
    TrajectorySet chunk(std::move(trajs));

    auto result = repairer_.Repair(chunk);
    if (!result.ok()) return result.status();

    // Re-index candidates and selections into global trajectory indices.
    RepairIndex base = static_cast<RepairIndex>(combined.candidates.size());
    for (auto& cand : result->candidates) {
      for (TrajIndex& m : cand.members) m = partition[m];
      for (TrajIndex& m : cand.invalid_members) m = partition[m];
      combined.candidates.push_back(std::move(cand));
    }
    for (RepairIndex r : result->selected) {
      combined.selected.push_back(base + r);
    }
    for (const auto& [traj, id] : result->rewrites) {
      combined.rewrites.emplace(partition[traj], id);
    }
    combined.total_effectiveness += result->total_effectiveness;

    // Aggregate stats: counters add, phase times add (sequential execution;
    // a distributed deployment would take the max instead).
    const RepairStats& s = result->stats;
    combined.stats.num_invalid += s.num_invalid;
    combined.stats.gm_edges += s.gm_edges;
    combined.stats.cex_evaluations += s.cex_evaluations;
    combined.stats.cliques_enumerated += s.cliques_enumerated;
    combined.stats.pck_pruned += s.pck_pruned;
    combined.stats.jnb_checks += s.jnb_checks;
    combined.stats.joinable_subsets += s.joinable_subsets;
    combined.stats.num_candidates += s.num_candidates;
    combined.stats.gr_edges += s.gr_edges;
    combined.stats.num_selected += s.num_selected;
    combined.stats.seconds_gm += s.seconds_gm;
    combined.stats.seconds_generation += s.seconds_generation;
    combined.stats.seconds_selection += s.seconds_selection;
    combined.stats.seconds_total += s.seconds_total;
  }
  combined.repaired = ApplyRewrites(set, combined.rewrites);
  local.combined = combined.stats;
  if (stats != nullptr) *stats = local;
  return combined;
}

}  // namespace idrepair
