#include "repair/partitioned.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "fault/deadline.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace idrepair {

namespace {

/// Partition-engine instrumentation. Both metrics are pure functions of the
/// input and η (the chain-component decomposition), so they are kStable —
/// byte-identical across thread counts.
struct PartitionInstruments {
  obs::Counter* attempts;
  obs::Counter* completed;
  obs::Counter* repairs;
  obs::Histogram* partition_size;

  static PartitionInstruments& Get() {
    static PartitionInstruments* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* pi = new PartitionInstruments();
      pi->attempts = reg.GetCounter(
          "idrepair_partition_attempts_total", obs::Stability::kStable,
          "Partitioned Repair() entries (attempted)");
      pi->completed = reg.GetCounter(
          "idrepair_partition_runs_total", obs::Stability::kStable,
          "Partitioned Repair() runs merged to completion");
      pi->repairs = reg.GetCounter(
          "idrepair_partition_repairs_total", obs::Stability::kStable,
          "Chain-component partitions repaired");
      pi->partition_size = reg.GetHistogram(
          "idrepair_partition_size", obs::Stability::kStable,
          obs::ExponentialBuckets(1, 2, 20),
          "Trajectories per chain-component partition");
      return pi;
    }();
    return *m;
  }
};

}  // namespace

std::vector<std::vector<TrajIndex>> PartitionedRepairer::Partition(
    const TrajectorySet& set) const {
  // TrajectorySet order is start-time order (FromRecords sorts), so chain
  // components are contiguous index ranges; still sort defensively in case
  // the set was constructed directly from unordered trajectories.
  std::vector<TrajIndex> order(set.size());
  for (TrajIndex i = 0; i < set.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](TrajIndex a, TrajIndex b) {
                     return set.at(a).start_time() < set.at(b).start_time();
                   });
  std::vector<std::vector<TrajIndex>> partitions;
  Timestamp eta = repairer_.options().eta;
  for (size_t i = 0; i < order.size(); ++i) {
    bool new_partition =
        partitions.empty() ||
        set.at(order[i]).start_time() -
                set.at(order[i - 1]).start_time() > eta;
    if (new_partition) partitions.emplace_back();
    partitions.back().push_back(order[i]);
  }
  for (auto& p : partitions) std::sort(p.begin(), p.end());
  return partitions;
}

namespace {

/// Groups consecutive partitions into at most `num_tasks` contiguous task
/// ranges balanced by trajectory count (each task repairs its partitions
/// sequentially). Pure function of the sizes, so the decomposition — and
/// therefore the merged output — never depends on timing.
std::vector<std::pair<size_t, size_t>> GroupPartitions(
    const std::vector<std::vector<TrajIndex>>& partitions, size_t total,
    int num_threads, size_t grain) {
  std::vector<std::pair<size_t, size_t>> tasks;
  if (partitions.empty()) return tasks;
  size_t max_tasks = num_threads > 0 ? static_cast<size_t>(num_threads) : 1;
  if (grain > 0) {
    max_tasks = std::min(max_tasks, std::max<size_t>(1, total / grain));
  }
  max_tasks = std::min(max_tasks, partitions.size());
  // Close a task once it holds its share of trajectories. Every task but
  // the last then carries >= target items, which bounds the task count by
  // max_tasks without a second pass.
  size_t target = (total + max_tasks - 1) / max_tasks;
  size_t begin = 0, acc = 0;
  for (size_t p = 0; p < partitions.size(); ++p) {
    acc += partitions[p].size();
    if (acc >= target || p + 1 == partitions.size()) {
      tasks.emplace_back(begin, p + 1);
      begin = p + 1;
      acc = 0;
    }
  }
  return tasks;
}

}  // namespace

Result<RepairResult> PartitionedRepairer::Repair(
    const TrajectorySet& set) const {
  IDREPAIR_RETURN_NOT_OK(repairer_.options().Validate());
  obs::ApplyOptions(repairer_.options().obs);
  if (obs::Enabled()) PartitionInstruments::Get().attempts->Increment();
  fault::Deadline deadline =
      fault::Deadline::FromMillis(repairer_.options().deadline_ms);
  Stopwatch total;
  CpuStopwatch total_cpu;
  auto partitions = Partition(set);

  const ExecOptions& exec = repairer_.options().exec;
  int threads = exec.ResolvedThreads();
  auto tasks = GroupPartitions(partitions, set.size(), threads,
                               exec.min_partition_grain);

  // The parallel unit is the chain component: inner repairs run their own
  // phases sequentially unless this whole batch is (close to) a single
  // component, in which case the component repair inherits the full thread
  // budget and parallelizes *inside* the component instead — sharded
  // trajectory-graph build plus sharded candidate generation — so a giant
  // hot component no longer serializes the batch.
  RepairOptions inner_options = repairer_.options();
  if (tasks.size() > 1) inner_options.exec.num_threads = 1;
  // The budget is enforced here, at partition granularity: a partition
  // either repairs completely or passes through untouched, so the partial
  // result is a clean prefix-of-partitions — never a half-repaired one.
  inner_options.deadline_ms = 0;
  IdRepairer inner(repairer_.graph(), inner_options);

  // Per-partition result slots: each task writes only its own partitions;
  // the merge below walks slots in partition order, so output is
  // bit-identical to the sequential run regardless of thread count.
  std::vector<Result<RepairResult>> slots;
  slots.reserve(partitions.size());
  for (size_t p = 0; p < partitions.size(); ++p) {
    slots.emplace_back(Status::Internal("partition repair never ran"));
  }

  auto repair_partition = [&](size_t p) -> Status {
    IDREPAIR_FAULT_INJECT("repair.partition.repair");
    if (deadline.Expired()) {
      // Graceful: leave a deadline marker in the slot; the merge passes
      // this partition through unrepaired. Not an error — siblings keep
      // running (each takes this same cheap branch once expired).
      slots[p] = Status::DeadlineExceeded("partition skipped: budget ran out");
      return Status::OK();
    }
    obs::TraceSpan span("partition.repair", p);
    const auto& partition = partitions[p];
    if (obs::Enabled()) {
      PartitionInstruments& inst = PartitionInstruments::Get();
      inst.repairs->Increment();
      inst.partition_size->Observe(static_cast<double>(partition.size()));
    }
    // Build the partition's own TrajectorySet; its internal order matches
    // the global order restricted to the partition (both start-time
    // sorted), so results map back through `partition`.
    std::vector<Trajectory> trajs;
    trajs.reserve(partition.size());
    for (TrajIndex t : partition) trajs.push_back(set.at(t));
    TrajectorySet chunk(std::move(trajs));
    slots[p] = inner.Repair(chunk);
    return slots[p].ok() ? Status::OK() : slots[p].status();
  };

  if (tasks.size() <= 1) {
    for (size_t p = 0; p < partitions.size(); ++p) {
      IDREPAIR_RETURN_NOT_OK(repair_partition(p));
    }
  } else {
    // Lazy graph caches must be materialized before tasks share the graph
    // across threads.
    repairer_.graph().PrepareForConcurrentUse();
    TaskGroup group(&ThreadPool::Default());
    for (const auto& [task_begin, task_end] : tasks) {
      group.Spawn([&, task_begin = task_begin, task_end = task_end] {
        for (size_t p = task_begin; p < task_end; ++p) {
          if (group.IsCancelled()) return Status::OK();  // superseded
          IDREPAIR_RETURN_NOT_OK(repair_partition(p));
        }
        return Status::OK();
      });
    }
    IDREPAIR_RETURN_NOT_OK(group.Wait());
  }

  IDREPAIR_FAULT_INJECT("repair.partition.merge");
  obs::TraceSpan merge_span("partition.merge");
  RepairResult combined;
  combined.stats.num_trajectories = set.size();
  combined.stats.num_partitions = partitions.size();
  combined.stats.threads_used =
      static_cast<int>(std::min<size_t>(tasks.empty() ? 1 : tasks.size(),
                                        static_cast<size_t>(threads)));

  size_t skipped = 0;
  for (size_t p = 0; p < partitions.size(); ++p) {
    const auto& partition = partitions[p];
    combined.stats.largest_partition =
        std::max(combined.stats.largest_partition, partition.size());
    if (!slots[p].ok()) {
      // Only deadline markers reach the merge (real errors returned above);
      // the partition's trajectories pass through unrepaired.
      ++skipped;
      continue;
    }
    RepairResult& result = *slots[p];

    // Re-index candidates and selections into global trajectory indices:
    // every member translates through `partition` (local -> global) while
    // the rows re-intern into the combined set's dictionary.
    RepairIndex base = static_cast<RepairIndex>(combined.candidates.size());
    for (size_t r = 0; r < result.candidates.size(); ++r) {
      combined.candidates.AppendRemapped(result.candidates, r, partition);
    }
    for (RepairIndex r : result.selected) {
      combined.selected.push_back(base + r);
    }
    for (const auto& [traj, id] : result.rewrites) {
      combined.rewrites.emplace(partition[traj], id);
    }

    // Aggregate stats: counters add; per-phase wall and CPU times add too
    // (they approximate total work — a distributed deployment would take
    // the max instead), while seconds_total below is the true wall time of
    // this call, so the wall/CPU split reflects the parallel run.
    const RepairStats& s = result.stats;
    combined.stats.num_invalid += s.num_invalid;
    combined.stats.gm_edges += s.gm_edges;
    combined.stats.cex_evaluations += s.cex_evaluations;
    combined.stats.cliques_enumerated += s.cliques_enumerated;
    combined.stats.pck_pruned += s.pck_pruned;
    combined.stats.jnb_checks += s.jnb_checks;
    combined.stats.joinable_subsets += s.joinable_subsets;
    combined.stats.sched_blocks += s.sched_blocks;
    combined.stats.sched_workers =
        std::max(combined.stats.sched_workers, s.sched_workers);
    combined.stats.sched_imbalance =
        std::max(combined.stats.sched_imbalance, s.sched_imbalance);
    combined.stats.num_candidates += s.num_candidates;
    combined.stats.gr_edges += s.gr_edges;
    combined.stats.num_selected += s.num_selected;
    combined.stats.seconds_gm += s.seconds_gm;
    combined.stats.seconds_generation += s.seconds_generation;
    combined.stats.seconds_selection += s.seconds_selection;
    combined.stats.cpu_seconds_gm += s.cpu_seconds_gm;
    combined.stats.cpu_seconds_generation += s.cpu_seconds_generation;
  }
  // Recompute Ω over the merged selection instead of adding per-partition
  // sums: the global candidate order equals the whole-batch order, so this
  // reproduces IdRepairer's float summation order exactly — Ω is
  // byte-identical across engines, not merely equal up to reassociation.
  combined.total_effectiveness =
      TotalEffectiveness(combined.candidates, combined.selected);
  combined.repaired = ApplyRewrites(set, combined.rewrites);
  combined.candidates.Freeze();  // merge complete; shed the intern index
  combined.stats.seconds_total = total.ElapsedSeconds();
  combined.stats.cpu_seconds_total = total_cpu.ElapsedSeconds();
  if (skipped > 0) {
    combined.completion = Status::DeadlineExceeded(
        std::to_string(skipped) + " of " + std::to_string(partitions.size()) +
        " partitions passed through unrepaired: budget ran out");
  } else if (obs::Enabled()) {
    PartitionInstruments::Get().completed->Increment();
  }
  return combined;
}

}  // namespace idrepair
