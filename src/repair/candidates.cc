#include "repair/candidates.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "fault/failpoint.h"
#include "obs/trace.h"

namespace idrepair {

TrajIndex AssignTargetId(const TrajectorySet& set,
                         const std::vector<TrajIndex>& members,
                         const IdSimilarity& similarity) {
  TrajIndex best = members.front();
  double best_score = -1.0;
  for (TrajIndex i : members) {
    const Trajectory& ti = set.at(i);
    double score = 0.0;
    for (TrajIndex j : members) {
      const Trajectory& tj = set.at(j);
      double ratio = static_cast<double>(ti.size()) /
                     static_cast<double>(tj.size());
      score += ratio * similarity.Similarity(ti.id(), tj.id());
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

namespace {

/// One shard's private slice of the generation: the candidates rooted at
/// its seed range, in emission order, plus its stats. Shards never share
/// mutable state; the merge walks slots in shard order.
struct GenerationShard {
  std::vector<CandidateRepair> candidates;
  GenerationStats stats;
};

}  // namespace

Result<std::vector<CandidateRepair>> GenerateCandidates(
    const TrajectorySet& set, const TrajectoryGraph& gm,
    const PredicateEvaluator& pred, const RepairOptions& options,
    const IdSimilarity& similarity, const std::vector<bool>& is_valid,
    GenerationStats* stats) {
  CliqueEnumerator enumerator(set, gm, pred, options);
  std::vector<TrajIndex> seeds = enumerator.SeedVertices();

  // Shard boundaries are a pure function of (|seeds|, threads, grain), so
  // the decomposition — and therefore the merged output — never depends on
  // timing. One seed owns the whole subtree of cliques it roots, which is
  // exactly the intra-component unit of work.
  auto shards = SplitRange(seeds.size(), options.exec.ResolvedThreads(),
                           options.exec.min_candidate_grain);
  std::vector<GenerationShard> slots(shards.size());

  if (shards.size() > 1) {
    // pck consults the transition graph's lazy exit-reachability cache;
    // materialize it before the shards share the graph across threads.
    pred.graph().PrepareForConcurrentUse();
  }
  IDREPAIR_RETURN_NOT_OK(ParallelFor(
      &ThreadPool::Default(), shards,
      [&](size_t shard, size_t begin, size_t end) {
        IDREPAIR_FAULT_INJECT("repair.generation.shard");
        obs::TraceSpan span("generation.shard", shard);
        GenerationShard& slot = slots[shard];
        slot.stats.clique_stats = enumerator.EnumerateSeedRange(
            seeds, begin, end,
            [&](const std::vector<TrajIndex>& clique,
                const std::vector<MergedPoint>& merged) {
              ++slot.stats.jnb_checks;
              if (!pred.JnbMerged(merged)) return;
              ++slot.stats.joinable_subsets;

              CandidateRepair repair;
              repair.members = clique;
              for (TrajIndex m : clique) {
                if (!is_valid[m]) repair.invalid_members.push_back(m);
              }
              // ω would be 0 (Eq. 3).
              if (repair.invalid_members.empty()) return;

              TrajIndex target = AssignTargetId(set, clique, similarity);
              repair.target_id = set.at(target).id();
              double min_sim = 1.0;
              for (TrajIndex m : clique) {
                min_sim = std::min(min_sim,
                                   similarity.Similarity(repair.target_id,
                                                         set.at(m).id()));
              }
              repair.similarity = min_sim;
              slot.candidates.push_back(std::move(repair));
            });
        return Status::OK();
      }));

  // Deterministic reduction: concatenate emissions and fold counters in
  // shard order, reproducing the sequential enumeration exactly.
  std::vector<CandidateRepair> out;
  GenerationStats merged_stats;
  size_t total = 0;
  for (const GenerationShard& slot : slots) total += slot.candidates.size();
  out.reserve(total);
  for (GenerationShard& slot : slots) {
    merged_stats.MergeFrom(slot.stats);
    for (CandidateRepair& c : slot.candidates) out.push_back(std::move(c));
  }
  if (stats != nullptr) *stats = merged_stats;
  return out;
}

Status ComputeEffectiveness(std::vector<CandidateRepair>& candidates,
                            const RepairOptions& options, size_t num_trajs) {
  obs::TraceSpan span("generation.effectiveness");
  auto shards = SplitRange(candidates.size(),
                           options.exec.ResolvedThreads(),
                           options.exec.min_candidate_grain);

  // d(T): how many candidate repairs cover each invalid trajectory. Each
  // shard counts its candidate range into a private array; the reduction
  // adds the arrays in index order (integer sums, so any order would give
  // the same totals — fixed order keeps the invariant self-evident).
  std::vector<uint32_t> degree(num_trajs, 0);
  if (shards.size() <= 1) {
    for (const auto& r : candidates) {
      for (TrajIndex t : r.invalid_members) ++degree[t];
    }
  } else {
    std::vector<std::vector<uint32_t>> shard_degree(shards.size());
    IDREPAIR_RETURN_NOT_OK(ParallelFor(
        &ThreadPool::Default(), shards,
        [&](size_t shard, size_t begin, size_t end) {
          std::vector<uint32_t>& d = shard_degree[shard];
          d.assign(num_trajs, 0);
          for (size_t i = begin; i < end; ++i) {
            for (TrajIndex t : candidates[i].invalid_members) ++d[t];
          }
          return Status::OK();
        }));
    for (const std::vector<uint32_t>& d : shard_degree) {
      for (size_t t = 0; t < num_trajs; ++t) degree[t] += d[t];
    }
  }

  // Scoring touches only the candidate's own fields plus the finished
  // degree array, so the same shards run it without any reduction.
  return ParallelFor(
      &ThreadPool::Default(), shards,
      [&](size_t /*shard*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          CandidateRepair& r = candidates[i];
          uint32_t ra = 0;
          bool first = true;
          for (TrajIndex t : r.invalid_members) {
            uint32_t d = degree[t];
            if (first) {
              ra = d;
              first = false;
            } else if (options.rarity_aggregation == RarityAggregation::kMin) {
              ra = std::min(ra, d);
            } else {
              ra = std::max(ra, d);
            }
          }
          r.rarity = ra;
          double ivt = static_cast<double>(r.invalid_members.size());
          double base = static_cast<double>(ra + options.rarity_base_offset);
          // ω(R) = sim(R) + λ · log_base(|ivt(R)|); |ivt| >= 1 by
          // construction.
          r.effectiveness =
              r.similarity + options.lambda * (std::log(ivt) / std::log(base));
        }
        return Status::OK();
      });
}

}  // namespace idrepair
