#include "repair/candidates.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/flat_hash.h"
#include "exec/grain.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "fault/failpoint.h"
#include "obs/trace.h"

namespace idrepair {

size_t CandidateSet::Append(Span<const TrajIndex> members,
                            Span<const TrajIndex> invalid,
                            std::string target_id, double similarity) {
  member_sets_.push_back(dict_.Intern(members));
  invalid_sets_.push_back(dict_.Intern(invalid));
  target_ids_.push_back(std::move(target_id));
  similarity_.push_back(similarity);
  rarity_.push_back(0);
  effectiveness_.push_back(0.0);
  return size() - 1;
}

size_t CandidateSet::AppendFrom(const CandidateSet& other, size_t r) {
  size_t row =
      Append(other.members(r), other.invalid_members(r), other.target_ids_[r],
             other.similarity_[r]);
  rarity_[row] = other.rarity_[r];
  effectiveness_[row] = other.effectiveness_[r];
  return row;
}

size_t CandidateSet::AppendRemapped(const CandidateSet& other, size_t r,
                                    const std::vector<TrajIndex>& index_map) {
  remap_scratch_.clear();
  for (TrajIndex m : other.members(r)) remap_scratch_.push_back(index_map[m]);
  SetId members = dict_.Intern(remap_scratch_);
  remap_scratch_.clear();
  for (TrajIndex m : other.invalid_members(r)) {
    remap_scratch_.push_back(index_map[m]);
  }
  member_sets_.push_back(members);
  invalid_sets_.push_back(dict_.Intern(remap_scratch_));
  target_ids_.push_back(other.target_ids_[r]);
  similarity_.push_back(other.similarity_[r]);
  rarity_.push_back(other.rarity_[r]);
  effectiveness_.push_back(other.effectiveness_[r]);
  return size() - 1;
}

void CandidateSet::Reserve(size_t rows) {
  member_sets_.reserve(rows);
  invalid_sets_.reserve(rows);
  target_ids_.reserve(rows);
  similarity_.reserve(rows);
  rarity_.reserve(rows);
  effectiveness_.reserve(rows);
}

size_t CandidateSet::MemoryBytes() const {
  size_t strings = target_ids_.capacity() * sizeof(std::string);
  for (const std::string& s : target_ids_) {
    // Only out-of-line payloads add heap bytes; SSO ids live in the header
    // already counted above.
    if (s.capacity() > sizeof(std::string) - sizeof(char*) - 1) {
      strings += s.capacity() + 1;
    }
  }
  return dict_.MemoryBytes() + member_sets_.capacity() * sizeof(SetId) +
         invalid_sets_.capacity() * sizeof(SetId) + strings +
         similarity_.capacity() * sizeof(double) +
         rarity_.capacity() * sizeof(uint32_t) +
         effectiveness_.capacity() * sizeof(double) +
         remap_scratch_.capacity() * sizeof(TrajIndex);
}

namespace {

/// Per-block memo of similarity.Similarity(id(a), id(b)) keyed by the
/// ordered index pair. The similarity is a pure function of the two ID
/// strings, so a memo hit returns the exact double a recomputation would —
/// byte-identity holds at every thread count even though each block's memo
/// sees a different call history. Cliques within a component overlap
/// heavily, making the hit rate the dominant generation speedup on dense
/// instances.
///
/// The backing table is borrowed, not owned: blocks draw it from the
/// pool's per-thread scratch (ThreadPool::LocalScratch) so its capacity
/// survives across blocks, and Reset() it per block — both because
/// TrajIndex keys are component-local under the partitioned engine (a
/// stale entry would answer for the wrong pair) and so the merged
/// similarity_cache_hits stays a pure function of the block decomposition
/// rather than of which thread ran which block.
class PairSimilarityMemo {
 public:
  PairSimilarityMemo(const TrajectorySet& set, const IdSimilarity& similarity,
                     FlatHash64Map<double>& table)
      : set_(set), similarity_(similarity), memo_(table) {}

  double Get(TrajIndex a, TrajIndex b) {
    // Key cannot collide with the table's reserved empty marker: both
    // halves would have to be 0xffffffff, which no TrajectorySet reaches.
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    if (double* v = memo_.Find(key)) {
      ++hits_;
      return *v;
    }
    double v = similarity_.Similarity(set_.at(a).id(), set_.at(b).id());
    memo_.Insert(key, v);
    return v;
  }

  size_t hits() const { return hits_; }

 private:
  const TrajectorySet& set_;
  const IdSimilarity& similarity_;
  FlatHash64Map<double>& memo_;
  size_t hits_ = 0;
};

/// Pool-owned per-thread workspace for generation blocks: the similarity
/// memo's table and the invalid-member assembly buffer, reused across every
/// block a thread claims instead of reallocated per block. Reset per block
/// where required (memo: always; invalid: cleared per clique).
struct GenerationScratch {
  FlatHash64Map<double> memo;
  std::vector<TrajIndex> invalid;
};

/// Eq. (5) with memoized pair similarities; same tie-breaks and float
/// order as the public AssignTargetId.
TrajIndex AssignTargetIdMemo(const TrajectorySet& set,
                             Span<const TrajIndex> members,
                             PairSimilarityMemo& memo) {
  TrajIndex best = members.front();
  double best_score = -1.0;
  for (TrajIndex i : members) {
    const Trajectory& ti = set.at(i);
    double score = 0.0;
    for (TrajIndex j : members) {
      const Trajectory& tj = set.at(j);
      double ratio =
          static_cast<double>(ti.size()) / static_cast<double>(tj.size());
      score += ratio * memo.Get(i, j);
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

/// One block's private slice of the generation: the candidates rooted at
/// its seed range, in emission order, plus its stats. Blocks never share
/// mutable state; the merge walks slots in block order.
struct GenerationShard {
  CandidateSet candidates;
  GenerationStats stats;
};

}  // namespace

TrajIndex AssignTargetId(const TrajectorySet& set,
                         Span<const TrajIndex> members,
                         const IdSimilarity& similarity) {
  TrajIndex best = members.front();
  double best_score = -1.0;
  for (TrajIndex i : members) {
    const Trajectory& ti = set.at(i);
    double score = 0.0;
    for (TrajIndex j : members) {
      const Trajectory& tj = set.at(j);
      double ratio =
          static_cast<double>(ti.size()) / static_cast<double>(tj.size());
      score += ratio * similarity.Similarity(ti.id(), tj.id());
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

Result<CandidateSet> GenerateCandidates(
    const TrajectorySet& set, const TrajectoryGraph& gm,
    const PredicateEvaluator& pred, const RepairOptions& options,
    const IdSimilarity& similarity, const std::vector<bool>& is_valid,
    GenerationStats* stats) {
  CliqueEnumerator enumerator(set, gm, pred, options);
  std::vector<TrajIndex> seeds = enumerator.SeedVertices();

  // Block boundaries are a pure function of (|seeds|, grain), so the
  // decomposition — and therefore the merged output — never depends on
  // timing even though blocks are CLAIMED dynamically: a seed rooting a
  // heavy clique subtree delays only the worker that claimed its block,
  // not a fixed range-mate. One seed owns the whole subtree of cliques it
  // roots, which is exactly the intra-component unit of work.
  const int threads = options.exec.ResolvedThreads();
  const size_t grain = ResolveGrain(options.exec.min_candidate_grain,
                                    seeds.size(), threads,
                                    kCandidateGrainCalibration);
  const size_t num_blocks =
      seeds.empty() ? 0 : (seeds.size() + grain - 1) / grain;
  std::vector<GenerationShard> slots(num_blocks);

  if (num_blocks > 1 && threads > 1) {
    // pck consults the transition graph's lazy exit-reachability cache;
    // materialize it before the blocks share the graph across threads.
    pred.graph().PrepareForConcurrentUse();
  }
  ThreadPool* pool = &ThreadPool::Default();
  DynamicScheduleStats sched;
  IDREPAIR_RETURN_NOT_OK(ParallelForDynamic(
      pool, seeds.size(), threads, grain,
      [&](size_t block, size_t begin, size_t end) {
        IDREPAIR_FAULT_INJECT("repair.generation.shard");
        obs::TraceSpan span("generation.shard", block);
        GenerationShard& slot = slots[block];
        GenerationScratch& scratch = pool->LocalScratch<GenerationScratch>();
        scratch.memo.Reset();
        PairSimilarityMemo memo(set, similarity, scratch.memo);
        slot.stats.clique_stats = enumerator.EnumerateSeedRange(
            seeds, begin, end,
            [&](const std::vector<TrajIndex>& clique,
                const std::vector<MergedPoint>& merged) {
              ++slot.stats.jnb_checks;
              if (!pred.JnbMerged(merged)) return;
              ++slot.stats.joinable_subsets;

              std::vector<TrajIndex>& invalid = scratch.invalid;
              invalid.clear();
              for (TrajIndex m : clique) {
                if (!is_valid[m]) invalid.push_back(m);
              }
              // ω would be 0 (Eq. 3).
              if (invalid.empty()) return;

              TrajIndex target = AssignTargetIdMemo(set, clique, memo);
              double min_sim = 1.0;
              for (TrajIndex m : clique) {
                min_sim = std::min(min_sim, memo.Get(target, m));
              }
              slot.candidates.Append(clique, invalid, set.at(target).id(),
                                     min_sim);
            });
        slot.stats.similarity_cache_hits = memo.hits();
        return Status::OK();
      },
      &sched));

  // Deterministic reduction: concatenate emissions and fold counters in
  // block order, reproducing the sequential enumeration exactly.
  CandidateSet out;
  GenerationStats merged_stats;
  size_t total = 0;
  for (const GenerationShard& slot : slots) total += slot.candidates.size();
  out.Reserve(total);
  for (GenerationShard& slot : slots) {
    merged_stats.MergeFrom(slot.stats);
    for (size_t r = 0; r < slot.candidates.size(); ++r) {
      out.AppendFrom(slot.candidates, r);
    }
  }
  merged_stats.sched_blocks = sched.blocks;
  merged_stats.sched_workers = sched.workers;
  merged_stats.sched_imbalance = sched.Imbalance();
  if (stats != nullptr) *stats = merged_stats;
  return out;
}

Status ComputeEffectiveness(CandidateSet& candidates,
                            const RepairOptions& options, size_t num_trajs) {
  obs::TraceSpan span("generation.effectiveness");
  const int threads = options.exec.ResolvedThreads();
  auto shards = SplitRange(
      candidates.size(), threads,
      ResolveGrain(options.exec.min_candidate_grain, candidates.size(),
                   threads, kCandidateGrainCalibration));

  // d(T): how many candidate repairs cover each invalid trajectory. Each
  // shard counts its candidate range into a private array; the reduction
  // adds the arrays in index order (integer sums, so any order would give
  // the same totals — fixed order keeps the invariant self-evident).
  std::vector<uint32_t> degree(num_trajs, 0);
  if (shards.size() <= 1) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (TrajIndex t : candidates.invalid_members(i)) ++degree[t];
    }
  } else {
    std::vector<std::vector<uint32_t>> shard_degree(shards.size());
    IDREPAIR_RETURN_NOT_OK(ParallelFor(
        &ThreadPool::Default(), shards,
        [&](size_t shard, size_t begin, size_t end) {
          std::vector<uint32_t>& d = shard_degree[shard];
          d.assign(num_trajs, 0);
          for (size_t i = begin; i < end; ++i) {
            for (TrajIndex t : candidates.invalid_members(i)) ++d[t];
          }
          return Status::OK();
        }));
    for (const std::vector<uint32_t>& d : shard_degree) {
      for (size_t t = 0; t < num_trajs; ++t) degree[t] += d[t];
    }
  }

  // Scoring touches only the candidate's own row plus the finished degree
  // array, so the same shards run it without any reduction.
  return ParallelFor(
      &ThreadPool::Default(), shards,
      [&](size_t /*shard*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          uint32_t ra = 0;
          bool first = true;
          for (TrajIndex t : candidates.invalid_members(i)) {
            uint32_t d = degree[t];
            if (first) {
              ra = d;
              first = false;
            } else if (options.rarity_aggregation == RarityAggregation::kMin) {
              ra = std::min(ra, d);
            } else {
              ra = std::max(ra, d);
            }
          }
          double ivt = static_cast<double>(candidates.num_invalid(i));
          double base = static_cast<double>(ra + options.rarity_base_offset);
          // ω(R) = sim(R) + λ · log_base(|ivt(R)|); |ivt| >= 1 by
          // construction.
          candidates.set_scores(
              i, ra,
              candidates.similarity(i) +
                  options.lambda * (std::log(ivt) / std::log(base)));
        }
        return Status::OK();
      });
}

}  // namespace idrepair
