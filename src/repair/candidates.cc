#include "repair/candidates.h"

#include <algorithm>
#include <cmath>

namespace idrepair {

TrajIndex AssignTargetId(const TrajectorySet& set,
                         const std::vector<TrajIndex>& members,
                         const IdSimilarity& similarity) {
  TrajIndex best = members.front();
  double best_score = -1.0;
  for (TrajIndex i : members) {
    const Trajectory& ti = set.at(i);
    double score = 0.0;
    for (TrajIndex j : members) {
      const Trajectory& tj = set.at(j);
      double ratio = static_cast<double>(ti.size()) /
                     static_cast<double>(tj.size());
      score += ratio * similarity.Similarity(ti.id(), tj.id());
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

std::vector<CandidateRepair> GenerateCandidates(
    const TrajectorySet& set, const TrajectoryGraph& gm,
    const PredicateEvaluator& pred, const RepairOptions& options,
    const IdSimilarity& similarity, const std::vector<bool>& is_valid,
    GenerationStats* stats) {
  std::vector<CandidateRepair> out;
  GenerationStats local;
  CliqueEnumerator enumerator(set, gm, pred, options);
  local.clique_stats = enumerator.Enumerate([&](const std::vector<TrajIndex>&
                                                    clique,
                                                const std::vector<
                                                    MergedPoint>& merged) {
    ++local.jnb_checks;
    if (!pred.JnbMerged(merged)) return;
    ++local.joinable_subsets;

    CandidateRepair repair;
    repair.members = clique;
    for (TrajIndex m : clique) {
      if (!is_valid[m]) repair.invalid_members.push_back(m);
    }
    if (repair.invalid_members.empty()) return;  // ω would be 0 (Eq. 3)

    TrajIndex target = AssignTargetId(set, clique, similarity);
    repair.target_id = set.at(target).id();
    double min_sim = 1.0;
    for (TrajIndex m : clique) {
      min_sim = std::min(
          min_sim, similarity.Similarity(repair.target_id, set.at(m).id()));
    }
    repair.similarity = min_sim;
    out.push_back(std::move(repair));
  });
  if (stats != nullptr) *stats = local;
  return out;
}

void ComputeEffectiveness(std::vector<CandidateRepair>& candidates,
                          const RepairOptions& options, size_t num_trajs) {
  // d(T): how many candidate repairs cover each invalid trajectory.
  std::vector<uint32_t> degree(num_trajs, 0);
  for (const auto& r : candidates) {
    for (TrajIndex t : r.invalid_members) ++degree[t];
  }
  for (auto& r : candidates) {
    uint32_t ra = 0;
    bool first = true;
    for (TrajIndex t : r.invalid_members) {
      uint32_t d = degree[t];
      if (first) {
        ra = d;
        first = false;
      } else if (options.rarity_aggregation == RarityAggregation::kMin) {
        ra = std::min(ra, d);
      } else {
        ra = std::max(ra, d);
      }
    }
    r.rarity = ra;
    double ivt = static_cast<double>(r.invalid_members.size());
    double base = static_cast<double>(ra + options.rarity_base_offset);
    // ω(R) = sim(R) + λ · log_base(|ivt(R)|); |ivt| >= 1 by construction.
    r.effectiveness =
        r.similarity + options.lambda * (std::log(ivt) / std::log(base));
  }
}

}  // namespace idrepair
