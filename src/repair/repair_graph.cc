#include "repair/repair_graph.h"

#include <algorithm>

namespace idrepair {

RepairGraph::RepairGraph(const std::vector<CandidateRepair>& candidates,
                         size_t num_trajs) {
  adj_.assign(candidates.size(), {});
  // Repairs sharing a trajectory are exactly the pairs co-occurring in some
  // per-trajectory cover list; building from cover lists avoids the
  // quadratic all-pairs subset intersection.
  std::vector<std::vector<RepairIndex>> covers(num_trajs);
  for (RepairIndex r = 0; r < candidates.size(); ++r) {
    for (TrajIndex t : candidates[r].members) covers[t].push_back(r);
  }
  for (const auto& list : covers) {
    for (size_t a = 0; a < list.size(); ++a) {
      for (size_t b = a + 1; b < list.size(); ++b) {
        adj_[list[a]].push_back(list[b]);
        adj_[list[b]].push_back(list[a]);
      }
    }
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    num_edges_ += nbrs.size();
  }
  num_edges_ /= 2;
}

}  // namespace idrepair
