#include "repair/repair_graph.h"

#include <algorithm>
#include <utility>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "fault/failpoint.h"
#include "obs/trace.h"

namespace idrepair {

namespace {

/// Per-trajectory cover index: covers[t] lists the candidates whose
/// joinable subset contains trajectory t, in ascending candidate order.
/// Repairs sharing a trajectory are exactly the pairs co-occurring in some
/// cover list; building adjacency from cover lists avoids the quadratic
/// all-pairs subset intersection.
std::vector<std::vector<RepairIndex>> BuildCovers(
    const std::vector<CandidateRepair>& candidates, size_t num_trajs) {
  std::vector<std::vector<RepairIndex>> covers(num_trajs);
  for (RepairIndex r = 0; r < candidates.size(); ++r) {
    for (TrajIndex t : candidates[r].members) covers[t].push_back(r);
  }
  return covers;
}

}  // namespace

RepairGraph::RepairGraph(const std::vector<CandidateRepair>& candidates,
                         size_t num_trajs) {
  adj_.assign(candidates.size(), {});
  auto covers = BuildCovers(candidates, num_trajs);
  for (const auto& list : covers) {
    for (size_t a = 0; a < list.size(); ++a) {
      for (size_t b = a + 1; b < list.size(); ++b) {
        adj_[list[a]].push_back(list[b]);
        adj_[list[b]].push_back(list[a]);
      }
    }
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    num_edges_ += nbrs.size();
  }
  num_edges_ /= 2;
}

Result<RepairGraph> RepairGraph::Build(
    const std::vector<CandidateRepair>& candidates, size_t num_trajs,
    const ExecOptions& exec) {
  auto shards = SplitRange(candidates.size(), exec.ResolvedThreads(),
                           exec.min_selection_grain);
  if (shards.size() <= 1) {
    // Serial reference path; still one shard as far as fault injection is
    // concerned, so chaos schedules behave the same at every thread count.
    if (!candidates.empty()) IDREPAIR_FAULT_INJECT("repair.selection.shard");
    return RepairGraph(candidates, num_trajs);
  }

  RepairGraph g;
  g.adj_.assign(candidates.size(), {});
  auto covers = BuildCovers(candidates, num_trajs);

  // Each shard owns a contiguous vertex range and *pulls* its neighbor
  // lists from the shared (read-only) cover index: N(v) is the sorted-
  // unique union of covers[t] over v's members, minus v itself. That union
  // equals the serial constructor's push-based result per vertex and is
  // independent of shard boundaries, so the merged graph is identical at
  // any thread count. Edge totals fold in shard order (integer sums).
  std::vector<size_t> shard_entries(shards.size(), 0);
  IDREPAIR_RETURN_NOT_OK(ParallelFor(
      &ThreadPool::Default(), shards,
      [&](size_t shard, size_t begin, size_t end) {
        IDREPAIR_FAULT_INJECT("repair.selection.shard");
        obs::TraceSpan span("selection.gr.shard", shard);
        for (size_t v = begin; v < end; ++v) {
          std::vector<RepairIndex>& nbrs = g.adj_[v];
          for (TrajIndex t : candidates[v].members) {
            for (RepairIndex r : covers[t]) {
              if (r != static_cast<RepairIndex>(v)) nbrs.push_back(r);
            }
          }
          std::sort(nbrs.begin(), nbrs.end());
          nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
          shard_entries[shard] += nbrs.size();
        }
        return Status::OK();
      }));
  for (size_t entries : shard_entries) g.num_edges_ += entries;
  g.num_edges_ /= 2;
  return g;
}

}  // namespace idrepair
