#include "repair/repair_graph.h"

#include <algorithm>
#include <utility>

#include "exec/grain.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "fault/failpoint.h"
#include "obs/trace.h"

namespace idrepair {

namespace {

/// Fills the neighbor lists for vertices [begin, end) into `arena`, writing
/// each vertex's degree into `degree`. N(v) is the sorted-unique union of
/// the cover lists over v's members, minus v itself — a pure function of
/// (candidates, covers, v), so the output is independent of how the vertex
/// range is sharded. `scratch` is caller-owned so one buffer serves a whole
/// shard.
void BuildVertexRange(const CandidateSet& candidates, const RepairGraph& g,
                      size_t begin, size_t end,
                      std::vector<RepairIndex>& arena,
                      std::vector<uint32_t>& degree,
                      std::vector<RepairIndex>& scratch) {
  for (size_t v = begin; v < end; ++v) {
    scratch.clear();
    for (TrajIndex t : candidates.members(v)) {
      for (RepairIndex r : g.Cover(t)) {
        if (r != static_cast<RepairIndex>(v)) scratch.push_back(r);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    degree[v] = static_cast<uint32_t>(scratch.size());
    arena.insert(arena.end(), scratch.begin(), scratch.end());
  }
}

}  // namespace

Result<RepairGraph> RepairGraph::Build(const CandidateSet& candidates,
                                       size_t num_trajs,
                                       const ExecOptions& exec) {
  RepairGraph g;

  // Cover CSR first: a counting pass sizes each trajectory's slot, then a
  // fill pass appends candidates in ascending order (the row scan is
  // ascending, so per-trajectory lists come out sorted). This pass is
  // linear in total membership and stays serial.
  g.cover_offsets_.assign(num_trajs + 1, 0);
  for (size_t r = 0; r < candidates.size(); ++r) {
    for (TrajIndex t : candidates.members(r)) ++g.cover_offsets_[t + 1];
  }
  for (size_t t = 0; t < num_trajs; ++t) {
    g.cover_offsets_[t + 1] += g.cover_offsets_[t];
  }
  g.cover_entries_.resize(g.cover_offsets_[num_trajs]);
  {
    std::vector<uint64_t> cursor(g.cover_offsets_.begin(),
                                 g.cover_offsets_.end() - 1);
    for (size_t r = 0; r < candidates.size(); ++r) {
      for (TrajIndex t : candidates.members(r)) {
        g.cover_entries_[cursor[t]++] = static_cast<RepairIndex>(r);
      }
    }
  }

  const int threads = exec.ResolvedThreads();
  auto shards = SplitRange(
      candidates.size(), threads,
      ResolveGrain(exec.min_selection_grain, candidates.size(), threads,
                   kSelectionGrainCalibration));
  std::vector<uint32_t> degree(candidates.size(), 0);

  if (shards.size() <= 1) {
    // Serial reference schedule; still one shard as far as fault injection
    // is concerned, so chaos schedules behave the same at every thread
    // count.
    if (!candidates.empty()) IDREPAIR_FAULT_INJECT("repair.selection.shard");
    std::vector<RepairIndex> scratch;
    g.neighbors_.clear();
    BuildVertexRange(candidates, g, 0, candidates.size(), g.neighbors_,
                     degree, scratch);
  } else {
    // Each shard owns a contiguous vertex range and *pulls* its neighbor
    // lists from the shared (read-only) cover index into a private arena;
    // the arenas concatenate in shard order, which is vertex order. The
    // sort scratch comes from pool-owned per-thread storage so its
    // capacity survives across shards and Build calls.
    std::vector<std::vector<RepairIndex>> slot_arena(shards.size());
    ThreadPool* pool = &ThreadPool::Default();
    IDREPAIR_RETURN_NOT_OK(ParallelFor(
        pool, shards,
        [&](size_t shard, size_t begin, size_t end) {
          IDREPAIR_FAULT_INJECT("repair.selection.shard");
          obs::TraceSpan span("selection.gr.shard", shard);
          std::vector<RepairIndex>& scratch =
              pool->LocalScratch<std::vector<RepairIndex>>();
          BuildVertexRange(candidates, g, begin, end, slot_arena[shard],
                           degree, scratch);
          return Status::OK();
        }));
    size_t total = 0;
    for (const auto& arena : slot_arena) total += arena.size();
    g.neighbors_.reserve(total);
    for (const auto& arena : slot_arena) {
      g.neighbors_.insert(g.neighbors_.end(), arena.begin(), arena.end());
    }
  }

  g.offsets_.assign(candidates.size() + 1, 0);
  for (size_t v = 0; v < candidates.size(); ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
    g.num_edges_ += degree[v];
  }
  g.num_edges_ /= 2;
  return g;
}

}  // namespace idrepair
