#include "repair/repairer.h"

#include <optional>

#include "common/stopwatch.h"
#include "fault/deadline.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "repair/repair_graph.h"
#include "repair/trajectory_graph.h"

namespace idrepair {

namespace {

/// Core-pipeline instrumentation, resolved once against the global registry
/// so Repair() never takes the registry lock. The work counters are pure
/// functions of the input and options (Stability::kStable) — the obs tests
/// assert they are byte-identical across thread counts; the phase-latency
/// histograms are wall-clock and therefore kRuntime.
struct RepairInstruments {
  obs::Counter* attempts;
  obs::Counter* runs;
  obs::Counter* candidates;
  obs::Counter* cliques;
  obs::Counter* selected;
  obs::Counter* rewrites;
  obs::Histogram* gm_seconds;
  obs::Histogram* generation_seconds;
  obs::Histogram* selection_seconds;
  obs::Histogram* selection_graph_seconds;
  obs::Histogram* selection_pick_seconds;
  obs::Histogram* conflict_degree;
  obs::Histogram* total_seconds;

  static RepairInstruments& Get() {
    static RepairInstruments* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* ri = new RepairInstruments();
      ri->attempts = reg.GetCounter(
          "idrepair_repair_attempts_total", obs::Stability::kStable,
          "Core-pipeline Repair() entries (attempted, whether or not the "
          "run completed)");
      ri->runs = reg.GetCounter("idrepair_repair_runs_total",
                                obs::Stability::kStable,
                                "Core-pipeline Repair() invocations");
      ri->candidates = reg.GetCounter(
          "idrepair_repair_candidates_total", obs::Stability::kStable,
          "Candidate repairs generated (|R| summed over runs)");
      ri->cliques = reg.GetCounter("idrepair_repair_cliques_total",
                                   obs::Stability::kStable,
                                   "Cliques enumerated during generation");
      ri->selected = reg.GetCounter(
          "idrepair_repair_selected_total", obs::Stability::kStable,
          "Compatible repairs selected (|R'| summed over runs)");
      ri->rewrites = reg.GetCounter("idrepair_repair_rewrites_total",
                                    obs::Stability::kStable,
                                    "Trajectory ID rewrites applied");
      ri->gm_seconds = reg.GetHistogram(
          "idrepair_repair_gm_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(),
          "Trajectory-graph construction wall time");
      ri->generation_seconds = reg.GetHistogram(
          "idrepair_repair_generation_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(),
          "Candidate-generation phase wall time");
      ri->selection_seconds = reg.GetHistogram(
          "idrepair_repair_selection_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(), "Selection phase wall time");
      ri->selection_graph_seconds = reg.GetHistogram(
          "idrepair_repair_selection_graph_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(),
          "Selection sub-phase: repair-graph (Gr) construction wall time");
      ri->selection_pick_seconds = reg.GetHistogram(
          "idrepair_repair_selection_pick_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(),
          "Selection sub-phase: greedy pick/commit loop wall time");
      ri->conflict_degree = reg.GetHistogram(
          "idrepair_selection_conflict_degree", obs::Stability::kStable,
          obs::ExponentialBuckets(1.0, 2.0, 16),
          "Conflict edges per repair-graph vertex (Gr degree distribution; "
          "only observed on the graph-materializing selection path)");
      ri->total_seconds = reg.GetHistogram(
          "idrepair_repair_total_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(), "End-to-end Repair() wall time");
      return ri;
    }();
    return *m;
  }
};

}  // namespace

IdRepairer::IdRepairer(const TransitionGraph& graph, RepairOptions options)
    : graph_(&graph), options_(std::move(options)) {}

Result<RepairResult> IdRepairer::Repair(const TrajectorySet& set,
                                        const RepairSelector* selector) const {
  return RepairImpl(set, selector, nullptr, nullptr);
}

Result<RepairResult> IdRepairer::RepairPrebuilt(
    const TrajectorySet& set, const TrajectoryGraph& gm,
    const PredicateEvaluator& pred) const {
  if (gm.num_vertices() != set.size()) {
    return Status::InvalidArgument(
        "RepairPrebuilt: graph vertex count disagrees with the set");
  }
  return RepairImpl(set, nullptr, &gm, &pred);
}

Result<RepairResult> IdRepairer::RepairImpl(
    const TrajectorySet& set, const RepairSelector* selector,
    const TrajectoryGraph* prebuilt,
    const PredicateEvaluator* external_pred) const {
  IDREPAIR_RETURN_NOT_OK(options_.Validate());
  IDREPAIR_RETURN_NOT_OK(graph_->Validate());
  obs::ApplyOptions(options_.obs);
  RepairInstruments& inst = RepairInstruments::Get();
  obs::TraceSpan run_span("repair.run");
  const IdSimilarity& base_similarity = options_.similarity != nullptr
                                            ? *options_.similarity
                                            : default_similarity_;
#ifndef NDEBUG
  // Debug builds verify the [0, 1] contract at every metric call; see
  // RangeCheckedSimilarity.
  RangeCheckedSimilarity checked_similarity(base_similarity);
  const IdSimilarity& similarity = checked_similarity;
#else
  const IdSimilarity& similarity = base_similarity;
#endif

  if (obs::Enabled()) inst.attempts->Increment();
  fault::Deadline deadline = fault::Deadline::FromMillis(options_.deadline_ms);

  RepairResult result;
  Stopwatch total;
  CpuStopwatch total_cpu;
  result.stats.num_trajectories = set.size();
  result.stats.threads_used = options_.exec.ResolvedThreads();

  // Graceful degradation: seal whatever phases completed into a well-formed
  // partial result (phase granularity — rewrites found so far applied, the
  // rest passed through) with `why` as the completion marker.
  auto finish_degraded = [&](Status why) -> RepairResult {
    result.completion = std::move(why);
    for (RepairIndex r : result.selected) {
      const std::string& target = result.candidates.target_id(r);
      for (TrajIndex m : result.candidates.members(r)) {
        if (set.at(m).id() != target) result.rewrites[m] = target;
      }
    }
    result.repaired = ApplyRewrites(set, result.rewrites);
    result.stats.num_selected = result.selected.size();
    result.stats.seconds_total = total.ElapsedSeconds();
    result.stats.cpu_seconds_total = total_cpu.ElapsedSeconds();
    return std::move(result);
  };

  std::vector<bool> is_valid(set.size(), false);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    is_valid[i] = set.at(i).IsValid(*graph_);
    if (!is_valid[i]) ++result.stats.num_invalid;
  }

  // ---- Phase 1: candidate repair generation (§3.2) ----
  // The evaluator (and its Floyd–Warshall closure) and the trajectory graph
  // are built here unless the caller brought its own — RepairPrebuilt
  // amortizes both across the streaming engine's component repairs.
  if (external_pred == nullptr) {
    std::call_once(pred_once_, [&] {
      shared_pred_.emplace(*graph_, options_.theta, options_.eta);
    });
  }
  const PredicateEvaluator& pred =
      external_pred != nullptr ? *external_pred : *shared_pred_;
  std::optional<TrajectoryGraph> gm_storage;
  if (prebuilt == nullptr) {
    obs::PhaseScope phase("repair.gm", &result.stats.seconds_gm,
                          &result.stats.cpu_seconds_gm, inst.gm_seconds);
    gm_storage.emplace(set, pred, options_);
  }
  const TrajectoryGraph& gm = prebuilt != nullptr ? *prebuilt : *gm_storage;
  result.stats.gm_edges = gm.num_edges();
  result.stats.cex_evaluations = gm.stats().cex_evaluations;

  if (deadline.Expired()) {
    return finish_degraded(deadline.Check("candidate generation"));
  }

  GenerationStats gen_stats;
  {
    obs::PhaseScope phase("repair.generation",
                          &result.stats.seconds_generation,
                          &result.stats.cpu_seconds_generation,
                          inst.generation_seconds);
    auto candidates = GenerateCandidates(set, gm, pred, options_,
                                         similarity, is_valid, &gen_stats);
    IDREPAIR_RETURN_NOT_OK(candidates.status());
    result.candidates = std::move(candidates).value();
    IDREPAIR_RETURN_NOT_OK(
        ComputeEffectiveness(result.candidates, options_, set.size()));
  }
  result.stats.cliques_enumerated = gen_stats.clique_stats.cliques_emitted;
  result.stats.pck_pruned = gen_stats.clique_stats.pck_pruned;
  result.stats.jnb_checks = gen_stats.jnb_checks;
  result.stats.joinable_subsets = gen_stats.joinable_subsets;
  result.stats.sched_blocks = gen_stats.sched_blocks;
  result.stats.sched_workers = gen_stats.sched_workers;
  result.stats.sched_imbalance = gen_stats.sched_imbalance;
  result.stats.num_candidates = result.candidates.size();

  if (deadline.Expired()) {
    // Candidates exist but none were selected: the partial result repairs
    // nothing, which trivially preserves every input record.
    return finish_degraded(deadline.Check("selection"));
  }

  // ---- Phase 2: compatible repair selection (§3.3) ----
  {
    obs::PhaseScope phase("repair.selection", &result.stats.seconds_selection,
                          nullptr, inst.selection_seconds);
    SelectionContext ctx;
    ctx.exec = options_.exec;
    ctx.deadline = &deadline;
    if (selector == nullptr &&
        options_.selection == SelectionAlgorithm::kEmax) {
      // EMAX fast path: greedily taking the highest-ω repair and discarding
      // everything that shares a trajectory never needs the repair graph
      // materialized — incompatibility is checked through a per-trajectory
      // "used" mask, which is exactly "discard all Gr neighbors". On dense
      // datasets Gr can hold hundreds of millions of edges, so this path
      // turns the selection phase from the bottleneck into a linear pass.
      auto selected = SelectEmaxByCover(result.candidates, set.size(), ctx);
      IDREPAIR_RETURN_NOT_OK(selected.status());
      result.selected = std::move(selected).value();
    } else {
      std::optional<RepairGraph> gr;
      {
        obs::PhaseScope sub("repair.selection.graph", nullptr, nullptr,
                            inst.selection_graph_seconds);
        auto built =
            RepairGraph::Build(result.candidates, set.size(), options_.exec);
        IDREPAIR_RETURN_NOT_OK(built.status());
        gr.emplace(std::move(built).value());
      }
      result.stats.gr_edges = gr->num_edges();
      if (obs::Enabled()) {
        for (RepairIndex v = 0; v < gr->num_vertices(); ++v) {
          inst.conflict_degree->Observe(static_cast<double>(gr->Degree(v)));
        }
      }
      std::unique_ptr<RepairSelector> owned;
      if (selector == nullptr) {
        owned = MakeSelector(options_.selection);
        selector = owned.get();
      }
      obs::PhaseScope sub("repair.selection.pick", nullptr, nullptr,
                          inst.selection_pick_seconds);
      auto selected = selector->Select(*gr, result.candidates, ctx);
      IDREPAIR_RETURN_NOT_OK(selected.status());
      result.selected = std::move(selected).value();
    }
  }
  result.stats.num_selected = result.selected.size();
  result.total_effectiveness =
      TotalEffectiveness(result.candidates, result.selected);

  if (deadline.Expired()) {
    // The budget ran out mid-selection: the commit loop stopped at a safe
    // boundary, so `selected` is a compatible prefix of the full greedy
    // sequence — seal it as a partial result.
    return finish_degraded(deadline.Check("selection commit"));
  }

  // ---- Apply: rewrite IDs and join (Definition 2.5) ----
  for (RepairIndex r : result.selected) {
    const std::string& target = result.candidates.target_id(r);
    for (TrajIndex m : result.candidates.members(r)) {
      if (set.at(m).id() != target) result.rewrites[m] = target;
    }
  }
  result.repaired = ApplyRewrites(set, result.rewrites);
  result.candidates.Freeze();  // no further appends; shed the intern index
  result.stats.seconds_total = total.ElapsedSeconds();
  result.stats.cpu_seconds_total = total_cpu.ElapsedSeconds();
  if (obs::Enabled()) {
    inst.runs->Increment();
    inst.candidates->Increment(result.stats.num_candidates);
    inst.cliques->Increment(result.stats.cliques_enumerated);
    inst.selected->Increment(result.stats.num_selected);
    inst.rewrites->Increment(result.rewrites.size());
    inst.total_seconds->Observe(result.stats.seconds_total);
  }
  return result;
}

TrajectorySet ApplyRewrites(
    const TrajectorySet& set,
    const std::unordered_map<TrajIndex, std::string>& rewrites) {
  std::vector<TrackingRecord> records;
  records.reserve(set.total_records());
  for (TrajIndex i = 0; i < set.size(); ++i) {
    const Trajectory& t = set.at(i);
    auto it = rewrites.find(i);
    const std::string& id = it != rewrites.end() ? it->second : t.id();
    for (const auto& p : t.points()) {
      records.push_back(TrackingRecord{id, p.loc, p.ts});
    }
  }
  return TrajectorySet::FromRecords(records);
}

}  // namespace idrepair
