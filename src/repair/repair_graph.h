#ifndef IDREPAIR_REPAIR_REPAIR_GRAPH_H_
#define IDREPAIR_REPAIR_REPAIR_GRAPH_H_

#include <cstdint>
#include <vector>

#include "repair/candidates.h"

namespace idrepair {

/// Index of a candidate repair within its generation batch.
using RepairIndex = uint32_t;

/// The repair graph Gr (§3.3): one vertex per candidate repair, an
/// undirected edge wherever two repairs are *incompatible*, i.e. their
/// joinable subsets share a trajectory. Selecting compatible repairs is then
/// an independent-set problem on this graph.
class RepairGraph {
 public:
  /// Builds Gr from the candidate set. `num_trajs` is the size of the
  /// underlying TrajectorySet.
  RepairGraph(const std::vector<CandidateRepair>& candidates,
              size_t num_trajs);

  size_t num_vertices() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Sorted list of repairs incompatible with `v`.
  const std::vector<RepairIndex>& Neighbors(RepairIndex v) const {
    return adj_[v];
  }

  size_t Degree(RepairIndex v) const { return adj_[v].size(); }

 private:
  std::vector<std::vector<RepairIndex>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_REPAIR_GRAPH_H_
