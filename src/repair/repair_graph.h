#ifndef IDREPAIR_REPAIR_REPAIR_GRAPH_H_
#define IDREPAIR_REPAIR_REPAIR_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/exec_options.h"
#include "repair/candidates.h"

namespace idrepair {

/// Index of a candidate repair within its generation batch.
using RepairIndex = uint32_t;

/// The repair graph Gr (§3.3): one vertex per candidate repair, an
/// undirected edge wherever two repairs are *incompatible*, i.e. their
/// joinable subsets share a trajectory. Selecting compatible repairs is then
/// an independent-set problem on this graph.
class RepairGraph {
 public:
  /// Builds Gr from the candidate set, serially. `num_trajs` is the size of
  /// the underlying TrajectorySet. This is the reference construction that
  /// Build() must reproduce exactly.
  RepairGraph(const std::vector<CandidateRepair>& candidates,
              size_t num_trajs);

  /// Builds Gr with the adjacency pass sharded over the exec pool. Each
  /// shard derives its vertex range's neighbor lists by pulling from the
  /// shared per-trajectory cover index, so the result is identical to the
  /// serial constructor at any thread count (the per-vertex sorted-unique
  /// union does not depend on shard boundaries). Evaluates the
  /// "repair.selection.shard" failpoint once per shard.
  static Result<RepairGraph> Build(
      const std::vector<CandidateRepair>& candidates, size_t num_trajs,
      const ExecOptions& exec);

  size_t num_vertices() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Sorted list of repairs incompatible with `v`.
  const std::vector<RepairIndex>& Neighbors(RepairIndex v) const {
    return adj_[v];
  }

  size_t Degree(RepairIndex v) const { return adj_[v].size(); }

 private:
  RepairGraph() = default;

  std::vector<std::vector<RepairIndex>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_REPAIR_GRAPH_H_
