#ifndef IDREPAIR_REPAIR_REPAIR_GRAPH_H_
#define IDREPAIR_REPAIR_REPAIR_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "exec/exec_options.h"
#include "repair/candidates.h"

namespace idrepair {

/// Index of a candidate repair within its generation batch.
using RepairIndex = uint32_t;

/// The repair graph Gr (§3.3): one vertex per candidate repair, an
/// undirected edge wherever two repairs are *incompatible*, i.e. their
/// joinable subsets share a trajectory. Selecting compatible repairs is then
/// an independent-set problem on this graph.
///
/// Storage is compressed sparse row (DESIGN.md §9): all neighbor lists live
/// in one flat arena indexed by a per-vertex offset table, instead of one
/// heap vector per vertex. Neighbors() returns a Span view into the arena —
/// valid for the graph's lifetime, since a built graph is immutable. The
/// per-trajectory cover index (which candidates touch trajectory t) is kept
/// in a second CSR pair and exposed via Cover(), so selectors can probe
/// conflicts by trajectory without rebuilding it.
class RepairGraph {
 public:
  /// Builds Gr from the candidate set with the adjacency pass sharded over
  /// the exec pool. Shard boundaries never affect the result: each shard
  /// derives its vertex range's neighbor list as the sorted-unique union of
  /// the shared (read-only) cover index over the vertex's members, so the
  /// graph is byte-identical at any thread count, including the one-shard
  /// serial schedule. Evaluates the "repair.selection.shard" failpoint once
  /// per shard (and once on the serial schedule when the set is non-empty),
  /// so chaos schedules line up across thread counts.
  static Result<RepairGraph> Build(const CandidateSet& candidates,
                                   size_t num_trajs, const ExecOptions& exec);

  size_t num_vertices() const { return offsets_.size() - 1; }
  size_t num_edges() const { return num_edges_; }

  /// Sorted list of repairs incompatible with `v`. View into the CSR arena,
  /// valid for the graph's lifetime.
  Span<const RepairIndex> Neighbors(RepairIndex v) const {
    return Span<const RepairIndex>(neighbors_.data() + offsets_[v],
                                   offsets_[v + 1] - offsets_[v]);
  }

  size_t Degree(RepairIndex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  size_t num_trajs() const { return cover_offsets_.size() - 1; }

  /// Ascending list of candidates whose joinable subset contains trajectory
  /// `t` — the cover index the adjacency was derived from.
  Span<const RepairIndex> Cover(TrajIndex t) const {
    return Span<const RepairIndex>(cover_entries_.data() + cover_offsets_[t],
                                   cover_offsets_[t + 1] - cover_offsets_[t]);
  }

  /// Heap bytes of both CSR pairs (adjacency + cover index).
  size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           neighbors_.capacity() * sizeof(RepairIndex) +
           cover_offsets_.capacity() * sizeof(uint64_t) +
           cover_entries_.capacity() * sizeof(RepairIndex);
  }

 private:
  RepairGraph() = default;

  // Adjacency CSR: neighbors of v are neighbors_[offsets_[v] ..
  // offsets_[v+1]), sorted ascending.
  std::vector<uint64_t> offsets_ = {0};
  std::vector<RepairIndex> neighbors_;
  // Cover CSR: candidates containing trajectory t are cover_entries_[
  // cover_offsets_[t] .. cover_offsets_[t+1]), ascending.
  std::vector<uint64_t> cover_offsets_ = {0};
  std::vector<RepairIndex> cover_entries_;
  size_t num_edges_ = 0;
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_REPAIR_GRAPH_H_
