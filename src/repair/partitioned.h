#ifndef IDREPAIR_REPAIR_PARTITIONED_H_
#define IDREPAIR_REPAIR_PARTITIONED_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "repair/repairer.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Memory-bounded batch repair by time partitioning — the building block
/// for the paper's §8 deployment direction ("distributed repair systems
/// with UDF support"): each partition is an independent unit of work.
///
/// Trajectories are sorted by start time and cut into *chain components*:
/// maximal runs whose consecutive start times are within η of each other.
/// Two trajectories in different components can never share a joinable
/// subset (the merged span would exceed η), so the trajectory graph has no
/// cross-component edges, candidate sets and rarity degrees are identical
/// per component, and EMAX decomposes — the result is *exactly* the
/// whole-batch result, partition by partition (verified by tests).
///
/// Components are repaired in parallel on the exec thread pool
/// (RepairOptions::exec caps the width); per-component results land in
/// per-partition slots and are merged in partition order, so the output is
/// bit-identical to a sequential run for every thread count. When the batch
/// collapses to a single task (one giant chain component — the worst case
/// for component-level parallelism), the inner repair inherits the full
/// thread budget and scales *inside* the component instead, via the sharded
/// Gm build and sharded candidate generation. Partition shape lands in
/// RepairStats::num_partitions / largest_partition.
class PartitionedRepairer : public Repairer {
 public:
  PartitionedRepairer(const TransitionGraph& graph, RepairOptions options)
      : repairer_(graph, std::move(options)) {}

  /// Repairs `set` partition by partition. The returned RepairResult's
  /// candidate list and selected indices are concatenated across
  /// partitions (re-indexed); rewrites and the repaired set are global.
  Result<RepairResult> Repair(const TrajectorySet& set) const override;

  std::string_view name() const override { return "partitioned"; }

  /// The partition boundaries for `set` under the configured η: each entry
  /// is the list of TrajectorySet indices in one chain component, ascending.
  std::vector<std::vector<TrajIndex>> Partition(
      const TrajectorySet& set) const;

  const RepairOptions& options() const { return repairer_.options(); }

 private:
  IdRepairer repairer_;
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_PARTITIONED_H_
