#ifndef IDREPAIR_REPAIR_OPTIONS_H_
#define IDREPAIR_REPAIR_OPTIONS_H_

#include <cstdint>

#include "common/status.h"
#include "exec/exec_options.h"
#include "obs/obs.h"
#include "sim/similarity.h"
#include "traj/tracking_record.h"

namespace idrepair {

class LengthIndexedGrids;

/// Which heuristic picks the compatible repair set from the repair graph
/// (§4.2, §6.5.1). kExact solves the weighted-independent-set problem
/// optimally (exponential worst case; use on small inputs only).
enum class SelectionAlgorithm {
  kEmax,   // maximum-effectiveness first (Algorithm 3; the paper's choice)
  kDmin,   // minimum-degree first
  kDmax,   // maximum-degree first
  kExact,  // branch-and-bound optimum of Eq. (4)
};

/// How rarity aggregates the degrees of a repair's invalid trajectories.
enum class RarityAggregation {
  kMin,  // Eq. (2) as written
  kMax,  // alternative consistent with the paper's worked example (see
         // DESIGN.md §3); exposed for the ablation bench
};

/// Tuning knobs of the two-phase repair paradigm. Defaults are the paper's
/// synthetic-dataset defaults (§6.3); the real-dataset experiments use
/// θ=4, η=600, ζ=4, λ=0.5 (§6.1.1).
///
/// Construction: either fill fields directly, or chain the With* setters
/// and finish with Validated(), which surfaces configuration errors at
/// construction time instead of inside the first Repair() call:
///
///   auto options = RepairOptions()
///                      .WithTheta(4).WithEta(600).WithThreads(8)
///                      .Validated();
///   if (!options.ok()) { ... }
///
/// ### Ownership contract
/// RepairOptions never owns pointed-to collaborators. In particular,
/// `similarity` (when non-null) must outlive every repairer constructed
/// from these options — repairers keep the pointer, not a copy. This is
/// the single authoritative statement of that contract; call sites that
/// allocate a metric (e.g. the CLI) keep it alive for the whole run.
struct RepairOptions {
  /// θ — maximum records in a valid trajectory (§2.3).
  size_t theta = 8;
  /// η — maximum time span of a valid trajectory, seconds (§2.3).
  Timestamp eta = 600;
  /// ζ — maximum trajectories in a joinable subset (§2.3).
  size_t zeta = 4;
  /// λ — similarity/potency trade-off in Eq. (3), in (0, 1].
  double lambda = 0.5;

  /// Grid bin width of the LIG index, seconds.
  Timestamp time_bin = 60;
  /// Use the Length-Indexed Grids index when building the trajectory graph
  /// (§5.1). Off = exhaustive pairwise cex.
  bool use_lig = true;
  /// Use minimum-cover-prefix pruning during clique generation (§5.2).
  bool use_mcp_pruning = true;

  /// Effectiveness logarithm base is rarity + this offset (Eq. (3) uses 1).
  uint32_t rarity_base_offset = 1;
  /// Degree aggregation for rarity.
  RarityAggregation rarity_aggregation = RarityAggregation::kMin;

  /// Repair-selection heuristic.
  SelectionAlgorithm selection = SelectionAlgorithm::kEmax;

  /// ID similarity metric for Eq. (1)/(5). Not owned (see the ownership
  /// contract above); nullptr selects the paper's normalized edit
  /// similarity. Implementations must return values in [0, 1]; debug
  /// builds verify this at every use.
  const IdSimilarity* similarity = nullptr;

  /// A prebuilt LIG index the engine may reuse instead of rebuilding one
  /// per Repair() call — the daemon's load-not-rebuild path for repairs
  /// over a registered resident corpus. Not owned (same contract as
  /// `similarity`). The index is consulted only when the set being
  /// repaired *is* the object the index was built over (pointer identity
  /// against LengthIndexedGrids::indexed_set()) and the θ/η/time_bin knobs
  /// match; any mismatch silently falls back to a fresh build, so results
  /// are identical either way.
  const LengthIndexedGrids* resident_lig = nullptr;

  /// Parallel-execution knobs (thread count, task granularity), consumed
  /// by every engine: trajectory-graph sharding, partitioned dispatch,
  /// streaming flushes.
  ExecOptions exec;

  /// Runtime-observability knobs (metrics + trace spans), consumed by every
  /// engine via obs::ApplyOptions at Repair entry. Never affects results.
  ObsOptions obs;

  /// Wall-clock budget for one Repair() call, milliseconds; 0 disables.
  /// When the budget runs out mid-run the engine degrades gracefully: it
  /// stops starting new work at the next safe boundary (phase, partition,
  /// or replay batch), passes the unprocessed remainder through
  /// unrepaired, and returns a well-formed partial RepairResult whose
  /// `completion` Status is DeadlineExceeded (see repairer.h).
  int64_t deadline_ms = 0;

  // ---- Fluent construction -----------------------------------------
  RepairOptions& WithTheta(size_t v) { theta = v; return *this; }
  RepairOptions& WithEta(Timestamp v) { eta = v; return *this; }
  RepairOptions& WithZeta(size_t v) { zeta = v; return *this; }
  RepairOptions& WithLambda(double v) { lambda = v; return *this; }
  RepairOptions& WithTimeBin(Timestamp v) { time_bin = v; return *this; }
  RepairOptions& WithLig(bool v) { use_lig = v; return *this; }
  RepairOptions& WithMcpPruning(bool v) { use_mcp_pruning = v; return *this; }
  RepairOptions& WithRarityBaseOffset(uint32_t v) {
    rarity_base_offset = v;
    return *this;
  }
  RepairOptions& WithRarityAggregation(RarityAggregation v) {
    rarity_aggregation = v;
    return *this;
  }
  RepairOptions& WithSelection(SelectionAlgorithm v) {
    selection = v;
    return *this;
  }
  RepairOptions& WithSimilarity(const IdSimilarity* v) {
    similarity = v;
    return *this;
  }
  RepairOptions& WithResidentLig(const LengthIndexedGrids* v) {
    resident_lig = v;
    return *this;
  }
  RepairOptions& WithThreads(int v) {
    exec.num_threads = v;
    return *this;
  }
  RepairOptions& WithMinPartitionGrain(size_t v) {
    exec.min_partition_grain = v;
    return *this;
  }
  RepairOptions& WithMinCandidateGrain(size_t v) {
    exec.min_candidate_grain = v;
    return *this;
  }
  RepairOptions& WithMinSelectionGrain(size_t v) {
    exec.min_selection_grain = v;
    return *this;
  }
  RepairOptions& WithObsEnabled(bool v) {
    obs.enabled = v;
    return *this;
  }
  RepairOptions& WithTraceCapacity(size_t v) {
    obs.trace_capacity = v;
    return *this;
  }
  RepairOptions& WithMetricsIntervalMs(int64_t v) {
    obs.metrics_interval_ms = v;
    return *this;
  }
  RepairOptions& WithDeadlineMs(int64_t v) {
    deadline_ms = v;
    return *this;
  }

  /// Rejects nonsensical parameter combinations.
  Status Validate() const {
    if (theta == 0) return Status::InvalidArgument("theta must be >= 1");
    if (zeta == 0) return Status::InvalidArgument("zeta must be >= 1");
    if (eta < 0) return Status::InvalidArgument("eta must be >= 0");
    if (lambda <= 0.0 || lambda > 1.0) {
      return Status::InvalidArgument("lambda must be in (0, 1]");
    }
    if (time_bin <= 0) {
      return Status::InvalidArgument("time_bin must be positive");
    }
    if (rarity_base_offset == 0) {
      return Status::InvalidArgument(
          "rarity_base_offset must be >= 1 (log base must exceed 1)");
    }
    if (deadline_ms < 0) {
      return Status::InvalidArgument("deadline_ms must be >= 0");
    }
    IDREPAIR_RETURN_NOT_OK(exec.Validate());
    IDREPAIR_RETURN_NOT_OK(obs.Validate());
    return Status::OK();
  }

  /// Validate() as a terminal step of a With* chain: returns the finished
  /// options by value, or the validation error.
  Result<RepairOptions> Validated() const {
    IDREPAIR_RETURN_NOT_OK(Validate());
    return *this;
  }
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_OPTIONS_H_
