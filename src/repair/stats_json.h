#ifndef IDREPAIR_REPAIR_STATS_JSON_H_
#define IDREPAIR_REPAIR_STATS_JSON_H_

#include <ostream>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/status.h"
#include "repair/options.h"
#include "repair/repairer.h"

namespace idrepair {

/// Stable lowercase name of a selection algorithm ("emax", "dmin", ...).
const char* SelectionName(SelectionAlgorithm selection);

/// Appends the metrics registry's merged state to `w` as a JSON array of
/// per-metric objects (one entry per instrument, histograms with bounds and
/// buckets).
void WriteMetricsJson(JsonWriter& w);

/// Streams the --stats-json document: the full RepairStats of one run plus
/// the configuration that produced it, the completion marker, the fault-
/// injection footprint and — when obs is on — a metrics snapshot, as one
/// JSON object. The key set and order are pinned by stats_json_test.cc;
/// consumers parse this file, so additions go at the end of their object
/// and removals are breaking.
void WriteStatsJson(std::ostream& out, std::string_view engine,
                    const RepairOptions& options, const RepairResult& result);

/// WriteStatsJson into `path`, IoError on open/write failure.
Status WriteStatsJsonFile(const std::string& path, std::string_view engine,
                          const RepairOptions& options,
                          const RepairResult& result);

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_STATS_JSON_H_
