#include "repair/trajectory_graph.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace idrepair {

namespace {

/// Per-shard scratch of the parallel build. Each shard owns one slot, so
/// tasks never share mutable state; the constructor merges slots in shard
/// order, which makes the finished graph bit-identical to a sequential
/// build for every thread count.
struct ShardScratch {
  std::vector<std::pair<TrajIndex, TrajIndex>> edges;
  size_t candidate_pairs = 0;
  size_t cex_evaluations = 0;
};

}  // namespace

TrajectoryGraph::TrajectoryGraph(const TrajectorySet& set,
                                 const PredicateEvaluator& pred,
                                 const RepairOptions& options) {
  size_t n = set.size();
  adj_.assign(n, {});
  feasible_.assign(n, false);
  for (TrajIndex i = 0; i < n; ++i) {
    feasible_[i] = pred.InternallyFeasible(set.at(i));
  }
  stats_.used_lig = options.use_lig;

  // Shard the pairwise/LIG cex-evaluation loop over the probe vertex i.
  // Shard boundaries depend only on (n, threads, grain), never on timing.
  auto shards = SplitRange(n, options.exec.ResolvedThreads(),
                           options.exec.min_partition_grain);
  std::vector<ShardScratch> scratch(shards.size());

  if (options.use_lig) {
    LengthIndexedGrids::Options lig_opts;
    lig_opts.theta = options.theta;
    lig_opts.eta = options.eta;
    lig_opts.time_bin = options.time_bin;
    // Reuse a resident index only when it was built over this exact set
    // with these exact knobs; the fresh build below is byte-identical in
    // that case, so reuse can never change the graph.
    std::optional<LengthIndexedGrids> local;
    const LengthIndexedGrids* index = options.resident_lig;
    if (index != nullptr && &index->indexed_set() == &set &&
        index->options().theta == lig_opts.theta &&
        index->options().eta == lig_opts.eta &&
        index->options().time_bin == lig_opts.time_bin) {
      if (obs::Enabled()) {
        static obs::Counter* reused = obs::MetricsRegistry::Global().GetCounter(
            "idrepair_gm_resident_lig_reuse_total", obs::Stability::kRuntime,
            "Gm builds that reused a resident (snapshot-loaded) LIG index");
        reused->Increment();
      }
    } else {
      local.emplace(set, lig_opts);
      index = &*local;
    }
    (void)ParallelFor(
        &ThreadPool::Default(), shards,
        [&](size_t shard, size_t begin, size_t end) {
          obs::TraceSpan span("gm.shard", shard);
          ShardScratch& out = scratch[shard];
          std::vector<TrajIndex> candidates;
          for (TrajIndex i = static_cast<TrajIndex>(begin); i < end; ++i) {
            if (!feasible_[i]) continue;
            candidates.clear();
            index->CollectCandidates(i, &candidates);
            for (TrajIndex j : candidates) {
              if (j <= i || !feasible_[j]) continue;  // each pair once
              ++out.candidate_pairs;
              ++out.cex_evaluations;
              if (pred.Cex(set.at(i), set.at(j))) out.edges.emplace_back(i, j);
            }
          }
          return Status::OK();
        });
  } else {
    (void)ParallelFor(
        &ThreadPool::Default(), shards,
        [&](size_t shard, size_t begin, size_t end) {
          obs::TraceSpan span("gm.shard", shard);
          ShardScratch& out = scratch[shard];
          for (TrajIndex i = static_cast<TrajIndex>(begin); i < end; ++i) {
            if (!feasible_[i]) continue;
            for (TrajIndex j = i + 1; j < n; ++j) {
              if (!feasible_[j]) continue;
              ++out.candidate_pairs;
              ++out.cex_evaluations;
              if (pred.Cex(set.at(i), set.at(j))) out.edges.emplace_back(i, j);
            }
          }
          return Status::OK();
        });
  }

  // Deterministic merge: shard order, then the usual neighbor sort.
  for (const ShardScratch& out : scratch) {
    stats_.candidate_pairs += out.candidate_pairs;
    stats_.cex_evaluations += out.cex_evaluations;
    for (const auto& [i, j] : out.edges) AddEdge(i, j);
  }
  for (auto& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());
}

TrajectoryGraph TrajectoryGraph::FromAdjacency(
    const TrajectorySet& set, const PredicateEvaluator& pred,
    std::vector<std::vector<TrajIndex>> adj) {
  TrajectoryGraph g;
  size_t n = set.size();
  adj.resize(n);
  g.adj_ = std::move(adj);
  g.feasible_.assign(n, false);
  for (TrajIndex i = 0; i < n; ++i) {
    g.feasible_[i] = pred.InternallyFeasible(set.at(i));
  }
  size_t endpoints = 0;
  for (auto& nbrs : g.adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    endpoints += nbrs.size();
  }
  g.stats_.edges = endpoints / 2;
  return g;
}

void TrajectoryGraph::AddEdge(TrajIndex u, TrajIndex v) {
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++stats_.edges;
}

bool TrajectoryGraph::HasEdge(TrajIndex u, TrajIndex v) const {
  const auto& nbrs = adj_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace idrepair
