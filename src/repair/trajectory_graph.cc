#include "repair/trajectory_graph.h"

#include <algorithm>

namespace idrepair {

TrajectoryGraph::TrajectoryGraph(const TrajectorySet& set,
                                 const PredicateEvaluator& pred,
                                 const RepairOptions& options) {
  size_t n = set.size();
  adj_.assign(n, {});
  feasible_.assign(n, false);
  for (TrajIndex i = 0; i < n; ++i) {
    feasible_[i] = pred.InternallyFeasible(set.at(i));
  }
  stats_.used_lig = options.use_lig;

  if (options.use_lig) {
    LengthIndexedGrids::Options lig_opts;
    lig_opts.theta = options.theta;
    lig_opts.eta = options.eta;
    lig_opts.time_bin = options.time_bin;
    LengthIndexedGrids index(set, lig_opts);
    std::vector<TrajIndex> candidates;
    for (TrajIndex i = 0; i < n; ++i) {
      if (!feasible_[i]) continue;
      candidates.clear();
      index.CollectCandidates(i, &candidates);
      for (TrajIndex j : candidates) {
        if (j <= i || !feasible_[j]) continue;  // each pair tested once
        ++stats_.candidate_pairs;
        ++stats_.cex_evaluations;
        if (pred.Cex(set.at(i), set.at(j))) AddEdge(i, j);
      }
    }
  } else {
    for (TrajIndex i = 0; i < n; ++i) {
      if (!feasible_[i]) continue;
      for (TrajIndex j = i + 1; j < n; ++j) {
        if (!feasible_[j]) continue;
        ++stats_.candidate_pairs;
        ++stats_.cex_evaluations;
        if (pred.Cex(set.at(i), set.at(j))) AddEdge(i, j);
      }
    }
  }
  for (auto& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());
}

void TrajectoryGraph::AddEdge(TrajIndex u, TrajIndex v) {
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++stats_.edges;
}

bool TrajectoryGraph::HasEdge(TrajIndex u, TrajIndex v) const {
  const auto& nbrs = adj_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace idrepair
