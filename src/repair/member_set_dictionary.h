#ifndef IDREPAIR_REPAIR_MEMBER_SET_DICTIONARY_H_
#define IDREPAIR_REPAIR_MEMBER_SET_DICTIONARY_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "common/span.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// Interning pool for candidate member sets (sorted ascending TrajIndex
/// lists), in the style of the color-set dictionaries of k-mer indexes:
/// identical sets are stored once in a single flat arena and referenced by
/// a 32-bit id. Candidate repairs routinely reuse sets — most prominently,
/// a candidate whose members are all invalid shares one pooled set between
/// its member list and its ivt list — so the pool plus two ids is far
/// smaller than two heap vectors per candidate (24-byte headers, malloc
/// slack, and copies all disappear).
///
/// Ids are assigned in first-intern order, so a dictionary populated by a
/// deterministic candidate stream is itself deterministic. Returned spans
/// point into the arena and stay valid until the dictionary is destroyed
/// (the arena never shrinks or reorders; growth uses offset indexing, so
/// reallocation does not invalidate ids — it does invalidate spans, hence
/// the "no views across mutation" rule of DESIGN.md §9).
class MemberSetDictionary {
 public:
  using SetId = uint32_t;

  MemberSetDictionary() = default;

  /// Returns the id of `set`, pooling it on first sight. `set` must be
  /// sorted ascending (candidate member lists always are). Deduplication is
  /// best-effort under hash collision: a collision stores a duplicate pool
  /// entry rather than risking a content mix-up — correctness never depends
  /// on the dedup hit rate.
  SetId Intern(Span<const TrajIndex> set);

  /// The pooled set for `id`. Valid until the next Intern call.
  Span<const TrajIndex> Get(SetId id) const {
    return Span<const TrajIndex>(pool_.data() + offsets_[id],
                                 offsets_[id + 1] - offsets_[id]);
  }

  size_t set_size(SetId id) const { return offsets_[id + 1] - offsets_[id]; }

  /// Number of distinct pooled sets.
  size_t num_sets() const { return offsets_.size() - 1; }

  /// Total pooled elements across all sets.
  size_t pool_entries() const { return pool_.size(); }

  /// Heap bytes of the arena, offsets, and dedup index.
  size_t MemoryBytes() const;

  /// Drops the dedup index (keeps arena and ids intact) once interning is
  /// finished. Get() keeps working; a later Intern() simply stops deduping
  /// against pre-freeze sets.
  void Freeze();

 private:
  static uint64_t HashSet(Span<const TrajIndex> set);

  std::vector<TrajIndex> pool_;
  std::vector<uint64_t> offsets_ = {0};
  // hash -> id of the first set seen with that hash. Best-effort: a second
  // distinct set with the same hash is pooled without an index entry. Flat
  // open-addressing table — Intern runs once per candidate set column, so
  // the probe cost is on the generation hot path.
  FlatHash64Map<SetId> index_;
};

}  // namespace idrepair

#endif  // IDREPAIR_REPAIR_MEMBER_SET_DICTIONARY_H_
