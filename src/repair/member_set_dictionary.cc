#include "repair/member_set_dictionary.h"

namespace idrepair {

uint64_t MemberSetDictionary::HashSet(Span<const TrajIndex> set) {
  // FNV-1a over the element stream; fixed constants keep id assignment (and
  // therefore every downstream structure) deterministic across runs.
  uint64_t h = 1469598103934665603ull;
  for (TrajIndex t : set) {
    h ^= static_cast<uint64_t>(t) + 1;  // +1 so index 0 still perturbs
    h *= 1099511628211ull;
  }
  h ^= set.size();
  h *= 1099511628211ull;
  return h;
}

MemberSetDictionary::SetId MemberSetDictionary::Intern(
    Span<const TrajIndex> set) {
  uint64_t hash = HashSet(set);
  // The flat table reserves the all-ones key as its empty marker; remap
  // the (astronomically unlikely) colliding hash — dedup is best-effort,
  // so a biased hash only risks one extra pooled copy, never corruption.
  if (hash == FlatHash64Map<SetId>::kEmptyKey) hash = 0x9e3779b97f4a7c15ull;
  SetId* found = index_.Find(hash);
  if (found != nullptr && Get(*found) == set) return *found;

  SetId id = static_cast<SetId>(num_sets());
  pool_.insert(pool_.end(), set.begin(), set.end());
  offsets_.push_back(pool_.size());
  if (found == nullptr) index_.Insert(hash, id);
  return id;
}

size_t MemberSetDictionary::MemoryBytes() const {
  return pool_.capacity() * sizeof(TrajIndex) +
         offsets_.capacity() * sizeof(uint64_t) + index_.MemoryBytes();
}

void MemberSetDictionary::Freeze() { index_.Clear(); }

}  // namespace idrepair
