#ifndef IDREPAIR_EXEC_EXEC_OPTIONS_H_
#define IDREPAIR_EXEC_EXEC_OPTIONS_H_

#include <cstddef>
#include <thread>

#include "common/status.h"
#include "exec/grain.h"

namespace idrepair {

/// Execution knobs shared by every parallel phase of the pipeline. Embedded
/// in RepairOptions so thread count flows through all engines (batch,
/// partitioned, streaming) without separate plumbing.
struct ExecOptions {
  /// Maximum worker parallelism. 0 selects std::thread::hardware_concurrency.
  /// 1 forces fully sequential execution (no pool dispatch at all), which is
  /// the reference behavior every multi-threaded run must reproduce
  /// bit-identically.
  int num_threads = 0;

  /// Minimum number of work items (trajectories, vertices) per parallel
  /// task. Shards smaller than this are merged with their neighbor so tiny
  /// inputs never pay dispatch overhead.
  size_t min_partition_grain = 64;

  /// Number of clique-enumeration seed vertices (and, for the rarity
  /// pass, candidate repairs) per work item of intra-component candidate
  /// generation. kGrainAuto (the default) lets the cost model in
  /// exec/grain.h pick from the work-item count and thread budget; any
  /// positive value is an unconditional override. Seeds root whole search
  /// subtrees, so they are coarser work items than trajectories; a smaller
  /// grain keeps one hot clique from serializing the phase while small
  /// components still run inline.
  size_t min_candidate_grain = kGrainAuto;

  /// Number of selection-phase work items (candidates to sort, repair-graph
  /// vertices to build, conflict neighbors to invalidate) per shard.
  /// kGrainAuto (the default) defers to the cost model with the selection
  /// calibration; any positive value overrides it. Selection work items are
  /// much cheaper than clique seeds — a comparison or a flag write — so the
  /// calibrated grain is coarser: below it the dispatch overhead exceeds
  /// the work, and typical inputs stay on the serial reference path.
  size_t min_selection_grain = kGrainAuto;

  /// `num_threads` with the 0 default resolved against the hardware.
  int ResolvedThreads() const {
    if (num_threads > 0) return num_threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  Status Validate() const {
    if (num_threads < 0) {
      return Status::InvalidArgument("exec.num_threads must be >= 0");
    }
    if (min_partition_grain == 0) {
      return Status::InvalidArgument(
          "exec.min_partition_grain must be >= 1");
    }
    // min_candidate_grain / min_selection_grain: every size_t is valid —
    // kGrainAuto (0) selects the cost model, anything else is an explicit
    // per-shard item floor.
    return Status::OK();
  }
};

}  // namespace idrepair

#endif  // IDREPAIR_EXEC_EXEC_OPTIONS_H_
