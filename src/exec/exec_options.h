#ifndef IDREPAIR_EXEC_EXEC_OPTIONS_H_
#define IDREPAIR_EXEC_EXEC_OPTIONS_H_

#include <cstddef>
#include <thread>

#include "common/status.h"

namespace idrepair {

/// Execution knobs shared by every parallel phase of the pipeline. Embedded
/// in RepairOptions so thread count flows through all engines (batch,
/// partitioned, streaming) without separate plumbing.
struct ExecOptions {
  /// Maximum worker parallelism. 0 selects std::thread::hardware_concurrency.
  /// 1 forces fully sequential execution (no pool dispatch at all), which is
  /// the reference behavior every multi-threaded run must reproduce
  /// bit-identically.
  int num_threads = 0;

  /// Minimum number of work items (trajectories, vertices) per parallel
  /// task. Shards smaller than this are merged with their neighbor so tiny
  /// inputs never pay dispatch overhead.
  size_t min_partition_grain = 64;

  /// Minimum number of clique-enumeration seed vertices (and, for the
  /// rarity pass, candidate repairs) per shard of intra-component candidate
  /// generation. Seeds root whole search subtrees, so they are coarser work
  /// items than trajectories; a smaller grain keeps one hot component from
  /// serializing the batch while small components still run inline.
  size_t min_candidate_grain = 32;

  /// Minimum number of selection-phase work items (candidates to sort,
  /// repair-graph vertices to build, conflict neighbors to invalidate) per
  /// shard. Selection work items are much cheaper than clique seeds — a
  /// comparison or a flag write — so the grain is coarser still: below it
  /// the dispatch overhead exceeds the work, and typical inputs stay on the
  /// serial reference path.
  size_t min_selection_grain = 1024;

  /// `num_threads` with the 0 default resolved against the hardware.
  int ResolvedThreads() const {
    if (num_threads > 0) return num_threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  Status Validate() const {
    if (num_threads < 0) {
      return Status::InvalidArgument("exec.num_threads must be >= 0");
    }
    if (min_partition_grain == 0) {
      return Status::InvalidArgument(
          "exec.min_partition_grain must be >= 1");
    }
    if (min_candidate_grain == 0) {
      return Status::InvalidArgument(
          "exec.min_candidate_grain must be >= 1");
    }
    if (min_selection_grain == 0) {
      return Status::InvalidArgument(
          "exec.min_selection_grain must be >= 1");
    }
    return Status::OK();
  }
};

}  // namespace idrepair

#endif  // IDREPAIR_EXEC_EXEC_OPTIONS_H_
