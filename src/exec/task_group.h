#ifndef IDREPAIR_EXEC_TASK_GROUP_H_
#define IDREPAIR_EXEC_TASK_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "exec/thread_pool.h"

namespace idrepair {

/// A set of fallible tasks dispatched to a ThreadPool. The first task to
/// return a non-OK Status cancels the group: tasks that have not started
/// yet are skipped (marked finished without running), and Wait() returns
/// the first error. "First" means lowest spawn index among the tasks that
/// failed, not completion order — so when exactly one task can fail (the
/// common case: one bad shard), Wait() surfaces the same error at every
/// thread count. Wait() helps execute pending pool tasks instead of
/// blocking, which keeps nested groups deadlock-free on any pool size.
///
/// Typical use:
///   TaskGroup group(&pool);
///   for (auto& unit : units) group.Spawn([&] { return Work(unit); });
///   IDREPAIR_RETURN_NOT_OK(group.Wait());
class TaskGroup {
 public:
  /// nullptr selects ThreadPool::Default().
  explicit TaskGroup(ThreadPool* pool = nullptr);

  /// Waits for completion if the caller forgot to; errors are dropped in
  /// that case, so call Wait() explicitly.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn` on the pool. Must not be called concurrently with
  /// Wait() on the same group.
  void Spawn(std::function<Status()> fn);

  /// Blocks (helping) until every spawned task has finished or been
  /// skipped, then returns the first error, or OK.
  Status Wait();

  /// Marks the group cancelled: tasks that have not started are skipped.
  /// Tasks already running may poll IsCancelled() to bail out early.
  void Cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  bool IsCancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    Status first_error;
    // Spawn index of the task that produced first_error; lower indices win
    // so the surfaced error is deterministic across thread counts.
    size_t first_error_index = SIZE_MAX;
    size_t spawned = 0;
    size_t finished = 0;
    std::atomic<bool> cancelled{false};
  };

  ThreadPool* pool_;
  // Shared with the task closures so a group destroyed without Wait()
  // cannot leave tasks with dangling state.
  std::shared_ptr<State> state_;
};

}  // namespace idrepair

#endif  // IDREPAIR_EXEC_TASK_GROUP_H_
