#include "exec/grain.h"

#include <algorithm>
#include <cstdint>

namespace idrepair {

size_t ComputeAutoGrain(size_t items, int threads, size_t calibration) {
  if (items == 0) return 1;
  if (threads <= 1) return items;  // single shard: the serial schedule
  if (calibration == 0) calibration = 1;
  size_t target_shards =
      static_cast<size_t>(threads) * kAutoShardsPerThread;
  size_t grain = (items + target_shards - 1) / target_shards;
  grain = std::max(grain, calibration);
  return std::min(grain, items);
}

size_t ResolveGrain(size_t requested, size_t items, int threads,
                    size_t calibration) {
  if (requested != kGrainAuto) return requested;
  return ComputeAutoGrain(items, threads, calibration);
}

Result<size_t> ParseGrainValue(const std::string& text,
                               const std::string& flag) {
  if (text == "auto") return kGrainAuto;
  if (!text.empty() && text.find_first_not_of("0123456789") ==
                           std::string::npos) {
    // All digits: reject only zero (and absurd lengths that can't be a
    // realistic grain anyway).
    if (text.size() <= 15) {
      uint64_t value = 0;
      for (char c : text) value = value * 10 + static_cast<uint64_t>(c - '0');
      if (value >= 1) return static_cast<size_t>(value);
    }
  }
  return Status::InvalidArgument("--" + flag + " must be 'auto' or an " +
                                 "integer >= 1, got '" + text + "'");
}

}  // namespace idrepair
