#ifndef IDREPAIR_EXEC_THREAD_POOL_H_
#define IDREPAIR_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace idrepair {

/// A work-stealing thread pool. Each worker owns a deque: it pops its own
/// tasks LIFO (cache-friendly for nested spawns) and steals FIFO from the
/// other workers when its deque runs dry; tasks submitted from outside the
/// pool land in a shared injection queue. Waiters (TaskGroup::Wait) help by
/// draining tasks via TryRunOneTask, so nested parallelism — a pool task
/// that spawns and waits on subtasks — can never deadlock, even on a
/// single-worker pool.
///
/// The pool itself imposes no ordering; callers that need determinism merge
/// task results in a caller-chosen order (see exec/README.md).
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 selects hardware_concurrency.
  explicit ThreadPool(int num_threads = 0);

  /// Drains nothing: outstanding tasks are completed before teardown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Called from a worker of this pool, the task goes to
  /// that worker's own deque (stolen by idle peers); otherwise to the
  /// shared injection queue.
  void Submit(std::function<void()> task);

  /// Runs one pending task on the calling thread if any is available.
  /// Returns false when every queue is empty. Used by TaskGroup::Wait to
  /// help instead of blocking.
  bool TryRunOneTask();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Pool-owned per-thread scratch: one default-constructed T per
  /// (thread, pool, T), created on first use and reused across every task
  /// the thread runs — this is what kills per-shard allocation churn
  /// (similarity memos, invalid-member buffers, sort scratch) without any
  /// sharing between threads. The pool owns the objects; the calling
  /// thread caches a pointer keyed by the pool's unique id, so a pool at a
  /// recycled address can never serve another pool's stale slot.
  ///
  /// Contract: only touch the returned scratch from inside a single task
  /// body (or the thread that owns it), reset any state you depend on at
  /// the start of the body — a previous task of ANY phase may have used
  /// it — and never cache the reference across tasks. Leaf task bodies
  /// never nest (they contain no Wait), so reentrant use cannot occur.
  template <typename T>
  T& LocalScratch() {
    thread_local std::vector<std::pair<uint64_t, T*>> cache;
    for (const auto& [pool_id, scratch] : cache) {
      if (pool_id == id_) return *scratch;
    }
    auto holder = std::make_unique<ScratchHolder<T>>();
    T* scratch = &holder->value;
    {
      std::lock_guard<std::mutex> lock(scratch_mu_);
      scratch_.push_back(std::move(holder));
    }
    cache.emplace_back(id_, scratch);
    return *scratch;
  }

  /// Process-wide shared pool sized to the hardware. Lazily constructed,
  /// never destroyed before exit.
  static ThreadPool& Default();

 private:
  struct ScratchBase {
    virtual ~ScratchBase() = default;
  };
  template <typename T>
  struct ScratchHolder : ScratchBase {
    T value;
  };

  void WorkerLoop(int self);
  /// Pops one task. `stolen`, when non-null, reports whether the task came
  /// from another worker's deque (a genuine steal — injection-queue pops
  /// are ordinary dispatch, not theft).
  bool PopAnyTask(int self, std::function<void()>* out,
                  bool* stolen = nullptr);
  void RunTask(std::function<void()>& task, bool stolen);

  // One deque per worker plus the injection queue at index workers_.size().
  // A single mutex guards all queues: tasks here are coarse (a shard of
  // pairwise evaluations, a whole partition repair), so queue operations
  // are a vanishing fraction of task runtime and the simple locking keeps
  // the pool easy to reason about (and trivially TSan-clean).
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<std::function<void()>>> queues_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  // Scratch registry (LocalScratch): the pool owns every slot it handed
  // out and frees them with itself; process-unique id guards the
  // thread_local caches against pool address reuse.
  const uint64_t id_ = NextPoolId();
  std::mutex scratch_mu_;
  std::vector<std::unique_ptr<ScratchBase>> scratch_;

  static uint64_t NextPoolId();
};

}  // namespace idrepair

#endif  // IDREPAIR_EXEC_THREAD_POOL_H_
