#include "exec/thread_pool.h"

#include <atomic>
#include <utility>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace idrepair {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// Submit can route worker-spawned tasks to the worker's own deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerIdentity tls_worker;

/// Pool instrumentation, resolved once against the global registry so the
/// hot path never touches the registry lock. Sites guard on obs::Enabled().
struct PoolMetrics {
  obs::Counter* submitted;
  obs::Counter* executed;
  obs::Counter* stolen;
  obs::Gauge* queue_depth;
  obs::Histogram* task_seconds;

  static PoolMetrics& Get() {
    static PoolMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* pm = new PoolMetrics();
      // Task counts depend on the decomposition width (SplitRange consults
      // the thread budget), so they are runtime metrics even though each
      // width reproduces them exactly.
      pm->submitted = reg.GetCounter(
          "idrepair_exec_tasks_submitted_total", obs::Stability::kRuntime,
          "Tasks enqueued on any thread pool");
      pm->executed = reg.GetCounter(
          "idrepair_exec_tasks_executed_total", obs::Stability::kRuntime,
          "Tasks run to completion by workers or helping waiters");
      pm->stolen = reg.GetCounter(
          "idrepair_exec_tasks_stolen_total", obs::Stability::kRuntime,
          "Tasks taken from another worker's deque");
      pm->queue_depth = reg.GetGauge(
          "idrepair_exec_queue_depth", obs::Stability::kRuntime,
          "Tasks currently enqueued and not yet started");
      pm->task_seconds = reg.GetHistogram(
          "idrepair_exec_task_seconds", obs::Stability::kRuntime,
          obs::DefaultLatencyBuckets(), "Task execution wall time");
      return pm;
    }();
    return *m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  queues_.resize(static_cast<size_t>(num_threads) + 1);  // +1: injection
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t queue = tls_worker.pool == this
                       ? static_cast<size_t>(tls_worker.index)
                       : queues_.size() - 1;
    queues_[queue].push_back(std::move(task));
  }
  if (obs::Enabled()) {
    PoolMetrics& m = PoolMetrics::Get();
    m.submitted->Increment();
    m.queue_depth->Add(1);
  }
  cv_.notify_one();
}

bool ThreadPool::PopAnyTask(int self, std::function<void()>* out,
                            bool* stolen) {
  if (stolen != nullptr) *stolen = false;
  // Own deque back first (LIFO — the task most recently spawned here),
  // then steal oldest-first from the injection queue and the other
  // workers, scanning from the slot after ours so steals spread out.
  size_t n = queues_.size();
  if (self >= 0 && !queues_[static_cast<size_t>(self)].empty()) {
    *out = std::move(queues_[static_cast<size_t>(self)].back());
    queues_[static_cast<size_t>(self)].pop_back();
    return true;
  }
  size_t start = self >= 0 ? static_cast<size_t>(self) + 1 : n - 1;
  for (size_t k = 0; k < n; ++k) {
    size_t q = (start + k) % n;
    if (queues_[q].empty()) continue;
    *out = std::move(queues_[q].front());
    queues_[q].pop_front();
    // Popping the shared injection queue (index n - 1) is plain dispatch;
    // only raiding another worker's deque counts as a steal.
    if (stolen != nullptr) *stolen = q != n - 1;
    return true;
  }
  return false;
}

void ThreadPool::RunTask(std::function<void()>& task, bool stolen) {
  // Scheduling chaos only: a dispatch path has no Status channel, so armed
  // error actions are counted but swallowed and delays stretch the race
  // window between workers.
  if (fault::Armed()) {
    fault::MaybePerturb(stolen ? "exec.pool.steal" : "exec.pool.dispatch");
  }
  if (!obs::Enabled()) {
    task();
    return;
  }
  PoolMetrics& m = PoolMetrics::Get();
  m.queue_depth->Add(-1);
  if (stolen) m.stolen->Increment();
  uint64_t start_us = obs::TraceNowMicros();
  {
    obs::TraceSpan span("exec.task");
    task();
  }
  m.executed->Increment();
  m.task_seconds->Observe(
      static_cast<double>(obs::TraceNowMicros() - start_us) * 1e-6);
}

void ThreadPool::WorkerLoop(int self) {
  tls_worker = WorkerIdentity{this, self};
  std::function<void()> task;
  bool stolen = false;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Pop before consulting shutdown_ so teardown drains pending tasks.
      cv_.wait(lock,
               [&] { return PopAnyTask(self, &task, &stolen) || shutdown_; });
      if (!task) return;  // shutdown with all queues drained
    }
    RunTask(task, stolen);
    task = nullptr;
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  bool stolen = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int self = tls_worker.pool == this ? tls_worker.index : -1;
    if (!PopAnyTask(self, &task, &stolen)) return false;
  }
  RunTask(task, stolen);
  return true;
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();  // leaked: lives until exit
  return *pool;
}

uint64_t ThreadPool::NextPoolId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace idrepair
