#include "exec/thread_pool.h"

#include <utility>

namespace idrepair {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// Submit can route worker-spawned tasks to the worker's own deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  queues_.resize(static_cast<size_t>(num_threads) + 1);  // +1: injection
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t queue = tls_worker.pool == this
                       ? static_cast<size_t>(tls_worker.index)
                       : queues_.size() - 1;
    queues_[queue].push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::PopAnyTask(int self, std::function<void()>* out) {
  // Own deque back first (LIFO — the task most recently spawned here),
  // then steal oldest-first from the injection queue and the other
  // workers, scanning from the slot after ours so steals spread out.
  size_t n = queues_.size();
  if (self >= 0 && !queues_[static_cast<size_t>(self)].empty()) {
    *out = std::move(queues_[static_cast<size_t>(self)].back());
    queues_[static_cast<size_t>(self)].pop_back();
    return true;
  }
  size_t start = self >= 0 ? static_cast<size_t>(self) + 1 : n - 1;
  for (size_t k = 0; k < n; ++k) {
    size_t q = (start + k) % n;
    if (queues_[q].empty()) continue;
    *out = std::move(queues_[q].front());
    queues_[q].pop_front();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  tls_worker = WorkerIdentity{this, self};
  std::function<void()> task;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Pop before consulting shutdown_ so teardown drains pending tasks.
      cv_.wait(lock, [&] { return PopAnyTask(self, &task) || shutdown_; });
      if (!task) return;  // shutdown with all queues drained
    }
    task();
    task = nullptr;
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int self = tls_worker.pool == this ? tls_worker.index : -1;
    if (!PopAnyTask(self, &task)) return false;
  }
  task();
  return true;
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();  // leaked: lives until exit
  return *pool;
}

}  // namespace idrepair
