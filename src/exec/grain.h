#ifndef IDREPAIR_EXEC_GRAIN_H_
#define IDREPAIR_EXEC_GRAIN_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace idrepair {

/// Sentinel grain value meaning "let the cost model pick" (CLI spelling:
/// `auto`). Stored in the ExecOptions grain fields, where it is the
/// default; any positive value is an explicit override that wins over the
/// model unconditionally.
inline constexpr size_t kGrainAuto = 0;

/// How many shards per thread the auto model aims for. More shards than
/// threads is deliberate: shard k+1 starts the moment a worker drains
/// shard k, so a skewed shard no longer pins the whole phase to its
/// slowest peer. 4 keeps the tail short without multiplying per-shard
/// fixed costs (dispatch, slot construction, merge walk) beyond noise.
inline constexpr size_t kAutoShardsPerThread = 4;

/// Calibration floors: the smallest number of work items per shard for
/// which one pool dispatch is cheaper than just doing the work inline.
/// Measured on the tier-1 bench workloads (see DESIGN.md §10): a clique
/// seed roots a whole search subtree, so even a handful amortize a
/// dispatch; selection items are a comparison or a flag write, so
/// thousands are needed before the pool pays for itself.
inline constexpr size_t kCandidateGrainCalibration = 4;
inline constexpr size_t kSelectionGrainCalibration = 512;

/// Edge-count gate for sharding the per-commit degree re-scoring fan in
/// the lazy degree selectors when the grain is `auto` (an explicit grain
/// replaces it). Separate from the shard-size calibration because the
/// gated quantity is edges touched per commit, not items per shard.
inline constexpr size_t kSelectionRescoreGateEdges = 2048;

/// The auto cost model as a pure function: the grain (items per shard)
/// for `items` work items on `threads` threads with the given calibration
/// floor. Properties relied on by callers and pinned in exec_test:
///  - threads <= 1 (or items == 0): returns max(items, 1), i.e. a single
///    shard — the serial reference schedule.
///  - otherwise: ceil(items / (threads * kAutoShardsPerThread)), floored
///    at `calibration` — never below 1, never above `items`.
size_t ComputeAutoGrain(size_t items, int threads, size_t calibration);

/// Resolves a requested grain against the model: an explicit request
/// (anything but kGrainAuto) is returned untouched — override precedence —
/// and kGrainAuto defers to ComputeAutoGrain.
size_t ResolveGrain(size_t requested, size_t items, int threads,
                    size_t calibration);

/// Parses a CLI grain flag value: "auto" (case-sensitive) yields
/// kGrainAuto, a positive integer yields itself, everything else (zero,
/// negatives, trailing junk) is an InvalidArgument naming `flag`.
Result<size_t> ParseGrainValue(const std::string& text,
                               const std::string& flag);

}  // namespace idrepair

#endif  // IDREPAIR_EXEC_GRAIN_H_
