#include "exec/task_group.h"

#include <chrono>
#include <utility>

#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace idrepair {

namespace {

obs::Counter* SkippedCounter() {
  static obs::Counter* skipped = obs::MetricsRegistry::Global().GetCounter(
      "idrepair_exec_tasks_skipped_total", obs::Stability::kRuntime,
      "Tasks skipped because their group was cancelled before they ran");
  return skipped;
}

}  // namespace

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::Default()),
      state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Spawn(std::function<Status()> fn) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    index = state_->spawned++;
  }
  pool_->Submit([state = state_, fn = std::move(fn), index]() {
    Status status;  // OK
    if (!state->cancelled.load(std::memory_order_relaxed)) {
      if (fault::Armed()) {
        status = fault::Inject("exec.task_group.run");
      }
      if (status.ok()) status = fn();
    } else if (obs::Enabled()) {
      SkippedCounter()->Increment();
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      // Lowest spawn index wins so the surfaced error does not depend on
      // which failed task finished first.
      if (!status.ok() && index < state->first_error_index) {
        state->first_error = status;
        state->first_error_index = index;
        state->cancelled.store(true, std::memory_order_relaxed);
      }
      ++state->finished;
    }
    state->cv.notify_all();
  });
}

Status TaskGroup::Wait() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      if (state_->finished == state_->spawned) return state_->first_error;
    }
    // Help drain the pool rather than parking; when nothing is runnable
    // our remaining tasks are executing on other threads — sleep until one
    // finishes (or a new task becomes stealable).
    if (pool_->TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state_->mu);
    if (state_->finished == state_->spawned) return state_->first_error;
    state_->cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

}  // namespace idrepair
