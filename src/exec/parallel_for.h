#ifndef IDREPAIR_EXEC_PARALLEL_FOR_H_
#define IDREPAIR_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"

namespace idrepair {

/// Splits [0, n) into at most `num_threads` contiguous shards of at least
/// `grain` items each (the last shard absorbs the remainder). Pure function
/// of its arguments, so callers can pre-size per-shard result storage and
/// rely on the same decomposition inside ParallelFor. Returns an empty
/// vector for n == 0.
std::vector<std::pair<size_t, size_t>> SplitRange(size_t n, int num_threads,
                                                  size_t grain);

/// Runs body(shard, begin, end) over the given shards. A single shard runs
/// inline on the calling thread (no pool dispatch); multiple shards are
/// dispatched through a TaskGroup, so the first error cancels unstarted
/// shards and is returned. Shard results must be merged by the caller in
/// shard order for deterministic output (see exec/README.md).
Status ParallelFor(
    ThreadPool* pool,
    const std::vector<std::pair<size_t, size_t>>& shards,
    const std::function<Status(size_t shard, size_t begin, size_t end)>&
        body);

/// Convenience overload: shards [0, n) itself via SplitRange.
Status ParallelFor(
    ThreadPool* pool, size_t n, int num_threads, size_t grain,
    const std::function<Status(size_t shard, size_t begin, size_t end)>&
        body);

}  // namespace idrepair

#endif  // IDREPAIR_EXEC_PARALLEL_FOR_H_
