#ifndef IDREPAIR_EXEC_PARALLEL_FOR_H_
#define IDREPAIR_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"

namespace idrepair {

/// Splits [0, n) into at most `num_threads` contiguous shards of at least
/// `grain` items each (the last shard absorbs the remainder). Pure function
/// of its arguments, so callers can pre-size per-shard result storage and
/// rely on the same decomposition inside ParallelFor. Returns an empty
/// vector for n == 0.
std::vector<std::pair<size_t, size_t>> SplitRange(size_t n, int num_threads,
                                                  size_t grain);

/// Runs body(shard, begin, end) over the given shards. A single shard runs
/// inline on the calling thread (no pool dispatch); multiple shards are
/// dispatched through a TaskGroup, so the first error cancels unstarted
/// shards and is returned. Shard results must be merged by the caller in
/// shard order for deterministic output (see exec/README.md).
Status ParallelFor(
    ThreadPool* pool,
    const std::vector<std::pair<size_t, size_t>>& shards,
    const std::function<Status(size_t shard, size_t begin, size_t end)>&
        body);

/// Convenience overload: shards [0, n) itself via SplitRange.
Status ParallelFor(
    ThreadPool* pool, size_t n, int num_threads, size_t grain,
    const std::function<Status(size_t shard, size_t begin, size_t end)>&
        body);

/// Scheduling footprint of one ParallelForDynamic invocation: how the
/// blocks actually landed on workers, for the steal/imbalance summary in
/// --stats-json. Purely observational — never feeds back into results.
struct DynamicScheduleStats {
  size_t items = 0;    // total work items in the range
  size_t blocks = 0;   // work items as claimed: ceil(items / block size)
  size_t workers = 0;  // worker tasks that claimed at least one block
  /// Blocks claimed and busy time spent, per worker slot. Busy time is
  /// wall time inside body() only, so claim contention is excluded.
  std::vector<uint64_t> blocks_per_worker;
  std::vector<uint64_t> busy_micros_per_worker;

  /// Max worker busy time over the mean, across workers that claimed at
  /// least one block: 1.0 is a perfectly balanced schedule, `workers` is
  /// fully serialized on one worker. 1.0 when nothing ran or timing was
  /// not collected.
  double Imbalance() const;
};

/// Runs body(block, begin, end) over [0, n) split into fixed blocks of
/// `block_size` items (the last block takes the remainder), claimed
/// DYNAMICALLY: min(num_threads, num_blocks) worker tasks pull the next
/// unclaimed block from a shared cursor until the range is exhausted, so a
/// heavy block delays only the worker that claimed it instead of a fixed
/// range-mate. The block decomposition is a pure function of
/// (n, block_size) — callers merge per-block slots in block order for
/// output that is byte-identical at any thread count and any schedule.
///
/// Error semantics: the first body error stops further claims (blocks
/// already claimed finish); among the blocks that errored, the LOWEST
/// block index wins, mirroring TaskGroup's lowest-spawn-index retention.
/// A single worker (or a single block) runs inline on the calling thread
/// with no pool dispatch — the serial reference schedule.
Status ParallelForDynamic(
    ThreadPool* pool, size_t n, int num_threads, size_t block_size,
    const std::function<Status(size_t block, size_t begin, size_t end)>&
        body,
    DynamicScheduleStats* stats = nullptr);

}  // namespace idrepair

#endif  // IDREPAIR_EXEC_PARALLEL_FOR_H_
