#include "exec/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

namespace idrepair {

std::vector<std::pair<size_t, size_t>> SplitRange(size_t n, int num_threads,
                                                  size_t grain) {
  std::vector<std::pair<size_t, size_t>> shards;
  if (n == 0) return shards;
  if (grain == 0) grain = 1;
  size_t max_shards = num_threads > 0 ? static_cast<size_t>(num_threads) : 1;
  size_t num_shards = std::min(max_shards, (n + grain - 1) / grain);
  num_shards = std::max<size_t>(num_shards, 1);
  shards.reserve(num_shards);
  // Evenly sized shards; the first (n % num_shards) get one extra item.
  size_t base = n / num_shards;
  size_t extra = n % num_shards;
  size_t begin = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    size_t size = base + (s < extra ? 1 : 0);
    shards.emplace_back(begin, begin + size);
    begin += size;
  }
  return shards;
}

Status ParallelFor(
    ThreadPool* pool,
    const std::vector<std::pair<size_t, size_t>>& shards,
    const std::function<Status(size_t shard, size_t begin, size_t end)>&
        body) {
  if (shards.empty()) return Status::OK();
  if (shards.size() == 1) {
    return body(0, shards[0].first, shards[0].second);
  }
  TaskGroup group(pool);
  for (size_t s = 0; s < shards.size(); ++s) {
    group.Spawn([&body, &shards, s] {
      return body(s, shards[s].first, shards[s].second);
    });
  }
  return group.Wait();
}

Status ParallelFor(
    ThreadPool* pool, size_t n, int num_threads, size_t grain,
    const std::function<Status(size_t shard, size_t begin, size_t end)>&
        body) {
  return ParallelFor(pool, SplitRange(n, num_threads, grain), body);
}

double DynamicScheduleStats::Imbalance() const {
  uint64_t total = 0;
  uint64_t max = 0;
  size_t active = 0;
  for (size_t w = 0; w < busy_micros_per_worker.size(); ++w) {
    if (w < blocks_per_worker.size() && blocks_per_worker[w] == 0) continue;
    total += busy_micros_per_worker[w];
    max = std::max(max, busy_micros_per_worker[w]);
    ++active;
  }
  if (active == 0 || total == 0) return 1.0;
  double mean = static_cast<double>(total) / static_cast<double>(active);
  return static_cast<double>(max) / mean;
}

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Status ParallelForDynamic(
    ThreadPool* pool, size_t n, int num_threads, size_t block_size,
    const std::function<Status(size_t block, size_t begin, size_t end)>&
        body,
    DynamicScheduleStats* stats) {
  if (block_size == 0) block_size = 1;
  const size_t num_blocks = (n + block_size - 1) / block_size;
  const size_t num_workers = std::min(
      num_blocks, num_threads > 0 ? static_cast<size_t>(num_threads) : 1);
  if (stats != nullptr) {
    stats->items = n;
    stats->blocks = num_blocks;
    stats->workers = 0;
    stats->blocks_per_worker.assign(std::max<size_t>(num_workers, 1), 0);
    stats->busy_micros_per_worker.assign(std::max<size_t>(num_workers, 1),
                                         0);
  }
  if (n == 0) return Status::OK();

  std::atomic<size_t> cursor{0};
  std::atomic<bool> stop{false};
  // Lowest errored block wins, matching TaskGroup's deterministic
  // lowest-spawn-index error retention for the fixed-shard path.
  std::mutex error_mu;
  Status first_error = Status::OK();
  size_t first_error_block = SIZE_MAX;

  auto worker = [&](size_t slot) {
    uint64_t busy = 0;
    uint64_t claimed = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      size_t b = cursor.fetch_add(1, std::memory_order_relaxed);
      if (b >= num_blocks) break;
      size_t begin = b * block_size;
      size_t end = std::min(n, begin + block_size);
      uint64_t start = stats != nullptr ? NowMicros() : 0;
      Status s = body(b, begin, end);
      if (stats != nullptr) busy += NowMicros() - start;
      ++claimed;
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (b < first_error_block) {
          first_error_block = b;
          first_error = std::move(s);
        }
        stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (stats != nullptr) {
      // Each slot is written by exactly one worker task; sized upfront.
      stats->blocks_per_worker[slot] = claimed;
      stats->busy_micros_per_worker[slot] = busy;
    }
  };

  if (num_workers <= 1) {
    worker(0);
  } else {
    TaskGroup group(pool);
    for (size_t slot = 0; slot < num_workers; ++slot) {
      group.Spawn([&worker, slot] {
        worker(slot);
        return Status::OK();
      });
    }
    IDREPAIR_RETURN_NOT_OK(group.Wait());
  }
  if (stats != nullptr) {
    for (uint64_t c : stats->blocks_per_worker) {
      if (c > 0) ++stats->workers;
    }
  }
  if (first_error_block != SIZE_MAX) return first_error;
  return Status::OK();
}

}  // namespace idrepair
