#include "exec/parallel_for.h"

#include <algorithm>

namespace idrepair {

std::vector<std::pair<size_t, size_t>> SplitRange(size_t n, int num_threads,
                                                  size_t grain) {
  std::vector<std::pair<size_t, size_t>> shards;
  if (n == 0) return shards;
  if (grain == 0) grain = 1;
  size_t max_shards = num_threads > 0 ? static_cast<size_t>(num_threads) : 1;
  size_t num_shards = std::min(max_shards, (n + grain - 1) / grain);
  num_shards = std::max<size_t>(num_shards, 1);
  shards.reserve(num_shards);
  // Evenly sized shards; the first (n % num_shards) get one extra item.
  size_t base = n / num_shards;
  size_t extra = n % num_shards;
  size_t begin = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    size_t size = base + (s < extra ? 1 : 0);
    shards.emplace_back(begin, begin + size);
    begin += size;
  }
  return shards;
}

Status ParallelFor(
    ThreadPool* pool,
    const std::vector<std::pair<size_t, size_t>>& shards,
    const std::function<Status(size_t shard, size_t begin, size_t end)>&
        body) {
  if (shards.empty()) return Status::OK();
  if (shards.size() == 1) {
    return body(0, shards[0].first, shards[0].second);
  }
  TaskGroup group(pool);
  for (size_t s = 0; s < shards.size(); ++s) {
    group.Spawn([&body, &shards, s] {
      return body(s, shards[s].first, shards[s].second);
    });
  }
  return group.Wait();
}

Status ParallelFor(
    ThreadPool* pool, size_t n, int num_threads, size_t grain,
    const std::function<Status(size_t shard, size_t begin, size_t end)>&
        body) {
  return ParallelFor(pool, SplitRange(n, num_threads, grain), body);
}

}  // namespace idrepair
