#ifndef IDREPAIR_FAULT_DEADLINE_H_
#define IDREPAIR_FAULT_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "fault/failpoint.h"

namespace idrepair {
namespace fault {

/// The failpoint evaluated by every enabled Deadline check. Arming it (e.g.
/// `fault.deadline.expire=error,on_hit=3`) forces the Nth deadline check of
/// a run to report expiry, giving tests deterministic partial results
/// without wall-clock races. Only consulted when a deadline is actually
/// enabled, so arming it never affects runs with deadline_ms == 0.
inline constexpr char kDeadlineExpireSite[] = "fault.deadline.expire";

/// A budget for one repair run: an absolute steady-clock expiry derived from
/// RepairOptions::deadline_ms at Repair() entry. Engines probe it at safe
/// interruption boundaries (phase / partition / replay-batch granularity)
/// and degrade to a well-formed partial result when it reports expiry —
/// they never tear down mid-mutation.
///
/// Expiry latches: once any check (wall-clock or forced) observes it, every
/// later check on this instance reports expired too, so a one-shot forced
/// fire degrades the whole remainder of the run exactly like a real
/// wall-clock expiry would.
///
/// Copyable and cheap: a disabled deadline's Check() is a single branch.
class Deadline {
 public:
  Deadline() = default;
  Deadline(const Deadline& other)
      : enabled_(other.enabled_),
        expiry_(other.expiry_),
        expired_(other.expired_.load(std::memory_order_relaxed)) {}
  Deadline& operator=(const Deadline& other) {
    enabled_ = other.enabled_;
    expiry_ = other.expiry_;
    expired_.store(other.expired_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  /// A deadline that never expires (deadline_ms == 0).
  static Deadline Infinite() { return Deadline(); }

  /// A deadline `ms` milliseconds from now; ms <= 0 yields Infinite().
  static Deadline FromMillis(int64_t ms) {
    Deadline d;
    if (ms > 0) {
      d.enabled_ = true;
      d.expiry_ =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
  }

  bool enabled() const { return enabled_; }

  /// True once the budget ran out — and from then on (latched). Also true
  /// when the kDeadlineExpireSite failpoint fires (forced expiry for
  /// deterministic tests); disabled deadlines never expire and never
  /// evaluate the failpoint.
  bool Expired() const {
    if (!enabled_) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    if ((Armed() && !Inject(kDeadlineExpireSite).ok()) ||
        std::chrono::steady_clock::now() >= expiry_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// OK while within budget; DeadlineExceeded naming the interrupted
  /// boundary once expired.
  Status Check(const char* boundary) const {
    if (!Expired()) return Status::OK();
    return Status::DeadlineExceeded(std::string("repair budget exhausted at ") +
                                    boundary);
  }

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point expiry_{};
  // Latch; relaxed atomic because sibling partition tasks share one
  // Deadline by reference and may race their checks.
  mutable std::atomic<bool> expired_{false};
};

}  // namespace fault
}  // namespace idrepair

#endif  // IDREPAIR_FAULT_DEADLINE_H_
