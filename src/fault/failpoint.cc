#include "fault/failpoint.h"

#include <charconv>
#include <chrono>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace idrepair {
namespace fault {

namespace {

/// SplitMix64 finalizer: a pure, well-mixed function of its input, so the
/// probabilistic trigger's decision for hit index h is a deterministic
/// function of (seed, h) — independent of which thread took the hit.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

const char* ActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kError: return "error";
    case FaultAction::kAllocFail: return "alloc-failure";
    case FaultAction::kDelay: return "delay";
    case FaultAction::kCancel: return "cancellation";
  }
  return "fault";
}

}  // namespace

Status FaultSpec::Validate() const {
  if ((fire_on_hit == 0) == (one_in == 0)) {
    return Status::InvalidArgument(
        "fault spec must set exactly one trigger: fire_on_hit or one_in");
  }
  if (action == FaultAction::kError && code == StatusCode::kOk) {
    return Status::InvalidArgument("fault spec error code must not be OK");
  }
  if (max_fires == 0) {
    return Status::InvalidArgument("fault spec max_fires must be >= 1");
  }
  return Status::OK();
}

Status FailPoint::Evaluate() {
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  // 1-based hit index: the first evaluation after arming is hit 1.
  uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  FaultSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec = spec_;
  }
  bool fire = false;
  if (spec.fire_on_hit > 0) {
    fire = hit == spec.fire_on_hit;
  } else if (spec.one_in == 1) {
    fire = true;
  } else if (spec.one_in > 1) {
    fire = Mix64(spec.seed ^ hit) % spec.one_in == 0;
  }
  if (!fire) return Status::OK();
  // Claim one of the max_fires slots; once exhausted the site goes quiet
  // but keeps counting hits.
  uint64_t f = fires_.load(std::memory_order_relaxed);
  do {
    if (f >= spec.max_fires) return Status::OK();
  } while (!fires_.compare_exchange_weak(f, f + 1,
                                         std::memory_order_relaxed));
  std::string message = spec.message.empty()
                            ? std::string(ActionName(spec.action)) +
                                  " injected at " + name_
                            : spec.message;
  switch (spec.action) {
    case FaultAction::kError:
      return Status(spec.code, std::move(message));
    case FaultAction::kAllocFail:
      return Status::ResourceExhausted(std::move(message));
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_micros));
      return Status::OK();
    case FaultAction::kCancel:
      return Status::Cancelled(std::move(message));
  }
  return Status::OK();
}

Status FailPoint::Arm(FaultSpec spec) {
  IDREPAIR_RETURN_NOT_OK(spec.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = std::move(spec);
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  // Release so an evaluator that observes armed_ sees the spec it gates;
  // bump the process gate only on the disarmed -> armed transition.
  if (!armed_.exchange(true, std::memory_order_release)) {
    internal::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void FailPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_.exchange(false, std::memory_order_release)) {
    internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* registry = new FailPointRegistry();  // leaked
  return *registry;
}

FailPoint* FailPointRegistry::GetPoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<FailPoint>(name)).first;
  }
  return it->second.get();
}

Status FailPointRegistry::Arm(const std::string& name, FaultSpec spec) {
  return GetPoint(name)->Arm(std::move(spec));
}

void FailPointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it != points_.end()) it->second->Disarm();
}

void FailPointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) point->Disarm();
}

std::vector<FailPointInfo> FailPointRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailPointInfo> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    out.push_back(FailPointInfo{name, point->armed(), point->hits(),
                                point->fires()});
  }
  return out;
}

size_t FailPointRegistry::NumArmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, point] : points_) {
    if (point->armed()) ++n;
  }
  return n;
}

std::string FailPointRegistry::RenderStatus() const {
  std::string out;
  for (const FailPointInfo& info : Snapshot()) {
    if (!info.armed && info.hits == 0 && info.fires == 0) continue;
    out += "  ";
    out += info.name;
    out += info.armed ? " armed=1" : " armed=0";
    out += " hits=" + std::to_string(info.hits);
    out += " fires=" + std::to_string(info.fires);
    out += "\n";
  }
  if (out.empty()) return "failpoints: no sites armed or evaluated\n";
  return "failpoints:\n" + out;
}

uint64_t FailPointRegistry::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [name, point] : points_) n += point->fires();
  return n;
}

Status Inject(const char* site) {
  return FailPointRegistry::Global().GetPoint(site)->Evaluate();
}

void MaybePerturb(const char* site) {
  if (!Armed()) return;
  // Error-like fires are counted (chaos assertions see them) but swallowed:
  // the pool's dispatch path has no Status channel.
  (void)FailPointRegistry::Global().GetPoint(site)->Evaluate();
}

namespace {

Result<uint64_t> ParseUint64(std::string_view s) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    // Built up incrementally: GCC 12's -Wrestrict misfires on the nested
    // operator+ chain when it inlines this under -O3.
    std::string message = "'";
    message.append(s);
    message += "' is not an unsigned integer";
    return Status::InvalidArgument(std::move(message));
  }
  return value;
}

Status ParseOneSpec(std::string_view entry) {
  size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry '" + std::string(entry) +
                                   "' is not site=action[,key=value...]");
  }
  std::string name(Trim(entry.substr(0, eq)));
  auto fields = Split(entry.substr(eq + 1), ',');
  if (fields.empty()) {
    return Status::InvalidArgument("failpoint '" + name + "' has no action");
  }
  FaultSpec spec;
  std::string_view action = Trim(fields[0]);
  if (action == "error") {
    spec.action = FaultAction::kError;
  } else if (action == "alloc") {
    spec.action = FaultAction::kAllocFail;
  } else if (action == "delay") {
    spec.action = FaultAction::kDelay;
  } else if (action == "cancel") {
    spec.action = FaultAction::kCancel;
  } else {
    return Status::InvalidArgument(
        "failpoint '" + name + "': unknown action '" + std::string(action) +
        "' (want error|alloc|delay|cancel)");
  }
  for (size_t i = 1; i < fields.size(); ++i) {
    std::string_view field = Trim(fields[i]);
    size_t kv = field.find('=');
    if (kv == std::string_view::npos) {
      return Status::InvalidArgument("failpoint '" + name +
                                     "': malformed option '" +
                                     std::string(field) + "'");
    }
    std::string_view key = Trim(field.substr(0, kv));
    auto value = ParseUint64(Trim(field.substr(kv + 1)));
    if (!value.ok()) {
      return Status::InvalidArgument("failpoint '" + name + "': option '" +
                                     std::string(field) +
                                     "' needs an unsigned integer value");
    }
    if (key == "on_hit") {
      spec.fire_on_hit = *value;
    } else if (key == "one_in") {
      spec.one_in = *value;
    } else if (key == "seed") {
      spec.seed = *value;
    } else if (key == "max_fires") {
      spec.max_fires = *value;
    } else if (key == "delay_us") {
      spec.delay_micros = static_cast<uint32_t>(*value);
    } else {
      return Status::InvalidArgument(
          "failpoint '" + name + "': unknown option '" + std::string(key) +
          "' (want on_hit|one_in|seed|max_fires|delay_us)");
    }
  }
  // A bare action defaults to firing on the first hit, the common
  // "fail here once" case.
  if (spec.fire_on_hit == 0 && spec.one_in == 0) spec.fire_on_hit = 1;
  return FailPointRegistry::Global().Arm(name, std::move(spec));
}

}  // namespace

Status ArmFromString(const std::string& spec) {
  for (std::string_view entry : Split(spec, ';')) {
    if (Trim(entry).empty()) continue;
    IDREPAIR_RETURN_NOT_OK(ParseOneSpec(Trim(entry)));
  }
  return Status::OK();
}

}  // namespace fault
}  // namespace idrepair
