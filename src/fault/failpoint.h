#ifndef IDREPAIR_FAULT_FAILPOINT_H_
#define IDREPAIR_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace idrepair {
namespace fault {

/// What an armed failpoint does when its trigger fires.
enum class FaultAction {
  kError,      // return spec.code/spec.message from the site
  kAllocFail,  // return ResourceExhausted (a simulated allocation failure)
  kDelay,      // sleep spec.delay_micros, then succeed (scheduling chaos)
  kCancel,     // return Cancelled (cooperative cancellation request)
};

/// How and when an armed failpoint fires. Exactly one trigger must be set:
/// either `fire_on_hit` (deterministic: fire on the Nth evaluation of the
/// site, 1-based) or `one_in` (seeded pseudo-random: each hit fires with
/// probability 1/one_in, decided by a pure hash of (seed, hit index), so a
/// given hit index always decides the same way — the *number* of fires over
/// N hits is a deterministic function of the spec).
struct FaultSpec {
  FaultAction action = FaultAction::kError;
  /// Status code returned by kError fires.
  StatusCode code = StatusCode::kInternal;
  /// Error message for kError fires; empty selects "<action> injected at
  /// <site>".
  std::string message;
  /// Deterministic trigger: fire exactly on the Nth hit (1-based). 0 = off.
  uint64_t fire_on_hit = 0;
  /// Probabilistic trigger: each hit fires with probability 1/one_in
  /// (one_in == 1 fires every hit). 0 = off.
  uint64_t one_in = 0;
  /// Seed of the probabilistic trigger's hash sequence.
  uint64_t seed = 0;
  /// Stop firing after this many fires (the site keeps counting hits).
  uint64_t max_fires = std::numeric_limits<uint64_t>::max();
  /// Sleep applied by kDelay fires.
  uint32_t delay_micros = 1000;

  Status Validate() const;
};

namespace internal {
/// Count of currently armed failpoints. The process-wide gate behind
/// Armed(): relaxed is enough, the flag only decides whether sites take the
/// slow evaluation path, never guards data the reader dereferences.
inline std::atomic<int> g_armed_sites{0};
}  // namespace internal

/// True when at least one failpoint is armed anywhere in the process. Every
/// injection site branches on this; when false the site costs a single
/// relaxed atomic load (the same contract as obs::Enabled()).
inline bool Armed() {
  return internal::g_armed_sites.load(std::memory_order_relaxed) > 0;
}

/// One named injection site. Sites are created on first use (or first Arm)
/// and live for the process lifetime; pointers returned by the registry are
/// stable, so call sites cache them in static locals.
class FailPoint {
 public:
  explicit FailPoint(std::string name) : name_(std::move(name)) {}

  /// Destroying an armed point releases its slot in the process-wide armed
  /// count (registry-owned points live forever; this matters for the local
  /// instances unit tests build).
  ~FailPoint() { Disarm(); }

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  /// Evaluates the site: counts the hit and, if the trigger fires, performs
  /// the armed action. Returns OK when disarmed, when the trigger does not
  /// fire, or after a kDelay fire. Thread-safe.
  Status Evaluate();

  /// Arms (or re-arms) the site with `spec`, resetting hit/fire counters so
  /// deterministic triggers count from this arming. Validates the spec.
  Status Arm(FaultSpec spec);

  /// Disarms the site. Counters keep their values for post-run assertions.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }
  const std::string& name() const { return name_; }
  /// Evaluations since the last Arm().
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Trigger firings since the last Arm().
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  mutable std::mutex mu_;  // guards spec_ against concurrent re-arming
  FaultSpec spec_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};
};

/// Point-in-time state of one site (FailPointRegistry::Snapshot).
struct FailPointInfo {
  std::string name;
  bool armed = false;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// Process-wide registry of named failpoints, RocksDB SyncPoint-style:
/// tests and the CLI arm sites by name; instrumented code evaluates them
/// through Inject()/MaybePerturb() (or a cached FailPoint*).
class FailPointRegistry {
 public:
  FailPointRegistry() = default;
  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

  static FailPointRegistry& Global();

  /// Get-or-create; the returned pointer is stable for the process
  /// lifetime.
  FailPoint* GetPoint(const std::string& name);

  /// Arms `name` (creating the site if it does not exist yet — arming may
  /// precede the first execution of the site).
  Status Arm(const std::string& name, FaultSpec spec);

  /// Disarms `name` if present.
  void Disarm(const std::string& name);

  /// Disarms every site. Tests call this in teardown so chaos never leaks
  /// into the next test.
  void DisarmAll();

  /// Name-sorted state of every known site.
  std::vector<FailPointInfo> Snapshot() const;

  /// Currently armed site count / total fires across all sites (for the
  /// --stats-json fault echo and chaos assertions).
  size_t NumArmed() const;
  uint64_t TotalFires() const;

  /// Human-readable per-site hit/fire dump (the CLI's --failpoints-status).
  /// Lists only sites that are armed or have been evaluated since their
  /// last arming — name-sorted, one line each — so the output is a stable
  /// function of what the run actually touched, not of which sites happen
  /// to exist in the process. The exact format is pinned by flags_test.
  std::string RenderStatus() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FailPoint>> points_;
};

/// Full evaluation of the named site against the global registry. Returns
/// OK unless an armed error/alloc-fail/cancel trigger fired. Call only when
/// Armed() — the IDREPAIR_FAULT_INJECT macro does this for you.
Status Inject(const char* site);

/// Delay-only evaluation for void contexts (thread-pool dispatch/steal):
/// fires still count, kDelay fires sleep, but error-like actions are
/// swallowed — a scheduler has no Status channel to propagate them through.
void MaybePerturb(const char* site);

/// Arms failpoints from a CLI spec string:
///   site=action[,key=value...][;site=action[,...]]...
/// with action in {error, alloc, delay, cancel} and keys on_hit, one_in,
/// seed, max_fires, delay_us. Example:
///   repair.generation.shard=error,on_hit=2;exec.pool.dispatch=delay,one_in=10,seed=7
Status ArmFromString(const std::string& spec);

}  // namespace fault
}  // namespace idrepair

/// Statement form of the common pattern: evaluate the named site and
/// propagate a fired Status to the caller. One relaxed load when nothing is
/// armed anywhere.
#define IDREPAIR_FAULT_INJECT(site)                              \
  do {                                                           \
    if (::idrepair::fault::Armed()) {                            \
      ::idrepair::Status _fault_st = ::idrepair::fault::Inject(site); \
      if (!_fault_st.ok()) return _fault_st;                     \
    }                                                            \
  } while (false)

#endif  // IDREPAIR_FAULT_FAILPOINT_H_
