#ifndef IDREPAIR_SERVER_PROTOCOL_H_
#define IDREPAIR_SERVER_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "repair/options.h"
#include "server/registry.h"
#include "server/wire_format.h"
#include "traj/tracking_record.h"

namespace idrepair {
namespace server {

// ---- Framing ---------------------------------------------------------
//
// Every message travels as one length-prefixed frame over a stream socket
// (TCP or Unix domain):
//
//   u32 magic 'IDRF'   u32 payload_len   u8 type   payload bytes
//
// Responses echo the request's type; a response payload always begins with
// an encoded Status (u32 code, string message) followed by the typed body,
// which is present only when the status is OK.

inline constexpr uint32_t kFrameMagic = 0x46524449u;  // "IDRF"
inline constexpr size_t kFrameHeaderBytes = 9;
/// Upper bound on one frame's payload: oversized length prefixes are
/// rejected before any allocation happens (garbage on the wire must not
/// look like a 4 GB read).
inline constexpr size_t kMaxFramePayload = 64u << 20;

enum class MsgType : uint8_t {
  kRegisterGraph = 1,
  kSnapshot = 2,
  kRepair = 3,
  kStats = 4,
  kShutdown = 5,
};

struct Frame {
  MsgType type = MsgType::kStats;
  std::string payload;
};

/// Writes one frame, handling short writes. SIGPIPE-safe (MSG_NOSIGNAL).
Status WriteFrame(int fd, MsgType type, std::string_view payload);

/// Reads one frame. Blocks in short poll() rounds and rechecks `cancelled`
/// between them so a stopping server can abandon idle connections; a null
/// predicate blocks until data or EOF. Peer close at a frame boundary and
/// garbage both surface as a non-OK Status — the caller's reaction (drop
/// the connection) is the same.
Result<Frame> ReadFrame(int fd, const std::function<bool()>& cancelled);

// ---- Addresses -------------------------------------------------------

/// A listen/dial target: "unix:/path/to.sock", "tcp:host:port", or
/// "tcp:port" (host defaults to 127.0.0.1). Port 0 asks the kernel for an
/// ephemeral port; the server reports the bound address.
struct Address {
  bool is_unix = false;
  std::string path;               // unix
  std::string host = "127.0.0.1";  // tcp
  uint16_t port = 0;               // tcp
};

Result<Address> ParseAddress(const std::string& spec);
std::string FormatAddress(const Address& address);

/// Connects a blocking stream socket to `address`; returns the fd.
Result<int> DialAddress(const Address& address);

// ---- Status envelope -------------------------------------------------

void EncodeStatus(BinaryWriter* w, const Status& status);
/// Reconstructs an encoded Status; wire corruption latches on the reader.
Status DecodeStatus(BinaryReader* r);

// ---- Request / reply payloads ----------------------------------------

struct RegisterGraphRequest {
  std::string name;
  /// The graph in the graph/serialization text format — one canonical
  /// human-auditable graph encoding everywhere.
  std::string graph_text;
  RepairOptions options;  // persistable fields only travel
  /// Optional resident corpus to pin (and LIG-index) with the graph.
  std::vector<TrackingRecord> corpus;
};

struct RegisterGraphReply {
  uint64_t version = 0;
};

struct SnapshotRequest {
  /// Target directory; empty selects the server's --snapshot-dir.
  std::string dir;
};

struct SnapshotReply {
  uint64_t num_saved = 0;
  std::string dir;
};

struct RepairRequest {
  std::string name;
  /// Per-request budget, mapped onto RepairOptions::deadline_ms (graceful
  /// degradation); 0 keeps the bundle's registered deadline.
  int64_t budget_ms = 0;
  /// 0 = core engine, 1 = partitioned.
  uint8_t engine = 0;
  /// Repair the registered resident corpus (load-not-rebuild: the bundle's
  /// snapshot-loaded LIG index is reused) instead of shipping batches.
  bool use_corpus = false;
  /// Independent record batches; each is repaired as its own trajectory
  /// set, dispatched onto the exec pool.
  std::vector<std::vector<TrackingRecord>> batches;
};

struct BatchReply {
  /// OK, or kDeadlineExceeded for a graceful partial result (the repaired
  /// records below are still complete and internally consistent).
  Status completion;
  /// The repaired records, flattened in trajectory order — byte-identical
  /// to flattening a local engine run on the same input.
  std::vector<TrackingRecord> repaired;
  uint64_t num_candidates = 0;
  uint64_t num_selected = 0;
  uint64_t num_rewrites = 0;
  double total_effectiveness = 0.0;
  double seconds_total = 0.0;
};

struct RepairReply {
  std::vector<BatchReply> batches;
};

struct StatsRequest {
  bool include_prometheus = false;
};

/// The admission-control counters (see server.h for semantics).
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  int64_t inflight = 0;
  int64_t queue_peak = 0;
  uint64_t max_inflight = 0;
};

struct StatsReply {
  std::vector<GraphRegistry::EntryInfo> entries;
  AdmissionStats admission;
  /// RenderPrometheus output when the request asked for it, else empty.
  std::string prometheus;
};

// Encode/Decode pairs. Decoders fully validate (bounded counts, enum
// ranges, exact consumption) and return Corruption on malformed input.
std::string EncodeRegisterGraphRequest(const RegisterGraphRequest& req);
Status DecodeRegisterGraphRequest(std::string_view bytes,
                                  RegisterGraphRequest* req);
std::string EncodeRegisterGraphReply(const RegisterGraphReply& reply);
Status DecodeRegisterGraphReply(BinaryReader* r, RegisterGraphReply* reply);

std::string EncodeSnapshotRequest(const SnapshotRequest& req);
Status DecodeSnapshotRequest(std::string_view bytes, SnapshotRequest* req);
std::string EncodeSnapshotReply(const SnapshotReply& reply);
Status DecodeSnapshotReply(BinaryReader* r, SnapshotReply* reply);

std::string EncodeRepairRequest(const RepairRequest& req);
Status DecodeRepairRequest(std::string_view bytes, RepairRequest* req);
std::string EncodeRepairReply(const RepairReply& reply);
Status DecodeRepairReply(BinaryReader* r, RepairReply* reply);

std::string EncodeStatsRequest(const StatsRequest& req);
Status DecodeStatsRequest(std::string_view bytes, StatsRequest* req);
std::string EncodeStatsReply(const StatsReply& reply);
Status DecodeStatsReply(BinaryReader* r, StatsReply* reply);

}  // namespace server
}  // namespace idrepair

#endif  // IDREPAIR_SERVER_PROTOCOL_H_
