#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "graph/serialization.h"
#include "obs/metrics.h"
#include "repair/partitioned.h"
#include "repair/repairer.h"

namespace idrepair {
namespace server {

namespace {

constexpr int kPollIntervalMs = 50;
constexpr int kListenBacklog = 16;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string EnvelopeOnly(const Status& status) {
  std::string out;
  BinaryWriter w(&out);
  EncodeStatus(&w, status);
  return out;
}

std::string Envelope(const std::string& body) {
  std::string out;
  BinaryWriter w(&out);
  EncodeStatus(&w, Status::OK());
  out.append(body);
  return out;
}

/// Flattens a repaired set back to wire records, trajectory order — the
/// same order a local caller sees, so server and one-shot output compare
/// byte-for-byte.
std::vector<TrackingRecord> FlattenSet(const TrajectorySet& set) {
  std::vector<TrackingRecord> records;
  records.reserve(set.total_records());
  for (const Trajectory& t : set.trajectories()) {
    for (const TrajectoryPoint& p : t.points()) {
      records.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  return records;
}

struct ServerMetrics {
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Gauge* inflight;
  obs::Gauge* queue_peak;

  static ServerMetrics& Get() {
    static ServerMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      ServerMetrics built;
      built.admitted = reg.GetCounter(
          "idrepair_server_admitted_total", obs::Stability::kRuntime,
          "Repair batches admitted by the daemon");
      built.rejected = reg.GetCounter(
          "idrepair_server_rejected_total", obs::Stability::kRuntime,
          "Repair batches shed with ResourceExhausted");
      built.completed = reg.GetCounter(
          "idrepair_server_completed_total", obs::Stability::kRuntime,
          "Repair batches finished (any completion status)");
      built.inflight = reg.GetGauge(
          "idrepair_server_inflight", obs::Stability::kRuntime,
          "Admitted-but-unfinished repair batches");
      built.queue_peak = reg.GetGauge(
          "idrepair_server_queue_peak", obs::Stability::kRuntime,
          "High-water mark of admitted-but-unfinished repair batches");
      return built;
    }();
    return m;
  }
};

}  // namespace

IdRepairServer::IdRepairServer(ServerOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<IdRepairServer>> IdRepairServer::Start(
    ServerOptions options) {
  std::unique_ptr<IdRepairServer> srv(new IdRepairServer(std::move(options)));
  if (!srv->options_.load_dir.empty()) {
    auto loaded = srv->registry_.LoadDir(srv->options_.load_dir);
    IDREPAIR_RETURN_NOT_OK(loaded.status());
  }
  IDREPAIR_RETURN_NOT_OK(srv->Listen());
  srv->accept_thread_ = std::thread([s = srv.get()] { s->AcceptLoop(); });
  return srv;
}

IdRepairServer::~IdRepairServer() { Stop(); }

Status IdRepairServer::Listen() {
  auto parsed = ParseAddress(options_.listen);
  IDREPAIR_RETURN_NOT_OK(parsed.status());
  Address address = std::move(parsed).value();
  if (address.is_unix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::IoError(Errno("socket(unix)"));
    ::unlink(address.path.c_str());  // replace a stale socket file
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      return Status::IoError(Errno("bind " + FormatAddress(address)));
    }
    unix_path_ = address.path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::IoError(Errno("socket(tcp)"));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &sa.sin_addr) != 1) {
      return Status::InvalidArgument(
          "listen host must be a numeric IPv4 address");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      return Status::IoError(Errno("bind " + FormatAddress(address)));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return Status::IoError(Errno("getsockname"));
    }
    address.port = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, kListenBacklog) != 0) {
    return Status::IoError(Errno("listen"));
  }
  address_ = FormatAddress(address);
  return Status::OK();
}

void IdRepairServer::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

bool IdRepairServer::WaitForShutdownRequest(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  if (timeout_ms < 0) {
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
    return true;
  }
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] { return shutdown_requested_; });
}

AdmissionStats IdRepairServer::admission() const {
  AdmissionStats stats;
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  stats.queue_peak = queue_peak_.load(std::memory_order_relaxed);
  stats.max_inflight = options_.max_inflight;
  return stats;
}

void IdRepairServer::AcceptLoop() {
  while (!stopping()) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout tick or EINTR: recheck stop flag
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (stopping()) {
      ::close(fd);
      break;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void IdRepairServer::ServeConnection(int fd) {
  auto cancelled = [this] { return stopping(); };
  while (!stopping()) {
    auto frame = ReadFrame(fd, cancelled);
    if (!frame.ok()) break;  // peer closed, garbage, or shutdown tick
    std::string reply = HandleRequest(*frame);
    if (!WriteFrame(fd, frame->type, reply).ok()) break;
  }
  ::close(fd);
}

std::string IdRepairServer::HandleRequest(const Frame& frame) {
  switch (frame.type) {
    case MsgType::kRegisterGraph:
      return HandleRegisterGraph(frame.payload);
    case MsgType::kSnapshot:
      return HandleSnapshot(frame.payload);
    case MsgType::kRepair:
      return HandleRepair(frame.payload);
    case MsgType::kStats:
      return HandleStats(frame.payload);
    case MsgType::kShutdown: {
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return EnvelopeOnly(Status::OK());
    }
  }
  return EnvelopeOnly(Status::Internal("unhandled message type"));
}

std::string IdRepairServer::HandleRegisterGraph(std::string_view payload) {
  RegisterGraphRequest req;
  Status st = DecodeRegisterGraphRequest(payload, &req);
  if (!st.ok()) return EnvelopeOnly(st);
  std::istringstream graph_stream(req.graph_text);
  auto graph = ReadTransitionGraph(graph_stream);
  if (!graph.ok()) return EnvelopeOnly(graph.status());
  RepairOptions options = req.options;
  if (options_.exec_threads > 0) {
    options.exec.num_threads = options_.exec_threads;
  }
  auto version = registry_.Register(req.name, std::move(graph).value(),
                                    options, std::move(req.corpus));
  if (!version.ok()) return EnvelopeOnly(version.status());
  RegisterGraphReply reply;
  reply.version = *version;
  return Envelope(EncodeRegisterGraphReply(reply));
}

std::string IdRepairServer::HandleSnapshot(std::string_view payload) {
  SnapshotRequest req;
  Status st = DecodeSnapshotRequest(payload, &req);
  if (!st.ok()) return EnvelopeOnly(st);
  std::string dir = req.dir.empty() ? options_.snapshot_dir : req.dir;
  if (dir.empty()) {
    return EnvelopeOnly(Status::InvalidArgument(
        "snapshot needs a dir (none in request, no --snapshot-dir)"));
  }
  auto saved = registry_.SaveSnapshots(dir);
  if (!saved.ok()) return EnvelopeOnly(saved.status());
  SnapshotReply reply;
  reply.num_saved = *saved;
  reply.dir = dir;
  return Envelope(EncodeSnapshotReply(reply));
}

std::string IdRepairServer::HandleRepair(std::string_view payload) {
  RepairRequest req;
  Status st = DecodeRepairRequest(payload, &req);
  if (!st.ok()) return EnvelopeOnly(st);
  auto acquired = registry_.Acquire(req.name);
  if (!acquired.ok()) return EnvelopeOnly(acquired.status());
  BundlePtr bundle = std::move(acquired).value();

  if (req.use_corpus) {
    if (!req.batches.empty()) {
      return EnvelopeOnly(Status::InvalidArgument(
          "repair: corpus mode and inline batches are mutually exclusive"));
    }
    if (bundle->corpus == nullptr) {
      return EnvelopeOnly(Status::InvalidArgument(
          "repair: '" + req.name + "' has no resident corpus"));
    }
  }
  for (const auto& batch : req.batches) {
    for (const TrackingRecord& rec : batch) {
      if (rec.loc >= bundle->graph.num_locations()) {
        return EnvelopeOnly(Status::InvalidArgument(
            "repair: record references unknown location id " +
            std::to_string(rec.loc)));
      }
    }
  }

  size_t jobs = req.use_corpus ? 1 : req.batches.size();
  if (jobs == 0) return Envelope(EncodeRepairReply(RepairReply{}));

  // Admission: reserve slots atomically; shed the whole request when the
  // reservation overshoots the bound (a half-admitted batch list would
  // make per-batch output order depend on load).
  int64_t after =
      inflight_.fetch_add(static_cast<int64_t>(jobs),
                          std::memory_order_relaxed) +
      static_cast<int64_t>(jobs);
  if (after > static_cast<int64_t>(options_.max_inflight)) {
    inflight_.fetch_sub(static_cast<int64_t>(jobs),
                        std::memory_order_relaxed);
    rejected_.fetch_add(jobs, std::memory_order_relaxed);
    if (obs::Enabled()) {
      ServerMetrics::Get().rejected->Increment(jobs);
    }
    return EnvelopeOnly(Status::ResourceExhausted(
        "repair queue full: " + std::to_string(jobs) +
        " batches would exceed max_inflight=" +
        std::to_string(options_.max_inflight)));
  }
  admitted_.fetch_add(jobs, std::memory_order_relaxed);
  int64_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (after > peak &&
         !queue_peak_.compare_exchange_weak(peak, after,
                                            std::memory_order_relaxed)) {
  }
  if (obs::Enabled()) {
    ServerMetrics& m = ServerMetrics::Get();
    m.admitted->Increment(jobs);
    m.inflight->Set(inflight_.load(std::memory_order_relaxed));
    m.queue_peak->Set(queue_peak_.load(std::memory_order_relaxed));
  }

  RepairOptions options = bundle->options;
  if (options_.exec_threads > 0) {
    options.exec.num_threads = options_.exec_threads;
  }
  // Per-request budget beats the bundle's registered deadline beats the
  // server default — all three land on the engines' graceful-degradation
  // path, so an over-budget repair degrades instead of being killed.
  if (req.budget_ms > 0) {
    options.deadline_ms = req.budget_ms;
  } else if (options.deadline_ms == 0 && options_.default_deadline_ms > 0) {
    options.deadline_ms = options_.default_deadline_ms;
  }
  if (req.use_corpus) options.resident_lig = bundle->lig.get();

  IdRepairer core_engine(bundle->graph, options);
  PartitionedRepairer partitioned_engine(bundle->graph, options);
  const Repairer& engine =
      req.engine == 1 ? static_cast<const Repairer&>(partitioned_engine)
                      : static_cast<const Repairer&>(core_engine);

  std::vector<std::optional<Result<RepairResult>>> slots(jobs);
  std::vector<TrajectorySet> sets(jobs);
  if (req.use_corpus) {
    // The resident set itself — pointer identity is what lets the engine
    // adopt the snapshot-loaded LIG instead of rebuilding it.
  } else {
    for (size_t i = 0; i < jobs; ++i) {
      sets[i] = TrajectorySet::FromRecords(req.batches[i]);
    }
  }

  TaskGroup group(&ThreadPool::Default());
  for (size_t i = 0; i < jobs; ++i) {
    group.Spawn([this, i, &slots, &sets, &engine, &req, &bundle] {
      const TrajectorySet& set =
          req.use_corpus ? *bundle->corpus : sets[i];
      slots[i].emplace(engine.Repair(set));
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Enabled()) {
        ServerMetrics& m = ServerMetrics::Get();
        m.completed->Increment();
        m.inflight->Set(inflight_.load(std::memory_order_relaxed));
      }
      return Status::OK();  // per-batch errors travel in the slot
    });
  }
  (void)group.Wait();

  RepairReply reply;
  reply.batches.reserve(jobs);
  for (size_t i = 0; i < jobs; ++i) {
    BatchReply batch;
    if (!slots[i].has_value()) {
      batch.completion = Status::Internal("batch task never ran");
    } else if (!slots[i]->ok()) {
      batch.completion = slots[i]->status();
    } else {
      const RepairResult& result = **slots[i];
      batch.completion = result.completion;
      batch.repaired = FlattenSet(result.repaired);
      batch.num_candidates = result.candidates.size();
      batch.num_selected = result.selected.size();
      batch.num_rewrites = result.rewrites.size();
      batch.total_effectiveness = result.total_effectiveness;
      batch.seconds_total = result.stats.seconds_total;
    }
    reply.batches.push_back(std::move(batch));
  }
  return Envelope(EncodeRepairReply(reply));
}

std::string IdRepairServer::HandleStats(std::string_view payload) {
  StatsRequest req;
  Status st = DecodeStatsRequest(payload, &req);
  if (!st.ok()) return EnvelopeOnly(st);
  StatsReply reply;
  reply.entries = registry_.List();
  reply.admission = admission();
  if (req.include_prometheus) {
    reply.prometheus = obs::MetricsRegistry::Global().RenderPrometheus(true);
  }
  return Envelope(EncodeStatsReply(reply));
}

}  // namespace server
}  // namespace idrepair
