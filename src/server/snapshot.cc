#include "server/snapshot.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "fault/failpoint.h"

namespace idrepair {
namespace server {

namespace {

// Section tags, strictly ascending in the payload.
constexpr uint32_t kSecMeta = 1;
constexpr uint32_t kSecVertices = 2;
constexpr uint32_t kSecEdges = 3;
constexpr uint32_t kSecMatrix = 4;
constexpr uint32_t kSecOptions = 5;
constexpr uint32_t kSecCorpus = 6;
constexpr uint32_t kSecLig = 7;

void AppendSection(std::string* payload, uint32_t tag,
                   const std::string& body) {
  BinaryWriter w(payload);
  w.U32(tag);
  w.U64(body.size());
  w.Raw(body.data(), body.size());
}

}  // namespace

std::vector<TrackingRecord> GraphBundle::CorpusRecords() const {
  std::vector<TrackingRecord> records;
  if (corpus == nullptr) return records;
  records.reserve(corpus->total_records());
  for (const Trajectory& t : corpus->trajectories()) {
    for (const TrajectoryPoint& p : t.points()) {
      records.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  return records;
}

namespace {

/// Validation and assembly shared by MakeBundle and the snapshot loader;
/// leaves `lig` null so the loader can adopt the persisted index instead
/// of building one it would immediately discard.
Result<std::shared_ptr<GraphBundle>> AssembleBundle(
    std::string name, uint64_t version, TransitionGraph graph,
    RepairOptions options, std::vector<TrackingRecord> corpus_records) {
  if (name.empty()) {
    return Status::InvalidArgument("bundle name must be non-empty");
  }
  if (version == 0) {
    return Status::InvalidArgument("bundle version must be >= 1");
  }
  IDREPAIR_RETURN_NOT_OK(graph.Validate());
  IDREPAIR_RETURN_NOT_OK(options.Validate());
  auto bundle = std::make_shared<GraphBundle>();
  bundle->name = std::move(name);
  bundle->version = version;
  bundle->graph = std::move(graph);
  // Pointers and process-local knobs never live in a bundle: bundles are
  // shared across connections and snapshots.
  options.similarity = nullptr;
  options.resident_lig = nullptr;
  bundle->options = options;
  if (!corpus_records.empty()) {
    for (const TrackingRecord& rec : corpus_records) {
      if (rec.loc >= bundle->graph.num_locations()) {
        return Status::InvalidArgument(
            "corpus record references unknown location id " +
            std::to_string(rec.loc));
      }
    }
    bundle->corpus = std::make_unique<TrajectorySet>(
        TrajectorySet::FromRecords(corpus_records));
  }
  return bundle;
}

LengthIndexedGrids::Options LigOptionsOf(const RepairOptions& options) {
  LengthIndexedGrids::Options lig_opts;
  lig_opts.theta = options.theta;
  lig_opts.eta = options.eta;
  lig_opts.time_bin = options.time_bin;
  return lig_opts;
}

}  // namespace

Result<BundlePtr> MakeBundle(std::string name, uint64_t version,
                             TransitionGraph graph, RepairOptions options,
                             std::vector<TrackingRecord> corpus_records) {
  auto assembled = AssembleBundle(std::move(name), version, std::move(graph),
                                  options, std::move(corpus_records));
  IDREPAIR_RETURN_NOT_OK(assembled.status());
  std::shared_ptr<GraphBundle> bundle = std::move(assembled).value();
  if (bundle->corpus != nullptr) {
    bundle->lig = std::make_unique<LengthIndexedGrids>(
        *bundle->corpus, LigOptionsOf(bundle->options));
  }
  return BundlePtr(std::move(bundle));
}

void EncodeRepairOptions(BinaryWriter* w, const RepairOptions& options) {
  w->U64(options.theta);
  w->I64(options.eta);
  w->U64(options.zeta);
  w->F64(options.lambda);
  w->I64(options.time_bin);
  w->U8(options.use_lig ? 1 : 0);
  w->U8(options.use_mcp_pruning ? 1 : 0);
  w->U8(static_cast<uint8_t>(options.selection));
  w->U32(options.rarity_base_offset);
  w->U8(static_cast<uint8_t>(options.rarity_aggregation));
  w->I64(options.deadline_ms);
}

void DecodeRepairOptions(BinaryReader* r, RepairOptions* options) {
  options->theta = static_cast<size_t>(r->U64());
  options->eta = r->I64();
  options->zeta = static_cast<size_t>(r->U64());
  options->lambda = r->F64();
  options->time_bin = r->I64();
  options->use_lig = r->U8() != 0;
  options->use_mcp_pruning = r->U8() != 0;
  uint8_t selection = r->U8();
  options->rarity_base_offset = r->U32();
  uint8_t rarity = r->U8();
  options->deadline_ms = r->I64();
  if (!r->ok()) return;
  if (selection > static_cast<uint8_t>(SelectionAlgorithm::kExact)) {
    r->Fail("options: unknown selection algorithm " +
            std::to_string(selection));
    return;
  }
  if (rarity > static_cast<uint8_t>(RarityAggregation::kMax)) {
    r->Fail("options: unknown rarity aggregation " + std::to_string(rarity));
    return;
  }
  options->selection = static_cast<SelectionAlgorithm>(selection);
  options->rarity_aggregation = static_cast<RarityAggregation>(rarity);
}

void EncodeRecords(BinaryWriter* w, const std::vector<TrackingRecord>& recs) {
  w->U64(recs.size());
  for (const TrackingRecord& rec : recs) {
    w->Str(rec.id);
    w->U32(rec.loc);
    w->I64(rec.ts);
  }
}

std::vector<TrackingRecord> DecodeRecords(BinaryReader* r) {
  std::vector<TrackingRecord> records;
  uint64_t count = r->U64();
  // A record is at least 16 bytes (4 id-length + 4 loc + 8 ts), so any
  // legitimate count is bounded by the bytes actually present.
  if (!r->ok() || count > r->remaining() / 16) {
    r->Fail("records: count " + std::to_string(count) +
            " exceeds buffer capacity");
    return records;
  }
  records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count && r->ok(); ++i) {
    TrackingRecord rec;
    rec.id = r->Str();
    rec.loc = r->U32();
    rec.ts = r->I64();
    records.push_back(std::move(rec));
  }
  return records;
}

std::string EncodeSnapshot(const GraphBundle& bundle) {
  std::string payload;
  const TransitionGraph& graph = bundle.graph;

  {
    std::string body;
    BinaryWriter w(&body);
    w.Str(bundle.name);
    w.U64(bundle.version);
    AppendSection(&payload, kSecMeta, body);
  }
  {
    std::string body;
    BinaryWriter w(&body);
    size_t n = graph.num_locations();
    w.U64(n);
    for (size_t i = 0; i < n; ++i) {
      w.Str(graph.LocationName(static_cast<LocationId>(i)));
    }
    w.U64(graph.entrances().size());
    for (LocationId loc : graph.entrances()) w.U32(loc);
    w.U64(graph.exits().size());
    for (LocationId loc : graph.exits()) w.U32(loc);
    AppendSection(&payload, kSecVertices, body);
  }
  {
    // Grouped by source in out-neighbor insertion order — the same edge
    // ordering convention as the text format, so rebuilding preserves
    // every per-vertex adjacency order and re-encoding is byte-identical.
    std::string body;
    BinaryWriter w(&body);
    w.U64(graph.num_edges());
    for (size_t from = 0; from < graph.num_locations(); ++from) {
      for (LocationId to : graph.OutNeighbors(static_cast<LocationId>(from))) {
        w.U32(static_cast<uint32_t>(from));
        w.U32(to);
      }
    }
    AppendSection(&payload, kSecEdges, body);
  }
  {
    std::string body;
    BinaryWriter w(&body);
    const DynamicBitset& matrix = graph.EdgeMatrix();
    w.U64(matrix.size());
    w.U64(matrix.words().size());
    for (uint64_t word : matrix.words()) w.U64(word);
    AppendSection(&payload, kSecMatrix, body);
  }
  {
    std::string body;
    BinaryWriter w(&body);
    EncodeRepairOptions(&w, bundle.options);
    AppendSection(&payload, kSecOptions, body);
  }
  if (bundle.corpus != nullptr) {
    {
      std::string body;
      BinaryWriter w(&body);
      EncodeRecords(&w, bundle.CorpusRecords());
      AppendSection(&payload, kSecCorpus, body);
    }
    {
      std::string body;
      BinaryWriter w(&body);
      LengthIndexedGrids::Parts parts = bundle.lig->ToParts();
      w.U64(parts.options.theta);
      w.I64(parts.options.eta);
      w.I64(parts.options.time_bin);
      w.I64(parts.base_time);
      w.U64(parts.num_bins);
      w.U64(parts.band);
      w.U64(parts.num_indexed);
      w.U64(parts.cell_offsets.size());
      for (uint32_t off : parts.cell_offsets) w.U32(off);
      w.U64(parts.cell_entries.size());
      for (TrajIndex entry : parts.cell_entries) w.U32(entry);
      AppendSection(&payload, kSecLig, body);
    }
  }

  std::string out;
  BinaryWriter header(&out);
  header.U32(kSnapshotMagic);
  header.U32(kSnapshotVersion);
  header.U64(payload.size());
  header.U32(Crc32(payload));
  header.U32(0);  // reserved
  out.append(payload);
  return out;
}

Result<BundlePtr> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    return Status::Corruption("snapshot truncated: " +
                              std::to_string(bytes.size()) +
                              " bytes is smaller than the header");
  }
  BinaryReader header(bytes.data(), kSnapshotHeaderBytes);
  uint32_t magic = header.U32();
  uint32_t version = header.U32();
  uint64_t payload_size = header.U64();
  uint32_t payload_crc = header.U32();
  header.U32();  // reserved
  if (magic != kSnapshotMagic) {
    return Status::Corruption("snapshot: bad magic");
  }
  if (version != kSnapshotVersion) {
    return Status::Corruption("snapshot: unsupported version " +
                              std::to_string(version));
  }
  std::string_view payload = bytes.substr(kSnapshotHeaderBytes);
  if (payload_size != payload.size()) {
    return Status::Corruption(
        payload.size() < payload_size
            ? "snapshot truncated: payload shorter than header declares"
            : "snapshot: trailing garbage after declared payload");
  }
  if (Crc32(payload) != payload_crc) {
    return Status::Corruption("snapshot: payload checksum mismatch");
  }

  // Section scan.
  std::string name;
  uint64_t bundle_version = 0;
  std::vector<std::string> location_names;
  std::vector<LocationId> entrances, exits;
  std::vector<std::pair<LocationId, LocationId>> edges;
  uint64_t matrix_bits = 0;
  std::vector<uint64_t> matrix_words;
  RepairOptions options;
  std::vector<TrackingRecord> corpus_records;
  bool have_corpus = false;
  bool have_lig = false;
  LengthIndexedGrids::Parts lig_parts;

  BinaryReader r(payload);
  uint32_t last_tag = 0;
  uint32_t seen_mask = 0;
  while (r.ok() && r.remaining() > 0) {
    uint32_t tag = r.U32();
    uint64_t len = r.U64();
    if (!r.ok()) break;
    if (tag <= last_tag) {
      return Status::Corruption("snapshot: section tags out of order");
    }
    last_tag = tag;
    if (tag > kSecLig) {
      return Status::Corruption("snapshot: unknown section tag " +
                                std::to_string(tag));
    }
    if (!r.Need(static_cast<size_t>(len))) break;
    BinaryReader body(payload.data() + r.position(),
                      static_cast<size_t>(len));
    r.Skip(static_cast<size_t>(len));
    seen_mask |= 1u << tag;
    switch (tag) {
      case kSecMeta:
        name = body.Str();
        bundle_version = body.U64();
        break;
      case kSecVertices: {
        uint64_t n = body.U64();
        if (!body.ok() || n > body.remaining() / 4) {
          return Status::Corruption("snapshot: vertex count overflows body");
        }
        location_names.reserve(static_cast<size_t>(n));
        for (uint64_t i = 0; i < n && body.ok(); ++i) {
          location_names.push_back(body.Str());
        }
        for (auto* side : {&entrances, &exits}) {
          uint64_t count = body.U64();
          if (!body.ok() || count > body.remaining() / 4) {
            return Status::Corruption(
                "snapshot: entrance/exit count overflows body");
          }
          side->reserve(static_cast<size_t>(count));
          for (uint64_t i = 0; i < count && body.ok(); ++i) {
            side->push_back(body.U32());
          }
        }
        break;
      }
      case kSecEdges: {
        uint64_t m = body.U64();
        if (!body.ok() || m > body.remaining() / 8) {
          return Status::Corruption("snapshot: edge count overflows body");
        }
        edges.reserve(static_cast<size_t>(m));
        for (uint64_t i = 0; i < m && body.ok(); ++i) {
          LocationId from = body.U32();
          LocationId to = body.U32();
          edges.emplace_back(from, to);
        }
        break;
      }
      case kSecMatrix: {
        matrix_bits = body.U64();
        uint64_t num_words = body.U64();
        if (!body.ok() || num_words > body.remaining() / 8) {
          return Status::Corruption(
              "snapshot: matrix word count overflows body");
        }
        matrix_words.reserve(static_cast<size_t>(num_words));
        for (uint64_t i = 0; i < num_words && body.ok(); ++i) {
          matrix_words.push_back(body.U64());
        }
        break;
      }
      case kSecOptions:
        DecodeRepairOptions(&body, &options);
        break;
      case kSecCorpus:
        corpus_records = DecodeRecords(&body);
        have_corpus = true;
        break;
      case kSecLig: {
        lig_parts.options.theta = static_cast<size_t>(body.U64());
        lig_parts.options.eta = body.I64();
        lig_parts.options.time_bin = body.I64();
        lig_parts.base_time = body.I64();
        lig_parts.num_bins = body.U64();
        lig_parts.band = body.U64();
        lig_parts.num_indexed = body.U64();
        uint64_t num_offsets = body.U64();
        if (!body.ok() || num_offsets > body.remaining() / 4) {
          return Status::Corruption(
              "snapshot: lig offset count overflows body");
        }
        lig_parts.cell_offsets.reserve(static_cast<size_t>(num_offsets));
        for (uint64_t i = 0; i < num_offsets && body.ok(); ++i) {
          lig_parts.cell_offsets.push_back(body.U32());
        }
        uint64_t num_entries = body.U64();
        if (!body.ok() || num_entries > body.remaining() / 4) {
          return Status::Corruption(
              "snapshot: lig entry count overflows body");
        }
        lig_parts.cell_entries.reserve(static_cast<size_t>(num_entries));
        for (uint64_t i = 0; i < num_entries && body.ok(); ++i) {
          lig_parts.cell_entries.push_back(body.U32());
        }
        have_lig = true;
        break;
      }
      default:
        break;  // unreachable: tag range checked above
    }
    IDREPAIR_RETURN_NOT_OK(body.ExpectDone());
  }
  IDREPAIR_RETURN_NOT_OK(r.status());

  constexpr uint32_t kRequired = (1u << kSecMeta) | (1u << kSecVertices) |
                                 (1u << kSecEdges) | (1u << kSecMatrix) |
                                 (1u << kSecOptions);
  if ((seen_mask & kRequired) != kRequired) {
    return Status::Corruption("snapshot: missing required section");
  }
  if (have_lig && !have_corpus) {
    return Status::Corruption("snapshot: lig section without corpus section");
  }

  // Rebuild the graph from the vertex table and edge list.
  TransitionGraph graph;
  for (size_t i = 0; i < location_names.size(); ++i) {
    LocationId id = graph.AddLocation(location_names[i]);
    if (id != static_cast<LocationId>(i)) {
      return Status::Corruption("snapshot: duplicate location name '" +
                                location_names[i] + "'");
    }
  }
  for (const auto& [from, to] : edges) {
    if (from >= graph.num_locations() || to >= graph.num_locations()) {
      return Status::Corruption("snapshot: edge references unknown location");
    }
    IDREPAIR_RETURN_NOT_OK(graph.AddEdge(from, to));
  }
  if (graph.num_edges() != edges.size()) {
    return Status::Corruption("snapshot: duplicate edges in edge section");
  }
  for (LocationId loc : entrances) {
    if (loc >= graph.num_locations()) {
      return Status::Corruption("snapshot: entrance references unknown location");
    }
    IDREPAIR_RETURN_NOT_OK(graph.MarkEntrance(loc));
  }
  for (LocationId loc : exits) {
    if (loc >= graph.num_locations()) {
      return Status::Corruption("snapshot: exit references unknown location");
    }
    IDREPAIR_RETURN_NOT_OK(graph.MarkExit(loc));
  }

  // Cross-check the stored edge matrix against the one the rebuilt graph
  // maintains: catches payload tampering that kept the CRC consistent.
  const DynamicBitset& matrix = graph.EdgeMatrix();
  if (matrix.size() != matrix_bits || matrix.words() != matrix_words) {
    return Status::Corruption(
        "snapshot: edge matrix cross-check failed (matrix section disagrees "
        "with edge list)");
  }

  auto assembled = AssembleBundle(std::move(name), bundle_version,
                                  std::move(graph), options,
                                  std::move(corpus_records));
  if (!assembled.ok()) {
    return Status::Corruption("snapshot: " + assembled.status().message());
  }
  std::shared_ptr<GraphBundle> bundle = std::move(assembled).value();

  if (have_lig) {
    // Load-not-rebuild: adopt the persisted index (validated structurally
    // by FromParts) instead of rebuilding it from the corpus.
    if (bundle->corpus == nullptr) {
      return Status::Corruption("snapshot: lig section but empty corpus");
    }
    if (lig_parts.options.theta != bundle->options.theta ||
        lig_parts.options.eta != bundle->options.eta ||
        lig_parts.options.time_bin != bundle->options.time_bin) {
      return Status::Corruption(
          "snapshot: lig section options disagree with bundle options");
    }
    auto lig = LengthIndexedGrids::FromParts(*bundle->corpus,
                                             std::move(lig_parts));
    if (!lig.ok()) {
      return Status::Corruption("snapshot: " + lig.status().message());
    }
    bundle->lig = std::move(lig).value();
  } else if (bundle->corpus != nullptr) {
    // Pre-lig-section snapshots of a corpus-bearing bundle do not occur in
    // files this code writes, but decoding stays total: rebuild.
    bundle->lig = std::make_unique<LengthIndexedGrids>(
        *bundle->corpus, LigOptionsOf(bundle->options));
  }
  return BundlePtr(std::move(bundle));
}

Status WriteSnapshotFile(const std::string& path, const GraphBundle& bundle) {
  IDREPAIR_FAULT_INJECT("io.snapshot.save");
  std::string bytes = EncodeSnapshot(bundle);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<BundlePtr> ReadSnapshotFile(const std::string& path) {
  IDREPAIR_FAULT_INJECT("io.snapshot.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IoError("read error on '" + path + "'");
  }
  std::string bytes = std::move(buffer).str();
  auto decoded = DecodeSnapshot(bytes);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  path + ": " + decoded.status().message());
  }
  return decoded;
}

}  // namespace server
}  // namespace idrepair
