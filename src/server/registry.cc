#include "server/registry.h"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <utility>

namespace idrepair {
namespace server {

namespace fs = std::filesystem;

Status GraphRegistry::ValidateName(const std::string& name) {
  if (name.empty() || name.size() > 128) {
    return Status::InvalidArgument(
        "registry name must be 1..128 characters");
  }
  if (name.front() == '.') {
    return Status::InvalidArgument("registry name must not start with '.'");
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "registry name '" + name +
          "' contains characters outside [A-Za-z0-9._-]");
    }
  }
  return Status::OK();
}

std::string GraphRegistry::SnapshotFileName(const std::string& name) {
  return name + ".idrs";
}

Result<uint64_t> GraphRegistry::Register(
    std::string name, TransitionGraph graph, RepairOptions options,
    std::vector<TrackingRecord> corpus_records) {
  IDREPAIR_RETURN_NOT_OK(ValidateName(name));
  std::unique_lock lock(mu_);
  uint64_t version = 1;
  auto it = entries_.find(name);
  if (it != entries_.end()) version = it->second->version + 1;
  auto bundle = MakeBundle(name, version, std::move(graph), options,
                           std::move(corpus_records));
  IDREPAIR_RETURN_NOT_OK(bundle.status());
  entries_[std::move(name)] = std::move(bundle).value();
  return version;
}

Status GraphRegistry::Insert(BundlePtr bundle) {
  if (bundle == nullptr) {
    return Status::InvalidArgument("cannot insert a null bundle");
  }
  IDREPAIR_RETURN_NOT_OK(ValidateName(bundle->name));
  std::unique_lock lock(mu_);
  auto it = entries_.find(bundle->name);
  if (it != entries_.end() && it->second->version >= bundle->version) {
    return Status::OK();  // keep-newest: stale snapshots never roll back
  }
  entries_[bundle->name] = std::move(bundle);
  return Status::OK();
}

Result<BundlePtr> GraphRegistry::Acquire(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no registered graph named '" + name + "'");
  }
  return it->second;
}

std::vector<GraphRegistry::EntryInfo> GraphRegistry::List() const {
  std::shared_lock lock(mu_);
  std::vector<EntryInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, bundle] : entries_) {
    EntryInfo info;
    info.name = name;
    info.version = bundle->version;
    info.num_locations = bundle->graph.num_locations();
    info.num_edges = bundle->graph.num_edges();
    info.corpus_trajectories =
        bundle->corpus != nullptr ? bundle->corpus->size() : 0;
    info.lig_indexed = bundle->lig != nullptr ? bundle->lig->num_indexed() : 0;
    info.use_count = bundle.use_count() - 1;  // exclude the registry's own
    infos.push_back(std::move(info));
  }
  return infos;
}

size_t GraphRegistry::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

Result<size_t> GraphRegistry::SaveSnapshots(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot dir '" + dir +
                           "': " + ec.message());
  }
  // Pin the current epoch of every entry, then write off-lock: snapshot
  // I/O must never block Acquire().
  std::vector<BundlePtr> bundles;
  {
    std::shared_lock lock(mu_);
    bundles.reserve(entries_.size());
    for (const auto& [name, bundle] : entries_) bundles.push_back(bundle);
  }
  for (const BundlePtr& bundle : bundles) {
    fs::path path = fs::path(dir) / SnapshotFileName(bundle->name);
    IDREPAIR_RETURN_NOT_OK(WriteSnapshotFile(path.string(), *bundle));
  }
  return bundles.size();
}

Result<size_t> GraphRegistry::LoadDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IoError("snapshot dir '" + dir + "' is not a directory");
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".idrs") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IoError("cannot list snapshot dir '" + dir +
                           "': " + ec.message());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    auto bundle = ReadSnapshotFile(path);
    IDREPAIR_RETURN_NOT_OK(bundle.status());
    IDREPAIR_RETURN_NOT_OK(Insert(std::move(bundle).value()));
  }
  return paths.size();
}

}  // namespace server
}  // namespace idrepair
