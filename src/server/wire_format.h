#ifndef IDREPAIR_SERVER_WIRE_FORMAT_H_
#define IDREPAIR_SERVER_WIRE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace idrepair {
namespace server {

/// Little-endian binary encoding shared by the snapshot file format and the
/// wire protocol. Fixed-width integers are memcpy'd in little-endian byte
/// order (the only byte order this codebase targets); strings and blobs are
/// u32-length-prefixed.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

  void Raw(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }

 private:
  std::string* out_;
};

/// Sticky-error reader over a byte buffer: reads past the end (or an
/// oversized length prefix) latch a Corruption status and return zero
/// values. Callers check ok()/status() before trusting anything derived
/// from the parsed values — in particular before sizing allocations from a
/// parsed count (Need() bounds every count by the bytes actually present).
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}

  explicit BinaryReader(std::string_view buf)
      : BinaryReader(buf.data(), buf.size()) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() { return Fixed<uint32_t>(); }
  uint64_t U64() { return Fixed<uint64_t>(); }
  int64_t I64() { return Fixed<int64_t>(); }
  double F64() { return Fixed<double>(); }

  std::string Str() {
    uint32_t len = U32();
    if (!Need(len)) return std::string();
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  /// True iff at least `n` more bytes exist. The guard callers use before
  /// turning a parsed element count into an allocation: a count can never
  /// legitimately exceed remaining().
  bool Need(size_t n) {
    if (!status_.ok()) return false;
    if (size_ - pos_ < n) {
      status_ = Status::Corruption("truncated buffer: wanted " +
                                   std::to_string(n) + " bytes, have " +
                                   std::to_string(size_ - pos_));
      return false;
    }
    return true;
  }

  /// Skips `n` bytes (unknown/ignored payload regions).
  void Skip(size_t n) {
    if (Need(n)) pos_ += n;
  }

  size_t remaining() const { return status_.ok() ? size_ - pos_ : 0; }
  size_t position() const { return pos_; }
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Latches an application-level decode error (bad enum value, failed
  /// invariant) into the same channel as truncation.
  void Fail(std::string message) {
    if (status_.ok()) status_ = Status::Corruption(std::move(message));
  }

  /// OK iff the buffer parsed cleanly and was consumed exactly.
  Status ExpectDone() {
    if (!status_.ok()) return status_;
    if (pos_ != size_) {
      return Status::Corruption("trailing garbage: " +
                                std::to_string(size_ - pos_) +
                                " unconsumed bytes");
    }
    return Status::OK();
  }

 private:
  template <typename T>
  T Fixed() {
    if (!Need(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace server
}  // namespace idrepair

#endif  // IDREPAIR_SERVER_WIRE_FORMAT_H_
