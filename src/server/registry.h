#ifndef IDREPAIR_SERVER_REGISTRY_H_
#define IDREPAIR_SERVER_REGISTRY_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/snapshot.h"

namespace idrepair {
namespace server {

/// The daemon's multi-tenant graph store: named, versioned, immutable
/// GraphBundles behind a shared/exclusive lock.
///
/// ### Epoch-style replacement
/// Entries are shared_ptr<const GraphBundle>. Acquire() takes the shared
/// lock just long enough to copy the pointer; a repair then runs entirely
/// against its acquired bundle, off-lock. Re-registering a name swaps the
/// map slot under the exclusive lock and bumps the version — in-flight
/// repairs keep their old bundle alive through their shared_ptr and finish
/// on the version they started with; the last holder frees it. There is no
/// quiescing, no generation counter to wait on, and no way for a reader to
/// observe a half-replaced entry.
class GraphRegistry {
 public:
  /// One row of List(): identification plus enough shape/refcount data for
  /// the Stats request.
  struct EntryInfo {
    std::string name;
    uint64_t version = 0;
    size_t num_locations = 0;
    size_t num_edges = 0;
    size_t corpus_trajectories = 0;
    size_t lig_indexed = 0;
    /// Outstanding bundle references beyond the registry's own (in-flight
    /// repairs still pinning this or an older epoch are not counted here —
    /// this is the *current* bundle's use count).
    long use_count = 0;
  };

  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Registers (or replaces) an entry, assigning version
  /// previous_version + 1 (1 for a new name). Building the bundle — LIG
  /// included — happens under the exclusive lock; registration is the
  /// rare admin path, repairs are the hot one.
  Result<uint64_t> Register(std::string name, TransitionGraph graph,
                            RepairOptions options,
                            std::vector<TrackingRecord> corpus_records);

  /// Inserts an already-built bundle (the snapshot-load path), keeping the
  /// bundle's stored version. An existing entry is replaced only when the
  /// incoming version is strictly newer; an equal-or-older incoming bundle
  /// is ignored (OK), so loading a stale snapshot dir cannot roll back a
  /// live registry.
  Status Insert(BundlePtr bundle);

  /// Pins and returns the current bundle for `name`.
  Result<BundlePtr> Acquire(const std::string& name) const;

  /// Name-sorted listing.
  std::vector<EntryInfo> List() const;

  size_t size() const;

  /// Writes one snapshot file per entry into `dir` (created if missing),
  /// named SnapshotFileName(name). Returns the number written.
  Result<size_t> SaveSnapshots(const std::string& dir) const;

  /// Loads every *.idrs file in `dir` (sorted order) through Insert().
  /// Returns the number of bundles loaded; any unreadable or corrupt file
  /// fails the whole load — a daemon must not silently start with a
  /// partial registry.
  Result<size_t> LoadDir(const std::string& dir);

  /// Tenant names double as snapshot file stems, so they are restricted to
  /// [A-Za-z0-9._-]{1,128} with no leading dot.
  static Status ValidateName(const std::string& name);

  /// "<name>.idrs".
  static std::string SnapshotFileName(const std::string& name);

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, BundlePtr> entries_;
};

}  // namespace server
}  // namespace idrepair

#endif  // IDREPAIR_SERVER_REGISTRY_H_
