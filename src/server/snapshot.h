#ifndef IDREPAIR_SERVER_SNAPSHOT_H_
#define IDREPAIR_SERVER_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/transition_graph.h"
#include "lig/length_indexed_grids.h"
#include "repair/options.h"
#include "server/wire_format.h"
#include "traj/tracking_record.h"
#include "traj/trajectory_set.h"

namespace idrepair {
namespace server {

/// One registry entry: a named transition graph, the repair options it was
/// registered with, and (optionally) a resident corpus with its prebuilt
/// LIG index. Bundles are immutable after construction and shared through
/// shared_ptr<const GraphBundle> — the epoch mechanism of GraphRegistry:
/// replacing an entry swaps the pointer, and in-flight repairs holding the
/// old bundle finish on the old version.
struct GraphBundle {
  std::string name;
  /// Registry epoch of this bundle, monotonically increasing per name.
  uint64_t version = 1;
  TransitionGraph graph;
  /// The registered defaults. `similarity`, `exec`, `obs`, and
  /// `resident_lig` are process-local and never persisted; a snapshot
  /// round-trip resets them to defaults.
  RepairOptions options;
  /// Resident corpus (heap-allocated so the LIG's back-reference survives
  /// bundle moves), or null when the tenant registered a graph only.
  std::unique_ptr<TrajectorySet> corpus;
  /// LIG index over *corpus with the bundle's θ/η/time_bin; null iff
  /// corpus is null. Loaded from snapshot sections at startup — not
  /// rebuilt — and handed to engines via RepairOptions::resident_lig.
  std::unique_ptr<LengthIndexedGrids> lig;

  /// Flattens the resident corpus back to records, in trajectory order.
  /// Deterministic, and FromRecords of the result reproduces the corpus —
  /// the identity the snapshot byte-stability tests lean on.
  std::vector<TrackingRecord> CorpusRecords() const;
};

using BundlePtr = std::shared_ptr<const GraphBundle>;

/// Validates and assembles a bundle: graph structural sanity, option
/// sanity, corpus record location bounds; builds the corpus set and its
/// LIG index when `corpus_records` is non-empty.
Result<BundlePtr> MakeBundle(std::string name, uint64_t version,
                             TransitionGraph graph, RepairOptions options,
                             std::vector<TrackingRecord> corpus_records);

// ---- Snapshot file format (v1) -------------------------------------
//
// A snapshot is a 24-byte header followed by a CRC-protected payload:
//
//   u32 magic   'IDRS' (0x53524449 little-endian)
//   u32 version  1
//   u64 payload_size        (exact byte count; no trailing garbage)
//   u32 payload_crc32       (IEEE CRC-32 of the payload bytes)
//   u32 reserved            (0)
//
// The payload is a sequence of tagged sections, each `u32 tag, u64 len,
// len bytes`, in strictly ascending tag order:
//
//   1 meta      entry name, registry version
//   2 vertices  location names (id order), entrances/exits (marking order)
//   3 edges     (from, to) pairs grouped by source in insertion order
//   4 matrix    the packed bitset edge matrix — cross-checked on load
//               against the matrix rebuilt from section 3
//   5 options   the registered RepairOptions (persistable fields only)
//   6 corpus    resident corpus records (optional)
//   7 lig       LengthIndexedGrids::Parts over the corpus (optional,
//               requires section 6) — the load-not-rebuild payload
//
// Loaders reject bad magic, unknown versions, truncation, trailing bytes,
// CRC mismatches, unknown or out-of-order sections, and any structural
// inconsistency between sections, always with a clean Status.

inline constexpr uint32_t kSnapshotMagic = 0x53524449u;  // "IDRS"
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotHeaderBytes = 24;

/// Serializes a bundle to snapshot bytes.
std::string EncodeSnapshot(const GraphBundle& bundle);

/// Parses and fully validates snapshot bytes.
Result<BundlePtr> DecodeSnapshot(std::string_view bytes);

/// EncodeSnapshot + atomic-enough file write (failpoint: io.snapshot.save).
Status WriteSnapshotFile(const std::string& path, const GraphBundle& bundle);

/// Whole-file read + DecodeSnapshot (failpoint: io.snapshot.load).
Result<BundlePtr> ReadSnapshotFile(const std::string& path);

// ---- Shared field encoders ------------------------------------------
// Reused by the wire protocol so a record or option block has exactly one
// byte-level encoding in the system.

void EncodeRepairOptions(BinaryWriter* w, const RepairOptions& options);
/// Decodes into *options (persistable fields only; pointers and exec/obs
/// keep their current values). Latches decode errors on the reader.
void DecodeRepairOptions(BinaryReader* r, RepairOptions* options);

void EncodeRecords(BinaryWriter* w, const std::vector<TrackingRecord>& recs);
std::vector<TrackingRecord> DecodeRecords(BinaryReader* r);

}  // namespace server
}  // namespace idrepair

#endif  // IDREPAIR_SERVER_SNAPSHOT_H_
