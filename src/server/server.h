#ifndef IDREPAIR_SERVER_SERVER_H_
#define IDREPAIR_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"
#include "server/registry.h"

namespace idrepair {
namespace server {

struct ServerOptions {
  /// Listen target ("unix:<path>", "tcp:<host>:<port>", "tcp:<port>";
  /// tcp port 0 binds an ephemeral port, reported by address()).
  std::string listen = "tcp:127.0.0.1:0";
  /// Snapshot directory loaded (via GraphRegistry::LoadDir) before the
  /// server accepts connections — the load-not-rebuild startup path.
  /// Empty starts with an empty registry.
  std::string load_dir;
  /// Default directory of the Snapshot request; empty makes an explicit
  /// dir in the request mandatory.
  std::string snapshot_dir;
  /// Admission bound: total repair batches admitted but not yet finished
  /// (queued on the exec pool + running). Requests that would push the
  /// count past this are shed whole with ResourceExhausted — the queue
  /// must not grow without bound under overload.
  uint64_t max_inflight = 64;
  /// deadline_ms applied to repairs whose request carries no budget and
  /// whose bundle registered none. 0 = unbounded.
  int64_t default_deadline_ms = 0;
  /// Thread count handed to the repair engines (RepairOptions::exec);
  /// 0 = the engines' own default resolution.
  int exec_threads = 0;
};

/// `idrepaird`: the long-running repair daemon. One acceptor thread plus
/// one thread per live connection; repair batches are dispatched onto the
/// process-wide exec pool (ThreadPool::Default()) via TaskGroup, so the
/// repair parallelism and its determinism guarantees are exactly the
/// library's. All socket loops poll with short timeouts against an atomic
/// stop flag, which keeps Stop() prompt and TSan-clean.
class IdRepairServer {
 public:
  /// Loads options.load_dir (if set), binds, listens, and starts the
  /// acceptor. On return the server is reachable at address().
  static Result<std::unique_ptr<IdRepairServer>> Start(ServerOptions options);

  /// Stops accepting, wakes every connection thread, joins them, closes
  /// the listener (unlinking a Unix socket path). Idempotent. Does NOT
  /// write a snapshot: persistence is an explicit Snapshot request, so a
  /// destructor-level "kill" genuinely simulates a crash.
  void Stop();

  ~IdRepairServer();

  IdRepairServer(const IdRepairServer&) = delete;
  IdRepairServer& operator=(const IdRepairServer&) = delete;

  /// The bound address in ParseAddress form (ephemeral tcp port resolved).
  const std::string& address() const { return address_; }

  GraphRegistry& registry() { return registry_; }
  const ServerOptions& options() const { return options_; }

  /// Blocks until a Shutdown request arrives or `timeout_ms` passes
  /// (negative = forever). True when shutdown was requested. The caller
  /// that owns the server then calls Stop() — request handling never
  /// destroys the server out from under its own threads.
  bool WaitForShutdownRequest(int64_t timeout_ms = -1);

  AdmissionStats admission() const;

 private:
  explicit IdRepairServer(ServerOptions options);

  Status Listen();
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Dispatches one decoded request; returns the reply payload (status
  /// envelope included).
  std::string HandleRequest(const Frame& frame);
  std::string HandleRegisterGraph(std::string_view payload);
  std::string HandleSnapshot(std::string_view payload);
  std::string HandleRepair(std::string_view payload);
  std::string HandleStats(std::string_view payload);

  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  const ServerOptions options_;
  std::string address_;
  GraphRegistry registry_;

  int listen_fd_ = -1;
  std::string unix_path_;  // unlinked on Stop()
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;  // joined by Stop()

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  // Admission control. `inflight_` counts admitted-but-unfinished batches;
  // `queue_peak_` its high-water mark.
  std::atomic<int64_t> inflight_{0};
  std::atomic<int64_t> queue_peak_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
};

}  // namespace server
}  // namespace idrepair

#endif  // IDREPAIR_SERVER_SERVER_H_
