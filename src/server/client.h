#ifndef IDREPAIR_SERVER_CLIENT_H_
#define IDREPAIR_SERVER_CLIENT_H_

#include <string>

#include "common/status.h"
#include "server/protocol.h"

namespace idrepair {
namespace server {

/// Blocking client for one idrepaird connection. One request is in flight
/// at a time (the protocol is strict request/reply per connection); open
/// several clients for concurrent requests. Not thread-safe.
class RepairClient {
 public:
  /// Connects to "unix:<path>" / "tcp:host:port" / "tcp:port".
  static Result<RepairClient> Connect(const std::string& address);

  ~RepairClient();
  RepairClient(RepairClient&& other) noexcept;
  RepairClient& operator=(RepairClient&& other) noexcept;
  RepairClient(const RepairClient&) = delete;
  RepairClient& operator=(const RepairClient&) = delete;

  Result<RegisterGraphReply> RegisterGraph(const RegisterGraphRequest& req);
  Result<SnapshotReply> Snapshot(const SnapshotRequest& req);
  Result<RepairReply> Repair(const RepairRequest& req);
  Result<StatsReply> Stats(const StatsRequest& req);
  /// Asks the daemon to shut down. OK means the daemon acknowledged and
  /// will stop once its owner observes the request.
  Status Shutdown();

 private:
  explicit RepairClient(int fd) : fd_(fd) {}

  /// Sends one frame and reads the echoed reply; returns the reply payload
  /// (status envelope still at the front).
  Result<std::string> RoundTrip(MsgType type, const std::string& payload);

  int fd_ = -1;
};

}  // namespace server
}  // namespace idrepair

#endif  // IDREPAIR_SERVER_CLIENT_H_
