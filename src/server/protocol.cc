#include "server/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "server/snapshot.h"

namespace idrepair {
namespace server {

namespace {

constexpr int kPollIntervalMs = 50;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Reads exactly `n` bytes, polling so `cancelled` is honored. Returns
/// IoError on EOF or socket error, Cancelled when the predicate trips.
Status ReadFull(int fd, char* buf, size_t n,
                const std::function<bool()>& cancelled) {
  size_t got = 0;
  while (got < n) {
    if (cancelled && cancelled()) {
      return Status::Cancelled("read abandoned: shutdown in progress");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("poll"));
    }
    if (ready == 0) continue;  // timeout tick: recheck cancellation
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("recv"));
    }
    if (r == 0) {
      return Status::IoError("connection closed by peer");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("send"));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds the 64 MiB bound");
  }
  std::string header;
  BinaryWriter w(&header);
  w.U32(kFrameMagic);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U8(static_cast<uint8_t>(type));
  IDREPAIR_RETURN_NOT_OK(WriteFull(fd, header.data(), header.size()));
  return WriteFull(fd, payload.data(), payload.size());
}

Result<Frame> ReadFrame(int fd, const std::function<bool()>& cancelled) {
  char header[kFrameHeaderBytes];
  IDREPAIR_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header), cancelled));
  BinaryReader r(header, sizeof(header));
  uint32_t magic = r.U32();
  uint32_t len = r.U32();
  uint8_t type = r.U8();
  if (magic != kFrameMagic) {
    return Status::Corruption("frame: bad magic");
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame: declared payload exceeds 64 MiB bound");
  }
  if (type < static_cast<uint8_t>(MsgType::kRegisterGraph) ||
      type > static_cast<uint8_t>(MsgType::kShutdown)) {
    return Status::Corruption("frame: unknown message type " +
                              std::to_string(type));
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(len);
  if (len > 0) {
    IDREPAIR_RETURN_NOT_OK(ReadFull(fd, frame.payload.data(), len, cancelled));
  }
  return frame;
}

Result<Address> ParseAddress(const std::string& spec) {
  Address address;
  if (spec.rfind("unix:", 0) == 0) {
    address.is_unix = true;
    address.path = spec.substr(5);
    if (address.path.empty()) {
      return Status::InvalidArgument("unix address needs a socket path");
    }
    if (address.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    return address;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    std::string rest = spec.substr(4);
    std::string port_str = rest;
    size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      address.host = rest.substr(0, colon);
      port_str = rest.substr(colon + 1);
    }
    if (address.host == "localhost") address.host = "127.0.0.1";
    char* end = nullptr;
    long port = std::strtol(port_str.c_str(), &end, 10);
    if (port_str.empty() || end == nullptr || *end != '\0' || port < 0 ||
        port > 65535) {
      return Status::InvalidArgument("bad tcp port in address '" + spec +
                                     "'");
    }
    address.port = static_cast<uint16_t>(port);
    return address;
  }
  return Status::InvalidArgument(
      "address must be 'unix:<path>', 'tcp:<host>:<port>', or 'tcp:<port>'");
}

std::string FormatAddress(const Address& address) {
  if (address.is_unix) return "unix:" + address.path;
  return "tcp:" + address.host + ":" + std::to_string(address.port);
}

Result<int> DialAddress(const Address& address) {
  int fd = -1;
  if (address.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError(Errno("socket(unix)"));
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(),
                 sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      Status st = Status::IoError(Errno("connect " + FormatAddress(address)));
      ::close(fd);
      return st;
    }
    return fd;
  }
  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket(tcp)"));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(address.port);
  if (::inet_pton(AF_INET, address.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("tcp host must be a numeric IPv4 address");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    Status st = Status::IoError(Errno("connect " + FormatAddress(address)));
    ::close(fd);
    return st;
  }
  return fd;
}

void EncodeStatus(BinaryWriter* w, const Status& status) {
  w->U32(static_cast<uint32_t>(status.code()));
  w->Str(status.message());
}

Status DecodeStatus(BinaryReader* r) {
  uint32_t code = r->U32();
  std::string message = r->Str();
  if (!r->ok()) return Status::OK();  // the reader carries the real error
  if (code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    r->Fail("status: unknown code " + std::to_string(code));
    return Status::OK();
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

// ---- RegisterGraph ---------------------------------------------------

std::string EncodeRegisterGraphRequest(const RegisterGraphRequest& req) {
  std::string out;
  BinaryWriter w(&out);
  w.Str(req.name);
  w.Str(req.graph_text);
  EncodeRepairOptions(&w, req.options);
  w.U8(req.corpus.empty() ? 0 : 1);
  if (!req.corpus.empty()) EncodeRecords(&w, req.corpus);
  return out;
}

Status DecodeRegisterGraphRequest(std::string_view bytes,
                                  RegisterGraphRequest* req) {
  BinaryReader r(bytes);
  req->name = r.Str();
  req->graph_text = r.Str();
  DecodeRepairOptions(&r, &req->options);
  uint8_t has_corpus = r.U8();
  if (r.ok() && has_corpus > 1) {
    r.Fail("register: bad corpus presence flag");
  }
  if (r.ok() && has_corpus == 1) req->corpus = DecodeRecords(&r);
  return r.ExpectDone();
}

std::string EncodeRegisterGraphReply(const RegisterGraphReply& reply) {
  std::string out;
  BinaryWriter w(&out);
  w.U64(reply.version);
  return out;
}

Status DecodeRegisterGraphReply(BinaryReader* r, RegisterGraphReply* reply) {
  reply->version = r->U64();
  return r->status();
}

// ---- Snapshot --------------------------------------------------------

std::string EncodeSnapshotRequest(const SnapshotRequest& req) {
  std::string out;
  BinaryWriter w(&out);
  w.Str(req.dir);
  return out;
}

Status DecodeSnapshotRequest(std::string_view bytes, SnapshotRequest* req) {
  BinaryReader r(bytes);
  req->dir = r.Str();
  return r.ExpectDone();
}

std::string EncodeSnapshotReply(const SnapshotReply& reply) {
  std::string out;
  BinaryWriter w(&out);
  w.U64(reply.num_saved);
  w.Str(reply.dir);
  return out;
}

Status DecodeSnapshotReply(BinaryReader* r, SnapshotReply* reply) {
  reply->num_saved = r->U64();
  reply->dir = r->Str();
  return r->status();
}

// ---- Repair ----------------------------------------------------------

std::string EncodeRepairRequest(const RepairRequest& req) {
  std::string out;
  BinaryWriter w(&out);
  w.Str(req.name);
  w.I64(req.budget_ms);
  w.U8(req.engine);
  w.U8(req.use_corpus ? 1 : 0);
  w.U32(static_cast<uint32_t>(req.batches.size()));
  for (const auto& batch : req.batches) EncodeRecords(&w, batch);
  return out;
}

Status DecodeRepairRequest(std::string_view bytes, RepairRequest* req) {
  BinaryReader r(bytes);
  req->name = r.Str();
  req->budget_ms = r.I64();
  req->engine = r.U8();
  uint8_t use_corpus = r.U8();
  uint32_t batch_count = r.U32();
  if (r.ok()) {
    if (req->engine > 1) r.Fail("repair: unknown engine selector");
    if (use_corpus > 1) r.Fail("repair: bad corpus flag");
    if (batch_count > r.remaining() / 8) {
      r.Fail("repair: batch count overflows payload");
    }
  }
  req->use_corpus = use_corpus == 1;
  for (uint32_t i = 0; i < batch_count && r.ok(); ++i) {
    req->batches.push_back(DecodeRecords(&r));
  }
  return r.ExpectDone();
}

std::string EncodeRepairReply(const RepairReply& reply) {
  std::string out;
  BinaryWriter w(&out);
  w.U32(static_cast<uint32_t>(reply.batches.size()));
  for (const BatchReply& batch : reply.batches) {
    EncodeStatus(&w, batch.completion);
    EncodeRecords(&w, batch.repaired);
    w.U64(batch.num_candidates);
    w.U64(batch.num_selected);
    w.U64(batch.num_rewrites);
    w.F64(batch.total_effectiveness);
    w.F64(batch.seconds_total);
  }
  return out;
}

Status DecodeRepairReply(BinaryReader* r, RepairReply* reply) {
  uint32_t count = r->U32();
  if (r->ok() && count > r->remaining() / 8) {
    r->Fail("repair reply: batch count overflows payload");
  }
  for (uint32_t i = 0; i < count && r->ok(); ++i) {
    BatchReply batch;
    batch.completion = DecodeStatus(r);
    batch.repaired = DecodeRecords(r);
    batch.num_candidates = r->U64();
    batch.num_selected = r->U64();
    batch.num_rewrites = r->U64();
    batch.total_effectiveness = r->F64();
    batch.seconds_total = r->F64();
    reply->batches.push_back(std::move(batch));
  }
  return r->status();
}

// ---- Stats -----------------------------------------------------------

std::string EncodeStatsRequest(const StatsRequest& req) {
  std::string out;
  BinaryWriter w(&out);
  w.U8(req.include_prometheus ? 1 : 0);
  return out;
}

Status DecodeStatsRequest(std::string_view bytes, StatsRequest* req) {
  BinaryReader r(bytes);
  uint8_t include = r.U8();
  if (r.ok() && include > 1) r.Fail("stats: bad prometheus flag");
  req->include_prometheus = include == 1;
  return r.ExpectDone();
}

std::string EncodeStatsReply(const StatsReply& reply) {
  std::string out;
  BinaryWriter w(&out);
  w.U32(static_cast<uint32_t>(reply.entries.size()));
  for (const GraphRegistry::EntryInfo& entry : reply.entries) {
    w.Str(entry.name);
    w.U64(entry.version);
    w.U64(entry.num_locations);
    w.U64(entry.num_edges);
    w.U64(entry.corpus_trajectories);
    w.U64(entry.lig_indexed);
    w.I64(entry.use_count);
  }
  w.U64(reply.admission.admitted);
  w.U64(reply.admission.rejected);
  w.U64(reply.admission.completed);
  w.I64(reply.admission.inflight);
  w.I64(reply.admission.queue_peak);
  w.U64(reply.admission.max_inflight);
  w.Str(reply.prometheus);
  return out;
}

Status DecodeStatsReply(BinaryReader* r, StatsReply* reply) {
  uint32_t count = r->U32();
  if (r->ok() && count > r->remaining() / 4) {
    r->Fail("stats reply: entry count overflows payload");
  }
  for (uint32_t i = 0; i < count && r->ok(); ++i) {
    GraphRegistry::EntryInfo entry;
    entry.name = r->Str();
    entry.version = r->U64();
    entry.num_locations = static_cast<size_t>(r->U64());
    entry.num_edges = static_cast<size_t>(r->U64());
    entry.corpus_trajectories = static_cast<size_t>(r->U64());
    entry.lig_indexed = static_cast<size_t>(r->U64());
    entry.use_count = static_cast<long>(r->I64());
    reply->entries.push_back(std::move(entry));
  }
  reply->admission.admitted = r->U64();
  reply->admission.rejected = r->U64();
  reply->admission.completed = r->U64();
  reply->admission.inflight = r->I64();
  reply->admission.queue_peak = r->I64();
  reply->admission.max_inflight = r->U64();
  reply->prometheus = r->Str();
  return r->status();
}

}  // namespace server
}  // namespace idrepair
