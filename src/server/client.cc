#include "server/client.h"

#include <unistd.h>

#include <utility>

namespace idrepair {
namespace server {

Result<RepairClient> RepairClient::Connect(const std::string& address) {
  auto parsed = ParseAddress(address);
  IDREPAIR_RETURN_NOT_OK(parsed.status());
  auto fd = DialAddress(*parsed);
  IDREPAIR_RETURN_NOT_OK(fd.status());
  return RepairClient(*fd);
}

RepairClient::~RepairClient() {
  if (fd_ >= 0) ::close(fd_);
}

RepairClient::RepairClient(RepairClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

RepairClient& RepairClient::operator=(RepairClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<std::string> RepairClient::RoundTrip(MsgType type,
                                            const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  IDREPAIR_RETURN_NOT_OK(WriteFrame(fd_, type, payload));
  auto frame = ReadFrame(fd_, nullptr);
  IDREPAIR_RETURN_NOT_OK(frame.status());
  if (frame->type != type) {
    return Status::Corruption("reply type does not echo the request");
  }
  return std::move(frame->payload);
}

namespace {

/// Peels the status envelope; on OK leaves `r` positioned at the typed body.
Status OpenEnvelope(BinaryReader* r) {
  Status remote = DecodeStatus(r);
  IDREPAIR_RETURN_NOT_OK(r->status());
  return remote;
}

}  // namespace

Result<RegisterGraphReply> RepairClient::RegisterGraph(
    const RegisterGraphRequest& req) {
  auto payload =
      RoundTrip(MsgType::kRegisterGraph, EncodeRegisterGraphRequest(req));
  IDREPAIR_RETURN_NOT_OK(payload.status());
  BinaryReader r(*payload);
  IDREPAIR_RETURN_NOT_OK(OpenEnvelope(&r));
  RegisterGraphReply reply;
  IDREPAIR_RETURN_NOT_OK(DecodeRegisterGraphReply(&r, &reply));
  IDREPAIR_RETURN_NOT_OK(r.ExpectDone());
  return reply;
}

Result<SnapshotReply> RepairClient::Snapshot(const SnapshotRequest& req) {
  auto payload = RoundTrip(MsgType::kSnapshot, EncodeSnapshotRequest(req));
  IDREPAIR_RETURN_NOT_OK(payload.status());
  BinaryReader r(*payload);
  IDREPAIR_RETURN_NOT_OK(OpenEnvelope(&r));
  SnapshotReply reply;
  IDREPAIR_RETURN_NOT_OK(DecodeSnapshotReply(&r, &reply));
  IDREPAIR_RETURN_NOT_OK(r.ExpectDone());
  return reply;
}

Result<RepairReply> RepairClient::Repair(const RepairRequest& req) {
  auto payload = RoundTrip(MsgType::kRepair, EncodeRepairRequest(req));
  IDREPAIR_RETURN_NOT_OK(payload.status());
  BinaryReader r(*payload);
  IDREPAIR_RETURN_NOT_OK(OpenEnvelope(&r));
  RepairReply reply;
  IDREPAIR_RETURN_NOT_OK(DecodeRepairReply(&r, &reply));
  IDREPAIR_RETURN_NOT_OK(r.ExpectDone());
  return reply;
}

Result<StatsReply> RepairClient::Stats(const StatsRequest& req) {
  auto payload = RoundTrip(MsgType::kStats, EncodeStatsRequest(req));
  IDREPAIR_RETURN_NOT_OK(payload.status());
  BinaryReader r(*payload);
  IDREPAIR_RETURN_NOT_OK(OpenEnvelope(&r));
  StatsReply reply;
  IDREPAIR_RETURN_NOT_OK(DecodeStatsReply(&r, &reply));
  IDREPAIR_RETURN_NOT_OK(r.ExpectDone());
  return reply;
}

Status RepairClient::Shutdown() {
  auto payload = RoundTrip(MsgType::kShutdown, std::string());
  IDREPAIR_RETURN_NOT_OK(payload.status());
  BinaryReader r(*payload);
  IDREPAIR_RETURN_NOT_OK(OpenEnvelope(&r));
  return r.ExpectDone();
}

}  // namespace server
}  // namespace idrepair
