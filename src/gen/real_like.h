#ifndef IDREPAIR_GEN_REAL_LIKE_H_
#define IDREPAIR_GEN_REAL_LIKE_H_

#include <cstdint>

#include "common/status.h"
#include "gen/dataset.h"

namespace idrepair {

/// A calibrated substitute for the paper's proprietary traffic-surveillance
/// dataset (§6.1.1; DESIGN.md §5): the Figure 9(b) transition graph, 699
/// entities sampled over a one-hour window with path weights tuned so the
/// record count lands near the paper's 2,045 (~2.9 records/trajectory), and
/// record-level ID errors at 17% (the paper reports ~83% recognition
/// accuracy in the field). Ground truth is retained, mirroring the paper's
/// manual labeling.
///
/// Paper defaults for this dataset: θ=4, η=600 s, ζ=4, λ=0.5.
Result<Dataset> MakeRealLikeDataset(uint64_t seed = 42);

/// Scaled variant used by the Fig 14/16 experiments (§6.4: "datasets with
/// the number of trajectories varying from 2,000 to 6,000 and the
/// corresponding number of records varying from 5,189 to 15,795", i.e.
/// ~2.6 records per original trajectory): same graph, path weights tuned to
/// that record ratio, 20% default error rate. The capture window grows
/// proportionally with the trajectory count, keeping traffic density stable.
Result<Dataset> MakeScaledRealLikeDataset(size_t num_trajectories,
                                          double record_error_rate = 0.2,
                                          uint64_t seed = 42);

}  // namespace idrepair

#endif  // IDREPAIR_GEN_REAL_LIKE_H_
