#include "gen/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

namespace idrepair {

namespace {

constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string VertexName(const char* prefix, size_t a, size_t b) {
  std::string name = prefix;
  name += std::to_string(a);
  name += '.';
  name += std::to_string(b);
  return name;
}

void BuildGrid(const RoadNetworkConfig& config, Rng& rng, TransitionGraph& g) {
  size_t rows = config.rows;
  size_t cols = config.cols;
  std::vector<std::vector<LocationId>> id(rows, std::vector<LocationId>(cols));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      id[r][c] = g.AddLocation(VertexName("g", r, c));
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      // One-way streets alternate orientation per row/column, the classic
      // Manhattan pattern; adjacent opposing pairs form 4-cycles.
      if (c + 1 < cols) {
        if (r % 2 == 0) {
          (void)g.AddEdge(id[r][c], id[r][c + 1]);
        } else {
          (void)g.AddEdge(id[r][c + 1], id[r][c]);
        }
      }
      if (r + 1 < rows) {
        if (c % 2 == 0) {
          (void)g.AddEdge(id[r][c], id[r + 1][c]);
        } else {
          (void)g.AddEdge(id[r + 1][c], id[r][c]);
        }
      }
      if (c + 1 < cols && r + 1 < rows &&
          rng.Bernoulli(config.diagonal_fraction)) {
        (void)g.AddEdge(id[r][c], id[r + 1][c + 1]);
      }
    }
  }
}

void BuildRingRadial(const RoadNetworkConfig& config, TransitionGraph& g) {
  size_t rings = config.rings;
  size_t spokes = config.spokes;
  LocationId hub = g.AddLocation("hub");
  auto vertex = [&](size_t ring, size_t spoke) -> LocationId {
    return static_cast<LocationId>(1 + ring * spokes + spoke);
  };
  for (size_t r = 0; r < rings; ++r) {
    for (size_t s = 0; s < spokes; ++s) {
      (void)g.AddLocation(VertexName("r", r, s));
    }
  }
  for (size_t r = 0; r < rings; ++r) {
    for (size_t s = 0; s < spokes; ++s) {
      // Ring roads alternate orientation ring by ring.
      size_t next = (s + 1) % spokes;
      if (r % 2 == 0) {
        (void)g.AddEdge(vertex(r, s), vertex(r, next));
      } else {
        (void)g.AddEdge(vertex(r, next), vertex(r, s));
      }
      // Radial avenues are two-way.
      if (r + 1 < rings) {
        (void)g.AddEdge(vertex(r, s), vertex(r + 1, s));
        (void)g.AddEdge(vertex(r + 1, s), vertex(r, s));
      }
    }
  }
  for (size_t s = 0; s < spokes; ++s) {
    (void)g.AddEdge(hub, vertex(0, s));
    (void)g.AddEdge(vertex(0, s), hub);
  }
}

void BuildHubAndSpoke(const RoadNetworkConfig& config, TransitionGraph& g) {
  size_t hubs = config.hubs;
  size_t locals = config.locals_per_hub;
  std::vector<LocationId> hub_ids(hubs);
  for (size_t h = 0; h < hubs; ++h) {
    hub_ids[h] = g.AddLocation("hub" + std::to_string(h));
    for (size_t l = 0; l < locals; ++l) {
      (void)g.AddLocation(VertexName("h", h, l));
    }
  }
  auto local = [&](size_t h, size_t l) -> LocationId {
    return static_cast<LocationId>(h * (1 + locals) + 1 + l);
  };
  // Hubs are meshed all-to-all (the arterial backbone).
  for (size_t a = 0; a < hubs; ++a) {
    for (size_t b = 0; b < hubs; ++b) {
      if (a != b) (void)g.AddEdge(hub_ids[a], hub_ids[b]);
    }
  }
  for (size_t h = 0; h < hubs; ++h) {
    if (locals == 0) continue;
    // Feeder loop hub -> l0 -> l1 -> ... -> hub, with an on/off ramp every
    // fourth local so trips need not ride the whole loop.
    (void)g.AddEdge(hub_ids[h], local(h, 0));
    for (size_t l = 0; l + 1 < locals; ++l) {
      (void)g.AddEdge(local(h, l), local(h, l + 1));
    }
    (void)g.AddEdge(local(h, locals - 1), hub_ids[h]);
    for (size_t l = 3; l < locals; l += 4) {
      (void)g.AddEdge(local(h, l), hub_ids[h]);
      (void)g.AddEdge(hub_ids[h], local(h, l));
    }
  }
}

}  // namespace

Status RoadNetworkConfig::Validate() const {
  switch (topology) {
    case RoadTopology::kGrid:
      if (rows == 0 || cols == 0) {
        return Status::InvalidArgument("grid rows/cols must be positive");
      }
      break;
    case RoadTopology::kRingRadial:
      if (rings == 0 || spokes < 3) {
        return Status::InvalidArgument(
            "ring-radial needs rings >= 1 and spokes >= 3");
      }
      break;
    case RoadTopology::kHubAndSpoke:
      if (hubs < 2) {
        return Status::InvalidArgument("hub-and-spoke needs hubs >= 2");
      }
      break;
  }
  if (diagonal_fraction < 0.0 || diagonal_fraction > 1.0) {
    return Status::InvalidArgument("diagonal_fraction must be in [0, 1]");
  }
  if (access_stride == 0) {
    return Status::InvalidArgument("access_stride must be positive");
  }
  if (travel_median_lo < 1 || travel_median_hi < travel_median_lo) {
    return Status::InvalidArgument(
        "travel medians need 1 <= median_lo <= median_hi");
  }
  if (travel_sigma_lo < 0.0 || travel_sigma_hi < travel_sigma_lo) {
    return Status::InvalidArgument(
        "travel sigmas need 0 <= sigma_lo <= sigma_hi");
  }
  if (dropout_coverage < 0.0 || dropout_coverage > 1.0 ||
      dropout_miss_rate < 0.0 || dropout_miss_rate > 1.0) {
    return Status::InvalidArgument(
        "dropout coverage/miss rate must be in [0, 1]");
  }
  if ((dropout_coverage > 0.0) != (dropout_regions > 0)) {
    return Status::InvalidArgument(
        "dropout_regions and dropout_coverage must be set together");
  }
  return Status::OK();
}

Result<RoadNetwork> RoadNetwork::Build(const RoadNetworkConfig& config) {
  IDREPAIR_RETURN_NOT_OK(config.Validate());
  RoadNetwork net;
  net.config_ = config;
  Rng rng(config.seed ^ 0xc2b2ae3d27d4eb4fULL);
  switch (config.topology) {
    case RoadTopology::kGrid:
      BuildGrid(config, rng, net.graph_);
      break;
    case RoadTopology::kRingRadial:
      BuildRingRadial(config, net.graph_);
      break;
    case RoadTopology::kHubAndSpoke:
      BuildHubAndSpoke(config, net.graph_);
      break;
  }
  size_t n = net.graph_.num_locations();
  // Scattered access points: trips may begin at any entrance vertex and end
  // at any exit vertex, so trip length is decoupled from network diameter.
  size_t stride = config.access_stride;
  for (LocationId v = 0; v < n; ++v) {
    if (v % stride == 0) (void)net.graph_.MarkEntrance(v);
    if (v % stride == stride / 2) (void)net.graph_.MarkExit(v);
  }
  net.FinishBuild();
  if (net.origins_.empty()) {
    return Status::InvalidArgument(
        "road network has no entrance that reaches an exit");
  }
  IDREPAIR_RETURN_NOT_OK(net.graph_.Validate());
  // Dropout patches grow from seeded cores by BFS, one layer per region per
  // round, until the target coverage is met.
  if (config.dropout_regions > 0) {
    size_t target = static_cast<size_t>(
        std::llround(config.dropout_coverage * static_cast<double>(n)));
    std::vector<std::vector<LocationId>> frontiers(config.dropout_regions);
    for (auto& f : frontiers) {
      LocationId core = static_cast<LocationId>(rng.UniformIndex(n));
      if (net.dropout_[core] == 0) {
        net.dropout_[core] = 1;
        ++net.num_dropout_;
        f.push_back(core);
      }
    }
    bool grew = true;
    while (net.num_dropout_ < target && grew) {
      grew = false;
      for (auto& frontier : frontiers) {
        if (net.num_dropout_ >= target) break;
        std::vector<LocationId> next;
        for (LocationId v : frontier) {
          for (auto span : {net.graph_.OutNeighbors(v),
                            net.graph_.InNeighbors(v)}) {
            for (LocationId w : span) {
              if (net.num_dropout_ >= target) break;
              if (net.dropout_[w] == 0) {
                net.dropout_[w] = 1;
                ++net.num_dropout_;
                next.push_back(w);
                grew = true;
              }
            }
          }
        }
        frontier = std::move(next);
      }
    }
  }
  return net;
}

void RoadNetwork::FinishBuild() {
  size_t n = graph_.num_locations();
  dropout_.assign(n, 0);
  // Multi-source reverse BFS from every exit: hops_to_exit_ is the guide
  // rail of SampleTrip (never step anywhere an exit cannot be reached from
  // within the remaining budget).
  hops_to_exit_.assign(n, kUnreachable);
  std::vector<LocationId> frontier;
  for (LocationId v = 0; v < n; ++v) {
    if (graph_.IsExit(v)) {
      hops_to_exit_[v] = 0;
      frontier.push_back(v);
    }
  }
  uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<LocationId> next;
    for (LocationId v : frontier) {
      for (LocationId u : graph_.InNeighbors(v)) {
        if (hops_to_exit_[u] == kUnreachable) {
          hops_to_exit_[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  for (LocationId v = 0; v < n; ++v) {
    if (graph_.IsEntrance(v) && hops_to_exit_[v] != kUnreachable) {
      origins_.push_back(v);
    }
  }
}

RoadNetwork::EdgeTravel RoadNetwork::TravelParams(LocationId from,
                                                  LocationId to) const {
  uint64_t h = SplitMix64(config_.seed ^
                          ((static_cast<uint64_t>(from) << 32) | to));
  int64_t span = config_.travel_median_hi - config_.travel_median_lo + 1;
  int64_t median = config_.travel_median_lo +
                   static_cast<int64_t>(h % static_cast<uint64_t>(span));
  double frac =
      static_cast<double>(h >> 40) / static_cast<double>(1ULL << 24);
  double sigma = config_.travel_sigma_lo +
                 frac * (config_.travel_sigma_hi - config_.travel_sigma_lo);
  return EdgeTravel{median, sigma};
}

int64_t RoadNetwork::SampleTravelSeconds(LocationId from, LocationId to,
                                         Rng& rng) const {
  EdgeTravel params = TravelParams(from, to);
  double t = rng.LogNormal(std::log(static_cast<double>(params.median_seconds)),
                           params.sigma);
  return std::max<int64_t>(1, static_cast<int64_t>(t));
}

std::vector<LocationId> RoadNetwork::SampleTrip(LocationId origin,
                                                size_t min_len, size_t max_len,
                                                double exit_prob,
                                                Rng& rng) const {
  std::vector<LocationId> path{origin};
  std::vector<LocationId> choices;
  LocationId cur = origin;
  while (true) {
    bool can_stop = graph_.IsExit(cur) && path.size() >= min_len;
    if (can_stop && (path.size() >= max_len || rng.Bernoulli(exit_prob))) {
      return path;
    }
    size_t budget = max_len - path.size();  // edges still available
    choices.clear();
    if (budget >= 1) {
      for (LocationId w : graph_.OutNeighbors(cur)) {
        if (hops_to_exit_[w] != kUnreachable && hops_to_exit_[w] <= budget - 1) {
          choices.push_back(w);
        }
      }
    }
    if (choices.empty()) {
      // Invariant: hops_to_exit_[cur] <= budget at all times, so running
      // out of guided moves means cur is an exit — the path is valid even
      // when shorter than the soft min_len.
      return path;
    }
    cur = choices[rng.UniformIndex(choices.size())];
    path.push_back(cur);
  }
}

}  // namespace idrepair
