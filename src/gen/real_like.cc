#include "gen/real_like.h"

#include "gen/synthetic.h"
#include "graph/generators.h"

namespace idrepair {

// Valid paths of MakeRealLikeGraph() in EnumerateValidPaths order:
//   0: A->B->C->D (4 records), 1: A->B->D (3), 2: C->D (2).

Result<Dataset> MakeRealLikeDataset(uint64_t seed) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 699;
  // Weights chosen so the expected record count matches the paper's 2,045
  // (average ~2.93 records per trajectory): .30*4 + .35*3 + .35*2 = 2.95.
  config.path_weights = {0.30, 0.35, 0.35};
  config.record_error_rate = 0.17;  // ~83% field recognition accuracy
  config.max_path_len = 4;
  config.window_seconds = 3600;  // 8:00–9:00 a.m.
  config.seed = seed;
  return GenerateSyntheticDataset(graph, config);
}

Result<Dataset> MakeScaledRealLikeDataset(size_t num_trajectories,
                                          double record_error_rate,
                                          uint64_t seed) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = num_trajectories;
  // ~2.63 records per trajectory: .13*4 + .37*3 + .50*2 = 2.63, matching the
  // §6.4 record/trajectory ratio (5,189/2,000 … 15,795/6,000).
  config.path_weights = {0.13, 0.37, 0.50};
  config.record_error_rate = record_error_rate;
  config.max_path_len = 4;
  config.window_seconds =
      static_cast<Timestamp>(3600.0 * static_cast<double>(num_trajectories) /
                             699.0);
  config.seed = seed;
  return GenerateSyntheticDataset(graph, config);
}

}  // namespace idrepair
