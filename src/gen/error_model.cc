#include "gen/error_model.h"

#include <cstddef>

namespace idrepair {

void IdErrorModel::ApplyRandomEdit(std::string& s, Rng& rng) const {
  // Substitutions dominate OCR confusions; insert/delete are rarer.
  // With a length-1 string, deletion is excluded to keep IDs non-empty.
  enum class Op { kSubstitute, kInsert, kDelete };
  std::vector<double> weights = {0.70, 0.15, s.size() > 1 ? 0.15 : 0.0};
  Op op = static_cast<Op>(rng.WeightedIndex(weights));
  switch (op) {
    case Op::kSubstitute: {
      size_t pos = rng.UniformIndex(s.size());
      char old = s[pos];
      char repl = old;
      while (repl == old) repl = rng.LowercaseLetter();
      s[pos] = repl;
      break;
    }
    case Op::kInsert: {
      size_t pos = rng.UniformIndex(s.size() + 1);
      s.insert(s.begin() + static_cast<ptrdiff_t>(pos),
               rng.LowercaseLetter());
      break;
    }
    case Op::kDelete: {
      size_t pos = rng.UniformIndex(s.size());
      s.erase(s.begin() + static_cast<ptrdiff_t>(pos));
      break;
    }
  }
}

std::string IdErrorModel::Mutate(
    const std::string& id, Rng& rng,
    const std::function<bool(const std::string&)>& is_taken) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    size_t edits = rng.WeightedIndex(distances_.probs_by_distance) + 1;
    std::string out = id;
    for (size_t i = 0; i < edits; ++i) ApplyRandomEdit(out, rng);
    if (out == id) continue;  // edits may cancel; resample
    if (is_taken && is_taken(out)) continue;
    return out;
  }
  // Degenerate inputs (e.g. every neighbor taken): fall back to a forced
  // substitution scan that ignores the distance distribution.
  std::string out = id;
  for (size_t pos = 0; pos < out.size(); ++pos) {
    for (char c = 'a'; c <= 'z'; ++c) {
      if (c == id[pos]) continue;
      out[pos] = c;
      if (!is_taken || !is_taken(out)) return out;
    }
    out[pos] = id[pos];
  }
  return id + "x";  // last resort: length change
}

}  // namespace idrepair
