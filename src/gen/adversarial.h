#ifndef IDREPAIR_GEN_ADVERSARIAL_H_
#define IDREPAIR_GEN_ADVERSARIAL_H_

#include <cstdint>

#include "common/status.h"
#include "gen/dataset.h"
#include "gen/error_model.h"

namespace idrepair {

/// Adversarial ID-error models (ROADMAP "scenario diversity"): unlike the
/// OCR model of gen/error_model.h, which mutates an ID *away* from
/// everything, these engineer the worst case for the repair objective —
/// corrupted IDs that sit close to *multiple* entities at once, stressing
/// the Eq. 1 similarity tie-breaking and the Eq. 3/Eq. 4 selection.

/// Near-miss collisions: a corrupted record's observed ID is written at
/// edit distance 1..max_edit_distance of a *different* entity's ID (the
/// "victim"), so similarity pulls the fragment toward the wrong entity.
/// With probability tie_fraction the mutant is additionally engineered to
/// be exactly equidistant from the true and the victim ID (same length
/// victims only), producing an exact Eq. 1 tie the selector must break by
/// rarity/effectiveness alone.
struct NearMissConfig {
  /// Per-record corruption probability.
  double rate = 0.2;
  /// Maximum edit distance between the mutant and the victim ID (1 or 2).
  size_t max_edit_distance = 2;
  /// Fraction of corruptions engineered as exact Eq. 1 ties.
  double tie_fraction = 0.5;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Corrupts `dataset` in place per `config`. Mutants never collide with any
/// entity's true ID (the sparsity-of-IDs premise stays intact — repair is
/// hard, not ill-posed). Requires at least two distinct entities.
Status InjectNearMissIdErrors(Dataset& dataset, const NearMissConfig& config);

/// Prefix-shared composite IDs: relabels every entity as
/// <fleet-prefix><unique-suffix> with only `num_prefixes` distinct
/// prefixes, compressing the pairwise ID distance of unrelated entities
/// (fleet/operator ID schemes). Apply to a *clean* dataset (observed ==
/// true everywhere), then inject errors: with most characters shared, small
/// corruptions collide across the fleet by construction.
struct PrefixFleetConfig {
  size_t num_prefixes = 4;
  size_t prefix_len = 4;
  size_t suffix_len = 3;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Relabels both true and observed IDs through the same bijection.
/// FailedPrecondition if the dataset already contains corrupted records.
Status RelabelWithFleetPrefixes(Dataset& dataset,
                                const PrefixFleetConfig& config);

/// Correlated burst corruption: a flaky camera. Picks `num_bursts`
/// (location, time-window) anchors among the dataset's records; every
/// record captured at that location inside the window is corrupted with
/// probability in_burst_error_rate by the burst's own *stuck* transform
/// (the same substitution position and letter for the whole burst), so
/// errors arrive spatially, temporally, and textually correlated instead of
/// i.i.d.
struct BurstCorruptionConfig {
  size_t num_bursts = 8;
  Timestamp burst_seconds = 300;
  double in_burst_error_rate = 0.9;
  uint64_t seed = 1;

  Status Validate() const;
};

Status InjectBurstCorruption(Dataset& dataset,
                             const BurstCorruptionConfig& config);

}  // namespace idrepair

#endif  // IDREPAIR_GEN_ADVERSARIAL_H_
