#ifndef IDREPAIR_GEN_ROAD_NETWORK_H_
#define IDREPAIR_GEN_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/transition_graph.h"
#include "graph/types.h"

namespace idrepair {

/// City-scale topology families (ROADMAP "scenario diversity"; the modeling
/// follows the road-network structure of Custers et al., Route
/// Reconstruction from Traffic Flow):
///
///  * kGrid — a Manhattan grid with alternating one-way streets (rightward
///    on even rows, leftward on odd; downward on even columns, upward on
///    odd) plus a configurable fraction of diagonal shortcuts. The
///    alternation creates short directed cycles, the structure the cex
///    diagonal semantics exist for.
///  * kRingRadial — concentric ring roads (alternating orientation) joined
///    by bidirectional radial avenues through a central hub.
///  * kHubAndSpoke — regional hub vertices meshed all-to-all, each feeding a
///    directed loop of local roads (hub -> l1 -> ... -> lk -> hub).
enum class RoadTopology { kGrid, kRingRadial, kHubAndSpoke };

/// Parameters of a generated road network. Defaults give a mid-size city;
/// a 102x102 grid crosses the 10k-vertex mark.
struct RoadNetworkConfig {
  RoadTopology topology = RoadTopology::kGrid;

  /// kGrid: rows x cols intersections.
  size_t rows = 32;
  size_t cols = 32;
  /// Fraction of eligible grid intersections with a diagonal shortcut.
  double diagonal_fraction = 0.5;

  /// kRingRadial: number of concentric rings and radial avenues. Vertex
  /// count is rings * spokes + 1 (the hub).
  size_t rings = 8;
  size_t spokes = 16;

  /// kHubAndSpoke: meshed hubs, each with a loop of local roads. Vertex
  /// count is hubs * (1 + locals_per_hub).
  size_t hubs = 6;
  size_t locals_per_hub = 24;

  /// Every access_stride-th vertex doubles as a trip origin (entrance) and
  /// every one offset by stride/2 as a destination (exit) — garages and
  /// side streets, so city trips stay short relative to the network
  /// diameter instead of having to cross it. 1 = every vertex is both.
  size_t access_stride = 3;

  /// Per-edge travel-time distributions: the median (seconds) is drawn
  /// deterministically per edge from [median_lo, median_hi], the log-normal
  /// sigma from [sigma_lo, sigma_hi] — arterial roads are fast and
  /// reliable, side streets slow and noisy.
  int64_t travel_median_lo = 45;
  int64_t travel_median_hi = 150;
  double travel_sigma_lo = 0.2;
  double travel_sigma_hi = 0.5;

  /// Camera-dropout regions: `dropout_regions` contiguous patches grown to
  /// cover ~`dropout_coverage` of all vertices; a record captured inside a
  /// patch is dropped with probability `dropout_miss_rate` at traffic
  /// generation time (spatially correlated missing records, the city-scale
  /// analog of §6.3.3's uniform missing rate).
  size_t dropout_regions = 0;
  double dropout_coverage = 0.0;
  double dropout_miss_rate = 0.0;

  /// Seeds the per-edge parameter draws, diagonal placement, and dropout
  /// patch growth; the same config always builds the same network.
  uint64_t seed = 1;

  Status Validate() const;
};

/// A generated road network: the transition graph plus the per-edge travel
/// distributions and camera-dropout membership the traffic model samples
/// from, and a guided random-walk trip sampler that replaces exhaustive
/// valid-path enumeration (infeasible past a few hundred vertices).
class RoadNetwork {
 public:
  /// Builds the network for `config`; InvalidArgument on out-of-range
  /// parameters, or when no entrance can reach an exit.
  static Result<RoadNetwork> Build(const RoadNetworkConfig& config);

  const TransitionGraph& graph() const { return graph_; }
  const RoadNetworkConfig& config() const { return config_; }

  /// Deterministic per-edge travel-time distribution parameters.
  struct EdgeTravel {
    int64_t median_seconds;
    double sigma;
  };
  EdgeTravel TravelParams(LocationId from, LocationId to) const;

  /// One log-normal travel-time draw for the edge, >= 1 second.
  int64_t SampleTravelSeconds(LocationId from, LocationId to, Rng& rng) const;

  /// True iff `loc` lies inside a camera-dropout patch.
  bool InDropoutRegion(LocationId loc) const {
    return dropout_[loc] != 0;
  }
  size_t num_dropout_locations() const { return num_dropout_; }
  double dropout_miss_rate() const { return config_.dropout_miss_rate; }

  /// Trip origins: entrances from which an exit is reachable.
  const std::vector<LocationId>& origins() const { return origins_; }

  /// Hops from `loc` to the nearest exit (multi-source reverse BFS),
  /// ReachabilityMatrix::kUnreachable-style UINT32_MAX when none.
  uint32_t HopsToExit(LocationId loc) const { return hops_to_exit_[loc]; }

  /// Samples a trip from `origin`: a valid path (entrance -> ... -> exit)
  /// of min_len..max_len locations by a guided random walk that only takes
  /// edges keeping an exit within the remaining hop budget; at an exit it
  /// stops with probability `exit_prob` once min_len is met. Requires
  /// `origin` to be one of origins() with HopsToExit(origin) < max_len;
  /// always terminates with a valid path.
  std::vector<LocationId> SampleTrip(LocationId origin, size_t min_len,
                                     size_t max_len, double exit_prob,
                                     Rng& rng) const;

 private:
  RoadNetwork() = default;

  void FinishBuild();  // origins, hops-to-exit, dropout patches

  TransitionGraph graph_;
  RoadNetworkConfig config_;
  std::vector<LocationId> origins_;
  std::vector<uint32_t> hops_to_exit_;
  std::vector<uint8_t> dropout_;
  size_t num_dropout_ = 0;
};

}  // namespace idrepair

#endif  // IDREPAIR_GEN_ROAD_NETWORK_H_
