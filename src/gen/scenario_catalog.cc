#include "gen/scenario_catalog.h"

#include <utility>

#include "common/rng.h"
#include "gen/adversarial.h"
#include "gen/error_model.h"
#include "gen/synthetic.h"

namespace idrepair {

std::vector<ScenarioCatalogEntry> ScenarioCatalog(bool light) {
  auto scale = [light](size_t n) { return light ? n / 2 : n; };
  std::vector<ScenarioCatalogEntry> entries;

  {  // 10k-vertex Manhattan grid under diurnal rush traffic, OCR errors.
    ScenarioCatalogEntry e;
    e.name = "city_grid_10k_diurnal_ocr";
    e.network.topology = RoadTopology::kGrid;
    e.network.rows = light ? 36 : 102;  // 102*102 = 10404 vertices
    e.network.cols = light ? 36 : 102;
    e.network.diagonal_fraction = 0.3;
    e.network.travel_median_lo = 30;
    e.network.travel_median_hi = 90;
    e.network.seed = 11;
    e.traffic.num_trips = scale(320);
    e.traffic.window_seconds = 7200;
    e.traffic.arrivals = ArrivalProcess::kDiurnal;
    e.traffic.max_trip_len = 8;
    e.traffic.seed = 101;
    e.errors = ScenarioError::kOcr;
    e.error_rate = 0.15;
    e.theta = 8;
    e.eta = 2400;
    entries.push_back(std::move(e));
  }
  {  // Mid-size grid where bursts carry most arrivals — the streaming arm.
    ScenarioCatalogEntry e;
    e.name = "grid_rush_burst_ocr";
    e.network.topology = RoadTopology::kGrid;
    e.network.rows = light ? 26 : 48;
    e.network.cols = light ? 26 : 48;
    e.network.travel_median_lo = 30;
    e.network.travel_median_hi = 75;
    e.network.seed = 12;
    e.traffic.num_trips = scale(260);
    e.traffic.window_seconds = 5400;
    e.traffic.arrivals = ArrivalProcess::kBursty;
    e.traffic.burst_count = 5;
    e.traffic.burst_seconds = 240;
    e.traffic.burst_fraction = 0.8;
    e.traffic.max_trip_len = 7;
    e.traffic.seed = 102;
    e.errors = ScenarioError::kOcr;
    e.error_rate = 0.2;
    e.theta = 7;
    e.eta = 1800;
    e.bursty = true;
    entries.push_back(std::move(e));
  }
  {  // Ring-radial avenues with Zipf-skewed gate popularity.
    ScenarioCatalogEntry e;
    e.name = "ring_radial_zipf_ocr";
    e.network.topology = RoadTopology::kRingRadial;
    e.network.rings = light ? 14 : 24;
    e.network.spokes = 28;  // 24*28 + 1 = 673 vertices
    e.network.travel_median_lo = 30;
    e.network.travel_median_hi = 75;
    e.network.seed = 13;
    e.traffic.num_trips = scale(240);
    e.traffic.window_seconds = 5400;
    e.traffic.origin_zipf_s = 1.1;
    e.traffic.max_trip_len = 7;
    e.traffic.seed = 103;
    e.errors = ScenarioError::kOcr;
    e.error_rate = 0.2;
    e.theta = 7;
    e.eta = 1800;
    entries.push_back(std::move(e));
  }
  {  // Hub-and-spoke with fleet churn: one ID, several well-parked trips.
    ScenarioCatalogEntry e;
    e.name = "hub_spoke_churn_ocr";
    e.network.topology = RoadTopology::kHubAndSpoke;
    e.network.hubs = 8;
    e.network.locals_per_hub = light ? 40 : 80;  // 8*81 = 648 vertices
    e.network.travel_median_lo = 30;
    e.network.travel_median_hi = 75;
    e.network.seed = 14;
    e.traffic.num_trips = scale(240);
    e.traffic.window_seconds = 9000;
    e.traffic.mean_trips_per_entity = 2.5;
    e.traffic.min_park_seconds = 2400;
    e.traffic.max_trip_len = 7;
    e.traffic.seed = 104;
    e.errors = ScenarioError::kOcr;
    e.error_rate = 0.15;
    e.theta = 7;
    e.eta = 1800;
    entries.push_back(std::move(e));
  }
  {  // Adversarial near-miss IDs: corruptions collide with other entities.
    ScenarioCatalogEntry e;
    e.name = "grid_near_miss";
    e.network.topology = RoadTopology::kGrid;
    e.network.rows = light ? 24 : 40;
    e.network.cols = light ? 24 : 40;
    e.network.travel_median_lo = 30;
    e.network.travel_median_hi = 75;
    e.network.seed = 15;
    e.traffic.num_trips = scale(220);
    e.traffic.window_seconds = 5400;
    e.traffic.max_trip_len = 7;
    e.traffic.seed = 105;
    e.errors = ScenarioError::kNearMiss;
    e.error_rate = 0.2;
    e.theta = 7;
    e.eta = 1800;
    entries.push_back(std::move(e));
  }
  {  // Fleet prefixes + engineered Eq. 1 ties — the hardest ID landscape.
    ScenarioCatalogEntry e;
    e.name = "prefix_fleet_ties";
    e.network.topology = RoadTopology::kGrid;
    e.network.rows = light ? 22 : 36;
    e.network.cols = light ? 22 : 36;
    e.network.travel_median_lo = 30;
    e.network.travel_median_hi = 75;
    e.network.seed = 16;
    e.traffic.num_trips = scale(220);
    e.traffic.window_seconds = 5400;
    e.traffic.max_trip_len = 7;
    e.traffic.seed = 106;
    e.errors = ScenarioError::kPrefixTies;
    e.error_rate = 0.2;
    e.theta = 7;
    e.eta = 1800;
    entries.push_back(std::move(e));
  }
  {  // Camera dropout regions + correlated stuck-camera burst corruption.
    ScenarioCatalogEntry e;
    e.name = "grid_dropout_burst";
    e.network.topology = RoadTopology::kGrid;
    e.network.rows = light ? 24 : 44;
    e.network.cols = light ? 24 : 44;
    e.network.travel_median_lo = 30;
    e.network.travel_median_hi = 75;
    e.network.dropout_regions = 6;
    e.network.dropout_coverage = 0.12;
    e.network.dropout_miss_rate = 0.4;
    e.network.seed = 17;
    e.traffic.num_trips = scale(240);
    e.traffic.window_seconds = 5400;
    e.traffic.max_trip_len = 7;
    e.traffic.seed = 107;
    e.errors = ScenarioError::kBurstStuckCam;
    e.error_rate = 0.0;  // the burst model has its own in-burst rate
    e.theta = 7;
    e.eta = 1800;
    entries.push_back(std::move(e));
  }
  return entries;
}

Result<ScenarioCatalogEntry> FindScenario(const std::string& name,
                                          bool light) {
  for (ScenarioCatalogEntry& e : ScenarioCatalog(light)) {
    if (e.name == name) return std::move(e);
  }
  return Status::NotFound("unknown catalog scenario: " + name);
}

Result<Dataset> BuildScenarioDataset(const ScenarioCatalogEntry& entry) {
  auto network = RoadNetwork::Build(entry.network);
  if (!network.ok()) return network.status();
  auto generated = GenerateTraffic(*network, entry.traffic);
  if (!generated.ok()) return generated.status();
  Dataset dataset = *std::move(generated);
  switch (entry.errors) {
    case ScenarioError::kOcr: {
      Rng rng(entry.traffic.seed ^ 0x6a09e667f3bcc909ULL);
      InjectIdErrors(dataset, entry.error_rate, IdErrorModel(), rng);
      break;
    }
    case ScenarioError::kNearMiss: {
      NearMissConfig near;
      near.rate = entry.error_rate;
      near.tie_fraction = 0.0;  // random IDs are too far apart for ties
      near.seed = entry.traffic.seed;
      IDREPAIR_RETURN_NOT_OK(InjectNearMissIdErrors(dataset, near));
      break;
    }
    case ScenarioError::kPrefixTies: {
      PrefixFleetConfig fleet;
      fleet.num_prefixes = 4;
      fleet.seed = entry.traffic.seed;
      IDREPAIR_RETURN_NOT_OK(RelabelWithFleetPrefixes(dataset, fleet));
      NearMissConfig near;
      near.rate = entry.error_rate;
      near.tie_fraction = 0.6;
      near.seed = entry.traffic.seed;
      IDREPAIR_RETURN_NOT_OK(InjectNearMissIdErrors(dataset, near));
      break;
    }
    case ScenarioError::kBurstStuckCam: {
      BurstCorruptionConfig burst;
      burst.num_bursts = 30;
      burst.burst_seconds = 900;
      burst.seed = entry.traffic.seed;
      IDREPAIR_RETURN_NOT_OK(InjectBurstCorruption(dataset, burst));
      break;
    }
  }
  return dataset;
}

}  // namespace idrepair
