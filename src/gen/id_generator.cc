#include "gen/id_generator.h"

namespace idrepair {

std::string UniqueIdGenerator::Next(Rng& rng) {
  while (true) {
    size_t len = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(min_len_), static_cast<int64_t>(max_len_)));
    std::string id(len, 'a');
    for (char& c : id) c = rng.LowercaseLetter();
    if (used_.insert(id).second) return id;
  }
}

}  // namespace idrepair
