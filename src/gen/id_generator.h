#ifndef IDREPAIR_GEN_ID_GENERATOR_H_
#define IDREPAIR_GEN_ID_GENERATOR_H_

#include <string>
#include <unordered_set>

#include "common/rng.h"

namespace idrepair {

/// Generates unique entity IDs of `min_len`..`max_len` lowercase letters,
/// each character i.i.d. uniform — the ID model of the paper's synthetic
/// datasets (§6.1.1: "an ID consists of 7 to 9 lower-case letters only").
/// Uniqueness across a dataset enforces the paper's sparsity-of-IDs premise.
class UniqueIdGenerator {
 public:
  explicit UniqueIdGenerator(size_t min_len = 7, size_t max_len = 9)
      : min_len_(min_len), max_len_(max_len) {}

  /// Draws a fresh ID not returned before by this generator.
  std::string Next(Rng& rng);

  /// Marks an externally chosen ID as taken (so Next never returns it).
  void Reserve(const std::string& id) { used_.insert(id); }

  /// True iff `id` was produced by Next or reserved.
  bool IsUsed(const std::string& id) const { return used_.count(id) > 0; }

 private:
  size_t min_len_;
  size_t max_len_;
  std::unordered_set<std::string> used_;
};

}  // namespace idrepair

#endif  // IDREPAIR_GEN_ID_GENERATOR_H_
