#ifndef IDREPAIR_GEN_ERROR_MODEL_H_
#define IDREPAIR_GEN_ERROR_MODEL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace idrepair {

/// Calibrated stand-in for the "edit distance distribution for erroneous IDs
/// in the real dataset" the paper uses as a ballpark (§6.1.1, DESIGN.md §5).
/// probs_by_distance[k] is the probability that a misrecognized ID ends up
/// at edit distance k+1 from the true ID.
struct ErrorDistanceDistribution {
  std::vector<double> probs_by_distance = {0.55, 0.30, 0.10, 0.05};
};

/// Mutates IDs the way an OCR/vision pipeline misreads them: a sampled edit
/// distance, realized as random substitutions (most common), insertions and
/// deletions over the lowercase alphabet. The result is guaranteed to differ
/// from the input and to pass the optional `is_taken` collision filter, so a
/// corrupted ID never coincides with another entity's true ID (the paper's
/// sparsity-of-IDs assumption).
class IdErrorModel {
 public:
  explicit IdErrorModel(ErrorDistanceDistribution distances = {})
      : distances_(std::move(distances)) {}

  /// Produces a corrupted variant of `id`. `is_taken`, when provided,
  /// rejects candidate outputs (e.g. IDs already owned by other entities).
  std::string Mutate(const std::string& id, Rng& rng,
                     const std::function<bool(const std::string&)>& is_taken =
                         nullptr) const;

  const ErrorDistanceDistribution& distances() const { return distances_; }

 private:
  /// Applies exactly one random edit operation in place.
  void ApplyRandomEdit(std::string& s, Rng& rng) const;

  ErrorDistanceDistribution distances_;
};

}  // namespace idrepair

#endif  // IDREPAIR_GEN_ERROR_MODEL_H_
