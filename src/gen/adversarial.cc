#include "gen/adversarial.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gen/id_generator.h"
#include "sim/edit_distance.h"

namespace idrepair {

namespace {

/// One OCR-style random edit, mirroring IdErrorModel's operation weights.
void ApplyRandomEdit(std::string& s, Rng& rng) {
  enum class Op { kSubstitute, kInsert, kDelete };
  std::vector<double> weights = {0.70, 0.15, s.size() > 1 ? 0.15 : 0.0};
  Op op = static_cast<Op>(rng.WeightedIndex(weights));
  switch (op) {
    case Op::kSubstitute: {
      size_t pos = rng.UniformIndex(s.size());
      char old = s[pos];
      char repl = old;
      while (repl == old) repl = rng.LowercaseLetter();
      s[pos] = repl;
      break;
    }
    case Op::kInsert: {
      size_t pos = rng.UniformIndex(s.size() + 1);
      s.insert(s.begin() + static_cast<ptrdiff_t>(pos), rng.LowercaseLetter());
      break;
    }
    case Op::kDelete: {
      size_t pos = rng.UniformIndex(s.size());
      s.erase(s.begin() + static_cast<ptrdiff_t>(pos));
      break;
    }
  }
}

/// Entity IDs in first-appearance order — deterministic, unlike iterating
/// an unordered container.
std::vector<std::string> EntityIdsInOrder(const Dataset& dataset,
                                          std::unordered_set<std::string>* seen) {
  std::vector<std::string> ids;
  for (const auto& r : dataset.records) {
    if (seen->insert(r.true_id).second) ids.push_back(r.true_id);
  }
  return ids;
}

}  // namespace

Status NearMissConfig::Validate() const {
  if (rate < 0.0 || rate > 1.0) {
    return Status::InvalidArgument("near-miss rate must be in [0, 1]");
  }
  if (max_edit_distance < 1 || max_edit_distance > 4) {
    return Status::InvalidArgument("max_edit_distance must be in 1..4");
  }
  if (tie_fraction < 0.0 || tie_fraction > 1.0) {
    return Status::InvalidArgument("tie_fraction must be in [0, 1]");
  }
  return Status::OK();
}

Status InjectNearMissIdErrors(Dataset& dataset, const NearMissConfig& config) {
  IDREPAIR_RETURN_NOT_OK(config.Validate());
  std::unordered_set<std::string> true_ids;
  std::vector<std::string> entities = EntityIdsInOrder(dataset, &true_ids);
  if (entities.size() < 2) {
    return Status::InvalidArgument(
        "near-miss injection needs at least two entities");
  }
  auto is_taken = [&true_ids](const std::string& s) {
    return true_ids.count(s) > 0;
  };
  Rng rng(config.seed ^ 0x8f1bbcdcbfa53e0bULL);
  IdErrorModel fallback_model;
  for (auto& r : dataset.records) {
    if (!rng.Bernoulli(config.rate)) continue;
    const std::string& truth = r.true_id;
    bool done = false;

    // Engineered Eq. 1 tie: find a same-length victim at Hamming distance
    // 2t (t <= max_edit_distance) and substitute t of the differing
    // positions to the victim's characters — the mutant then sits at edit
    // distance t from *both* IDs, so their Eq. 1 similarities are exactly
    // equal. Plain random IDs are too far apart for this to fire; it is the
    // fleet-prefix relabeling (RelabelWithFleetPrefixes) that brings
    // entities close enough, which is why the adversarial scenarios stack
    // the two models.
    if (rng.Bernoulli(config.tie_fraction)) {
      for (int attempt = 0; attempt < 16 && !done; ++attempt) {
        const std::string& victim =
            entities[rng.UniformIndex(entities.size())];
        if (victim == truth || victim.size() != truth.size()) continue;
        std::vector<size_t> diffs;
        for (size_t i = 0; i < truth.size(); ++i) {
          if (truth[i] != victim[i]) diffs.push_back(i);
        }
        if (diffs.size() < 2 || diffs.size() % 2 != 0) continue;
        size_t t = diffs.size() / 2;
        if (t > config.max_edit_distance) continue;
        rng.Shuffle(diffs.begin(), diffs.end());
        std::string mutant = truth;
        for (size_t i = 0; i < t; ++i) mutant[diffs[i]] = victim[diffs[i]];
        if (is_taken(mutant)) continue;
        r.observed_id = std::move(mutant);
        done = true;
      }
    }

    // Near-miss collision: mutate a random victim's ID by 1..max edits, so
    // similarity pulls the corrupted fragment toward the wrong entity.
    for (int attempt = 0; attempt < 64 && !done; ++attempt) {
      const std::string& victim = entities[rng.UniformIndex(entities.size())];
      if (victim == truth) continue;
      size_t edits = 1 + rng.UniformIndex(config.max_edit_distance);
      std::string mutant = victim;
      for (size_t e = 0; e < edits; ++e) ApplyRandomEdit(mutant, rng);
      if (mutant == victim || is_taken(mutant)) continue;
      size_t d = EditDistanceBounded(mutant, victim, config.max_edit_distance);
      if (d == 0 || d > config.max_edit_distance) continue;
      r.observed_id = std::move(mutant);
      done = true;
    }

    // Degenerate pools: fall back to the OCR model so the record is still
    // corrupted at the configured rate.
    if (!done) r.observed_id = fallback_model.Mutate(truth, rng, is_taken);
  }
  return Status::OK();
}

Status PrefixFleetConfig::Validate() const {
  if (num_prefixes == 0) {
    return Status::InvalidArgument("num_prefixes must be positive");
  }
  if (prefix_len == 0 || suffix_len == 0) {
    return Status::InvalidArgument("prefix_len and suffix_len must be positive");
  }
  if (static_cast<double>(num_prefixes) >
      std::pow(26.0, static_cast<double>(prefix_len)) / 2.0) {
    return Status::InvalidArgument("prefix_len too small for num_prefixes");
  }
  return Status::OK();
}

Status RelabelWithFleetPrefixes(Dataset& dataset,
                                const PrefixFleetConfig& config) {
  IDREPAIR_RETURN_NOT_OK(config.Validate());
  for (const auto& r : dataset.records) {
    if (r.corrupted()) {
      return Status::InvalidArgument(
          "fleet-prefix relabeling must run on a clean dataset "
          "(apply before error injection)");
    }
  }
  std::unordered_set<std::string> seen;
  std::vector<std::string> entities = EntityIdsInOrder(dataset, &seen);
  // Suffix capacity guard: UniqueIdGenerator draws until it finds a fresh
  // ID, so leave the space at most half full.
  double space = std::pow(26.0, static_cast<double>(config.suffix_len));
  if (static_cast<double>(entities.size()) > space / 2.0) {
    return Status::InvalidArgument(
        "suffix_len too small for the number of entities");
  }
  Rng rng(config.seed ^ 0x5a8279996ed9eba1ULL);
  std::vector<std::string> prefixes;
  std::unordered_set<std::string> prefix_set;
  while (prefixes.size() < config.num_prefixes) {
    std::string p;
    for (size_t i = 0; i < config.prefix_len; ++i) p += rng.LowercaseLetter();
    if (prefix_set.insert(p).second) prefixes.push_back(std::move(p));
  }
  UniqueIdGenerator suffixes(config.suffix_len, config.suffix_len);
  std::unordered_map<std::string, std::string> relabel;
  for (size_t i = 0; i < entities.size(); ++i) {
    relabel[entities[i]] =
        prefixes[i % config.num_prefixes] + suffixes.Next(rng);
  }
  for (auto& r : dataset.records) {
    const std::string& fresh = relabel.at(r.true_id);
    r.true_id = fresh;
    r.observed_id = fresh;
  }
  return Status::OK();
}

Status BurstCorruptionConfig::Validate() const {
  if (num_bursts == 0) {
    return Status::InvalidArgument("num_bursts must be positive");
  }
  if (burst_seconds < 1) {
    return Status::InvalidArgument("burst_seconds must be >= 1");
  }
  if (in_burst_error_rate < 0.0 || in_burst_error_rate > 1.0) {
    return Status::InvalidArgument("in_burst_error_rate must be in [0, 1]");
  }
  return Status::OK();
}

Status InjectBurstCorruption(Dataset& dataset,
                             const BurstCorruptionConfig& config) {
  IDREPAIR_RETURN_NOT_OK(config.Validate());
  if (dataset.records.empty()) return Status::OK();
  std::unordered_set<std::string> true_ids;
  for (const auto& r : dataset.records) true_ids.insert(r.true_id);
  Rng rng(config.seed ^ 0x3c6ef372fe94f82bULL);
  for (size_t b = 0; b < config.num_bursts; ++b) {
    // Anchor the burst on an actual record so it always hits traffic.
    const auto& anchor =
        dataset.records[rng.UniformIndex(dataset.records.size())];
    LocationId loc = anchor.loc;
    Timestamp start = anchor.ts;
    Timestamp end = start + config.burst_seconds;
    // The camera's stuck transform: one position, one letter, shared by
    // every misread of this burst.
    size_t stuck_pos = rng.UniformIndex(16);
    char stuck_char = rng.LowercaseLetter();
    for (auto& r : dataset.records) {
      if (r.loc != loc || r.ts < start || r.ts >= end) continue;
      if (!rng.Bernoulli(config.in_burst_error_rate)) continue;
      std::string mutant = r.true_id;
      size_t pos = stuck_pos % mutant.size();
      mutant[pos] = stuck_char != mutant[pos]
                        ? stuck_char
                        : (stuck_char == 'z' ? 'a' : stuck_char + 1);
      // Never collide with a real entity: bump along the ID until free.
      for (size_t tries = 0; true_ids.count(mutant) > 0 && tries < 26;
           ++tries) {
        size_t p2 = (pos + 1) % mutant.size();
        mutant[p2] = mutant[p2] == 'z' ? 'a' : mutant[p2] + 1;
      }
      if (true_ids.count(mutant) > 0) continue;  // pathological: skip record
      r.observed_id = std::move(mutant);
    }
  }
  return Status::OK();
}

}  // namespace idrepair
