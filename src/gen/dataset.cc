#include "gen/dataset.h"

#include <algorithm>
#include <tuple>
#include <unordered_set>

namespace idrepair {

std::vector<TrackingRecord> Dataset::ObservedRecords() const {
  std::vector<TrackingRecord> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back(TrackingRecord{r.observed_id, r.loc, r.ts});
  }
  return out;
}

std::vector<TrackingRecord> Dataset::TrueRecords() const {
  std::vector<TrackingRecord> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back(TrackingRecord{r.true_id, r.loc, r.ts});
  }
  return out;
}

TrajectorySet Dataset::BuildObservedTrajectories() const {
  return TrajectorySet::FromRecords(ObservedRecords());
}

TrajectorySet Dataset::BuildTrueTrajectories() const {
  return TrajectorySet::FromRecords(TrueRecords());
}

size_t Dataset::NumEntities() const {
  std::unordered_set<std::string> ids;
  for (const auto& r : records) ids.insert(r.true_id);
  return ids.size();
}

Result<Dataset> MakeLabeledDataset(const TransitionGraph& graph,
                                   std::vector<TrackingRecord> observed,
                                   std::vector<TrackingRecord> truth) {
  if (observed.size() != truth.size()) {
    return Status::InvalidArgument(
        "observed and truth files hold different record counts (" +
        std::to_string(observed.size()) + " vs " +
        std::to_string(truth.size()) + ")");
  }
  auto by_event = [](const TrackingRecord& a, const TrackingRecord& b) {
    return std::tie(a.ts, a.loc, a.id) < std::tie(b.ts, b.loc, b.id);
  };
  std::sort(observed.begin(), observed.end(), by_event);
  std::sort(truth.begin(), truth.end(), by_event);
  Dataset dataset;
  dataset.graph = graph;
  dataset.records.reserve(observed.size());
  for (size_t i = 0; i < observed.size(); ++i) {
    if (observed[i].ts != truth[i].ts || observed[i].loc != truth[i].loc) {
      return Status::InvalidArgument(
          "record #" + std::to_string(i) +
          " mismatch: observed and truth files must describe the same "
          "(timestamp, location) capture events");
    }
    dataset.records.push_back(GroundTruthRecord{
        std::move(truth[i].id), std::move(observed[i].id), observed[i].loc,
        observed[i].ts});
  }
  return dataset;
}

double Dataset::RecordErrorRate() const {
  if (records.empty()) return 0.0;
  size_t bad = 0;
  for (const auto& r : records) {
    if (r.corrupted()) ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(records.size());
}

}  // namespace idrepair
