#ifndef IDREPAIR_GEN_SYNTHETIC_H_
#define IDREPAIR_GEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "gen/dataset.h"
#include "gen/error_model.h"
#include "gen/travel_time.h"
#include "graph/transition_graph.h"

namespace idrepair {

/// Parameters of the synthetic trajectory workload of §6.1.1.
struct SyntheticConfig {
  /// Number of original (true) trajectories to sample before error
  /// injection. The paper's §6.3 experiments use 500.
  size_t num_trajectories = 500;

  /// Per-record probability of ID misrecognition (paper default 20%).
  double record_error_rate = 0.2;

  /// Per-record probability of removal, applied after error injection
  /// (paper §6.3.3; default 0 = complete dataset).
  double record_missing_rate = 0.0;

  /// Maximum locations in a sampled valid path (should not exceed the θ
  /// used when repairing).
  size_t max_path_len = 8;

  /// Entities enter the area uniformly over this window (seconds).
  Timestamp window_seconds = 3600;

  /// Optional non-uniform weights over the enumerated valid paths (in
  /// EnumerateValidPaths order). Empty = uniform.
  std::vector<double> path_weights;

  /// RNG seed; every dataset is reproducible from its config.
  uint64_t seed = 42;

  /// OCR-style error distance distribution.
  ErrorDistanceDistribution error_distances;

  /// Travel time spread (log-normal sigma).
  double travel_sigma = 0.35;

  /// Range the deterministic per-edge median travel time is drawn from,
  /// seconds. Long chain graphs need shorter legs for full traversals to
  /// fit the η bound (see bench/fig11).
  int64_t travel_median_lo = 60;
  int64_t travel_median_hi = 180;

  /// Rejects out-of-range rates, lengths, and travel/error parameters.
  /// Generation entry points call this, so a typo'd config fails loudly
  /// instead of silently producing a degenerate dataset.
  Status Validate() const;

  /// Validate() as a terminal step, mirroring RepairOptions::Validated():
  ///   auto config = raw_config.Validated();
  ///   if (!config.ok()) return config.status();
  Result<SyntheticConfig> Validated() const {
    IDREPAIR_RETURN_NOT_OK(Validate());
    return *this;
  }
};

/// Samples `config.num_trajectories` error-free trajectories on `graph`:
/// random valid paths, unique 7–9 letter IDs, per-edge travel times, start
/// times uniform in the window. Records come back chronologically sorted
/// with observed == true IDs.
Result<Dataset> GenerateCleanDataset(const TransitionGraph& graph,
                                     const SyntheticConfig& config);

/// Corrupts each record's observed ID with probability `rate`, drawing the
/// replacement from `model` while avoiding other entities' true IDs.
/// Re-running with different rates on the same clean dataset reproduces the
/// Fig 12 cohort ("injecting ID errors ... into an identical original
/// trajectory set").
void InjectIdErrors(Dataset& dataset, double rate, const IdErrorModel& model,
                    Rng& rng);

/// Removes each record independently with probability `rate` (Fig 13).
void InjectMissingRecords(Dataset& dataset, double rate, Rng& rng);

/// GenerateCleanDataset + InjectIdErrors + InjectMissingRecords in one call,
/// per `config`.
Result<Dataset> GenerateSyntheticDataset(const TransitionGraph& graph,
                                         const SyntheticConfig& config);

}  // namespace idrepair

#endif  // IDREPAIR_GEN_SYNTHETIC_H_
