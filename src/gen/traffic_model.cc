#include "gen/traffic_model.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <tuple>
#include <utility>

#include "gen/id_generator.h"

namespace idrepair {

namespace {

void SortChronological(std::vector<GroundTruthRecord>& records) {
  std::sort(records.begin(), records.end(),
            [](const GroundTruthRecord& a, const GroundTruthRecord& b) {
              return std::tie(a.ts, a.loc, a.true_id) <
                     std::tie(b.ts, b.loc, b.true_id);
            });
}

}  // namespace

Status TrafficConfig::Validate() const {
  if (num_trips == 0) {
    return Status::InvalidArgument("num_trips must be positive");
  }
  if (window_seconds < 1) {
    return Status::InvalidArgument("window_seconds must be >= 1");
  }
  if (diurnal_peak_fraction < 0.0 || diurnal_peak_fraction > 1.0) {
    return Status::InvalidArgument("diurnal_peak_fraction must be in [0, 1]");
  }
  if (diurnal_peak_width <= 0.0 || diurnal_peak_width > 0.5) {
    return Status::InvalidArgument("diurnal_peak_width must be in (0, 0.5]");
  }
  if (arrivals == ArrivalProcess::kBursty) {
    if (burst_count == 0 || burst_seconds < 1) {
      return Status::InvalidArgument(
          "bursty arrivals need burst_count >= 1 and burst_seconds >= 1");
    }
  }
  if (burst_fraction < 0.0 || burst_fraction > 1.0) {
    return Status::InvalidArgument("burst_fraction must be in [0, 1]");
  }
  if (origin_zipf_s < 0.0) {
    return Status::InvalidArgument("origin_zipf_s must be >= 0");
  }
  if (mean_trips_per_entity < 1.0) {
    return Status::InvalidArgument("mean_trips_per_entity must be >= 1");
  }
  if (min_park_seconds < 0) {
    return Status::InvalidArgument("min_park_seconds must be >= 0");
  }
  if (min_trip_len < 1 || max_trip_len < min_trip_len) {
    return Status::InvalidArgument(
        "trip lengths need 1 <= min_trip_len <= max_trip_len");
  }
  if (exit_prob < 0.0 || exit_prob > 1.0) {
    return Status::InvalidArgument("exit_prob must be in [0, 1]");
  }
  return Status::OK();
}

Result<Dataset> GenerateTraffic(const RoadNetwork& network,
                                const TrafficConfig& config) {
  IDREPAIR_RETURN_NOT_OK(config.Validate());
  // Trips must fit the hop budget from their first step.
  std::vector<LocationId> origins;
  for (LocationId o : network.origins()) {
    if (network.HopsToExit(o) + 1 <= config.max_trip_len) origins.push_back(o);
  }
  if (origins.empty()) {
    return Status::InvalidArgument(
        "no origin reaches an exit within max_trip_len locations");
  }

  // Independent child streams per concern, forked in fixed order: changing
  // e.g. the dropout draw count must not perturb routes or arrivals.
  Rng root(config.seed ^ 0x714eb49bad5c9d1dULL);
  Rng arrival_rng = root.Fork();
  Rng route_rng = root.Fork();
  Rng id_rng = root.Fork();
  Rng fleet_rng = root.Fork();
  Rng dropout_rng = root.Fork();
  Rng popularity_rng = root.Fork();

  // Zipf popularity: rank origins by a seeded shuffle, weight 1/(rank+1)^s,
  // then sample by binary search on the cumulative weights (cheaper and
  // draw-stable compared to rebuilding a discrete_distribution per trip).
  std::vector<double> cumulative;
  if (config.origin_zipf_s > 0.0) {
    popularity_rng.Shuffle(origins.begin(), origins.end());
    cumulative.resize(origins.size());
    double total = 0.0;
    for (size_t i = 0; i < origins.size(); ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), config.origin_zipf_s);
      cumulative[i] = total;
    }
  }
  auto sample_origin = [&]() -> LocationId {
    if (cumulative.empty()) {
      return origins[route_rng.UniformIndex(origins.size())];
    }
    double u = route_rng.UniformReal(0.0, cumulative.back());
    size_t i = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    return origins[std::min(i, origins.size() - 1)];
  };

  const Timestamp window = config.window_seconds;
  auto sample_arrival = [&]() -> Timestamp {
    switch (config.arrivals) {
      case ArrivalProcess::kUniform:
        return arrival_rng.UniformInt(0, window);
      case ArrivalProcess::kDiurnal: {
        if (!arrival_rng.Bernoulli(config.diurnal_peak_fraction)) {
          return arrival_rng.UniformInt(0, window);
        }
        double center = arrival_rng.Bernoulli(0.5) ? 0.25 : 0.75;
        double ts = std::normal_distribution<double>(
            center * static_cast<double>(window),
            config.diurnal_peak_width * static_cast<double>(window))(
            arrival_rng.engine());
        return std::clamp<Timestamp>(static_cast<Timestamp>(ts), 0, window);
      }
      case ArrivalProcess::kBursty: {
        if (!arrival_rng.Bernoulli(config.burst_fraction)) {
          return arrival_rng.UniformInt(0, window);
        }
        size_t k = arrival_rng.UniformIndex(config.burst_count);
        // Burst centers are evenly spaced; the burst itself is uniform.
        Timestamp center = static_cast<Timestamp>(
            (static_cast<double>(k) + 0.5) * static_cast<double>(window) /
            static_cast<double>(config.burst_count));
        Timestamp start =
            std::max<Timestamp>(0, center - config.burst_seconds / 2);
        return std::min<Timestamp>(
            window, start + arrival_rng.UniformInt(0, config.burst_seconds));
      }
    }
    return 0;  // unreachable
  };

  struct Trip {
    Timestamp arrival;
    LocationId origin;
  };
  std::vector<Trip> trips;
  trips.reserve(config.num_trips);
  for (size_t t = 0; t < config.num_trips; ++t) {
    trips.push_back(Trip{sample_arrival(), sample_origin()});
  }
  std::sort(trips.begin(), trips.end(), [](const Trip& a, const Trip& b) {
    return std::tie(a.arrival, a.origin) < std::tie(b.arrival, b.origin);
  });

  // Fleet churn: vehicles park after a trip and may be re-dispatched for a
  // later one under the same ID once their idle gap has passed — never two
  // overlapping trips for one vehicle, so the ground truth stays physically
  // possible.
  struct ParkedVehicle {
    Timestamp free_at;
    std::string id;
  };
  std::vector<ParkedVehicle> parked;
  double reuse_p = 1.0 - 1.0 / config.mean_trips_per_entity;

  UniqueIdGenerator ids;
  Dataset dataset;
  dataset.graph = network.graph();
  dataset.records.reserve(config.num_trips * config.max_trip_len / 2);
  std::vector<size_t> eligible;
  for (const Trip& trip : trips) {
    std::vector<LocationId> path =
        network.SampleTrip(trip.origin, config.min_trip_len,
                           config.max_trip_len, config.exit_prob, route_rng);
    std::string id;
    if (reuse_p > 0.0 && fleet_rng.Bernoulli(reuse_p)) {
      eligible.clear();
      for (size_t i = 0; i < parked.size(); ++i) {
        if (parked[i].free_at <= trip.arrival) eligible.push_back(i);
      }
      if (!eligible.empty()) {
        size_t pick = eligible[fleet_rng.UniformIndex(eligible.size())];
        id = std::move(parked[pick].id);
        parked.erase(parked.begin() + static_cast<ptrdiff_t>(pick));
      }
    }
    if (id.empty()) id = ids.Next(id_rng);

    Timestamp ts = trip.arrival;
    for (size_t i = 0; i < path.size(); ++i) {
      if (i > 0) ts += network.SampleTravelSeconds(path[i - 1], path[i], route_rng);
      bool dropped = network.InDropoutRegion(path[i]) &&
                     dropout_rng.Bernoulli(network.dropout_miss_rate());
      if (!dropped) {
        dataset.records.push_back(GroundTruthRecord{id, id, path[i], ts});
      }
    }
    parked.push_back(ParkedVehicle{ts + config.min_park_seconds, std::move(id)});
  }
  SortChronological(dataset.records);
  return dataset;
}

}  // namespace idrepair
