#ifndef IDREPAIR_GEN_SCENARIO_CATALOG_H_
#define IDREPAIR_GEN_SCENARIO_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gen/dataset.h"
#include "gen/road_network.h"
#include "gen/traffic_model.h"
#include "graph/types.h"

namespace idrepair {

/// Which error model corrupts a catalog scenario's clean traffic.
enum class ScenarioError {
  kOcr,            // gen/error_model.h distance distribution (§6.1.1)
  kNearMiss,       // adversarial: corruptions collide with other entities
  kPrefixTies,     // fleet-prefix relabel + engineered Eq. 1 ties
  kBurstStuckCam,  // correlated stuck-camera bursts
};

/// One named city-scale workload: topology x traffic x error model, plus
/// the θ/η the repair engines should run it with. The whole generation
/// stack is a pure function of this struct — BuildScenarioDataset twice
/// yields byte-identical records.
struct ScenarioCatalogEntry {
  std::string name;
  RoadNetworkConfig network;
  TrafficConfig traffic;
  ScenarioError errors = ScenarioError::kOcr;
  double error_rate = 0.2;  // per-record rate for kOcr / kNearMiss
  size_t theta = 8;
  Timestamp eta = 1800;
  bool bursty = false;  // bursty arrivals (the streaming stress shape)
};

/// The workload catalog shared by the scenario test tier, the scenario
/// bench, and the chaos/fuzz arms (documented in EXPERIMENTS.md). `light`
/// shrinks every scenario (smaller networks, half the trips) so sanitizer
/// lanes can afford the matrix; the full catalog includes a 10k+-vertex
/// grid and at least two adversarial error models.
std::vector<ScenarioCatalogEntry> ScenarioCatalog(bool light);

/// Convenience lookup by name from ScenarioCatalog(light); aborts via
/// Status if the name is unknown.
Result<ScenarioCatalogEntry> FindScenario(const std::string& name, bool light);

/// Builds the labeled dataset of one entry from scratch: road network,
/// clean traffic, then the entry's error model.
Result<Dataset> BuildScenarioDataset(const ScenarioCatalogEntry& entry);

}  // namespace idrepair

#endif  // IDREPAIR_GEN_SCENARIO_CATALOG_H_
