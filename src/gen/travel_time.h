#ifndef IDREPAIR_GEN_TRAVEL_TIME_H_
#define IDREPAIR_GEN_TRAVEL_TIME_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "graph/types.h"
#include "traj/tracking_record.h"

namespace idrepair {

/// Edge travel-time model standing in for the paper's empirical travel-time
/// distribution (DESIGN.md §5): per-edge log-normal, with a deterministic
/// per-edge median in [median_lo, median_hi] seconds derived from the edge
/// endpoints, so the same edge is consistently "fast" or "slow".
class TravelTimeModel {
 public:
  explicit TravelTimeModel(double sigma = 0.35, int64_t median_lo = 60,
                           int64_t median_hi = 180)
      : sigma_(sigma), median_lo_(median_lo), median_hi_(median_hi) {}

  /// Samples a travel time in whole seconds (always >= 1, so merged record
  /// sequences have strictly increasing timestamps).
  Timestamp SampleSeconds(LocationId from, LocationId to, Rng& rng) const {
    double median = MedianSeconds(from, to);
    double t = rng.LogNormal(std::log(median), sigma_);
    return std::max<Timestamp>(1, static_cast<Timestamp>(t));
  }

  /// The deterministic median for an edge.
  double MedianSeconds(LocationId from, LocationId to) const {
    // Cheap integer hash of the edge; stable across runs.
    uint64_t h = (static_cast<uint64_t>(from) << 32) | to;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    int64_t span = median_hi_ - median_lo_ + 1;
    return static_cast<double>(median_lo_ +
                               static_cast<int64_t>(h % span));
  }

 private:
  double sigma_;
  int64_t median_lo_;
  int64_t median_hi_;
};

}  // namespace idrepair

#endif  // IDREPAIR_GEN_TRAVEL_TIME_H_
