#ifndef IDREPAIR_GEN_DATASET_H_
#define IDREPAIR_GEN_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/transition_graph.h"
#include "traj/tracking_record.h"
#include "traj/trajectory_set.h"

namespace idrepair {

/// A tracking record together with its ground-truth ID. The observed ID is
/// what the (simulated) recognition pipeline produced; the true ID is the
/// entity that actually passed the device.
struct GroundTruthRecord {
  std::string true_id;
  std::string observed_id;
  LocationId loc = kInvalidLocation;
  Timestamp ts = 0;

  bool corrupted() const { return true_id != observed_id; }

  friend bool operator==(const GroundTruthRecord& a,
                         const GroundTruthRecord& b) = default;
};

/// A labeled dataset: the transition graph plus ground-truth-annotated
/// records. This mirrors the paper's manually labeled real dataset ("we
/// obtain a labeled dataset that contains both the raw and the true
/// values", §6.1.1).
struct Dataset {
  TransitionGraph graph;
  /// Record order is not significant; the bundled generators emit
  /// chronologically sorted records, and trajectory construction re-sorts.
  std::vector<GroundTruthRecord> records;

  /// Records as the repair pipeline sees them (observed IDs).
  std::vector<TrackingRecord> ObservedRecords() const;

  /// Records with ground-truth IDs (the error-free view).
  std::vector<TrackingRecord> TrueRecords() const;

  /// Trajectories composed from observed IDs — the repair input.
  TrajectorySet BuildObservedTrajectories() const;

  /// Trajectories composed from true IDs — the repair target.
  TrajectorySet BuildTrueTrajectories() const;

  /// Number of distinct true entities.
  size_t NumEntities() const;

  /// Fraction of records whose observed ID differs from the true ID.
  double RecordErrorRate() const;
};

/// Builds a labeled dataset from two parallel record files: the observed
/// records and the manually labeled true records. Records are matched by
/// (timestamp, location) — the fields the paper assumes error-free — so the
/// files may be in any order but must describe the same capture events.
Result<Dataset> MakeLabeledDataset(const TransitionGraph& graph,
                                   std::vector<TrackingRecord> observed,
                                   std::vector<TrackingRecord> truth);

}  // namespace idrepair

#endif  // IDREPAIR_GEN_DATASET_H_
