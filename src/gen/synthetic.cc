#include "gen/synthetic.h"

#include <algorithm>
#include <tuple>
#include <unordered_set>

#include "gen/id_generator.h"
#include "graph/paths.h"

namespace idrepair {

namespace {

void SortChronological(std::vector<GroundTruthRecord>& records) {
  std::sort(records.begin(), records.end(),
            [](const GroundTruthRecord& a, const GroundTruthRecord& b) {
              return std::tie(a.ts, a.loc, a.true_id) <
                     std::tie(b.ts, b.loc, b.true_id);
            });
}

}  // namespace

Status SyntheticConfig::Validate() const {
  if (record_error_rate < 0.0 || record_error_rate > 1.0) {
    return Status::InvalidArgument("record_error_rate must be in [0, 1]");
  }
  if (record_missing_rate < 0.0 || record_missing_rate > 1.0) {
    return Status::InvalidArgument("record_missing_rate must be in [0, 1]");
  }
  if (max_path_len == 0) {
    return Status::InvalidArgument("max_path_len must be positive");
  }
  if (window_seconds < 0) {
    return Status::InvalidArgument("window_seconds must be >= 0");
  }
  for (double w : path_weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("path_weights must be non-negative");
    }
  }
  if (error_distances.probs_by_distance.empty()) {
    return Status::InvalidArgument("error_distances must not be empty");
  }
  double prob_sum = 0.0;
  for (double p : error_distances.probs_by_distance) {
    if (p < 0.0) {
      return Status::InvalidArgument(
          "error_distances probabilities must be non-negative");
    }
    prob_sum += p;
  }
  if (prob_sum <= 0.0) {
    return Status::InvalidArgument(
        "error_distances needs at least one positive probability");
  }
  if (travel_sigma < 0.0) {
    return Status::InvalidArgument("travel_sigma must be >= 0");
  }
  if (travel_median_lo < 1 || travel_median_hi < travel_median_lo) {
    return Status::InvalidArgument(
        "travel medians need 1 <= median_lo <= median_hi");
  }
  return Status::OK();
}

Result<Dataset> GenerateCleanDataset(const TransitionGraph& graph,
                                     const SyntheticConfig& config) {
  IDREPAIR_RETURN_NOT_OK(config.Validate());
  IDREPAIR_RETURN_NOT_OK(graph.Validate());
  auto sampler = ValidPathSampler::Create(graph, config.max_path_len);
  if (!sampler.ok()) return sampler.status();
  if (!config.path_weights.empty() &&
      config.path_weights.size() != sampler->num_paths()) {
    return Status::InvalidArgument(
        "path_weights size does not match the number of valid paths (" +
        std::to_string(sampler->num_paths()) + ")");
  }

  Rng rng(config.seed);
  UniqueIdGenerator ids;
  TravelTimeModel travel(config.travel_sigma, config.travel_median_lo,
                         config.travel_median_hi);

  Dataset dataset;
  dataset.graph = graph;
  dataset.records.reserve(config.num_trajectories * 3);
  for (size_t e = 0; e < config.num_trajectories; ++e) {
    const std::vector<LocationId>& path =
        config.path_weights.empty()
            ? sampler->Sample(rng)
            : sampler->paths()[rng.WeightedIndex(config.path_weights)];
    std::string id = ids.Next(rng);
    Timestamp ts = rng.UniformInt(0, config.window_seconds);
    for (size_t i = 0; i < path.size(); ++i) {
      if (i > 0) ts += travel.SampleSeconds(path[i - 1], path[i], rng);
      dataset.records.push_back(GroundTruthRecord{id, id, path[i], ts});
    }
  }
  SortChronological(dataset.records);
  return dataset;
}

void InjectIdErrors(Dataset& dataset, double rate, const IdErrorModel& model,
                    Rng& rng) {
  // A corrupted ID must not collide with any entity's true ID (sparsity of
  // IDs, §2.3): collect the true-ID universe once.
  std::unordered_set<std::string> true_ids;
  for (const auto& r : dataset.records) true_ids.insert(r.true_id);
  auto is_taken = [&true_ids](const std::string& candidate) {
    return true_ids.count(candidate) > 0;
  };
  for (auto& r : dataset.records) {
    if (!rng.Bernoulli(rate)) continue;
    r.observed_id = model.Mutate(r.true_id, rng, is_taken);
  }
}

void InjectMissingRecords(Dataset& dataset, double rate, Rng& rng) {
  std::vector<GroundTruthRecord> kept;
  kept.reserve(dataset.records.size());
  for (auto& r : dataset.records) {
    if (!rng.Bernoulli(rate)) kept.push_back(std::move(r));
  }
  dataset.records = std::move(kept);
}

Result<Dataset> GenerateSyntheticDataset(const TransitionGraph& graph,
                                         const SyntheticConfig& config) {
  auto dataset = GenerateCleanDataset(graph, config);
  if (!dataset.ok()) return dataset.status();
  // Independent child RNGs per stage: changing the error rate must not
  // perturb which records go missing, and vice versa.
  Rng stage_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  Rng error_rng = stage_rng.Fork();
  Rng missing_rng = stage_rng.Fork();
  IdErrorModel model(config.error_distances);
  InjectIdErrors(*dataset, config.record_error_rate, model, error_rng);
  InjectMissingRecords(*dataset, config.record_missing_rate, missing_rng);
  return dataset;
}

}  // namespace idrepair
