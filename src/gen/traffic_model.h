#ifndef IDREPAIR_GEN_TRAFFIC_MODEL_H_
#define IDREPAIR_GEN_TRAFFIC_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "gen/dataset.h"
#include "gen/road_network.h"

namespace idrepair {

/// When trips enter the network over the observation window.
enum class ArrivalProcess {
  /// Uniform over the window (the paper's §6.1.1 model).
  kUniform,
  /// Two rush-hour peaks (centered at 25% and 75% of the window) over a
  /// uniform base load.
  kDiurnal,
  /// A handful of short bursts holding most of the traffic — incident
  /// shockwaves; the shape that stresses streaming watermarks and LIG time
  /// bins.
  kBursty,
};

/// Temporal/popularity structure of a city-scale workload.
struct TrafficConfig {
  /// Trips to sample (one trip = one pass entrance -> exit).
  size_t num_trips = 400;

  /// Observation window in seconds.
  Timestamp window_seconds = 7200;

  ArrivalProcess arrivals = ArrivalProcess::kUniform;

  /// kDiurnal: fraction of trips inside the two rush peaks, and peak
  /// standard deviation as a fraction of the window.
  double diurnal_peak_fraction = 0.7;
  double diurnal_peak_width = 0.06;

  /// kBursty: burst_count bursts of burst_seconds each, holding
  /// burst_fraction of all trips (the rest arrive uniformly).
  size_t burst_count = 6;
  Timestamp burst_seconds = 180;
  double burst_fraction = 0.8;

  /// Zipf exponent of trip-origin popularity: weight of the i-th most
  /// popular origin is 1/(i+1)^s over a seed-shuffled ranking. 0 = uniform
  /// (every origin equally busy); 1+ = a few arterial gates dominate.
  double origin_zipf_s = 0.0;

  /// Fleet churn: expected trips per vehicle over the window. 1 = every
  /// trip is a fresh vehicle (maximum churn, the paper's model); larger
  /// values re-dispatch parked vehicles for later trips under the same ID,
  /// so one observed ID groups multiple well-separated passes.
  double mean_trips_per_entity = 1.0;

  /// Minimum idle seconds between two trips of the same vehicle.
  Timestamp min_park_seconds = 600;

  /// Trip length bounds in locations (max should not exceed repair θ) and
  /// the per-visit stop probability once a trip stands on an exit.
  size_t min_trip_len = 2;
  size_t max_trip_len = 8;
  double exit_prob = 0.5;

  /// Seeds every draw; same network + config = byte-identical dataset.
  uint64_t seed = 1;

  Status Validate() const;

  /// Status-returning self-check, mirroring RepairOptions::Validated().
  Result<TrafficConfig> Validated() const {
    IDREPAIR_RETURN_NOT_OK(Validate());
    return *this;
  }
};

/// Samples a clean (error-free) labeled dataset of `config.num_trips` trips
/// over `network`: guided random-walk valid paths, unique 7–9 letter IDs,
/// per-edge travel times, arrivals per the configured process, origin
/// popularity per the Zipf knob, and camera-dropout record removal per the
/// network's dropout regions. Records come back chronologically sorted with
/// observed == true IDs; feed them to gen/adversarial.h or InjectIdErrors
/// for corruption.
Result<Dataset> GenerateTraffic(const RoadNetwork& network,
                                const TrafficConfig& config);

}  // namespace idrepair

#endif  // IDREPAIR_GEN_TRAFFIC_MODEL_H_
