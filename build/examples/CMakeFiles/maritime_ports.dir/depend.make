# Empty dependencies file for maritime_ports.
# This may be replaced when dependencies are built.
