file(REMOVE_RECURSE
  "CMakeFiles/maritime_ports.dir/maritime_ports.cpp.o"
  "CMakeFiles/maritime_ports.dir/maritime_ports.cpp.o.d"
  "maritime_ports"
  "maritime_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maritime_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
