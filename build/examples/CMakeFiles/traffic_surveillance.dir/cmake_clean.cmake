file(REMOVE_RECURSE
  "CMakeFiles/traffic_surveillance.dir/traffic_surveillance.cpp.o"
  "CMakeFiles/traffic_surveillance.dir/traffic_surveillance.cpp.o.d"
  "traffic_surveillance"
  "traffic_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
