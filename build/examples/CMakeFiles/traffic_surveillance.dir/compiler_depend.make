# Empty compiler generated dependencies file for traffic_surveillance.
# This may be replaced when dependencies are built.
