file(REMOVE_RECURSE
  "CMakeFiles/composite_ids.dir/composite_ids.cpp.o"
  "CMakeFiles/composite_ids.dir/composite_ids.cpp.o.d"
  "composite_ids"
  "composite_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
