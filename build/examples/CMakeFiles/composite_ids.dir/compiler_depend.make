# Empty compiler generated dependencies file for composite_ids.
# This may be replaced when dependencies are built.
