file(REMOVE_RECURSE
  "CMakeFiles/streaming_repair.dir/streaming_repair.cpp.o"
  "CMakeFiles/streaming_repair.dir/streaming_repair.cpp.o.d"
  "streaming_repair"
  "streaming_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
