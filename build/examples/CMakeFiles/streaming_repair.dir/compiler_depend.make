# Empty compiler generated dependencies file for streaming_repair.
# This may be replaced when dependencies are built.
