
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/explain_test.cc" "tests/CMakeFiles/explain_test.dir/explain_test.cc.o" "gcc" "tests/CMakeFiles/explain_test.dir/explain_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idrepair_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/idrepair_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idrepair_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/idrepair_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/idrepair_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/lig/CMakeFiles/idrepair_lig.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/idrepair_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/idrepair_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/idrepair_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/idrepair_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
