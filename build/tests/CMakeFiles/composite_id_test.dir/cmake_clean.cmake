file(REMOVE_RECURSE
  "CMakeFiles/composite_id_test.dir/composite_id_test.cc.o"
  "CMakeFiles/composite_id_test.dir/composite_id_test.cc.o.d"
  "composite_id_test"
  "composite_id_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
