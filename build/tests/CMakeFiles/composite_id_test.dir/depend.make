# Empty dependencies file for composite_id_test.
# This may be replaced when dependencies are built.
