# Empty compiler generated dependencies file for repairer_test.
# This may be replaced when dependencies are built.
