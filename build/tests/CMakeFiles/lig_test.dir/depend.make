# Empty dependencies file for lig_test.
# This may be replaced when dependencies are built.
