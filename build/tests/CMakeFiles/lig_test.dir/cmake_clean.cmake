file(REMOVE_RECURSE
  "CMakeFiles/lig_test.dir/lig_test.cc.o"
  "CMakeFiles/lig_test.dir/lig_test.cc.o.d"
  "lig_test"
  "lig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
