# Empty compiler generated dependencies file for idrepair_cli.
# This may be replaced when dependencies are built.
