file(REMOVE_RECURSE
  "CMakeFiles/idrepair_cli.dir/idrepair_cli.cc.o"
  "CMakeFiles/idrepair_cli.dir/idrepair_cli.cc.o.d"
  "idrepair_cli"
  "idrepair_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
