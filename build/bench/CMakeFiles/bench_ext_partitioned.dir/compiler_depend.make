# Empty compiler generated dependencies file for bench_ext_partitioned.
# This may be replaced when dependencies are built.
