file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_partitioned.dir/bench_ext_partitioned.cc.o"
  "CMakeFiles/bench_ext_partitioned.dir/bench_ext_partitioned.cc.o.d"
  "bench_ext_partitioned"
  "bench_ext_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
