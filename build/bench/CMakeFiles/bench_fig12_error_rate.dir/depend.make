# Empty dependencies file for bench_fig12_error_rate.
# This may be replaced when dependencies are built.
