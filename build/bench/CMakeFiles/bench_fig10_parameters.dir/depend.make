# Empty dependencies file for bench_fig10_parameters.
# This may be replaced when dependencies are built.
