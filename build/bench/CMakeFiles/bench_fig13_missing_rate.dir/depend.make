# Empty dependencies file for bench_fig13_missing_rate.
# This may be replaced when dependencies are built.
