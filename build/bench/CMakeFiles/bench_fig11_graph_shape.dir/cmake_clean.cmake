file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_graph_shape.dir/bench_fig11_graph_shape.cc.o"
  "CMakeFiles/bench_fig11_graph_shape.dir/bench_fig11_graph_shape.cc.o.d"
  "bench_fig11_graph_shape"
  "bench_fig11_graph_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_graph_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
