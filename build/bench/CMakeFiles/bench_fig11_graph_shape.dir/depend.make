# Empty dependencies file for bench_fig11_graph_shape.
# This may be replaced when dependencies are built.
