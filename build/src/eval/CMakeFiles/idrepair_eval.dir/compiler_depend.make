# Empty compiler generated dependencies file for idrepair_eval.
# This may be replaced when dependencies are built.
