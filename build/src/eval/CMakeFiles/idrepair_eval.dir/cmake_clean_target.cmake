file(REMOVE_RECURSE
  "libidrepair_eval.a"
)
