file(REMOVE_RECURSE
  "CMakeFiles/idrepair_eval.dir/diagnostics.cc.o"
  "CMakeFiles/idrepair_eval.dir/diagnostics.cc.o.d"
  "CMakeFiles/idrepair_eval.dir/metrics.cc.o"
  "CMakeFiles/idrepair_eval.dir/metrics.cc.o.d"
  "libidrepair_eval.a"
  "libidrepair_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
