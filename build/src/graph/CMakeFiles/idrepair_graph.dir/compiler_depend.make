# Empty compiler generated dependencies file for idrepair_graph.
# This may be replaced when dependencies are built.
