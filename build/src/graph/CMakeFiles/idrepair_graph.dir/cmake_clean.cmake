file(REMOVE_RECURSE
  "CMakeFiles/idrepair_graph.dir/generators.cc.o"
  "CMakeFiles/idrepair_graph.dir/generators.cc.o.d"
  "CMakeFiles/idrepair_graph.dir/paths.cc.o"
  "CMakeFiles/idrepair_graph.dir/paths.cc.o.d"
  "CMakeFiles/idrepair_graph.dir/reachability.cc.o"
  "CMakeFiles/idrepair_graph.dir/reachability.cc.o.d"
  "CMakeFiles/idrepair_graph.dir/serialization.cc.o"
  "CMakeFiles/idrepair_graph.dir/serialization.cc.o.d"
  "CMakeFiles/idrepair_graph.dir/transition_graph.cc.o"
  "CMakeFiles/idrepair_graph.dir/transition_graph.cc.o.d"
  "libidrepair_graph.a"
  "libidrepair_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
