file(REMOVE_RECURSE
  "libidrepair_graph.a"
)
