
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/composite_id.cc" "src/sim/CMakeFiles/idrepair_sim.dir/composite_id.cc.o" "gcc" "src/sim/CMakeFiles/idrepair_sim.dir/composite_id.cc.o.d"
  "/root/repo/src/sim/edit_distance.cc" "src/sim/CMakeFiles/idrepair_sim.dir/edit_distance.cc.o" "gcc" "src/sim/CMakeFiles/idrepair_sim.dir/edit_distance.cc.o.d"
  "/root/repo/src/sim/similarity.cc" "src/sim/CMakeFiles/idrepair_sim.dir/similarity.cc.o" "gcc" "src/sim/CMakeFiles/idrepair_sim.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idrepair_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
