file(REMOVE_RECURSE
  "CMakeFiles/idrepair_sim.dir/composite_id.cc.o"
  "CMakeFiles/idrepair_sim.dir/composite_id.cc.o.d"
  "CMakeFiles/idrepair_sim.dir/edit_distance.cc.o"
  "CMakeFiles/idrepair_sim.dir/edit_distance.cc.o.d"
  "CMakeFiles/idrepair_sim.dir/similarity.cc.o"
  "CMakeFiles/idrepair_sim.dir/similarity.cc.o.d"
  "libidrepair_sim.a"
  "libidrepair_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
