# Empty compiler generated dependencies file for idrepair_sim.
# This may be replaced when dependencies are built.
