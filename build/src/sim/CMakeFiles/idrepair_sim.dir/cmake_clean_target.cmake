file(REMOVE_RECURSE
  "libidrepair_sim.a"
)
