file(REMOVE_RECURSE
  "CMakeFiles/idrepair_repair.dir/candidates.cc.o"
  "CMakeFiles/idrepair_repair.dir/candidates.cc.o.d"
  "CMakeFiles/idrepair_repair.dir/cliques.cc.o"
  "CMakeFiles/idrepair_repair.dir/cliques.cc.o.d"
  "CMakeFiles/idrepair_repair.dir/explain.cc.o"
  "CMakeFiles/idrepair_repair.dir/explain.cc.o.d"
  "CMakeFiles/idrepair_repair.dir/partitioned.cc.o"
  "CMakeFiles/idrepair_repair.dir/partitioned.cc.o.d"
  "CMakeFiles/idrepair_repair.dir/predicates.cc.o"
  "CMakeFiles/idrepair_repair.dir/predicates.cc.o.d"
  "CMakeFiles/idrepair_repair.dir/repair_graph.cc.o"
  "CMakeFiles/idrepair_repair.dir/repair_graph.cc.o.d"
  "CMakeFiles/idrepair_repair.dir/repairer.cc.o"
  "CMakeFiles/idrepair_repair.dir/repairer.cc.o.d"
  "CMakeFiles/idrepair_repair.dir/selectors.cc.o"
  "CMakeFiles/idrepair_repair.dir/selectors.cc.o.d"
  "CMakeFiles/idrepair_repair.dir/trajectory_graph.cc.o"
  "CMakeFiles/idrepair_repair.dir/trajectory_graph.cc.o.d"
  "libidrepair_repair.a"
  "libidrepair_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
