
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repair/candidates.cc" "src/repair/CMakeFiles/idrepair_repair.dir/candidates.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/candidates.cc.o.d"
  "/root/repo/src/repair/cliques.cc" "src/repair/CMakeFiles/idrepair_repair.dir/cliques.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/cliques.cc.o.d"
  "/root/repo/src/repair/explain.cc" "src/repair/CMakeFiles/idrepair_repair.dir/explain.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/explain.cc.o.d"
  "/root/repo/src/repair/partitioned.cc" "src/repair/CMakeFiles/idrepair_repair.dir/partitioned.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/partitioned.cc.o.d"
  "/root/repo/src/repair/predicates.cc" "src/repair/CMakeFiles/idrepair_repair.dir/predicates.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/predicates.cc.o.d"
  "/root/repo/src/repair/repair_graph.cc" "src/repair/CMakeFiles/idrepair_repair.dir/repair_graph.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/repair_graph.cc.o.d"
  "/root/repo/src/repair/repairer.cc" "src/repair/CMakeFiles/idrepair_repair.dir/repairer.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/repairer.cc.o.d"
  "/root/repo/src/repair/selectors.cc" "src/repair/CMakeFiles/idrepair_repair.dir/selectors.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/selectors.cc.o.d"
  "/root/repo/src/repair/trajectory_graph.cc" "src/repair/CMakeFiles/idrepair_repair.dir/trajectory_graph.cc.o" "gcc" "src/repair/CMakeFiles/idrepair_repair.dir/trajectory_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idrepair_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/idrepair_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/idrepair_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idrepair_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lig/CMakeFiles/idrepair_lig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
