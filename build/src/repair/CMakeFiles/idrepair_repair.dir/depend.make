# Empty dependencies file for idrepair_repair.
# This may be replaced when dependencies are built.
