file(REMOVE_RECURSE
  "libidrepair_repair.a"
)
