file(REMOVE_RECURSE
  "CMakeFiles/idrepair_lig.dir/length_indexed_grids.cc.o"
  "CMakeFiles/idrepair_lig.dir/length_indexed_grids.cc.o.d"
  "libidrepair_lig.a"
  "libidrepair_lig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_lig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
