file(REMOVE_RECURSE
  "libidrepair_lig.a"
)
