# Empty compiler generated dependencies file for idrepair_lig.
# This may be replaced when dependencies are built.
