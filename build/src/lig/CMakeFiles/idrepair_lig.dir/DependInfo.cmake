
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lig/length_indexed_grids.cc" "src/lig/CMakeFiles/idrepair_lig.dir/length_indexed_grids.cc.o" "gcc" "src/lig/CMakeFiles/idrepair_lig.dir/length_indexed_grids.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idrepair_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/idrepair_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/idrepair_traj.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
