file(REMOVE_RECURSE
  "libidrepair_baselines.a"
)
