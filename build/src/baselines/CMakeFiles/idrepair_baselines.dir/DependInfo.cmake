
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/id_similarity_repairer.cc" "src/baselines/CMakeFiles/idrepair_baselines.dir/id_similarity_repairer.cc.o" "gcc" "src/baselines/CMakeFiles/idrepair_baselines.dir/id_similarity_repairer.cc.o.d"
  "/root/repo/src/baselines/neighborhood_repairer.cc" "src/baselines/CMakeFiles/idrepair_baselines.dir/neighborhood_repairer.cc.o" "gcc" "src/baselines/CMakeFiles/idrepair_baselines.dir/neighborhood_repairer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idrepair_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/idrepair_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/idrepair_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idrepair_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lig/CMakeFiles/idrepair_lig.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/idrepair_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
