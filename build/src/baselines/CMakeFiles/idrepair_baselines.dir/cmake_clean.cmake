file(REMOVE_RECURSE
  "CMakeFiles/idrepair_baselines.dir/id_similarity_repairer.cc.o"
  "CMakeFiles/idrepair_baselines.dir/id_similarity_repairer.cc.o.d"
  "CMakeFiles/idrepair_baselines.dir/neighborhood_repairer.cc.o"
  "CMakeFiles/idrepair_baselines.dir/neighborhood_repairer.cc.o.d"
  "libidrepair_baselines.a"
  "libidrepair_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
