# Empty dependencies file for idrepair_baselines.
# This may be replaced when dependencies are built.
