# Empty dependencies file for idrepair_gen.
# This may be replaced when dependencies are built.
