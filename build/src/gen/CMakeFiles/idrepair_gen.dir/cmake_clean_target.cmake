file(REMOVE_RECURSE
  "libidrepair_gen.a"
)
