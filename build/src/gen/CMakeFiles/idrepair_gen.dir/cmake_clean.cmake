file(REMOVE_RECURSE
  "CMakeFiles/idrepair_gen.dir/dataset.cc.o"
  "CMakeFiles/idrepair_gen.dir/dataset.cc.o.d"
  "CMakeFiles/idrepair_gen.dir/error_model.cc.o"
  "CMakeFiles/idrepair_gen.dir/error_model.cc.o.d"
  "CMakeFiles/idrepair_gen.dir/id_generator.cc.o"
  "CMakeFiles/idrepair_gen.dir/id_generator.cc.o.d"
  "CMakeFiles/idrepair_gen.dir/real_like.cc.o"
  "CMakeFiles/idrepair_gen.dir/real_like.cc.o.d"
  "CMakeFiles/idrepair_gen.dir/synthetic.cc.o"
  "CMakeFiles/idrepair_gen.dir/synthetic.cc.o.d"
  "libidrepair_gen.a"
  "libidrepair_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
