
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/dataset.cc" "src/gen/CMakeFiles/idrepair_gen.dir/dataset.cc.o" "gcc" "src/gen/CMakeFiles/idrepair_gen.dir/dataset.cc.o.d"
  "/root/repo/src/gen/error_model.cc" "src/gen/CMakeFiles/idrepair_gen.dir/error_model.cc.o" "gcc" "src/gen/CMakeFiles/idrepair_gen.dir/error_model.cc.o.d"
  "/root/repo/src/gen/id_generator.cc" "src/gen/CMakeFiles/idrepair_gen.dir/id_generator.cc.o" "gcc" "src/gen/CMakeFiles/idrepair_gen.dir/id_generator.cc.o.d"
  "/root/repo/src/gen/real_like.cc" "src/gen/CMakeFiles/idrepair_gen.dir/real_like.cc.o" "gcc" "src/gen/CMakeFiles/idrepair_gen.dir/real_like.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/gen/CMakeFiles/idrepair_gen.dir/synthetic.cc.o" "gcc" "src/gen/CMakeFiles/idrepair_gen.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idrepair_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/idrepair_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/idrepair_traj.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
