file(REMOVE_RECURSE
  "libidrepair_common.a"
)
