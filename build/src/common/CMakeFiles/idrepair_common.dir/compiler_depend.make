# Empty compiler generated dependencies file for idrepair_common.
# This may be replaced when dependencies are built.
