file(REMOVE_RECURSE
  "CMakeFiles/idrepair_common.dir/flags.cc.o"
  "CMakeFiles/idrepair_common.dir/flags.cc.o.d"
  "CMakeFiles/idrepair_common.dir/status.cc.o"
  "CMakeFiles/idrepair_common.dir/status.cc.o.d"
  "CMakeFiles/idrepair_common.dir/string_util.cc.o"
  "CMakeFiles/idrepair_common.dir/string_util.cc.o.d"
  "libidrepair_common.a"
  "libidrepair_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
