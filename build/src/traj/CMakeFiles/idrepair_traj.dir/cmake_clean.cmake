file(REMOVE_RECURSE
  "CMakeFiles/idrepair_traj.dir/csv.cc.o"
  "CMakeFiles/idrepair_traj.dir/csv.cc.o.d"
  "CMakeFiles/idrepair_traj.dir/merge.cc.o"
  "CMakeFiles/idrepair_traj.dir/merge.cc.o.d"
  "CMakeFiles/idrepair_traj.dir/stats.cc.o"
  "CMakeFiles/idrepair_traj.dir/stats.cc.o.d"
  "CMakeFiles/idrepair_traj.dir/trajectory.cc.o"
  "CMakeFiles/idrepair_traj.dir/trajectory.cc.o.d"
  "CMakeFiles/idrepair_traj.dir/trajectory_set.cc.o"
  "CMakeFiles/idrepair_traj.dir/trajectory_set.cc.o.d"
  "libidrepair_traj.a"
  "libidrepair_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
