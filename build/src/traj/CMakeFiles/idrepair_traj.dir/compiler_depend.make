# Empty compiler generated dependencies file for idrepair_traj.
# This may be replaced when dependencies are built.
