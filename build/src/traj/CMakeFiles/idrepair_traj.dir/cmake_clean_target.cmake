file(REMOVE_RECURSE
  "libidrepair_traj.a"
)
