
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/csv.cc" "src/traj/CMakeFiles/idrepair_traj.dir/csv.cc.o" "gcc" "src/traj/CMakeFiles/idrepair_traj.dir/csv.cc.o.d"
  "/root/repo/src/traj/merge.cc" "src/traj/CMakeFiles/idrepair_traj.dir/merge.cc.o" "gcc" "src/traj/CMakeFiles/idrepair_traj.dir/merge.cc.o.d"
  "/root/repo/src/traj/stats.cc" "src/traj/CMakeFiles/idrepair_traj.dir/stats.cc.o" "gcc" "src/traj/CMakeFiles/idrepair_traj.dir/stats.cc.o.d"
  "/root/repo/src/traj/trajectory.cc" "src/traj/CMakeFiles/idrepair_traj.dir/trajectory.cc.o" "gcc" "src/traj/CMakeFiles/idrepair_traj.dir/trajectory.cc.o.d"
  "/root/repo/src/traj/trajectory_set.cc" "src/traj/CMakeFiles/idrepair_traj.dir/trajectory_set.cc.o" "gcc" "src/traj/CMakeFiles/idrepair_traj.dir/trajectory_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idrepair_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/idrepair_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
