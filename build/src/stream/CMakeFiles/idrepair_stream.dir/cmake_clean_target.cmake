file(REMOVE_RECURSE
  "libidrepair_stream.a"
)
