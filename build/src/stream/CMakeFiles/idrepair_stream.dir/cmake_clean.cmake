file(REMOVE_RECURSE
  "CMakeFiles/idrepair_stream.dir/streaming_repairer.cc.o"
  "CMakeFiles/idrepair_stream.dir/streaming_repairer.cc.o.d"
  "libidrepair_stream.a"
  "libidrepair_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idrepair_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
