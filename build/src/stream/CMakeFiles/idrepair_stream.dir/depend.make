# Empty dependencies file for idrepair_stream.
# This may be replaced when dependencies are built.
