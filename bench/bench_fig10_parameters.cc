// Figure 10: effects of the θ, ζ, η, λ parameters on the (calibrated
// substitute of the) real dataset — f-measure and running time per value.
//
// Paper shapes to expect: f-measure rises then flattens in θ/ζ/η while
// running time keeps growing; λ peaks around 0.5 with stable running time.

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/real_like.h"
#include "repair/repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

namespace {

struct Outcome {
  double f_measure = 0.0;
  double seconds = 0.0;
};

Outcome Run(const Dataset& ds, const RepairOptions& options) {
  TrajectorySet set = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, set);
  Outcome out;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    IdRepairer repairer(ds.graph, options);
    auto result = repairer.Repair(set);
    if (!result.ok()) {
      std::cerr << "repair failed: " << result.status() << "\n";
      std::exit(1);
    }
    out.seconds += result->stats.seconds_total / kRepetitions;
    if (rep == 0) {
      out.f_measure =
          EvaluateRewrites(truth, set, result->rewrites).f_measure;
    }
  }
  return out;
}

RepairOptions Defaults() {
  RepairOptions o;
  o.theta = 4;
  o.eta = 600;
  o.zeta = 4;
  o.lambda = 0.5;
  return o;
}

}  // namespace

int main() {
  auto ds = MakeRealLikeDataset();
  if (!ds.ok()) {
    std::cerr << "generation failed: " << ds.status() << "\n";
    return 1;
  }
  std::cout << "real-like dataset: " << ds->NumEntities() << " entities, "
            << ds->records.size() << " records, error rate "
            << Fmt(ds->RecordErrorRate(), 3) << "\n";

  PrintTitle("Fig 10(a): varying theta (max VT length)");
  PrintHeader({"theta", "f-measure", "time_ms"});
  for (size_t theta = 1; theta <= 5; ++theta) {
    RepairOptions o = Defaults();
    o.theta = theta;
    Outcome r = Run(*ds, o);
    PrintRow({std::to_string(theta), Fmt(r.f_measure), FmtMs(r.seconds)});
  }

  PrintTitle("Fig 10(b): varying zeta (max joinable-subset size)");
  PrintHeader({"zeta", "f-measure", "time_ms"});
  for (size_t zeta = 1; zeta <= 5; ++zeta) {
    RepairOptions o = Defaults();
    o.zeta = zeta;
    Outcome r = Run(*ds, o);
    PrintRow({std::to_string(zeta), Fmt(r.f_measure), FmtMs(r.seconds)});
  }

  PrintTitle("Fig 10(c): varying eta (max VT time span, seconds)");
  PrintHeader({"eta_s", "f-measure", "time_ms"});
  for (Timestamp eta : {100, 200, 400, 600, 800}) {
    RepairOptions o = Defaults();
    o.eta = eta;
    Outcome r = Run(*ds, o);
    PrintRow({std::to_string(eta), Fmt(r.f_measure), FmtMs(r.seconds)});
  }

  PrintTitle("Fig 10(d): varying lambda (Eq. 3 trade-off)");
  PrintHeader({"lambda", "f-measure", "time_ms"});
  for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    RepairOptions o = Defaults();
    o.lambda = lambda;
    Outcome r = Run(*ds, o);
    PrintRow({Fmt(lambda, 1), Fmt(r.f_measure), FmtMs(r.seconds)});
  }
  return 0;
}
