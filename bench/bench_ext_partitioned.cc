// Extension bench (not in the paper): partitioned batch repair — the
// unit-of-work decomposition behind the §8 deployment direction. On
// workloads whose traffic has quiet gaps, the input splits into chain
// components that are provably independent; this bench shows the
// equivalence and the per-partition sizing that a distributed deployment
// would exploit.

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/partitioned.h"

using namespace idrepair;
using namespace idrepair::benchutil;

int main() {
  TransitionGraph graph = MakeRealLikeGraph();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;

  PrintTitle("Partitioned repair vs whole batch (sparser => more chunks)");
  PrintHeader({"window_h", "trajs", "partitions", "largest", "batch_ms",
               "chunked_ms", "identical"});
  for (int window_hours : {1, 4, 16, 48}) {
    SyntheticConfig config;
    config.num_trajectories = 1500;
    config.max_path_len = 4;
    config.window_seconds = static_cast<Timestamp>(window_hours) * 3600;
    config.seed = 2024;
    auto ds = GenerateSyntheticDataset(graph, config);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();

    IdRepairer whole(graph, options);
    auto batch = whole.Repair(set);
    if (!batch.ok()) {
      std::cerr << "batch repair failed: " << batch.status() << "\n";
      return 1;
    }

    PartitionedRepairer partitioned(graph, options);
    PartitionedRepairer::PartitionStats stats;
    auto chunked = partitioned.Repair(set, &stats);
    if (!chunked.ok()) {
      std::cerr << "partitioned repair failed: " << chunked.status() << "\n";
      return 1;
    }

    bool identical = chunked->rewrites == batch->rewrites;
    PrintRow({std::to_string(window_hours), std::to_string(set.size()),
              std::to_string(stats.num_partitions),
              std::to_string(stats.largest_partition),
              FmtMs(batch->stats.seconds_total),
              FmtMs(chunked->stats.seconds_total),
              identical ? "yes" : "NO (BUG)"});
    if (!identical) return 1;
  }
  std::cout << "\n(partitioned results must be bit-identical to the whole "
               "batch; the largest partition bounds per-worker memory)\n";
  return 0;
}
