// Extension bench (not in the paper): partitioned batch repair — the
// unit-of-work decomposition behind the §8 deployment direction. On
// workloads whose traffic has quiet gaps, the input splits into chain
// components that are provably independent; this bench shows the
// equivalence, the per-partition sizing that a distributed deployment
// would exploit, and how the parallel execution engine scales the same
// decomposition across threads with bit-identical output.

#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/partitioned.h"

using namespace idrepair;
using namespace idrepair::benchutil;

namespace {

/// Min-of-N repair (the bench_util timing policy): runs the engine
/// kRepetitions times, returns the smallest value of `metric` in *best and
/// moves that repetition's result into *keep. False on any failed run.
bool MinRepair(const Repairer& engine, const TrajectorySet& set,
               double RepairStats::*metric, Result<RepairResult>* keep,
               double* best) {
  bool ok = true;
  *keep = Status::Internal("never ran");
  *best = MinOverReps([&](int rep) {
    auto r = engine.Repair(set);
    if (!r.ok()) {
      std::cerr << engine.name() << " repair failed: " << r.status() << "\n";
      ok = false;
      return 0.0;
    }
    double seconds = (*r).stats.*metric;
    if (rep == 0 || !keep->ok() || seconds < (*keep)->stats.*metric) {
      *keep = std::move(r);
    }
    return seconds;
  });
  return ok;
}

}  // namespace

int main() {
  BenchReport report("ext_partitioned");
  TransitionGraph graph = MakeRealLikeGraph();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;

  report.Title("Partitioned repair vs whole batch (sparser => more chunks)");
  report.Header({"window_h", "trajs", "partitions", "largest", "batch_ms",
               "chunked_ms", "identical"});
  for (int window_hours : {1, 4, 16, 48}) {
    SyntheticConfig config;
    config.num_trajectories = 1500;
    config.max_path_len = 4;
    config.window_seconds = static_cast<Timestamp>(window_hours) * 3600;
    config.seed = 2024;
    auto ds = GenerateSyntheticDataset(graph, config);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();

    IdRepairer whole(graph, options);
    Result<RepairResult> batch = Status::Internal("never ran");
    double batch_seconds = 0.0;
    if (!MinRepair(whole, set, &RepairStats::seconds_total, &batch,
                   &batch_seconds)) {
      return 1;
    }

    PartitionedRepairer partitioned(graph, options);
    Result<RepairResult> chunked = Status::Internal("never ran");
    double chunked_seconds = 0.0;
    if (!MinRepair(partitioned, set, &RepairStats::seconds_total, &chunked,
                   &chunked_seconds)) {
      return 1;
    }

    bool identical = chunked->rewrites == batch->rewrites;
    report.Row({std::to_string(window_hours), std::to_string(set.size()),
              std::to_string(chunked->stats.num_partitions),
              std::to_string(chunked->stats.largest_partition),
              FmtMs(batch_seconds), FmtMs(chunked_seconds),
              identical ? "yes" : "NO (BUG)"});
    if (!identical) return 1;
  }
  std::cout << "\n(partitioned results must be bit-identical to the whole "
               "batch; the largest partition bounds per-worker memory)\n";

  // ---------------------------------------------------- thread scaling
  // Fixed sparse workload, varying exec.num_threads. Speedup is relative
  // to the 1-thread run of the SAME engine, so it isolates the execution
  // engine from the partitioning benefit measured above.
  report.Title("Parallel partitioned repair: thread scaling");
  {
    SyntheticConfig config;
    config.num_trajectories = 4000;
    config.max_path_len = 4;
    // Two weeks: mean start gap ~5 min vs η=10 min, so the chain breaks
    // into hundreds of components — enough units of work for any width.
    config.window_seconds = static_cast<Timestamp>(14 * 24) * 3600;
    config.seed = 2025;
    auto ds = GenerateSyntheticDataset(graph, config);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();

    report.Header({"threads", "partitions", "wall_ms", "cpu_ms", "speedup",
                 "identical"});
    double base_seconds = 0.0;
    // RepairResult is move-only; keep only the fields compared below.
    std::unordered_map<TrajIndex, std::string> reference_rewrites;
    std::vector<RepairIndex> reference_selected;
    double reference_omega = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      RepairOptions run_options = options;
      run_options.exec.num_threads = threads;
      run_options.exec.min_partition_grain = 64;
      PartitionedRepairer engine(graph, run_options);

      double best = 0.0;
      Result<RepairResult> result = Status::Internal("never ran");
      if (!MinRepair(engine, set, &RepairStats::seconds_total, &result,
                     &best)) {
        return 1;
      }
      if (threads == 1) {
        base_seconds = best;
        reference_rewrites = result->rewrites;
        reference_selected = result->selected;
        reference_omega = result->total_effectiveness;
      }
      bool identical = result->rewrites == reference_rewrites &&
                       result->selected == reference_selected &&
                       result->total_effectiveness == reference_omega;
      report.Row({std::to_string(result->stats.threads_used),
                std::to_string(result->stats.num_partitions), FmtMs(best),
                FmtMs(result->stats.cpu_seconds_total),
                FmtRatio(base_seconds / std::max(best, 1e-9)),
                identical ? "yes" : "NO (BUG)"});
      if (!identical) return 1;
    }
    std::cout << "\n(hardware threads available here: "
              << std::thread::hardware_concurrency()
              << "; speedup is bounded by that and by the largest chain "
                 "component — output is bit-identical at every width)\n";
  }

  // ------------------------------------ single giant component scaling
  // The opposite workload: dense traffic in one window, so the whole batch
  // is ONE chain component and component-level dispatch has no units to
  // spread. Intra-component sharding (seed-sharded candidate generation +
  // sharded Gm build) is the only parallel surface — before it existed,
  // this table was flat at 1.0x by construction.
  report.Title("Single giant chain component: intra-component sharding");
  {
    SyntheticConfig config;
    config.num_trajectories = 1500;
    config.max_path_len = 4;
    config.window_seconds = 3600;  // mean start gap ~2 s vs η = 600 s
    config.seed = 2026;
    auto ds = GenerateSyntheticDataset(graph, config);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();

    report.Header({"threads", "partitions", "gen_ms", "wall_ms", "speedup",
                 "imbalance", "identical"});
    double base_seconds = 0.0;
    // RepairResult is move-only; keep only the fields compared below.
    std::unordered_map<TrajIndex, std::string> reference_rewrites;
    std::vector<RepairIndex> reference_selected;
    double reference_omega = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      RepairOptions run_options = options;
      run_options.exec.num_threads = threads;
      PartitionedRepairer engine(graph, run_options);

      double best = 0.0;
      Result<RepairResult> result = Status::Internal("never ran");
      if (!MinRepair(engine, set, &RepairStats::seconds_total, &result,
                     &best)) {
        return 1;
      }
      if (result->stats.num_partitions != 1) {
        std::cerr << "expected one giant component, got "
                  << result->stats.num_partitions << "\n";
        return 1;
      }
      if (threads == 1) {
        base_seconds = best;
        reference_rewrites = result->rewrites;
        reference_selected = result->selected;
        reference_omega = result->total_effectiveness;
      }
      bool identical = result->rewrites == reference_rewrites &&
                       result->selected == reference_selected &&
                       result->total_effectiveness == reference_omega;
      report.Row({std::to_string(threads),
                std::to_string(result->stats.num_partitions),
                FmtMs(result->stats.seconds_generation), FmtMs(best),
                FmtRatio(base_seconds / std::max(best, 1e-9)),
                Fmt(result->stats.sched_imbalance, 2),
                identical ? "yes" : "NO (BUG)"});
      if (!identical) return 1;
    }
    std::cout << "\n(one component = one partition task: all scaling here "
                 "comes from seed-sharded candidate generation and the "
                 "sharded Gm build inside the component)\n";
  }

  // ------------------------------------------- selection-phase scaling
  // Phase 2 in isolation: a dense-window workload under DMIN, which
  // materializes the repair graph and runs the lazy-invalidation degree
  // selector — the surfaces parallelized by the selection sharding
  // (--selection-grain). Gr edge count grows superlinearly with window
  // density (300 trajectories here already mean ~2M conflict edges;
  // 1500 would be hundreds of millions), so the workload stays moderate.
  // sel_ms is Phase 2 wall time only; the identical column re-checks the
  // tentpole claim that thread count and grain never change a byte of
  // the selection.
  report.Title("Selection phase: thread scaling (DMIN, grain 64)");
  {
    SyntheticConfig config;
    config.num_trajectories = 300;
    config.max_path_len = 4;
    config.window_seconds = 3600;
    config.seed = 2026;
    auto ds = GenerateSyntheticDataset(graph, config);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();

    report.Header({"threads", "gr_edges", "sel_ms", "wall_ms", "sel_speedup",
                 "identical"});
    double base_selection = 0.0;
    // RepairResult is move-only; keep only the fields compared below.
    std::unordered_map<TrajIndex, std::string> reference_rewrites;
    std::vector<RepairIndex> reference_selected;
    double reference_omega = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      RepairOptions run_options = options;
      run_options.selection = SelectionAlgorithm::kDmin;
      run_options.exec.num_threads = threads;
      run_options.exec.min_selection_grain = 64;
      IdRepairer engine(graph, run_options);

      double best = 0.0;
      Result<RepairResult> result = Status::Internal("never ran");
      if (!MinRepair(engine, set, &RepairStats::seconds_selection, &result,
                     &best)) {
        return 1;
      }
      if (threads == 1) {
        base_selection = best;
        reference_rewrites = result->rewrites;
        reference_selected = result->selected;
        reference_omega = result->total_effectiveness;
      }
      bool identical = result->rewrites == reference_rewrites &&
                       result->selected == reference_selected &&
                       result->total_effectiveness == reference_omega;
      report.Row({std::to_string(threads),
                std::to_string(result->stats.gr_edges), FmtMs(best),
                FmtMs(result->stats.seconds_total),
                FmtRatio(base_selection / std::max(best, 1e-9)),
                identical ? "yes" : "NO (BUG)"});
      if (!identical) return 1;
    }
    std::cout << "\n(Phase 2 only: sharded repair-graph build plus the "
                 "lazy-invalidation degree selector; the serial commit loop "
                 "bounds the speedup, the output never moves)\n";
  }
  return 0;
}
