// Figure 15: approximation ratios of the repair-selection algorithms on
// five small datasets (≤ 100 trajectories, as in §6.5.1).
//
//  (a) ΔE / ΔEmax — selected Ω relative to the exact weighted-independent-
//      set optimum. The oracle ("optimal selection") is *not* 1 here: the
//      set of correct repairs rarely coincides with the Ω-maximizing set.
//  (b) ΔA / ΔAopt — real trajectory-accuracy improvement (rewrites only)
//      relative to the oracle's improvement.
//
// Paper shapes: EMAX averages >= 0.95 on (a) and >= 0.85 on (b), clearly
// beating DMIN and DMAX; the optimal selection's Ω scatters just below the
// exact optimum.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

int main() {
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  options.zeta = 4;
  options.lambda = 0.5;

  PrintTitle("Fig 15: selection-algorithm approximation ratios");
  PrintHeader({"dataset", "algorithm", "omega", "dE/dEmax", "dA/dAopt"});

  double emax_omega_ratio_sum = 0.0;
  double emax_quality_ratio_sum = 0.0;
  int datasets = 0;

  for (uint64_t seed : {501u, 502u, 503u, 504u, 505u}) {
    // Small, sparse datasets (<=100 observed trajectories over a full
    // hour): the exact solver's Gr components stay tractable, matching the
    // paper's setup where exact is "thousands of times" slower but finishes.
    TransitionGraph graph = MakeRealLikeGraph();
    SyntheticConfig config;
    config.num_trajectories = 55;
    config.max_path_len = 4;
    config.window_seconds = 3600;
    config.record_error_rate = 0.2;
    config.seed = seed;
    auto ds = GenerateSyntheticDataset(graph, config);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();
    if (set.size() > 100) {
      std::cerr << "dataset exceeded 100 trajectories\n";
      return 1;
    }
    auto truth = ComputeFragmentTruth(*ds, set);
    double base_accuracy = TrajectoryAccuracy(truth, set, {});
    IdRepairer repairer(ds->graph, options);

    struct AlgResult {
      std::string name;
      double omega;
      double accuracy_gain;
    };
    std::vector<AlgResult> rows;

    auto run_with = [&](const RepairSelector& selector) {
      auto result = repairer.Repair(set, &selector);
      if (!result.ok()) {
        std::cerr << "repair failed: " << result.status() << "\n";
        std::exit(1);
      }
      double gain =
          TrajectoryAccuracy(truth, set, result->rewrites) - base_accuracy;
      rows.push_back(AlgResult{std::string(selector.name()),
                               result->total_effectiveness, gain});
    };

    OracleSelector oracle(truth);
    ExactSelector exact;
    EmaxSelector emax;
    DminSelector dmin;
    DmaxSelector dmax;
    run_with(oracle);
    run_with(exact);
    run_with(emax);
    run_with(dmin);
    run_with(dmax);

    double omega_max = rows[1].omega;          // exact = ΔEmax
    double accuracy_opt = rows[0].accuracy_gain;  // oracle = ΔAopt
    ++datasets;
    for (const auto& r : rows) {
      double omega_ratio = omega_max > 0 ? r.omega / omega_max : 1.0;
      double quality_ratio =
          accuracy_opt > 0 ? r.accuracy_gain / accuracy_opt : 1.0;
      if (r.name == "EMAX") {
        emax_omega_ratio_sum += omega_ratio;
        emax_quality_ratio_sum += quality_ratio;
      }
      PrintRow({std::to_string(datasets), r.name, Fmt(r.omega),
                Fmt(omega_ratio), Fmt(quality_ratio)});
    }
  }
  std::cout << "\nEMAX averages: dE/dEmax = "
            << Fmt(emax_omega_ratio_sum / datasets)
            << ", dA/dAopt = " << Fmt(emax_quality_ratio_sum / datasets)
            << "   (paper: >0.95 and >0.85)\n";
  return 0;
}
