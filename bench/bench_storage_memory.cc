// Storage-layer memory benchmark: measures the resident cost of the hot
// data-plane structures behind the view-based API — the interned columnar
// CandidateSet and the CSR RepairGraph — and compares against a model of
// the seed's AoS-plus-adjacency-vectors layout holding the same logical
// content (the model mirrors tests/differential_test.cc's seedmodel).
//
// Two instances:
//  - "dense":     a scripted grouped-conflict workload where the seed
//                 layout's pre-dedup multiplicity pushes dominate; this is
//                 the instance the >=4x acceptance ratio is defined on.
//  - "synthetic": an end-to-end repair on a generated dataset, so the
//                 reported peak RSS covers the whole pipeline, not just
//                 the final structures.
//
// The JSON "memory" block (bench_util.h) carries the gate metrics for the
// ci.sh bench-smoke stage: peak_rss_bytes, candidate/graph bytes,
// bytes-per-edge, and the seed-model reduction ratio.

#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repair_graph.h"
#include "repair/repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

namespace {

// ---------------------------------------------------------------- seed model
// Mirror of tests/differential_test.cc seedmodel: what the pre-refactor
// layout (AoS candidate rows owning two heap vectors each, one adjacency
// vector per Gr vertex filled with multiplicity then deduplicated) would
// allocate for the same logical content.

size_t GrownCapacity(size_t pushes) {
  size_t cap = 0;
  for (size_t size = 0; size < pushes; ++size) {
    if (size == cap) cap = cap == 0 ? 1 : cap * 2;
  }
  return cap;
}

size_t SeedCandidateBytes(const CandidateSet& c) {
  constexpr size_t kRowBytes = 104;  // 24 + 32 + 24 + 8 + 4(+4) + 8 on x86-64
  size_t bytes = GrownCapacity(c.size()) * kRowBytes;
  for (size_t r = 0; r < c.size(); ++r) {
    bytes += c.num_members(r) * sizeof(TrajIndex);
    bytes += c.num_invalid(r) * sizeof(TrajIndex);
  }
  return bytes;
}

size_t SeedGraphBytes(const CandidateSet& c, size_t num_trajs) {
  std::vector<std::vector<RepairIndex>> covers(num_trajs);
  for (RepairIndex r = 0; r < c.size(); ++r) {
    for (TrajIndex t : c.members(r)) covers[t].push_back(r);
  }
  std::vector<size_t> pushes(c.size(), 0);
  for (const auto& list : covers) {
    for (size_t i = 0; i < list.size(); ++i) {
      pushes[list[i]] += list.size() - 1;
    }
  }
  size_t bytes = c.size() * 24;  // per-vertex vector headers
  for (size_t p : pushes) bytes += GrownCapacity(p) * sizeof(RepairIndex);
  return bytes;
}

// ------------------------------------------------------------ dense instance
// Same shape as the differential suite's DenseStorageInstance, scaled up:
// grouped conflicts so every pair inside a group shares members.

CandidateSet DenseInstance(size_t* num_trajs) {
  constexpr size_t kGroups = 4;
  constexpr size_t kGroupTrajs = 12;
  constexpr size_t kMembers = 8;
  constexpr size_t kCandidates = 800;
  *num_trajs = kGroups * kGroupTrajs;
  Rng rng(20260809);
  CandidateSet out;
  out.Reserve(kCandidates);
  std::vector<TrajIndex> members;
  for (size_t i = 0; i < kCandidates; ++i) {
    TrajIndex base = static_cast<TrajIndex>((i % kGroups) * kGroupTrajs);
    std::set<TrajIndex> picked;
    while (picked.size() < kMembers) {
      picked.insert(base +
                    static_cast<TrajIndex>(rng.UniformIndex(kGroupTrajs)));
    }
    members.assign(picked.begin(), picked.end());
    size_t r = out.Append(members, members,
                          "id" + std::to_string(i % 7), 0.5);
    out.set_scores(r, 1, 0.5);
  }
  return out;
}

struct Measurement {
  size_t candidates = 0;
  size_t edges = 0;
  size_t candidate_bytes = 0;
  size_t graph_bytes = 0;
  size_t seed_bytes = 0;
};

Measurement Measure(CandidateSet& candidates, size_t num_trajs) {
  ExecOptions exec;
  exec.num_threads = 1;
  auto built = RepairGraph::Build(candidates, num_trajs, exec);
  if (!built.ok()) {
    std::cerr << "graph build failed: " << built.status() << "\n";
    std::exit(1);
  }
  candidates.Freeze();
  Measurement m;
  m.candidates = candidates.size();
  m.edges = built->num_edges();
  m.candidate_bytes = candidates.MemoryBytes();
  m.graph_bytes = built->MemoryBytes();
  m.seed_bytes =
      SeedCandidateBytes(candidates) + SeedGraphBytes(candidates, num_trajs);
  return m;
}

std::string FmtKb(size_t bytes) {
  return ToFixed(static_cast<double>(bytes) / 1024.0, 1);
}

}  // namespace

int main() {
  BenchReport report("storage_memory");
  report.Title("Storage layer: candidate + Gr memory vs seed layout");
  report.Header({"instance", "cands", "edges", "cand_KB", "gr_KB", "B/edge",
                 "seed_KB", "ratio"});

  // Dense scripted instance — the acceptance workload.
  size_t dense_trajs = 0;
  CandidateSet dense = DenseInstance(&dense_trajs);
  Measurement dm = Measure(dense, dense_trajs);

  // End-to-end synthetic instance: real generation + repair, measured on
  // the result's candidate set (frozen by the engine) and a rebuilt Gr.
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 120;
  config.max_path_len = 4;
  config.window_seconds = 3600;
  config.record_error_rate = 0.2;
  config.seed = 601;
  auto ds = GenerateSyntheticDataset(graph, config);
  if (!ds.ok()) {
    std::cerr << "generation failed: " << ds.status() << "\n";
    return 1;
  }
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  options.zeta = 4;
  options.lambda = 0.5;
  IdRepairer repairer(ds->graph, options);
  auto result = repairer.Repair(set);
  if (!result.ok()) {
    std::cerr << "repair failed: " << result.status() << "\n";
    return 1;
  }
  Measurement sm = Measure(result->candidates, set.size());

  auto emit = [&](const std::string& name, const Measurement& m) {
    size_t actual = m.candidate_bytes + m.graph_bytes;
    double ratio = actual > 0 ? static_cast<double>(m.seed_bytes) /
                                    static_cast<double>(actual)
                              : 0.0;
    double per_edge = m.edges > 0 ? static_cast<double>(m.graph_bytes) /
                                        static_cast<double>(m.edges)
                                  : 0.0;
    report.Row({name, std::to_string(m.candidates), std::to_string(m.edges),
                FmtKb(m.candidate_bytes), FmtKb(m.graph_bytes),
                Fmt(per_edge, 1), FmtKb(m.seed_bytes), FmtRatio(ratio)});
    return std::pair<double, double>(ratio, per_edge);
  };

  auto [dense_ratio, dense_per_edge] = emit("dense", dm);
  emit("synthetic", sm);

  // Gate metrics for scripts/ci.sh bench-smoke (peak_rss_bytes is added by
  // BenchReport itself). All are "lower or equal is fine" quantities.
  report.Memory("dense_candidate_bytes", static_cast<double>(dm.candidate_bytes));
  report.Memory("dense_gr_bytes", static_cast<double>(dm.graph_bytes));
  report.Memory("dense_gr_bytes_per_edge", dense_per_edge);
  report.Memory("synthetic_total_bytes",
                static_cast<double>(sm.candidate_bytes + sm.graph_bytes));

  if (dense_ratio < 4.0) {
    std::cerr << "FAIL: dense reduction ratio " << dense_ratio
              << "x below the 4x storage-layer floor\n";
    return 1;
  }
  std::cout << "\ndense reduction vs seed layout: " << FmtRatio(dense_ratio)
            << "   (floor: 4x)\n";
  return 0;
}
