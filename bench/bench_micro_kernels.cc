// google-benchmark microbenchmarks for the pipeline's hot kernels: edit
// distance, the cex predicate, LIG candidate queries, clique enumeration,
// and the selection heuristics.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/real_like.h"
#include "lig/length_indexed_grids.h"
#include "repair/candidates.h"
#include "repair/repair_graph.h"
#include "repair/repairer.h"
#include "repair/selectors.h"
#include "sim/edit_distance.h"

namespace idrepair {
namespace {

std::string RandomId(Rng& rng, size_t len) {
  std::string s(len, 'a');
  for (char& c : s) c = rng.LowercaseLetter();
  return s;
}

void BM_EditDistance(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(RandomId(rng, 8), RandomId(rng, 8));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance);

void BM_EditDistanceBounded(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(RandomId(rng, 8), RandomId(rng, 8));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(EditDistanceBounded(a, b, 3));
  }
}
BENCHMARK(BM_EditDistanceBounded);

struct Workload {
  Dataset dataset;
  TrajectorySet set;
  RepairOptions options;

  static const Workload& Get() {
    static Workload* w = [] {
      auto ds = MakeScaledRealLikeDataset(1000);
      auto* out = new Workload{std::move(*ds), {}, {}};
      out->set = out->dataset.BuildObservedTrajectories();
      out->options.theta = 4;
      out->options.eta = 600;
      return out;
    }();
    return *w;
  }
};

void BM_CexPredicate(benchmark::State& state) {
  const Workload& w = Workload::Get();
  PredicateEvaluator pred(w.dataset.graph, 4, 600);
  Rng rng(2);
  std::vector<std::pair<TrajIndex, TrajIndex>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(rng.UniformIndex(w.set.size()),
                       rng.UniformIndex(w.set.size()));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(pred.Cex(w.set.at(a), w.set.at(b)));
  }
}
BENCHMARK(BM_CexPredicate);

void BM_LigBuild(benchmark::State& state) {
  const Workload& w = Workload::Get();
  LengthIndexedGrids::Options o{4, 600, 60};
  for (auto _ : state) {
    LengthIndexedGrids lig(w.set, o);
    benchmark::DoNotOptimize(lig.num_indexed());
  }
}
BENCHMARK(BM_LigBuild);

void BM_LigQuery(benchmark::State& state) {
  const Workload& w = Workload::Get();
  LengthIndexedGrids::Options o{4, 600, 60};
  LengthIndexedGrids lig(w.set, o);
  std::vector<TrajIndex> out;
  TrajIndex k = 0;
  for (auto _ : state) {
    out.clear();
    lig.CollectCandidates(k, &out);
    benchmark::DoNotOptimize(out.size());
    k = (k + 1) % w.set.size();
  }
}
BENCHMARK(BM_LigQuery);

void BM_TrajectoryGraphBuild(benchmark::State& state) {
  const Workload& w = Workload::Get();
  PredicateEvaluator pred(w.dataset.graph, 4, 600);
  for (auto _ : state) {
    TrajectoryGraph gm(w.set, pred, w.options);
    benchmark::DoNotOptimize(gm.num_edges());
  }
}
BENCHMARK(BM_TrajectoryGraphBuild);

void BM_CliqueEnumeration(benchmark::State& state) {
  const Workload& w = Workload::Get();
  PredicateEvaluator pred(w.dataset.graph, 4, 600);
  TrajectoryGraph gm(w.set, pred, w.options);
  for (auto _ : state) {
    CliqueEnumerator enumerator(w.set, gm, pred, w.options);
    size_t count = 0;
    enumerator.Enumerate(
        [&](const std::vector<TrajIndex>&, const std::vector<MergedPoint>&) {
          ++count;
        });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_CliqueEnumeration);

void BM_FullRepair(benchmark::State& state) {
  const Workload& w = Workload::Get();
  IdRepairer repairer(w.dataset.graph, w.options);
  for (auto _ : state) {
    auto result = repairer.Repair(w.set);
    benchmark::DoNotOptimize(result->selected.size());
  }
}
BENCHMARK(BM_FullRepair);

void BM_EmaxSelection(benchmark::State& state) {
  const Workload& w = Workload::Get();
  IdRepairer repairer(w.dataset.graph, w.options);
  auto result = repairer.Repair(w.set);
  auto built = RepairGraph::Build(result->candidates, w.set.size(),
                                 w.options.exec);
  RepairGraph gr = std::move(built).value();
  EmaxSelector emax;
  for (auto _ : state) {
    benchmark::DoNotOptimize(emax.Select(gr, result->candidates).size());
  }
}
BENCHMARK(BM_EmaxSelection);

}  // namespace
}  // namespace idrepair

BENCHMARK_MAIN();
