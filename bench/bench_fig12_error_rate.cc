// Figure 12: effect of the ID error rate. ID errors are injected at varying
// rates into one identical original trajectory set of 500 trajectories
// (the paper's §6.3.2 protocol).
//
// Paper shapes: #trajectories grows ~linearly with the rate, #candidate
// repairs and running time grow polynomially, f-measure drops ~linearly.

#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

int main() {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 500;
  config.max_path_len = 4;
  // Short legs keep full trajectories well inside η=600, as the paper's
  // empirical travel-time distribution evidently does (its Fig 12 reaches
  // f≈0.95 at low error rates).
  config.travel_median_lo = 40;
  config.travel_median_hi = 120;
  config.seed = 42;
  auto clean = GenerateCleanDataset(graph, config);
  if (!clean.ok()) {
    std::cerr << "generation failed: " << clean.status() << "\n";
    return 1;
  }

  PrintTitle("Fig 12: varying ID error rate (same 500-trajectory base set)");
  PrintHeader(
      {"error_rate", "trajectories", "repairs", "f-measure", "time_ms"});
  for (double rate : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    double trajectories = 0.0;
    double repairs = 0.0;
    double f_measure = 0.0;
    double seconds = 0.0;
    // Average over several injection draws on the identical base set (the
    // paper averages >= 30 runs).
    for (int rep = 0; rep < kRepetitions; ++rep) {
      Dataset ds = *clean;
      Rng rng(1000 + 100 * static_cast<uint64_t>(rep) +
              static_cast<uint64_t>(rate * 100));
      IdErrorModel model;
      InjectIdErrors(ds, rate, model, rng);

      RepairOptions options;
      options.theta = 8;
      options.eta = 600;
      options.zeta = 4;
      options.lambda = 0.5;
      TrajectorySet set = ds.BuildObservedTrajectories();
      auto truth = ComputeFragmentTruth(ds, set);
      IdRepairer repairer(ds.graph, options);
      auto result = repairer.Repair(set);
      if (!result.ok()) {
        std::cerr << "repair failed: " << result.status() << "\n";
        return 1;
      }
      trajectories += static_cast<double>(set.size()) / kRepetitions;
      repairs +=
          static_cast<double>(result->stats.joinable_subsets) / kRepetitions;
      seconds += result->stats.seconds_total / kRepetitions;
      f_measure +=
          EvaluateRewrites(truth, set, result->rewrites).f_measure /
          kRepetitions;
    }
    PrintRow({Fmt(rate, 2), Fmt(trajectories, 0), Fmt(repairs, 0),
              Fmt(f_measure), FmtMs(seconds)});
  }
  return 0;
}
