// Figure 13: effect of the record missing rate. Records are removed at
// varying rates from one identical error-injected dataset (500 original
// trajectories, 20% ID error rate — the paper's §6.3.3 protocol).
//
// Paper shapes: trajectory count, candidate-repair count and f-measure all
// decrease as the missing rate grows (incomplete joinable subsets, wrong
// joins, irreparable errors).

#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

int main() {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 500;
  config.max_path_len = 4;
  // Short legs keep full trajectories well inside η=600, as the paper's
  // empirical travel-time distribution evidently does (its Fig 12 reaches
  // f≈0.95 at low error rates).
  config.travel_median_lo = 40;
  config.travel_median_hi = 120;
  config.record_error_rate = 0.2;
  config.seed = 42;
  auto base = GenerateSyntheticDataset(graph, config);
  if (!base.ok()) {
    std::cerr << "generation failed: " << base.status() << "\n";
    return 1;
  }

  PrintTitle("Fig 13: varying record missing rate (20% ID errors)");
  PrintHeader(
      {"missing_rate", "trajectories", "repairs", "f-measure", "time_ms"});
  for (double rate : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    double trajectories = 0.0;
    double repairs = 0.0;
    double f_measure = 0.0;
    double seconds = 0.0;
    // Average over several removal draws on the identical error-injected
    // set (the paper averages >= 30 runs).
    for (int rep = 0; rep < kRepetitions; ++rep) {
      Dataset ds = *base;
      Rng rng(2000 + 100 * static_cast<uint64_t>(rep) +
              static_cast<uint64_t>(rate * 100));
      InjectMissingRecords(ds, rate, rng);

      RepairOptions options;
      options.theta = 8;
      options.eta = 600;
      options.zeta = 4;
      options.lambda = 0.5;
      TrajectorySet set = ds.BuildObservedTrajectories();
      auto truth = ComputeFragmentTruth(ds, set);
      IdRepairer repairer(ds.graph, options);
      auto result = repairer.Repair(set);
      if (!result.ok()) {
        std::cerr << "repair failed: " << result.status() << "\n";
        return 1;
      }
      trajectories += static_cast<double>(set.size()) / kRepetitions;
      repairs +=
          static_cast<double>(result->stats.joinable_subsets) / kRepetitions;
      seconds += result->stats.seconds_total / kRepetitions;
      f_measure +=
          EvaluateRewrites(truth, set, result->rewrites).f_measure /
          kRepetitions;
    }
    PrintRow({Fmt(rate, 2), Fmt(trajectories, 0), Fmt(repairs, 0),
              Fmt(f_measure), FmtMs(seconds)});
  }
  return 0;
}
