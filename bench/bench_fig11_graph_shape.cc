// Figure 11: effect of transition-graph size and density on repair quality
// and running time, on synthetic datasets of 500 original trajectories.
//
// Paper shapes: (a) f-measure and running time both fall as the vertex
// count grows (longer valid paths are harder to reassemble and produce
// fewer candidates); (b) f-measure falls and running time grows as edges
// are added (more valid paths -> more candidate repairs -> more false
// positives and more work).
//
// Setup notes (documented deviations — see EXPERIMENTS.md): the size sweep
// uses chain graphs whose single valid path spans all n vertices, so θ is
// set to n (the paper's fixed θ=8 would make 9/10-vertex chains
// unrepairable); legs are short (20–60 s medians) so full traversals fit
// η=600 as in the paper's synthetic data.

#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

namespace {

struct Outcome {
  double f_measure = 0.0;
  double seconds = 0.0;
};

// Generates traffic on `workload_graph` and repairs it under
// `repair_graph`. For the density sweep the two differ: traffic always
// follows the base chain, while the repair must contend with the denser
// constraint graph — isolating the effect of density (more valid paths,
// more spurious candidate repairs) from the workload itself.
Outcome Run(const TransitionGraph& workload_graph,
            const TransitionGraph& repair_graph, size_t max_path_len,
            size_t theta, uint64_t seed) {
  SyntheticConfig config;
  config.num_trajectories = 500;
  config.max_path_len = max_path_len;
  config.window_seconds = 4 * 3600;
  config.travel_median_lo = 20;
  config.travel_median_hi = 60;
  config.seed = seed;
  auto ds = GenerateSyntheticDataset(workload_graph, config);
  if (!ds.ok()) {
    std::cerr << "generation failed: " << ds.status() << "\n";
    std::exit(1);
  }
  RepairOptions options;
  options.theta = theta;
  options.eta = 600;
  options.zeta = 4;
  options.lambda = 0.5;
  TrajectorySet set = ds->BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(*ds, set);
  Outcome out;
  IdRepairer repairer(repair_graph, options);
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto result = repairer.Repair(set);
    if (!result.ok()) {
      std::cerr << "repair failed: " << result.status() << "\n";
      std::exit(1);
    }
    out.seconds += result->stats.seconds_total / kRepetitions;
    if (rep == 0) {
      out.f_measure =
          EvaluateRewrites(truth, set, result->rewrites).f_measure;
    }
  }
  return out;
}

}  // namespace

int main() {
  PrintTitle("Fig 11(a): varying # of vertices (chain graphs, theta = n)");
  PrintHeader({"vertices", "f-measure", "time_ms"});
  for (size_t n = 6; n <= 10; ++n) {
    TransitionGraph graph = MakeChainGraph(n);
    Outcome r = Run(graph, graph, n, n, /*seed=*/100 + n);
    PrintRow({std::to_string(n), Fmt(r.f_measure), FmtMs(r.seconds)});
  }

  PrintTitle("Fig 11(b): varying # of edges added to an 8-vertex chain");
  PrintHeader({"added_edges", "f-measure", "time_ms"});
  // The paper adds arbitrary random edges ("without duplicate"), which can
  // point backward and create cycles — valid paths may then revisit
  // locations, inflating the candidate space. Traffic stays on the base
  // chain; the denser graph governs the repair.
  TransitionGraph base = MakeChainGraph(8);
  for (size_t added = 0; added <= 4; ++added) {
    TransitionGraph graph = MakeChainGraph(8);
    Rng rng(/*seed=*/207);  // same edge stream: configs nest
    AddRandomEdges(graph, added, rng);
    Outcome r = Run(base, graph, 8, 8, /*seed=*/300);
    PrintRow({std::to_string(added), Fmt(r.f_measure), FmtMs(r.seconds)});
  }
  return 0;
}
