// Streaming bench: the incremental engine against the naive alternative it
// replaced. "Batch replay" answers every poll by rebuilding a TrajectorySet
// from all records seen so far and running the full batch pipeline from
// scratch; the incremental engine maintains fragments, the dynamic LIG and
// per-component caches across appends and only regenerates dirty
// components. Both paths see the same chronologically sorted record stream
// and the same poll cadence, so the ms columns are directly comparable
// per-record costs (min of kRepetitions, as everywhere in the harness).

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gen/real_like.h"
#include "repair/repairer.h"
#include "stream/streaming_repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

namespace {

constexpr size_t kPollCadence = 400;

struct IncrementalOutcome {
  double seconds = 0.0;
  size_t polls = 0;
  size_t generation_runs = 0;
  size_t records_reused = 0;
  size_t dirty_components = 0;
  size_t emitted = 0;
};

IncrementalOutcome RunIncremental(const Dataset& ds,
                                  const std::vector<TrackingRecord>& records,
                                  const RepairOptions& options) {
  IncrementalOutcome out;
  Stopwatch watch;
  StreamingRepairer stream(ds.graph, options, StreamOptions{});
  size_t count = 0;
  for (const auto& r : records) {
    (void)stream.Append(r);
    if (++count % kPollCadence == 0) {
      out.emitted += stream.Poll().size();
      ++out.polls;
    }
  }
  out.emitted += stream.Finish().size();
  ++out.polls;
  out.seconds = watch.ElapsedSeconds();
  out.generation_runs = stream.generation_runs();
  out.records_reused = stream.records_reused();
  out.dirty_components = stream.dirty_components_seen();
  return out;
}

/// The no-incremental-state strawman: each poll re-ingests every record
/// seen so far and runs the batch pipeline from scratch. Its answer set is
/// the same (the batch pipeline is the correctness oracle the differential
/// tier pins the incremental engine to); only the cost differs.
double RunBatchReplay(const Dataset& ds,
                      const std::vector<TrackingRecord>& records,
                      const RepairOptions& options) {
  Stopwatch watch;
  IdRepairer repairer(ds.graph, options);
  std::vector<TrackingRecord> buffered;
  buffered.reserve(records.size());
  size_t count = 0;
  for (const auto& r : records) {
    buffered.push_back(r);
    bool last = ++count == records.size();
    if (count % kPollCadence == 0 || last) {
      TrajectorySet set = TrajectorySet::FromRecords(buffered);
      auto result = repairer.Repair(set);
      if (!result.ok()) {
        std::cerr << "batch replay failed: " << result.status() << "\n";
        std::exit(1);
      }
    }
  }
  return watch.ElapsedSeconds();
}

std::string FmtUsPerRecord(double seconds, size_t records) {
  return Fmt(seconds * 1e6 / static_cast<double>(records), 2);
}

}  // namespace

int main() {
  BenchReport report("streaming");
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;

  report.Title(
      "Incremental streaming vs batch replay (poll every " +
      std::to_string(kPollCadence) + " records, min of " +
      std::to_string(kRepetitions) + ")");
  report.Header({"entities", "records", "incr_ms", "replay_ms",
                 "incr_us_rec", "replay_us_rec", "speedup"});

  struct CounterRow {
    size_t entities;
    IncrementalOutcome outcome;
  };
  std::vector<CounterRow> counters;

  for (size_t entities : {250u, 500u, 1000u}) {
    auto ds = MakeScaledRealLikeDataset(entities);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    auto records = ds->ObservedRecords();
    std::sort(records.begin(), records.end(), RecordChronoLess);

    IncrementalOutcome incr;
    double incr_s = MinOverReps([&](int) {
      incr = RunIncremental(*ds, records, options);
      return incr.seconds;
    });
    double replay_s =
        MinOverReps([&](int) { return RunBatchReplay(*ds, records, options); });

    report.Row({std::to_string(entities), std::to_string(records.size()),
                FmtMs(incr_s), FmtMs(replay_s),
                FmtUsPerRecord(incr_s, records.size()),
                FmtUsPerRecord(replay_s, records.size()),
                FmtRatio(replay_s / std::max(incr_s, 1e-9))});
    counters.push_back({entities, incr});
  }

  report.Title("Incremental amortization counters (same runs)");
  report.Header({"entities", "polls", "gen_runs", "records_reused",
                 "dirty_comps", "emitted"});
  for (const auto& row : counters) {
    report.Row({std::to_string(row.entities), std::to_string(row.outcome.polls),
                std::to_string(row.outcome.generation_runs),
                std::to_string(row.outcome.records_reused),
                std::to_string(row.outcome.dirty_components),
                std::to_string(row.outcome.emitted)});
  }

  std::cout << "\n(expected: replay cost grows superlinearly with stream "
               "length while the incremental per-record cost stays flat; "
               "records_reused >> gen_runs is the amortization at work)\n";
  return 0;
}
