// Ablations over the design choices DESIGN.md calls out (not in the paper,
// but they justify the defaults):
//
//  1. rarity aggregation (Eq. 2 min vs. the worked example's max) × log
//     base offset (1 per Eq. 3 vs. 2 per Figure 4(b)).
//  2. the ID-similarity metric behind Eq. (1)/(5).
//  3. optimization interplay: LIG × MCP pruning, whole-pipeline time.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/real_like.h"
#include "repair/repairer.h"
#include "sim/similarity.h"

using namespace idrepair;
using namespace idrepair::benchutil;

namespace {

RepairOptions Defaults() {
  RepairOptions o;
  o.theta = 4;
  o.eta = 600;
  o.zeta = 4;
  o.lambda = 0.5;
  return o;
}

struct Outcome {
  double f_measure;
  double seconds;
};

Outcome Run(const Dataset& ds, const RepairOptions& options) {
  TrajectorySet set = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, set);
  IdRepairer repairer(ds.graph, options);
  auto result = repairer.Repair(set);
  if (!result.ok()) {
    std::cerr << "repair failed: " << result.status() << "\n";
    std::exit(1);
  }
  return Outcome{EvaluateRewrites(truth, set, result->rewrites).f_measure,
                 result->stats.seconds_total};
}

}  // namespace

int main() {
  auto ds = MakeRealLikeDataset();
  if (!ds.ok()) {
    std::cerr << "generation failed: " << ds.status() << "\n";
    return 1;
  }

  PrintTitle("Ablation 1: rarity aggregation x log-base offset");
  PrintHeader({"aggregation", "base_offset", "f-measure"});
  for (auto agg : {RarityAggregation::kMin, RarityAggregation::kMax}) {
    for (uint32_t offset : {1u, 2u}) {
      RepairOptions o = Defaults();
      o.rarity_aggregation = agg;
      o.rarity_base_offset = offset;
      Outcome r = Run(*ds, o);
      PrintRow({agg == RarityAggregation::kMin ? "min (Eq. 2)" : "max",
                std::to_string(offset), Fmt(r.f_measure)});
    }
  }

  PrintTitle("Ablation 2: ID similarity metric (Eq. 1 / Eq. 5)");
  PrintHeader({"metric", "f-measure", "time_ms"});
  for (const char* name :
       {"edit", "jaro_winkler", "bigram_cosine", "overlap"}) {
    auto metric = MakeSimilarity(name);
    if (!metric.ok()) {
      std::cerr << metric.status() << "\n";
      return 1;
    }
    RepairOptions o = Defaults();
    o.similarity = metric->get();
    Outcome r = Run(*ds, o);
    PrintRow({name, Fmt(r.f_measure), FmtMs(r.seconds)});
  }

  PrintTitle("Ablation 3: optimization interplay (3,000-trajectory set)");
  auto big = MakeScaledRealLikeDataset(3000);
  if (!big.ok()) {
    std::cerr << "generation failed: " << big.status() << "\n";
    return 1;
  }
  PrintHeader({"lig", "mcp_pruning", "f-measure", "time_ms"});
  for (bool lig : {true, false}) {
    for (bool mcp : {true, false}) {
      RepairOptions o = Defaults();
      o.use_lig = lig;
      o.use_mcp_pruning = mcp;
      Outcome r = Run(*big, o);
      PrintRow({lig ? "on" : "off", mcp ? "on" : "off", Fmt(r.f_measure),
                FmtMs(r.seconds)});
    }
  }
  std::cout << "\n(f-measure must be identical across the optimization "
               "grid; only time may differ)\n";
  return 0;
}
