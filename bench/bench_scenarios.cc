// Scenario-catalog bench: the city-scale & adversarial workloads from
// gen/scenario_catalog.h, timed end to end — dataset generation (road
// network + traffic + error model) and a single-thread core repair — with
// the repair-quality outcome of each scenario next to the timings. The
// non-timing columns (vertices, records, erroneous, candidates, f_measure,
// set_dist) are pure functions of the catalog seeds, so the CI scenario
// stage gates them exactly against the committed BENCH_scenarios.json;
// timings are report-only.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "eval/metrics.h"
#include "eval/set_distance.h"
#include "gen/scenario_catalog.h"
#include "repair/repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

int main() {
  BenchReport report("scenarios");
  report.Title("Scenario catalog — generation and core repair (min of " +
               std::to_string(kRepetitions) + ")");
  report.Header({"scenario", "vertices", "records", "erroneous", "gen_ms",
                 "repair_ms", "candidates", "f_measure", "set_dist"});

  for (const ScenarioCatalogEntry& entry : ScenarioCatalog(/*light=*/false)) {
    double gen_s = MinOverReps([&](int) {
      Stopwatch watch;
      auto ds = BuildScenarioDataset(entry);
      if (!ds.ok()) {
        std::cerr << entry.name << ": " << ds.status() << "\n";
        std::exit(1);
      }
      return watch.ElapsedSeconds();
    });

    auto ds = BuildScenarioDataset(entry);
    if (!ds.ok()) {
      std::cerr << entry.name << ": " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet observed = ds->BuildObservedTrajectories();

    RepairOptions options;
    options.theta = entry.theta;
    options.eta = entry.eta;
    options.zeta = 4;
    options.lambda = 0.5;
    options.exec.num_threads = 1;

    Result<RepairResult> result = Status::Internal("not run");
    double repair_s = MinOverReps([&](int) {
      Stopwatch watch;
      IdRepairer repairer(ds->graph, options);
      result = repairer.Repair(observed);
      if (!result.ok()) {
        std::cerr << entry.name << ": " << result.status() << "\n";
        std::exit(1);
      }
      return watch.ElapsedSeconds();
    });

    std::vector<std::string> truth = ComputeFragmentTruth(*ds, observed);
    QualityMetrics metrics = EvaluateRewrites(truth, observed, result->rewrites);
    double set_dist =
        TrajectorySetDistance(result->repaired, ds->BuildTrueTrajectories());

    report.Row({entry.name, std::to_string(ds->graph.num_locations()),
                std::to_string(ds->records.size()),
                std::to_string(metrics.num_erroneous), FmtMs(gen_s),
                FmtMs(repair_s),
                std::to_string(result->candidates.size()),
                Fmt(metrics.f_measure, 4), Fmt(set_dist, 4)});
  }

  std::cout << "\n(vertices/records/erroneous/candidates/f_measure/set_dist "
               "are deterministic per catalog seed and gated by scripts/"
               "ci.sh; gen_ms and repair_ms are report-only)\n";
  return 0;
}
