// Extension bench (not in the paper): the streaming repairer of §8's
// future-work direction. Measures throughput, peak buffering and repair
// quality across poll cadences and flush horizons, and compares against
// the batch pipeline on the same stream.
//
// Quality metric: *entity recovery* — the fraction of corrupted entities
// whose full trajectory comes out under the true ID with exactly the right
// records. Unlike rewrite-attribution metrics it is well-defined for any
// emitted trajectory set, so stream and batch are scored identically.

#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <unordered_map>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gen/real_like.h"
#include "repair/repairer.h"
#include "stream/streaming_repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

namespace {

using RecordKey = std::pair<LocationId, Timestamp>;

/// Fraction of corrupted entities (>= 1 misread record) whose exact record
/// multiset is emitted under their true ID.
double EntityRecovery(const Dataset& ds,
                      const std::vector<Trajectory>& emitted) {
  std::unordered_map<std::string, std::multiset<RecordKey>> entity_records;
  std::set<std::string> corrupted;
  for (const auto& r : ds.records) {
    entity_records[r.true_id].insert({r.loc, r.ts});
    if (r.corrupted()) corrupted.insert(r.true_id);
  }
  if (corrupted.empty()) return 1.0;
  size_t recovered = 0;
  for (const auto& t : emitted) {
    if (corrupted.count(t.id()) == 0) continue;
    std::multiset<RecordKey> got;
    for (const auto& p : t.points()) got.insert({p.loc, p.ts});
    if (got == entity_records.at(t.id())) ++recovered;
  }
  return static_cast<double>(recovered) /
         static_cast<double>(corrupted.size());
}

struct StreamOutcome {
  double seconds = 0.0;
  size_t peak_buffer = 0;
  size_t emitted_count = 0;
  double recovery = 0.0;
};

StreamOutcome RunStream(const Dataset& ds,
                        const std::vector<TrackingRecord>& records,
                        const RepairOptions& options, size_t cadence,
                        double horizon) {
  StreamOutcome out;
  Stopwatch watch;
  StreamingRepairer stream(ds.graph, options, horizon);
  std::vector<Trajectory> emitted;
  size_t count = 0;
  for (const auto& r : records) {
    (void)stream.Append(r);
    out.peak_buffer = std::max(out.peak_buffer, stream.pending_records());
    if (++count % cadence == 0) {
      auto polled = stream.Poll();
      emitted.insert(emitted.end(), polled.begin(), polled.end());
    }
  }
  auto rest = stream.Finish();
  emitted.insert(emitted.end(), rest.begin(), rest.end());
  out.seconds = watch.ElapsedSeconds();
  out.emitted_count = emitted.size();
  out.recovery = EntityRecovery(ds, emitted);
  return out;
}

}  // namespace

int main() {
  auto ds = MakeScaledRealLikeDataset(2000);
  if (!ds.ok()) {
    std::cerr << "generation failed: " << ds.status() << "\n";
    return 1;
  }
  auto records = ds->ObservedRecords();
  std::sort(records.begin(), records.end(), RecordChronoLess);
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;

  // Batch reference, scored with the same entity-recovery metric.
  TrajectorySet set = ds->BuildObservedTrajectories();
  IdRepairer repairer(ds->graph, options);
  auto batch = repairer.Repair(set);
  if (!batch.ok()) {
    std::cerr << "batch repair failed: " << batch.status() << "\n";
    return 1;
  }
  double batch_recovery =
      EntityRecovery(*ds, batch->repaired.trajectories());
  std::cout << "stream of " << records.size() << " records; batch repair: "
            << FmtMs(batch->stats.seconds_total)
            << " ms, entity recovery " << Fmt(batch_recovery) << "\n";

  PrintTitle("Streaming: poll cadence sweep (horizon 2.0*eta)");
  PrintHeader({"poll_every", "time_ms", "peak_buffer", "emitted",
               "recovery"});
  for (size_t cadence : {50u, 200u, 1000u, 100000u}) {
    auto r = RunStream(*ds, records, options, cadence, 2.0);
    PrintRow({std::to_string(cadence), FmtMs(r.seconds),
              std::to_string(r.peak_buffer),
              std::to_string(r.emitted_count), Fmt(r.recovery)});
  }

  PrintTitle("Streaming: flush horizon sweep (poll every 200 records)");
  PrintHeader({"horizon_x_eta", "time_ms", "peak_buffer", "emitted",
               "recovery"});
  for (double horizon : {1.0, 2.0, 4.0, 8.0}) {
    auto r = RunStream(*ds, records, options, 200, horizon);
    PrintRow({Fmt(horizon, 1), FmtMs(r.seconds),
              std::to_string(r.peak_buffer),
              std::to_string(r.emitted_count), Fmt(r.recovery)});
  }
  std::cout << "\n(expected: streaming recovery within a few points of the "
               "batch value at every cadence; peak buffering grows with "
               "the horizon)\n";
  return 0;
}
