// Figure 16: comparison with competing repair approaches on synthetic
// datasets of 2,000–6,000 trajectories (real-dataset transition graph,
// 20% error rate) — recall / precision / f-measure per approach.
//
// Paper shapes: all three approaches have comparable precision; the
// transition-graph approach clearly wins recall (and hence f-measure); the
// neighborhood-constraint adaptation trails the plain ID-similarity
// baseline.

#include <iostream>

#include "baselines/id_similarity_repairer.h"
#include "baselines/neighborhood_repairer.h"
#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/real_like.h"
#include "repair/repairer.h"

using namespace idrepair;
using namespace idrepair::benchutil;

int main() {
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  options.zeta = 4;
  options.lambda = 0.5;

  PrintTitle("Fig 16: transition graph vs ID similarity vs neighborhood");
  PrintHeader({"trajectories", "approach", "recall", "precision",
               "f-measure"});
  for (size_t n : {2000u, 3000u, 4000u, 5000u, 6000u}) {
    auto ds = MakeScaledRealLikeDataset(n);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();
    auto truth = ComputeFragmentTruth(*ds, set);

    IdRepairer ours(ds->graph, options);
    auto core = ours.Repair(set);
    if (!core.ok()) {
      std::cerr << "repair failed: " << core.status() << "\n";
      return 1;
    }
    auto m1 = EvaluateRewrites(truth, set, core->rewrites);

    IdSimilarityRepairer sim_baseline(/*max_edit_distance=*/3);
    auto sim = sim_baseline.Repair(set);
    if (!sim.ok()) {
      std::cerr << "sim baseline failed: " << sim.status() << "\n";
      return 1;
    }
    auto m2 = EvaluateRewrites(truth, set, sim->rewrites);

    NeighborhoodRepairer nbr_baseline(ds->graph, options);
    auto nbr = nbr_baseline.Repair(set);
    if (!nbr.ok()) {
      std::cerr << "neighborhood baseline failed: " << nbr.status() << "\n";
      return 1;
    }
    auto m3 = EvaluateRewrites(truth, set, nbr->rewrites);

    PrintRow({std::to_string(set.size()), "transition graph",
              Fmt(m1.recall), Fmt(m1.precision), Fmt(m1.f_measure)});
    PrintRow({"", "ID similarity", Fmt(m2.recall), Fmt(m2.precision),
              Fmt(m2.f_measure)});
    PrintRow({"", "neighborhood", Fmt(m3.recall), Fmt(m3.precision),
              Fmt(m3.f_measure)});
  }
  return 0;
}
