// Figure 14: effectiveness of the optimization methods, on synthetic
// datasets of 2,000–6,000 trajectories over the real-dataset transition
// graph (§6.4).
//
//  (a) trajectory-graph (Gm) construction time with vs. without the
//      Length-Indexed Grids index — without indexing the time grows
//      superlinearly; with LIG it is near-linear.
//  (b) whole-repair running time with vs. without minimum-cover-prefix
//      pruning — the paper reports ~30% savings.
//  (c) beyond the paper: candidate-generation thread scaling on a single
//      giant chain component (the scaled real-like hour is one dense
//      component), with a bit-identical-output check at every width.

#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gen/real_like.h"
#include "repair/repairer.h"
#include "repair/trajectory_graph.h"

using namespace idrepair;
using namespace idrepair::benchutil;

namespace {

RepairOptions Defaults() {
  RepairOptions o;
  o.theta = 4;
  o.eta = 600;
  o.zeta = 4;
  o.lambda = 0.5;
  return o;
}

}  // namespace

int main() {
  BenchReport report("fig14_optimizations");
  const std::vector<size_t> sizes = {2000, 3000, 4000, 5000, 6000};

  report.Title("Fig 14(a): Gm construction time, LIG index on/off");
  report.Header({"trajectories", "records", "with_idx_ms", "no_idx_ms",
               "gm_edges"});
  for (size_t n : sizes) {
    auto ds = MakeScaledRealLikeDataset(n);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();
    PredicateEvaluator pred(ds->graph, 4, 600);
    double with_idx = 0.0;
    double no_idx = 0.0;
    size_t edges = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      RepairOptions o = Defaults();
      o.use_lig = true;
      Stopwatch w1;
      TrajectoryGraph gm1(set, pred, o);
      with_idx += w1.ElapsedSeconds() / kRepetitions;
      o.use_lig = false;
      Stopwatch w2;
      TrajectoryGraph gm2(set, pred, o);
      no_idx += w2.ElapsedSeconds() / kRepetitions;
      edges = gm1.num_edges();
      if (gm2.num_edges() != edges) {
        std::cerr << "index changed Gm!\n";
        return 1;
      }
    }
    report.Row({std::to_string(set.size()),
              std::to_string(set.total_records()), FmtMs(with_idx),
              FmtMs(no_idx), std::to_string(edges)});
  }

  report.Title("Fig 14(b): whole repair time, MCP pruning on/off");
  report.Header({"trajectories", "pruned_ms", "unpruned_ms", "saving",
               "cliques_cut"});
  for (size_t n : sizes) {
    auto ds = MakeScaledRealLikeDataset(n);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();
    double pruned = 0.0;
    double unpruned = 0.0;
    size_t cliques_with = 0;
    size_t cliques_without = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      RepairOptions o = Defaults();
      o.use_mcp_pruning = true;
      IdRepairer with(ds->graph, o);
      auto r1 = with.Repair(set);
      o.use_mcp_pruning = false;
      IdRepairer without(ds->graph, o);
      auto r2 = without.Repair(set);
      if (!r1.ok() || !r2.ok()) {
        std::cerr << "repair failed\n";
        return 1;
      }
      pruned += r1->stats.seconds_total / kRepetitions;
      unpruned += r2->stats.seconds_total / kRepetitions;
      cliques_with = r1->stats.cliques_enumerated;
      cliques_without = r2->stats.cliques_enumerated;
    }
    double saving = unpruned > 0 ? 1.0 - pruned / unpruned : 0.0;
    double cut = cliques_without > 0
                     ? 1.0 - static_cast<double>(cliques_with) /
                                 static_cast<double>(cliques_without)
                     : 0.0;
    report.Row({std::to_string(set.size()), FmtMs(pruned), FmtMs(unpruned),
              Fmt(saving * 100, 1) + "%", Fmt(cut * 100, 1) + "%"});
  }

  report.Title("Fig 14(c, ext): candidate generation thread scaling, "
             "single giant component");
  {
    auto ds = MakeScaledRealLikeDataset(4000);
    if (!ds.ok()) {
      std::cerr << "generation failed: " << ds.status() << "\n";
      return 1;
    }
    TrajectorySet set = ds->BuildObservedTrajectories();
    report.Header({"threads", "gen_ms", "gen_cpu_ms", "gen_speedup", "total_ms",
                 "identical"});
    double base_gen = 0.0;
    // RepairResult is move-only; keep only the fields compared below.
    std::unordered_map<TrajIndex, std::string> reference_rewrites;
    std::vector<RepairIndex> reference_selected;
    double reference_omega = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      RepairOptions o = Defaults();
      o.exec.num_threads = threads;
      IdRepairer repairer(ds->graph, o);

      double best_gen = 0.0;
      Result<RepairResult> result = Status::Internal("never ran");
      for (int rep = 0; rep < kRepetitions; ++rep) {
        auto r = repairer.Repair(set);
        if (!r.ok()) {
          std::cerr << "repair failed: " << r.status() << "\n";
          return 1;
        }
        if (rep == 0 || r->stats.seconds_generation < best_gen) {
          best_gen = r->stats.seconds_generation;
          result = std::move(r);
        }
      }
      if (threads == 1) {
        base_gen = best_gen;
        reference_rewrites = result->rewrites;
        reference_selected = result->selected;
        reference_omega = result->total_effectiveness;
      }
      bool identical = result->rewrites == reference_rewrites &&
                       result->selected == reference_selected &&
                       result->total_effectiveness == reference_omega;
      report.Row({std::to_string(threads), FmtMs(best_gen),
                FmtMs(result->stats.cpu_seconds_generation),
                FmtRatio(base_gen / std::max(best_gen, 1e-9)),
                FmtMs(result->stats.seconds_total),
                identical ? "yes" : "NO (BUG)"});
      if (!identical) return 1;
    }
    std::cout << "\n(hardware threads available here: "
              << std::thread::hardware_concurrency()
              << "; the hour-long real-like window is one chain component, "
                 "so this isolates intra-component seed sharding)\n";
  }
  return 0;
}
