#ifndef IDREPAIR_BENCH_BENCH_UTIL_H_
#define IDREPAIR_BENCH_BENCH_UTIL_H_

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace idrepair {
namespace benchutil {

/// Number of repetitions per configuration. The paper repeats each
/// experiment >= 30 times; three repetitions keep the full harness fast
/// while still averaging out generator noise (results are deterministic per
/// seed anyway).
inline constexpr int kRepetitions = 3;

inline void PrintTitle(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void PrintHeader(const std::vector<std::string>& cols) {
  for (size_t i = 0; i < cols.size(); ++i) {
    std::cout << (i ? "  " : "") << std::setw(i ? 14 : 18) << cols[i];
  }
  std::cout << "\n";
}

inline void PrintCell(const std::string& value, bool first) {
  std::cout << (first ? "" : "  ") << std::setw(first ? 18 : 14) << value;
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) PrintCell(cells[i], i == 0);
  std::cout << "\n";
}

inline std::string Fmt(double v, int digits = 3) {
  return ToFixed(v, digits);
}

inline std::string FmtMs(double seconds) { return ToFixed(seconds * 1e3, 1); }

inline std::string FmtRatio(double ratio) {
  return ToFixed(ratio, 2) + "x";
}

}  // namespace benchutil
}  // namespace idrepair

#endif  // IDREPAIR_BENCH_BENCH_UTIL_H_
