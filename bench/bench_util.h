#ifndef IDREPAIR_BENCH_BENCH_UTIL_H_
#define IDREPAIR_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/resource.h"
#include "common/string_util.h"
#include "fault/failpoint.h"

namespace idrepair {
namespace benchutil {

/// Number of repetitions per configuration. The paper repeats each
/// experiment >= 30 times; three repetitions keep the full harness fast
/// while still averaging out generator noise (results are deterministic per
/// seed anyway).
inline constexpr int kRepetitions = 3;

/// The harness-wide timing policy: MIN of kRepetitions, not mean or a
/// single run. The minimum is the repetition least disturbed by the
/// machine (scheduler preemption, cache pollution from a neighbor, a GC in
/// an unrelated process all only ever ADD time), so it is the stable
/// estimator speedup ratios should be built from. `run(rep)` performs one
/// repetition and returns its seconds.
template <typename RunFn>
double MinOverReps(RunFn&& run) {
  double best = run(0);
  for (int rep = 1; rep < kRepetitions; ++rep) {
    best = std::min(best, run(rep));
  }
  return best;
}

inline void PrintTitle(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void PrintHeader(const std::vector<std::string>& cols) {
  for (size_t i = 0; i < cols.size(); ++i) {
    std::cout << (i ? "  " : "") << std::setw(i ? 14 : 18) << cols[i];
  }
  std::cout << "\n";
}

inline void PrintCell(const std::string& value, bool first) {
  std::cout << (first ? "" : "  ") << std::setw(first ? 18 : 14) << value;
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) PrintCell(cells[i], i == 0);
  std::cout << "\n";
}

inline std::string Fmt(double v, int digits = 3) {
  return ToFixed(v, digits);
}

inline std::string FmtMs(double seconds) { return ToFixed(seconds * 1e3, 1); }

inline std::string FmtRatio(double ratio) {
  return ToFixed(ratio, 2) + "x";
}

/// Drop-in replacement for the Print* free functions that mirrors every
/// printed table into `BENCH_<name>.json` — same rows, machine-readable —
/// so runs can be diffed and plotted without scraping stdout. The file is
/// written by the destructor into $IDREPAIR_BENCH_JSON_DIR (default: the
/// working directory). Numeric-looking cells ("12.5", "3e4") become JSON
/// numbers; everything else ("2.13x", "on") stays a string.
///
///   BenchReport report("fig14_optimizations");
///   report.Title("Fig 14 — ...");
///   report.Header({"dataset", "time"});
///   report.Row({"syn-1k", FmtMs(t)});
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { WriteJson(); }

  /// Starts a new table (Print Title + a fresh JSON "tables" entry).
  void Title(const std::string& title) {
    PrintTitle(title);
    tables_.push_back(Table{title, {}, {}});
  }

  /// Column names for the current table.
  void Header(const std::vector<std::string>& cols) {
    PrintHeader(cols);
    if (tables_.empty()) tables_.push_back(Table{});
    tables_.back().columns = cols;
  }

  /// One data row; cells align positionally with the header.
  void Row(const std::vector<std::string>& cells) {
    PrintRow(cells);
    if (tables_.empty()) tables_.push_back(Table{});
    tables_.back().rows.push_back(cells);
  }

  /// Records a named memory statistic (e.g. "gr_bytes_per_edge") surfaced
  /// in the JSON "memory" object next to the always-present peak RSS.
  void Memory(const std::string& key, double value) {
    memory_.emplace_back(key, value);
  }

 private:
  struct Table {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  void WriteJson() const {
    // Delay-only site: artifact writing happens in a destructor, so chaos
    // runs can stall it but a Status-style failure has nowhere to go.
    fault::MaybePerturb("bench.report.write");
    const char* dir = std::getenv("IDREPAIR_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && *dir != '\0')
                           ? std::string(dir) + "/BENCH_" + name_ + ".json"
                           : "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    JsonWriter w(&out);
    w.BeginObject();
    w.Key("bench");
    w.String(name_);
    w.Key("repetitions");
    w.Int(kRepetitions);
    // Timing provenance: which estimator produced the ms columns and how
    // much hardware the run had — without these, artifact diffs across
    // machines (a 1-core CI box vs an 8-core workstation) read as
    // regressions.
    w.Key("timing_policy");
    w.String("min_of_n");
    w.Key("hardware_threads");
    w.Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
    // Memory block: the process peak RSS at write time (the whole run's
    // high-water mark) plus any bench-reported structure sizes, so memory
    // regressions diff as easily as timings.
    w.Key("memory");
    w.BeginObject();
    w.Key("peak_rss_bytes");
    w.Int(static_cast<int64_t>(PeakRssBytes()));
    for (const auto& [key, value] : memory_) {
      w.Key(key);
      w.Double(value);
    }
    w.EndObject();
    w.Key("tables");
    w.BeginArray();
    for (const Table& t : tables_) {
      w.BeginObject();
      w.Key("title");
      w.String(t.title);
      w.Key("columns");
      w.BeginArray();
      for (const auto& c : t.columns) w.String(c);
      w.EndArray();
      w.Key("rows");
      w.BeginArray();
      for (const auto& row : t.rows) {
        w.BeginObject();
        for (size_t i = 0; i < row.size(); ++i) {
          w.Key(i < t.columns.size() ? t.columns[i]
                                     : "col" + std::to_string(i));
          w.NumberOrString(row[i]);
        }
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    out << "\n";
    std::cout << "\n[bench] wrote " << path << "\n";
  }

  std::string name_;
  std::vector<Table> tables_;
  std::vector<std::pair<std::string, double>> memory_;
};

}  // namespace benchutil
}  // namespace idrepair

#endif  // IDREPAIR_BENCH_BENCH_UTIL_H_
