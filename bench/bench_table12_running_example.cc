// Tables 1 & 2 + Figures 2/4 of the paper: the running example, printed in
// the paper's own format, ending with the repair the paper derives.

#include <iostream>

#include "bench_util.h"
#include "graph/generators.h"
#include "repair/repairer.h"

using namespace idrepair;

int main() {
  TransitionGraph graph = MakePaperExampleGraph();
  auto hms = [](int h, int m, int s) {
    return static_cast<Timestamp>(h * 3600 + m * 60 + s);
  };
  std::vector<TrackingRecord> records = {
      {"GL21348", 0, hms(8, 9, 10)},  {"GL21348", 1, hms(8, 13, 7)},
      {"GL03245", 2, hms(8, 17, 23)}, {"GL21348", 3, hms(8, 19, 13)},
      {"GL83248", 3, hms(8, 19, 40)}, {"GL21348", 4, hms(8, 21, 29)},
      {"GL83248", 4, hms(8, 21, 30)},
  };

  benchutil::PrintTitle("Table 1: Tracking Records");
  benchutil::PrintHeader({"ID", "Loc", "Time"});
  for (const auto& r : records) {
    int h = static_cast<int>(r.ts / 3600);
    int m = static_cast<int>((r.ts % 3600) / 60);
    int s = static_cast<int>(r.ts % 60);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", h, m, s);
    benchutil::PrintRow({r.id, graph.LocationName(r.loc), buf});
  }

  TrajectorySet set = TrajectorySet::FromRecords(records);
  benchutil::PrintTitle("Table 2: Trajectories");
  benchutil::PrintHeader({"No.", "Trajectory", "Validity"});
  for (TrajIndex i = 0; i < set.size(); ++i) {
    benchutil::PrintRow({std::to_string(i + 1), set.at(i).ToString(graph),
                         set.at(i).IsValid(graph) ? "valid" : "invalid"});
  }

  RepairOptions options;
  options.theta = 5;
  options.eta = 1200;
  options.zeta = 4;
  options.lambda = 0.5;
  options.rarity_base_offset = 2;  // reproduces Figure 4(b)'s printed ω
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  if (!result.ok()) {
    std::cerr << "repair failed: " << result.status() << "\n";
    return 1;
  }

  benchutil::PrintTitle("Candidate repairs (Example 3.4, Figure 4(b))");
  benchutil::PrintHeader({"target", "members", "sim", "omega"});
  for (size_t r = 0; r < result->candidates.size(); ++r) {
    std::string members;
    for (TrajIndex m : result->candidates.members(r)) {
      members += (members.empty() ? "" : "+") + set.at(m).id();
    }
    benchutil::PrintRow({result->candidates.target_id(r), members,
                         benchutil::Fmt(result->candidates.similarity(r)),
                         benchutil::Fmt(result->candidates.effectiveness(r))});
  }

  benchutil::PrintTitle("Repaired trajectories (Example 1.4)");
  for (const auto& t : result->repaired.trajectories()) {
    std::cout << "  " << t.ToString(graph)
              << (t.IsValid(graph) ? "  [valid]" : "  [INVALID]") << "\n";
  }
  std::cout << "paper expectation: GL03245<C> rewritten to GL83248, "
               "yielding GL83248<C -> D -> E>\n";
  return 0;
}
