// idrepair command-line tool: repair, generate, inspect and export.
//
//   idrepair_cli repair   --graph g.txt --records in.csv --out fixed.csv
//                         [--truth truth.csv] [--theta N] [--eta SECONDS]
//                         [--zeta N] [--lambda F] [--selection emax|dmin|
//                         dmax|exact] [--similarity edit|jaro_winkler|
//                         bigram_cosine|overlap] [--no-lig] [--no-prune]
//                         [--explain] [--threads N]
//                         [--candidate-grain auto|N]
//                         [--selection-grain auto|N]
//                         [--engine core|partitioned|streaming|idsim|
//                         neighborhood] [--max-edit-distance N]
//                         [--flush-horizon F] [--window-slide SECONDS]
//                         [--max-buffered N]
//                         [--metrics-out FILE] [--metrics-interval MS]
//                         [--trace-out FILE]
//                         [--trace-capacity N] [--stats-json FILE]
//                         [--deadline-ms N] [--failpoints SPEC]
//                         [--failpoints-status]
//   idrepair_cli generate --graph g.txt --out records.csv
//                         [--truth truth.csv] [--trajectories N]
//                         [--error-rate F] [--missing-rate F] [--seed N]
//                         [--window SECONDS] [--max-path-len N]
//   idrepair_cli stats    --graph g.txt --records in.csv
//   idrepair_cli dot      --graph g.txt
//   idrepair_cli serve    [--listen tcp:127.0.0.1:7077] [--load-dir DIR]
//                         [--snapshot-dir DIR] [--max-inflight N]
//                         [--default-deadline-ms N] [--threads N]
//                         [--metrics-out FILE] [--metrics-interval MS]
//   idrepair_cli client register --connect ADDR --name NAME --graph g.txt
//                         [--records corpus.csv] [--theta N] [--eta S] ...
//   idrepair_cli client repair   --connect ADDR --name NAME
//                         (--records in.csv --graph g.txt [--out fixed.csv]
//                          | --use-corpus) [--budget-ms N]
//                         [--engine core|partitioned]
//   idrepair_cli client snapshot --connect ADDR [--dir DIR]
//   idrepair_cli client stats    --connect ADDR [--prometheus]
//   idrepair_cli client shutdown --connect ADDR
//
// Graph files use the text format of graph/serialization.h; record files
// are `id,loc,ts` CSV.

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "baselines/id_similarity_repairer.h"
#include "baselines/neighborhood_repairer.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "exec/grain.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/scrape.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "gen/synthetic.h"
#include "graph/serialization.h"
#include "repair/explain.h"
#include "repair/partitioned.h"
#include "repair/repairer.h"
#include "repair/stats_json.h"
#include "sim/similarity.h"
#include "stream/streaming_repairer.h"
#include "traj/csv.h"
#include "traj/stats.h"

namespace idrepair {
namespace {

constexpr char kUsage[] =
    "usage: idrepair_cli <repair|generate|stats|dot|serve|client> [flags]\n"
    "run with a command and no flags for that command's requirements\n";

Status RequireFlag(const FlagParser& flags, const std::string& key) {
  if (!flags.Has(key)) {
    return Status::InvalidArgument("missing required flag --" + key);
  }
  return Status::OK();
}

Result<SelectionAlgorithm> ParseSelection(const std::string& selection) {
  if (selection == "emax") return SelectionAlgorithm::kEmax;
  if (selection == "dmin") return SelectionAlgorithm::kDmin;
  if (selection == "dmax") return SelectionAlgorithm::kDmax;
  if (selection == "exact") return SelectionAlgorithm::kExact;
  return Status::InvalidArgument("unknown --selection '" + selection + "'");
}

Result<RepairOptions> OptionsFromFlags(const FlagParser& flags,
                                       const IdSimilarity** similarity_out) {
  auto theta = flags.GetInt("theta", 4);
  if (!theta.ok()) return theta.status();
  auto eta = flags.GetInt("eta", 600);
  if (!eta.ok()) return eta.status();
  auto zeta = flags.GetInt("zeta", 4);
  if (!zeta.ok()) return zeta.status();
  auto lambda = flags.GetDouble("lambda", 0.5);
  if (!lambda.ok()) return lambda.status();
  auto threads = flags.GetInt("threads", 0);
  if (!threads.ok()) return threads.status();
  auto grain = ParseGrainValue(flags.GetString("candidate-grain", "auto"),
                               "candidate-grain");
  if (!grain.ok()) return grain.status();
  auto selection_grain = ParseGrainValue(
      flags.GetString("selection-grain", "auto"), "selection-grain");
  if (!selection_grain.ok()) return selection_grain.status();
  auto selection = ParseSelection(flags.GetString("selection", "emax"));
  if (!selection.ok()) return selection.status();
  auto trace_capacity = flags.GetInt("trace-capacity", 8192);
  if (!trace_capacity.ok()) return trace_capacity.status();
  if (*trace_capacity <= 0) {
    return Status::InvalidArgument("--trace-capacity must be >= 1");
  }
  auto deadline_ms = flags.GetInt("deadline-ms", 0);
  if (!deadline_ms.ok()) return deadline_ms.status();
  if (*deadline_ms < 0) {
    return Status::InvalidArgument("--deadline-ms must be >= 0");
  }
  auto metrics_interval = flags.GetInt("metrics-interval", 0);
  if (!metrics_interval.ok()) return metrics_interval.status();
  if (*metrics_interval < 0) {
    return Status::InvalidArgument("--metrics-interval must be >= 0");
  }
  if (*metrics_interval > 0 && !flags.Has("metrics-out")) {
    return Status::InvalidArgument(
        "--metrics-interval needs --metrics-out to scrape into");
  }
  // Requesting either export implies instrumentation; there is no separate
  // --obs switch to forget.
  bool obs_enabled = flags.Has("metrics-out") || flags.Has("trace-out");

  // The CLI owns the metric for the lifetime of the process; RepairOptions
  // only borrows it (see the ownership contract in repair/options.h).
  static std::unique_ptr<IdSimilarity> owned_similarity;
  auto sim = MakeSimilarity(flags.GetString("similarity", "edit"));
  if (!sim.ok()) return sim.status();
  owned_similarity = std::move(*sim);
  *similarity_out = owned_similarity.get();

  return RepairOptions()
      .WithTheta(static_cast<size_t>(*theta))
      .WithEta(*eta)
      .WithZeta(static_cast<size_t>(*zeta))
      .WithLambda(*lambda)
      .WithLig(!flags.GetBool("no-lig"))
      .WithMcpPruning(!flags.GetBool("no-prune"))
      .WithSelection(*selection)
      .WithSimilarity(owned_similarity.get())
      .WithThreads(static_cast<int>(*threads))
      .WithMinCandidateGrain(*grain)
      .WithMinSelectionGrain(*selection_grain)
      .WithObsEnabled(obs_enabled)
      .WithTraceCapacity(static_cast<size_t>(*trace_capacity))
      .WithDeadlineMs(*deadline_ms)
      .WithMetricsIntervalMs(*metrics_interval)
      .Validated();
}

Result<std::unique_ptr<Repairer>> MakeEngine(const FlagParser& flags,
                                             const TransitionGraph& graph,
                                             const RepairOptions& options) {
  std::string engine = flags.GetString("engine", "core");
  if (engine == "core") {
    return std::unique_ptr<Repairer>(new IdRepairer(graph, options));
  }
  if (engine == "partitioned") {
    return std::unique_ptr<Repairer>(new PartitionedRepairer(graph, options));
  }
  if (engine == "streaming") {
    auto horizon = flags.GetDouble("flush-horizon", 2.0);
    if (!horizon.ok()) return horizon.status();
    if (*horizon < 1.0) {
      return Status::InvalidArgument(
          "--flush-horizon must be >= 1 (emitted fragments must be inert)");
    }
    auto slide = flags.GetInt("window-slide", 0);
    if (!slide.ok()) return slide.status();
    if (*slide < 0) {
      return Status::InvalidArgument("--window-slide must be >= 0");
    }
    auto max_buffered = flags.GetInt("max-buffered", 0);
    if (!max_buffered.ok()) return max_buffered.status();
    if (*max_buffered < 0) {
      return Status::InvalidArgument("--max-buffered must be >= 0");
    }
    StreamOptions stream_options;
    stream_options.flush_horizon_multiplier = *horizon;
    stream_options.window_slide = static_cast<Timestamp>(*slide);
    stream_options.max_buffered = static_cast<size_t>(*max_buffered);
    return std::unique_ptr<Repairer>(
        new StreamingRepairer(graph, options, stream_options));
  }
  if (engine == "idsim") {
    auto dist = flags.GetInt("max-edit-distance", 3);
    if (!dist.ok()) return dist.status();
    return std::unique_ptr<Repairer>(
        new IdSimilarityRepairer(static_cast<size_t>(*dist)));
  }
  if (engine == "neighborhood") {
    return std::unique_ptr<Repairer>(
        new NeighborhoodRepairer(graph, options));
  }
  return Status::InvalidArgument("unknown --engine '" + engine + "'");
}

int FailWith(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

int RunRepair(const FlagParser& flags) {
  for (const char* key : {"graph", "records", "out"}) {
    if (Status s = RequireFlag(flags, key); !s.ok()) return FailWith(s);
  }
  // Arm failpoints before any I/O so the io.* sites see the load path too.
  if (flags.Has("failpoints")) {
    if (Status s = fault::ArmFromString(flags.GetString("failpoints"));
        !s.ok()) {
      return FailWith(s);
    }
  }
  auto graph = ReadTransitionGraphFile(flags.GetString("graph"));
  if (!graph.ok()) return FailWith(graph.status());
  auto records = ReadRecordsCsvFile(flags.GetString("records"), *graph);
  if (!records.ok()) return FailWith(records.status());

  const IdSimilarity* similarity = nullptr;
  auto options = OptionsFromFlags(flags, &similarity);
  if (!options.ok()) return FailWith(options.status());
  // Enable instrumentation up front (not just inside the engines) so the
  // baseline engines, which ignore RepairOptions::obs, still export.
  obs::ApplyOptions(options->obs);
  std::unique_ptr<obs::MetricsScraper> scraper;
  if (options->obs.metrics_interval_ms > 0) {
    obs::MetricsScraper::Options scrape_options;
    scrape_options.path = flags.GetString("metrics-out");
    scrape_options.interval_ms = options->obs.metrics_interval_ms;
    auto started = obs::MetricsScraper::Start(std::move(scrape_options));
    if (!started.ok()) return FailWith(started.status());
    scraper = std::move(*started);
  }

  TrajectorySet set = TrajectorySet::FromRecords(*records);
  auto engine = MakeEngine(flags, *graph, *options);
  if (!engine.ok()) return FailWith(engine.status());
  auto result = (*engine)->Repair(set);
  if (!result.ok()) return FailWith(result.status());

  std::cout << "engine: " << (*engine)->name() << ", trajectories: "
            << set.size() << " (" << result->stats.num_invalid
            << " invalid), candidates: " << result->stats.num_candidates
            << ", selected: " << result->stats.num_selected
            << ", rewrites: " << result->rewrites.size() << ", threads: "
            << result->stats.threads_used << ", time: "
            << ToFixed(result->stats.seconds_total * 1e3, 1) << " ms\n";
  if (!result->completion.ok()) {
    std::cout << "partial result (graceful degradation): "
              << result->completion << "\n";
  }
  if (flags.GetBool("failpoints-status")) {
    std::cout << fault::FailPointRegistry::Global().RenderStatus();
  }

  if (flags.GetBool("explain")) {
    std::cout << ExplainRepair(set, *graph, *result, *options);
  }

  if (scraper != nullptr) {
    // Periodic mode: the scraper appends timestamped expositions; its Stop()
    // writes the final one, so the one-shot dump below would only duplicate
    // the last block.
    scraper->Stop();
    if (Status s = scraper->last_error(); !s.ok()) return FailWith(s);
    std::cout << "wrote " << scraper->scrapes() << " metric scrapes to "
              << flags.GetString("metrics-out") << "\n";
  } else if (flags.Has("metrics-out")) {
    std::string path = flags.GetString("metrics-out");
    std::ofstream metrics(path);
    if (!metrics) {
      return FailWith(
          Status::IoError("cannot open '" + path + "' for writing"));
    }
    metrics << obs::MetricsRegistry::Global().RenderPrometheus();
    if (!metrics.good()) {
      return FailWith(Status::IoError("failed writing '" + path + "'"));
    }
    std::cout << "wrote metrics to " << path << "\n";
  }
  if (flags.Has("trace-out")) {
    std::string path = flags.GetString("trace-out");
    if (Status s = obs::TraceSink::Global().WriteJsonFile(path); !s.ok()) {
      return FailWith(s);
    }
    std::cout << "wrote trace to " << path << "\n";
  }
  if (flags.Has("stats-json")) {
    std::string path = flags.GetString("stats-json");
    if (Status s =
            WriteStatsJsonFile(path, (*engine)->name(), *options, *result);
        !s.ok()) {
      return FailWith(s);
    }
    std::cout << "wrote stats to " << path << "\n";
  }

  if (flags.Has("truth")) {
    auto truth_records = ReadRecordsCsvFile(flags.GetString("truth"), *graph);
    if (!truth_records.ok()) return FailWith(truth_records.status());
    auto dataset = MakeLabeledDataset(*graph, *records, *truth_records);
    if (!dataset.ok()) return FailWith(dataset.status());
    auto truth = ComputeFragmentTruth(*dataset, set);
    auto metrics = EvaluateRewrites(truth, set, result->rewrites);
    std::cout << "precision=" << ToFixed(metrics.precision, 3)
              << " recall=" << ToFixed(metrics.recall, 3)
              << " f-measure=" << ToFixed(metrics.f_measure, 3) << "\n";
  }

  std::vector<TrackingRecord> repaired;
  repaired.reserve(set.total_records());
  for (const auto& t : result->repaired.trajectories()) {
    for (const auto& p : t.points()) {
      repaired.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  if (Status s = WriteRecordsCsvFile(flags.GetString("out"), *graph,
                                     repaired);
      !s.ok()) {
    return FailWith(s);
  }
  std::cout << "wrote " << repaired.size() << " records to "
            << flags.GetString("out") << "\n";
  return 0;
}

int RunGenerate(const FlagParser& flags) {
  for (const char* key : {"graph", "out"}) {
    if (Status s = RequireFlag(flags, key); !s.ok()) return FailWith(s);
  }
  auto graph = ReadTransitionGraphFile(flags.GetString("graph"));
  if (!graph.ok()) return FailWith(graph.status());

  SyntheticConfig config;
  auto n = flags.GetInt("trajectories", 500);
  auto error_rate = flags.GetDouble("error-rate", 0.2);
  auto missing_rate = flags.GetDouble("missing-rate", 0.0);
  auto seed = flags.GetInt("seed", 42);
  auto window = flags.GetInt("window", 3600);
  auto max_len = flags.GetInt("max-path-len", 8);
  for (const Status& s :
       {n.status(), error_rate.status(), missing_rate.status(),
        seed.status(), window.status(), max_len.status()}) {
    if (!s.ok()) return FailWith(s);
  }
  config.num_trajectories = static_cast<size_t>(*n);
  config.record_error_rate = *error_rate;
  config.record_missing_rate = *missing_rate;
  config.seed = static_cast<uint64_t>(*seed);
  config.window_seconds = *window;
  config.max_path_len = static_cast<size_t>(*max_len);

  auto dataset = GenerateSyntheticDataset(*graph, config);
  if (!dataset.ok()) return FailWith(dataset.status());
  if (Status s = WriteRecordsCsvFile(flags.GetString("out"), *graph,
                                     dataset->ObservedRecords());
      !s.ok()) {
    return FailWith(s);
  }
  std::cout << "wrote " << dataset->records.size() << " records ("
            << dataset->NumEntities() << " entities, error rate "
            << ToFixed(dataset->RecordErrorRate(), 3) << ") to "
            << flags.GetString("out") << "\n";
  if (flags.Has("truth")) {
    if (Status s = WriteRecordsCsvFile(flags.GetString("truth"), *graph,
                                       dataset->TrueRecords());
        !s.ok()) {
      return FailWith(s);
    }
    std::cout << "wrote ground truth to " << flags.GetString("truth")
              << "\n";
  }
  return 0;
}

int RunStats(const FlagParser& flags) {
  for (const char* key : {"graph", "records"}) {
    if (Status s = RequireFlag(flags, key); !s.ok()) return FailWith(s);
  }
  auto graph = ReadTransitionGraphFile(flags.GetString("graph"));
  if (!graph.ok()) return FailWith(graph.status());
  auto records = ReadRecordsCsvFile(flags.GetString("records"), *graph);
  if (!records.ok()) return FailWith(records.status());
  TrajectorySet set = TrajectorySet::FromRecords(*records);
  std::cout << DescribeStats(ComputeStats(set, *graph));
  return 0;
}

int RunDot(const FlagParser& flags) {
  if (Status s = RequireFlag(flags, "graph"); !s.ok()) return FailWith(s);
  auto graph = ReadTransitionGraphFile(flags.GetString("graph"));
  if (!graph.ok()) return FailWith(graph.status());
  std::cout << ToDot(*graph);
  return 0;
}

int RunServe(const FlagParser& flags) {
  server::ServerOptions options;
  options.listen = flags.GetString("listen", "tcp:127.0.0.1:7077");
  options.load_dir = flags.GetString("load-dir");
  options.snapshot_dir = flags.GetString("snapshot-dir");
  auto max_inflight = flags.GetInt("max-inflight", 64);
  auto default_deadline = flags.GetInt("default-deadline-ms", 0);
  auto threads = flags.GetInt("threads", 0);
  auto metrics_interval = flags.GetInt("metrics-interval", 0);
  for (const Status& s :
       {max_inflight.status(), default_deadline.status(), threads.status(),
        metrics_interval.status()}) {
    if (!s.ok()) return FailWith(s);
  }
  if (*max_inflight < 0) {
    return FailWith(Status::InvalidArgument("--max-inflight must be >= 0"));
  }
  options.max_inflight = static_cast<uint64_t>(*max_inflight);
  options.default_deadline_ms = *default_deadline;
  options.exec_threads = static_cast<int>(*threads);

  if (flags.Has("metrics-out")) obs::SetEnabled(true);
  std::unique_ptr<obs::MetricsScraper> scraper;
  if (*metrics_interval > 0) {
    if (!flags.Has("metrics-out")) {
      return FailWith(Status::InvalidArgument(
          "--metrics-interval needs --metrics-out to scrape into"));
    }
    obs::MetricsScraper::Options scrape_options;
    scrape_options.path = flags.GetString("metrics-out");
    scrape_options.interval_ms = *metrics_interval;
    auto started = obs::MetricsScraper::Start(std::move(scrape_options));
    if (!started.ok()) return FailWith(started.status());
    scraper = std::move(*started);
  }

  auto srv = server::IdRepairServer::Start(std::move(options));
  if (!srv.ok()) return FailWith(srv.status());
  std::cout << "idrepaird listening at " << (*srv)->address() << " ("
            << (*srv)->registry().size() << " graphs loaded)" << std::endl;
  (*srv)->WaitForShutdownRequest();
  server::AdmissionStats admission = (*srv)->admission();
  (*srv)->Stop();
  std::cout << "idrepaird stopped: admitted=" << admission.admitted
            << " rejected=" << admission.rejected
            << " completed=" << admission.completed << "\n";
  if (scraper != nullptr) {
    scraper->Stop();
    std::cout << "wrote " << scraper->scrapes() << " metric scrapes to "
              << flags.GetString("metrics-out") << "\n";
  }
  return 0;
}

Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

int RunClient(const std::string& action, const FlagParser& flags) {
  if (Status s = RequireFlag(flags, "connect"); !s.ok()) return FailWith(s);
  auto client = server::RepairClient::Connect(flags.GetString("connect"));
  if (!client.ok()) return FailWith(client.status());

  if (action == "register") {
    for (const char* key : {"name", "graph"}) {
      if (Status s = RequireFlag(flags, key); !s.ok()) return FailWith(s);
    }
    server::RegisterGraphRequest req;
    req.name = flags.GetString("name");
    auto graph_text = ReadFileText(flags.GetString("graph"));
    if (!graph_text.ok()) return FailWith(graph_text.status());
    req.graph_text = std::move(*graph_text);
    const IdSimilarity* unused = nullptr;
    auto options = OptionsFromFlags(flags, &unused);
    if (!options.ok()) return FailWith(options.status());
    options->similarity = nullptr;  // never travels the wire
    req.options = *options;
    if (flags.Has("records")) {
      std::istringstream graph_stream(req.graph_text);
      auto graph = ReadTransitionGraph(graph_stream);
      if (!graph.ok()) return FailWith(graph.status());
      auto corpus = ReadRecordsCsvFile(flags.GetString("records"), *graph);
      if (!corpus.ok()) return FailWith(corpus.status());
      req.corpus = std::move(*corpus);
    }
    auto reply = client->RegisterGraph(req);
    if (!reply.ok()) return FailWith(reply.status());
    std::cout << "registered '" << req.name << "' version " << reply->version
              << " (" << req.corpus.size() << " corpus records)\n";
    return 0;
  }

  if (action == "repair") {
    if (Status s = RequireFlag(flags, "name"); !s.ok()) return FailWith(s);
    server::RepairRequest req;
    req.name = flags.GetString("name");
    auto budget = flags.GetInt("budget-ms", 0);
    if (!budget.ok()) return FailWith(budget.status());
    req.budget_ms = *budget;
    std::string engine = flags.GetString("engine", "core");
    if (engine == "partitioned") {
      req.engine = 1;
    } else if (engine != "core") {
      return FailWith(Status::InvalidArgument(
          "client repair supports --engine core|partitioned"));
    }
    req.use_corpus = flags.GetBool("use-corpus");
    std::unique_ptr<TransitionGraph> graph;  // only needed for record CSV I/O
    if (!req.use_corpus) {
      for (const char* key : {"records", "graph"}) {
        if (Status s = RequireFlag(flags, key); !s.ok()) return FailWith(s);
      }
      auto loaded = ReadTransitionGraphFile(flags.GetString("graph"));
      if (!loaded.ok()) return FailWith(loaded.status());
      graph = std::make_unique<TransitionGraph>(std::move(*loaded));
      auto records = ReadRecordsCsvFile(flags.GetString("records"), *graph);
      if (!records.ok()) return FailWith(records.status());
      req.batches.push_back(std::move(*records));
    }
    auto reply = client->Repair(req);
    if (!reply.ok()) return FailWith(reply.status());
    size_t batch_index = 0;
    for (const server::BatchReply& batch : reply->batches) {
      std::cout << "batch " << batch_index++ << ": candidates="
                << batch.num_candidates << " selected=" << batch.num_selected
                << " rewrites=" << batch.num_rewrites << " records="
                << batch.repaired.size() << " time="
                << ToFixed(batch.seconds_total * 1e3, 1) << " ms";
      if (!batch.completion.ok()) std::cout << " (" << batch.completion << ")";
      std::cout << "\n";
    }
    if (flags.Has("out")) {
      if (graph == nullptr) {
        return FailWith(Status::InvalidArgument(
            "--out needs --graph to render location names"));
      }
      std::vector<TrackingRecord> all;
      for (const server::BatchReply& batch : reply->batches) {
        all.insert(all.end(), batch.repaired.begin(), batch.repaired.end());
      }
      if (Status s =
              WriteRecordsCsvFile(flags.GetString("out"), *graph, all);
          !s.ok()) {
        return FailWith(s);
      }
      std::cout << "wrote " << all.size() << " records to "
                << flags.GetString("out") << "\n";
    }
    return 0;
  }

  if (action == "snapshot") {
    server::SnapshotRequest req;
    req.dir = flags.GetString("dir");
    auto reply = client->Snapshot(req);
    if (!reply.ok()) return FailWith(reply.status());
    std::cout << "saved " << reply->num_saved << " snapshots to "
              << reply->dir << "\n";
    return 0;
  }

  if (action == "stats") {
    server::StatsRequest req;
    req.include_prometheus = flags.GetBool("prometheus");
    auto reply = client->Stats(req);
    if (!reply.ok()) return FailWith(reply.status());
    for (const auto& entry : reply->entries) {
      std::cout << entry.name << " v" << entry.version << ": "
                << entry.num_locations << " locations, " << entry.num_edges
                << " edges, " << entry.corpus_trajectories
                << " corpus trajectories, " << entry.lig_indexed
                << " LIG-indexed, " << entry.use_count << " in use\n";
    }
    const server::AdmissionStats& a = reply->admission;
    std::cout << "admission: admitted=" << a.admitted << " rejected="
              << a.rejected << " completed=" << a.completed << " inflight="
              << a.inflight << " queue_peak=" << a.queue_peak
              << " max_inflight=" << a.max_inflight << "\n";
    if (!reply->prometheus.empty()) std::cout << reply->prometheus;
    return 0;
  }

  if (action == "shutdown") {
    if (Status s = client->Shutdown(); !s.ok()) return FailWith(s);
    std::cout << "shutdown acknowledged\n";
    return 0;
  }

  std::cerr << "unknown client action '" << action << "'\n" << kUsage;
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  std::string command = argv[1];
  if (command == "client") {
    if (argc < 3) {
      std::cerr << "usage: idrepair_cli client "
                   "<register|repair|snapshot|stats|shutdown> --connect "
                   "ADDR [flags]\n";
      return 2;
    }
    auto flags = FlagParser::Parse(argc - 3, argv + 3,
                                   {"no-lig", "no-prune", "use-corpus",
                                    "prometheus"});
    if (!flags.ok()) return FailWith(flags.status());
    return RunClient(argv[2], *flags);
  }
  auto flags = FlagParser::Parse(
      argc - 2, argv + 2,
      {"no-lig", "no-prune", "explain", "failpoints-status"});
  if (!flags.ok()) return FailWith(flags.status());
  if (command == "repair") return RunRepair(*flags);
  if (command == "generate") return RunGenerate(*flags);
  if (command == "stats") return RunStats(*flags);
  if (command == "dot") return RunDot(*flags);
  if (command == "serve") return RunServe(*flags);
  std::cerr << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace
}  // namespace idrepair

int main(int argc, char** argv) { return idrepair::Main(argc, argv); }
