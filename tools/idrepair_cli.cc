// idrepair command-line tool: repair, generate, inspect and export.
//
//   idrepair_cli repair   --graph g.txt --records in.csv --out fixed.csv
//                         [--truth truth.csv] [--theta N] [--eta SECONDS]
//                         [--zeta N] [--lambda F] [--selection emax|dmin|
//                         dmax|exact] [--similarity edit|jaro_winkler|
//                         bigram_cosine|overlap] [--no-lig] [--no-prune]
//                         [--explain] [--threads N] [--candidate-grain N]
//                         [--engine core|partitioned|streaming|idsim|
//                         neighborhood] [--max-edit-distance N]
//                         [--metrics-out FILE] [--trace-out FILE]
//                         [--trace-capacity N] [--stats-json FILE]
//   idrepair_cli generate --graph g.txt --out records.csv
//                         [--truth truth.csv] [--trajectories N]
//                         [--error-rate F] [--missing-rate F] [--seed N]
//                         [--window SECONDS] [--max-path-len N]
//   idrepair_cli stats    --graph g.txt --records in.csv
//   idrepair_cli dot      --graph g.txt
//
// Graph files use the text format of graph/serialization.h; record files
// are `id,loc,ts` CSV.

#include <fstream>
#include <iostream>
#include <memory>

#include "baselines/id_similarity_repairer.h"
#include "baselines/neighborhood_repairer.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "gen/synthetic.h"
#include "graph/serialization.h"
#include "repair/explain.h"
#include "repair/partitioned.h"
#include "repair/repairer.h"
#include "sim/similarity.h"
#include "stream/streaming_repairer.h"
#include "traj/csv.h"
#include "traj/stats.h"

namespace idrepair {
namespace {

constexpr char kUsage[] =
    "usage: idrepair_cli <repair|generate|stats|dot> [flags]\n"
    "run with a command and no flags for that command's requirements\n";

Status RequireFlag(const FlagParser& flags, const std::string& key) {
  if (!flags.Has(key)) {
    return Status::InvalidArgument("missing required flag --" + key);
  }
  return Status::OK();
}

Result<SelectionAlgorithm> ParseSelection(const std::string& selection) {
  if (selection == "emax") return SelectionAlgorithm::kEmax;
  if (selection == "dmin") return SelectionAlgorithm::kDmin;
  if (selection == "dmax") return SelectionAlgorithm::kDmax;
  if (selection == "exact") return SelectionAlgorithm::kExact;
  return Status::InvalidArgument("unknown --selection '" + selection + "'");
}

Result<RepairOptions> OptionsFromFlags(const FlagParser& flags,
                                       const IdSimilarity** similarity_out) {
  auto theta = flags.GetInt("theta", 4);
  if (!theta.ok()) return theta.status();
  auto eta = flags.GetInt("eta", 600);
  if (!eta.ok()) return eta.status();
  auto zeta = flags.GetInt("zeta", 4);
  if (!zeta.ok()) return zeta.status();
  auto lambda = flags.GetDouble("lambda", 0.5);
  if (!lambda.ok()) return lambda.status();
  auto threads = flags.GetInt("threads", 0);
  if (!threads.ok()) return threads.status();
  auto grain = flags.GetInt("candidate-grain", 32);
  if (!grain.ok()) return grain.status();
  if (*grain <= 0) {
    return Status::InvalidArgument("--candidate-grain must be >= 1");
  }
  auto selection = ParseSelection(flags.GetString("selection", "emax"));
  if (!selection.ok()) return selection.status();
  auto trace_capacity = flags.GetInt("trace-capacity", 8192);
  if (!trace_capacity.ok()) return trace_capacity.status();
  if (*trace_capacity <= 0) {
    return Status::InvalidArgument("--trace-capacity must be >= 1");
  }
  // Requesting either export implies instrumentation; there is no separate
  // --obs switch to forget.
  bool obs_enabled = flags.Has("metrics-out") || flags.Has("trace-out");

  // The CLI owns the metric for the lifetime of the process; RepairOptions
  // only borrows it (see the ownership contract in repair/options.h).
  static std::unique_ptr<IdSimilarity> owned_similarity;
  auto sim = MakeSimilarity(flags.GetString("similarity", "edit"));
  if (!sim.ok()) return sim.status();
  owned_similarity = std::move(*sim);
  *similarity_out = owned_similarity.get();

  return RepairOptions()
      .WithTheta(static_cast<size_t>(*theta))
      .WithEta(*eta)
      .WithZeta(static_cast<size_t>(*zeta))
      .WithLambda(*lambda)
      .WithLig(!flags.GetBool("no-lig"))
      .WithMcpPruning(!flags.GetBool("no-prune"))
      .WithSelection(*selection)
      .WithSimilarity(owned_similarity.get())
      .WithThreads(static_cast<int>(*threads))
      .WithMinCandidateGrain(static_cast<size_t>(*grain))
      .WithObsEnabled(obs_enabled)
      .WithTraceCapacity(static_cast<size_t>(*trace_capacity))
      .Validated();
}

Result<std::unique_ptr<Repairer>> MakeEngine(const FlagParser& flags,
                                             const TransitionGraph& graph,
                                             const RepairOptions& options) {
  std::string engine = flags.GetString("engine", "core");
  if (engine == "core") {
    return std::unique_ptr<Repairer>(new IdRepairer(graph, options));
  }
  if (engine == "partitioned") {
    return std::unique_ptr<Repairer>(new PartitionedRepairer(graph, options));
  }
  if (engine == "streaming") {
    return std::unique_ptr<Repairer>(new StreamingRepairer(graph, options));
  }
  if (engine == "idsim") {
    auto dist = flags.GetInt("max-edit-distance", 3);
    if (!dist.ok()) return dist.status();
    return std::unique_ptr<Repairer>(
        new IdSimilarityRepairer(static_cast<size_t>(*dist)));
  }
  if (engine == "neighborhood") {
    return std::unique_ptr<Repairer>(
        new NeighborhoodRepairer(graph, options));
  }
  return Status::InvalidArgument("unknown --engine '" + engine + "'");
}

int FailWith(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

const char* SelectionName(SelectionAlgorithm selection) {
  switch (selection) {
    case SelectionAlgorithm::kEmax: return "emax";
    case SelectionAlgorithm::kDmin: return "dmin";
    case SelectionAlgorithm::kDmax: return "dmax";
    case SelectionAlgorithm::kExact: return "exact";
  }
  return "unknown";
}

/// Appends the registry's merged state as a JSON array of per-metric
/// objects (one entry per instrument, histograms with bounds and buckets).
void WriteMetricsJson(JsonWriter& w) {
  w.BeginArray();
  for (const auto& m : obs::MetricsRegistry::Global().Collect()) {
    w.BeginObject();
    w.Key("name");
    w.String(m.name);
    w.Key("stability");
    w.String(m.stability == obs::Stability::kStable ? "stable" : "runtime");
    switch (m.type) {
      case obs::MetricSnapshot::Type::kCounter:
        w.Key("type");
        w.String("counter");
        w.Key("value");
        w.Uint(m.counter_value);
        break;
      case obs::MetricSnapshot::Type::kGauge:
        w.Key("type");
        w.String("gauge");
        w.Key("value");
        w.Int(m.gauge_value);
        break;
      case obs::MetricSnapshot::Type::kHistogram:
        w.Key("type");
        w.String("histogram");
        w.Key("count");
        w.Uint(m.total_count);
        w.Key("sum");
        w.Double(m.sum);
        w.Key("bounds");
        w.BeginArray();
        for (double b : m.bounds) w.Double(b);
        w.EndArray();
        w.Key("bucket_counts");
        w.BeginArray();
        for (uint64_t c : m.bucket_counts) w.Uint(c);
        w.EndArray();
        break;
    }
    w.EndObject();
  }
  w.EndArray();
}

/// --stats-json: the full RepairStats of the run plus the configuration
/// that produced it (and, when obs is on, a metrics snapshot), as one JSON
/// object per file.
Status WriteStatsJson(const std::string& path, std::string_view engine,
                      const RepairOptions& options,
                      const RepairResult& result) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const RepairStats& s = result.stats;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("engine");
  w.String(engine);
  w.Key("threads");
  w.Int(options.exec.num_threads);
  w.Key("options");
  w.BeginObject();
  w.Key("theta");
  w.Uint(options.theta);
  w.Key("eta");
  w.Int(options.eta);
  w.Key("zeta");
  w.Uint(options.zeta);
  w.Key("lambda");
  w.Double(options.lambda);
  w.Key("time_bin");
  w.Int(options.time_bin);
  w.Key("use_lig");
  w.Bool(options.use_lig);
  w.Key("use_mcp_pruning");
  w.Bool(options.use_mcp_pruning);
  w.Key("selection");
  w.String(SelectionName(options.selection));
  w.Key("num_threads");
  w.Int(options.exec.num_threads);
  w.Key("min_partition_grain");
  w.Uint(options.exec.min_partition_grain);
  w.Key("min_candidate_grain");
  w.Uint(options.exec.min_candidate_grain);
  w.Key("obs_enabled");
  w.Bool(options.obs.enabled);
  w.Key("trace_capacity");
  w.Uint(options.obs.trace_capacity);
  w.EndObject();
  w.Key("stats");
  w.BeginObject();
  w.Key("num_trajectories");
  w.Uint(s.num_trajectories);
  w.Key("num_invalid");
  w.Uint(s.num_invalid);
  w.Key("gm_edges");
  w.Uint(s.gm_edges);
  w.Key("cex_evaluations");
  w.Uint(s.cex_evaluations);
  w.Key("cliques_enumerated");
  w.Uint(s.cliques_enumerated);
  w.Key("pck_pruned");
  w.Uint(s.pck_pruned);
  w.Key("jnb_checks");
  w.Uint(s.jnb_checks);
  w.Key("joinable_subsets");
  w.Uint(s.joinable_subsets);
  w.Key("num_candidates");
  w.Uint(s.num_candidates);
  w.Key("gr_edges");
  w.Uint(s.gr_edges);
  w.Key("num_selected");
  w.Uint(s.num_selected);
  w.Key("seconds_gm");
  w.Double(s.seconds_gm);
  w.Key("seconds_generation");
  w.Double(s.seconds_generation);
  w.Key("seconds_selection");
  w.Double(s.seconds_selection);
  w.Key("seconds_total");
  w.Double(s.seconds_total);
  w.Key("cpu_seconds_gm");
  w.Double(s.cpu_seconds_gm);
  w.Key("cpu_seconds_generation");
  w.Double(s.cpu_seconds_generation);
  w.Key("cpu_seconds_total");
  w.Double(s.cpu_seconds_total);
  w.Key("cpu_clock_source");
  w.String(s.cpu_clock_source);
  w.Key("threads_used");
  w.Int(s.threads_used);
  w.Key("num_partitions");
  w.Uint(s.num_partitions);
  w.Key("largest_partition");
  w.Uint(s.largest_partition);
  w.EndObject();
  w.Key("total_effectiveness");
  w.Double(result.total_effectiveness);
  w.Key("num_rewrites");
  w.Uint(result.rewrites.size());
  if (obs::Enabled()) {
    w.Key("metrics");
    WriteMetricsJson(w);
  }
  w.EndObject();
  out << "\n";
  if (!out.good()) return Status::IoError("failed writing '" + path + "'");
  return Status::OK();
}

int RunRepair(const FlagParser& flags) {
  for (const char* key : {"graph", "records", "out"}) {
    if (Status s = RequireFlag(flags, key); !s.ok()) return FailWith(s);
  }
  auto graph = ReadTransitionGraphFile(flags.GetString("graph"));
  if (!graph.ok()) return FailWith(graph.status());
  auto records = ReadRecordsCsvFile(flags.GetString("records"), *graph);
  if (!records.ok()) return FailWith(records.status());

  const IdSimilarity* similarity = nullptr;
  auto options = OptionsFromFlags(flags, &similarity);
  if (!options.ok()) return FailWith(options.status());
  // Enable instrumentation up front (not just inside the engines) so the
  // baseline engines, which ignore RepairOptions::obs, still export.
  obs::ApplyOptions(options->obs);

  TrajectorySet set = TrajectorySet::FromRecords(*records);
  auto engine = MakeEngine(flags, *graph, *options);
  if (!engine.ok()) return FailWith(engine.status());
  auto result = (*engine)->Repair(set);
  if (!result.ok()) return FailWith(result.status());

  std::cout << "engine: " << (*engine)->name() << ", trajectories: "
            << set.size() << " (" << result->stats.num_invalid
            << " invalid), candidates: " << result->stats.num_candidates
            << ", selected: " << result->stats.num_selected
            << ", rewrites: " << result->rewrites.size() << ", threads: "
            << result->stats.threads_used << ", time: "
            << ToFixed(result->stats.seconds_total * 1e3, 1) << " ms\n";

  if (flags.GetBool("explain")) {
    std::cout << ExplainRepair(set, *graph, *result, *options);
  }

  if (flags.Has("metrics-out")) {
    std::string path = flags.GetString("metrics-out");
    std::ofstream metrics(path);
    if (!metrics) {
      return FailWith(
          Status::IoError("cannot open '" + path + "' for writing"));
    }
    metrics << obs::MetricsRegistry::Global().RenderPrometheus();
    if (!metrics.good()) {
      return FailWith(Status::IoError("failed writing '" + path + "'"));
    }
    std::cout << "wrote metrics to " << path << "\n";
  }
  if (flags.Has("trace-out")) {
    std::string path = flags.GetString("trace-out");
    if (Status s = obs::TraceSink::Global().WriteJsonFile(path); !s.ok()) {
      return FailWith(s);
    }
    std::cout << "wrote trace to " << path << "\n";
  }
  if (flags.Has("stats-json")) {
    std::string path = flags.GetString("stats-json");
    if (Status s = WriteStatsJson(path, (*engine)->name(), *options, *result);
        !s.ok()) {
      return FailWith(s);
    }
    std::cout << "wrote stats to " << path << "\n";
  }

  if (flags.Has("truth")) {
    auto truth_records = ReadRecordsCsvFile(flags.GetString("truth"), *graph);
    if (!truth_records.ok()) return FailWith(truth_records.status());
    auto dataset = MakeLabeledDataset(*graph, *records, *truth_records);
    if (!dataset.ok()) return FailWith(dataset.status());
    auto truth = ComputeFragmentTruth(*dataset, set);
    auto metrics = EvaluateRewrites(truth, set, result->rewrites);
    std::cout << "precision=" << ToFixed(metrics.precision, 3)
              << " recall=" << ToFixed(metrics.recall, 3)
              << " f-measure=" << ToFixed(metrics.f_measure, 3) << "\n";
  }

  std::vector<TrackingRecord> repaired;
  repaired.reserve(set.total_records());
  for (const auto& t : result->repaired.trajectories()) {
    for (const auto& p : t.points()) {
      repaired.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  if (Status s = WriteRecordsCsvFile(flags.GetString("out"), *graph,
                                     repaired);
      !s.ok()) {
    return FailWith(s);
  }
  std::cout << "wrote " << repaired.size() << " records to "
            << flags.GetString("out") << "\n";
  return 0;
}

int RunGenerate(const FlagParser& flags) {
  for (const char* key : {"graph", "out"}) {
    if (Status s = RequireFlag(flags, key); !s.ok()) return FailWith(s);
  }
  auto graph = ReadTransitionGraphFile(flags.GetString("graph"));
  if (!graph.ok()) return FailWith(graph.status());

  SyntheticConfig config;
  auto n = flags.GetInt("trajectories", 500);
  auto error_rate = flags.GetDouble("error-rate", 0.2);
  auto missing_rate = flags.GetDouble("missing-rate", 0.0);
  auto seed = flags.GetInt("seed", 42);
  auto window = flags.GetInt("window", 3600);
  auto max_len = flags.GetInt("max-path-len", 8);
  for (const Status& s :
       {n.status(), error_rate.status(), missing_rate.status(),
        seed.status(), window.status(), max_len.status()}) {
    if (!s.ok()) return FailWith(s);
  }
  config.num_trajectories = static_cast<size_t>(*n);
  config.record_error_rate = *error_rate;
  config.record_missing_rate = *missing_rate;
  config.seed = static_cast<uint64_t>(*seed);
  config.window_seconds = *window;
  config.max_path_len = static_cast<size_t>(*max_len);

  auto dataset = GenerateSyntheticDataset(*graph, config);
  if (!dataset.ok()) return FailWith(dataset.status());
  if (Status s = WriteRecordsCsvFile(flags.GetString("out"), *graph,
                                     dataset->ObservedRecords());
      !s.ok()) {
    return FailWith(s);
  }
  std::cout << "wrote " << dataset->records.size() << " records ("
            << dataset->NumEntities() << " entities, error rate "
            << ToFixed(dataset->RecordErrorRate(), 3) << ") to "
            << flags.GetString("out") << "\n";
  if (flags.Has("truth")) {
    if (Status s = WriteRecordsCsvFile(flags.GetString("truth"), *graph,
                                       dataset->TrueRecords());
        !s.ok()) {
      return FailWith(s);
    }
    std::cout << "wrote ground truth to " << flags.GetString("truth")
              << "\n";
  }
  return 0;
}

int RunStats(const FlagParser& flags) {
  for (const char* key : {"graph", "records"}) {
    if (Status s = RequireFlag(flags, key); !s.ok()) return FailWith(s);
  }
  auto graph = ReadTransitionGraphFile(flags.GetString("graph"));
  if (!graph.ok()) return FailWith(graph.status());
  auto records = ReadRecordsCsvFile(flags.GetString("records"), *graph);
  if (!records.ok()) return FailWith(records.status());
  TrajectorySet set = TrajectorySet::FromRecords(*records);
  std::cout << DescribeStats(ComputeStats(set, *graph));
  return 0;
}

int RunDot(const FlagParser& flags) {
  if (Status s = RequireFlag(flags, "graph"); !s.ok()) return FailWith(s);
  auto graph = ReadTransitionGraphFile(flags.GetString("graph"));
  if (!graph.ok()) return FailWith(graph.status());
  std::cout << ToDot(*graph);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  std::string command = argv[1];
  auto flags = FlagParser::Parse(argc - 2, argv + 2,
                                 {"no-lig", "no-prune", "explain"});
  if (!flags.ok()) return FailWith(flags.status());
  if (command == "repair") return RunRepair(*flags);
  if (command == "generate") return RunGenerate(*flags);
  if (command == "stats") return RunStats(*flags);
  if (command == "dot") return RunDot(*flags);
  std::cerr << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace
}  // namespace idrepair

int main(int argc, char** argv) { return idrepair::Main(argc, argv); }
