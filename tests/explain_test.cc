#include <gtest/gtest.h>

#include "graph/generators.h"
#include "repair/explain.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::MakeTable2Trajectories;
using testutil::RunningExampleOptions;

class ExplainFixture : public ::testing::Test {
 protected:
  ExplainFixture()
      : graph_(MakePaperExampleGraph()),
        set_(MakeTable2Trajectories()),
        options_(RunningExampleOptions()) {
    IdRepairer repairer(graph_, options_);
    auto result = repairer.Repair(set_);
    EXPECT_TRUE(result.ok());
    result_ = std::move(*result);
  }

  TransitionGraph graph_;
  TrajectorySet set_;
  RepairOptions options_;
  RepairResult result_;
};

TEST_F(ExplainFixture, CandidateExplanationShowsOmegaParts) {
  ASSERT_FALSE(result_.candidates.empty());
  size_t r3 = result_.candidates.size();
  for (size_t r = 0; r < result_.candidates.size(); ++r) {
    if (result_.candidates.target_id(r) == "GL83248") r3 = r;
  }
  ASSERT_NE(r3, result_.candidates.size());
  std::string text =
      ExplainCandidate(set_, graph_, result_.candidates, r3, options_);
  EXPECT_NE(text.find("GL83248"), std::string::npos);
  EXPECT_NE(text.find("GL03245<C>"), std::string::npos);
  EXPECT_NE(text.find("sim=0.714"), std::string::npos);
  EXPECT_NE(text.find("|ivt|=2"), std::string::npos);
  EXPECT_NE(text.find("omega="), std::string::npos);
}

TEST_F(ExplainFixture, RepairExplanationListsSelectionAndJoin) {
  std::string text = ExplainRepair(set_, graph_, result_, options_);
  EXPECT_NE(text.find("selected: 1"), std::string::npos);
  // The join outcome of the selected repair.
  EXPECT_NE(text.find("=> GL83248<C -> D -> E>"), std::string::npos);
  // Phase stats are present.
  EXPECT_NE(text.find("phases: Gm"), std::string::npos);
  EXPECT_NE(text.find("cliques"), std::string::npos);
}

TEST_F(ExplainFixture, MaxRepairsCapsTheListing) {
  std::string capped = ExplainRepair(set_, graph_, result_, options_, 0);
  EXPECT_NE(capped.find("=>"), std::string::npos);  // 0 = unlimited
  // Build a result with several selected repairs by reusing candidates.
  // RepairResult is move-only now, so re-run the repairer for a fresh one.
  IdRepairer repairer(graph_, options_);
  auto again = repairer.Repair(set_);
  ASSERT_TRUE(again.ok());
  RepairResult many = std::move(*again);
  many.selected = {0, 0, 0};
  std::string text = ExplainRepair(set_, graph_, many, options_, 1);
  EXPECT_NE(text.find("... (2 more)"), std::string::npos);
}

}  // namespace
}  // namespace idrepair
