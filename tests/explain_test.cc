#include <gtest/gtest.h>

#include "graph/generators.h"
#include "repair/explain.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::MakeTable2Trajectories;
using testutil::RunningExampleOptions;

class ExplainFixture : public ::testing::Test {
 protected:
  ExplainFixture()
      : graph_(MakePaperExampleGraph()),
        set_(MakeTable2Trajectories()),
        options_(RunningExampleOptions()) {
    IdRepairer repairer(graph_, options_);
    auto result = repairer.Repair(set_);
    EXPECT_TRUE(result.ok());
    result_ = std::move(*result);
  }

  TransitionGraph graph_;
  TrajectorySet set_;
  RepairOptions options_;
  RepairResult result_;
};

TEST_F(ExplainFixture, CandidateExplanationShowsOmegaParts) {
  ASSERT_FALSE(result_.candidates.empty());
  const CandidateRepair* r3 = nullptr;
  for (const auto& c : result_.candidates) {
    if (c.target_id == "GL83248") r3 = &c;
  }
  ASSERT_NE(r3, nullptr);
  std::string text = ExplainCandidate(set_, graph_, *r3, options_);
  EXPECT_NE(text.find("GL83248"), std::string::npos);
  EXPECT_NE(text.find("GL03245<C>"), std::string::npos);
  EXPECT_NE(text.find("sim=0.714"), std::string::npos);
  EXPECT_NE(text.find("|ivt|=2"), std::string::npos);
  EXPECT_NE(text.find("omega="), std::string::npos);
}

TEST_F(ExplainFixture, RepairExplanationListsSelectionAndJoin) {
  std::string text = ExplainRepair(set_, graph_, result_, options_);
  EXPECT_NE(text.find("selected: 1"), std::string::npos);
  // The join outcome of the selected repair.
  EXPECT_NE(text.find("=> GL83248<C -> D -> E>"), std::string::npos);
  // Phase stats are present.
  EXPECT_NE(text.find("phases: Gm"), std::string::npos);
  EXPECT_NE(text.find("cliques"), std::string::npos);
}

TEST_F(ExplainFixture, MaxRepairsCapsTheListing) {
  std::string capped = ExplainRepair(set_, graph_, result_, options_, 0);
  EXPECT_NE(capped.find("=>"), std::string::npos);  // 0 = unlimited
  // Build a result with several selected repairs by reusing candidates.
  RepairResult many = result_;
  many.selected = {0, 0, 0};
  std::string text = ExplainRepair(set_, graph_, many, options_, 1);
  EXPECT_NE(text.find("... (2 more)"), std::string::npos);
}

}  // namespace
}  // namespace idrepair
