#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/metrics.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::MakeTable2Trajectories;
using testutil::RunningExampleOptions;

// ------------------------------------------------- running example, E2E

TEST(RepairerTest, RepairsTheRunningExample) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  IdRepairer repairer(graph, RunningExampleOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());

  // Example 1.4 / Example 4.2: GL03245<C> is rewritten to GL83248 and the
  // records merge into GL83248<C -> D -> E>.
  ASSERT_EQ(result->rewrites.size(), 1u);
  EXPECT_EQ(result->rewrites.at(1), "GL83248");
  ASSERT_EQ(result->repaired.size(), 2u);
  auto idx = result->repaired.BuildIdIndex();
  const Trajectory& repaired = result->repaired.at(idx.at("GL83248"));
  EXPECT_EQ(repaired.LocationSequence(),
            (std::vector<LocationId>{2, 3, 4}));
  EXPECT_TRUE(repaired.IsValid(graph));
  const Trajectory& untouched = result->repaired.at(idx.at("GL21348"));
  EXPECT_EQ(untouched.size(), 4u);
}

TEST(RepairerTest, StatsReflectTheRunningExample) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  IdRepairer repairer(graph, RunningExampleOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_trajectories, 3u);
  EXPECT_EQ(result->stats.num_invalid, 2u);
  EXPECT_EQ(result->stats.gm_edges, 2u);
  EXPECT_EQ(result->stats.num_candidates, 2u);
  EXPECT_EQ(result->stats.num_selected, 1u);
  EXPECT_GE(result->stats.seconds_total, 0.0);
}

TEST(RepairerTest, RepairedSetPreservesRecordCount) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  IdRepairer repairer(graph, RunningExampleOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->repaired.total_records(), set.total_records());
}

TEST(RepairerTest, SelectedRepairsAreCompatible) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  IdRepairer repairer(ds->graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  std::vector<bool> used(set.size(), false);
  for (RepairIndex r : result->selected) {
    for (TrajIndex m : result->candidates.members(r)) {
      EXPECT_FALSE(used[m]) << "trajectory " << m << " in two repairs";
      used[m] = true;
    }
  }
}

TEST(RepairerTest, AppliedRepairsProduceValidTrajectories) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  IdRepairer repairer(ds->graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto repaired_idx = result->repaired.BuildIdIndex();
  for (RepairIndex r : result->selected) {
    const std::string& target = result->candidates.target_id(r);
    const Trajectory& joined = result->repaired.at(repaired_idx.at(target));
    EXPECT_TRUE(joined.IsValid(ds->graph)) << joined.ToString(ds->graph);
  }
}

TEST(RepairerTest, ImprovesQualityOnRealLikeDataset) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  IdRepairer repairer(ds->graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto truth = ComputeFragmentTruth(*ds, set);
  auto metrics = EvaluateRewrites(truth, set, result->rewrites);
  // Fig 10 reports f-measure around 0.85–0.9 at the default parameters; be
  // conservative but demand real repair power.
  EXPECT_GT(metrics.f_measure, 0.6) << "precision " << metrics.precision
                                    << " recall " << metrics.recall;
  double before = TrajectoryAccuracy(truth, set, {});
  double after = TrajectoryAccuracy(truth, set, result->rewrites);
  EXPECT_GT(after, before);
}

// ------------------------------------------------------------ invariants

TEST(RepairerTest, LigOnOffProduceIdenticalResults) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    auto ds = MakeScaledRealLikeDataset(300, 0.2, seed);
    ASSERT_TRUE(ds.ok());
    TrajectorySet set = ds->BuildObservedTrajectories();
    RepairOptions options;
    options.theta = 4;
    options.eta = 600;
    options.use_lig = true;
    IdRepairer with(ds->graph, options);
    options.use_lig = false;
    IdRepairer without(ds->graph, options);
    auto a = with.Repair(set);
    auto b = without.Repair(set);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->rewrites, b->rewrites) << "seed " << seed;
    EXPECT_EQ(a->stats.gm_edges, b->stats.gm_edges);
  }
}

TEST(RepairerTest, PruningOnOffProduceIdenticalResults) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    auto ds = MakeScaledRealLikeDataset(300, 0.2, seed);
    ASSERT_TRUE(ds.ok());
    TrajectorySet set = ds->BuildObservedTrajectories();
    RepairOptions options;
    options.theta = 4;
    options.eta = 600;
    options.use_mcp_pruning = true;
    IdRepairer with(ds->graph, options);
    options.use_mcp_pruning = false;
    IdRepairer without(ds->graph, options);
    auto a = with.Repair(set);
    auto b = without.Repair(set);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->rewrites, b->rewrites) << "seed " << seed;
    EXPECT_EQ(a->stats.num_candidates, b->stats.num_candidates);
    EXPECT_LE(a->stats.jnb_checks, b->stats.jnb_checks);
  }
}

TEST(RepairerTest, CleanDatasetNeedsNoRepair) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 100;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rewrites.empty());
  EXPECT_EQ(result->stats.num_invalid, 0u);
}

TEST(RepairerTest, RewritesOnlyTargetSelectedMembers) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  IdRepairer repairer(ds->graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  std::set<TrajIndex> selected_members;
  for (RepairIndex r : result->selected) {
    for (TrajIndex m : result->candidates.members(r)) {
      selected_members.insert(m);
    }
  }
  for (const auto& [traj, id] : result->rewrites) {
    EXPECT_TRUE(selected_members.count(traj) > 0);
    EXPECT_NE(set.at(traj).id(), id);
  }
}

// --------------------------------------------------------------- options

TEST(RepairerTest, InvalidOptionsAreRejected) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  RepairOptions options = RunningExampleOptions();
  options.lambda = 0.0;
  EXPECT_FALSE(IdRepairer(graph, options).Repair(set).ok());
  options = RunningExampleOptions();
  options.theta = 0;
  EXPECT_FALSE(IdRepairer(graph, options).Repair(set).ok());
  options = RunningExampleOptions();
  options.zeta = 0;
  EXPECT_FALSE(IdRepairer(graph, options).Repair(set).ok());
  options = RunningExampleOptions();
  options.rarity_base_offset = 0;
  EXPECT_FALSE(IdRepairer(graph, options).Repair(set).ok());
  options = RunningExampleOptions();
  options.time_bin = 0;
  EXPECT_FALSE(IdRepairer(graph, options).Repair(set).ok());
}

TEST(RepairerTest, InvalidGraphIsRejected) {
  TransitionGraph graph;  // empty
  TrajectorySet set;
  IdRepairer repairer(graph, RepairOptions{});
  EXPECT_FALSE(repairer.Repair(set).ok());
}

TEST(RepairerTest, EmptySetYieldsEmptyResult) {
  TransitionGraph graph = MakePaperExampleGraph();
  IdRepairer repairer(graph, RunningExampleOptions());
  auto result = repairer.Repair(TrajectorySet{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->candidates.empty());
  EXPECT_TRUE(result->rewrites.empty());
  EXPECT_TRUE(result->repaired.empty());
}

TEST(RepairerTest, CustomSimilarityMetricIsUsed) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  RepairOptions options = RunningExampleOptions();
  JaroWinklerSimilarity jw;
  options.similarity = &jw;
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  // The repair decision is the same; only the ω values differ from the
  // edit-similarity run.
  ASSERT_EQ(result->rewrites.size(), 1u);
  EXPECT_EQ(result->rewrites.at(1), "GL83248");
}

TEST(RepairerTest, ThetaOneDisablesAllMerging) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  RepairOptions options = RunningExampleOptions();
  options.theta = 1;
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rewrites.empty());
}

// ----------------------------------------------------------- ApplyRewrites

TEST(ApplyRewritesTest, MergesTrajectoriesRewrittenToOneId) {
  TrajectorySet set = MakeTable2Trajectories();
  std::unordered_map<TrajIndex, std::string> rewrites = {{1, "GL83248"}};
  TrajectorySet repaired = ApplyRewrites(set, rewrites);
  EXPECT_EQ(repaired.size(), 2u);
  EXPECT_EQ(repaired.total_records(), set.total_records());
}

TEST(ApplyRewritesTest, NoRewritesIsIdentity) {
  TrajectorySet set = MakeTable2Trajectories();
  TrajectorySet repaired = ApplyRewrites(set, {});
  ASSERT_EQ(repaired.size(), set.size());
  for (TrajIndex i = 0; i < set.size(); ++i) {
    EXPECT_EQ(repaired.at(i), set.at(i));
  }
}

}  // namespace
}  // namespace idrepair
