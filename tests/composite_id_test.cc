#include <gtest/gtest.h>

#include "sim/composite_id.h"

namespace idrepair {
namespace {

TEST(CompositeIdTest, EncodeDecodeRoundTrip) {
  auto id = EncodeCompositeId({"evergreen", "green", "cargo"});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, "evergreen|green|cargo");
  EXPECT_EQ(DecodeCompositeId(*id),
            (std::vector<std::string>{"evergreen", "green", "cargo"}));
}

TEST(CompositeIdTest, EncodeRejectsSeparatorInField) {
  auto id = EncodeCompositeId({"ever|green", "x"});
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompositeIdTest, EncodeRejectsEmptyFieldList) {
  EXPECT_FALSE(EncodeCompositeId({}).ok());
}

TEST(CompositeIdTest, EmptyFieldsSurviveRoundTrip) {
  auto id = EncodeCompositeId({"", "red", ""});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(DecodeCompositeId(*id),
            (std::vector<std::string>{"", "red", ""}));
}

TEST(CompositeIdSimilarityTest, CreateValidatesWeights) {
  EXPECT_FALSE(CompositeIdSimilarity::Create({}).ok());
  EXPECT_FALSE(CompositeIdSimilarity::Create({0.0, 0.0}).ok());
  EXPECT_FALSE(CompositeIdSimilarity::Create({1.0, -0.5}).ok());
  EXPECT_TRUE(CompositeIdSimilarity::Create({2.0, 1.0}).ok());
}

TEST(CompositeIdSimilarityTest, IdenticalIdsScoreOne) {
  auto sim = CompositeIdSimilarity::Create({1.0, 1.0, 1.0});
  ASSERT_TRUE(sim.ok());
  EXPECT_DOUBLE_EQ(sim->Similarity("a|b|c", "a|b|c"), 1.0);
}

TEST(CompositeIdSimilarityTest, WeightsScaleFieldContributions) {
  // Two fields, equal weights: half credit when one field matches exactly
  // and the other is disjoint.
  auto sim = CompositeIdSimilarity::Create({1.0, 1.0});
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(sim->Similarity("abc|xxx", "abc|yyy"), 0.5, 1e-12);
  // Weight the first field 3:1 — the match now dominates.
  auto skewed = CompositeIdSimilarity::Create({3.0, 1.0});
  ASSERT_TRUE(skewed.ok());
  EXPECT_NEAR(skewed->Similarity("abc|xxx", "abc|yyy"), 0.75, 1e-12);
}

TEST(CompositeIdSimilarityTest, CamouflagedNameStillScoresHighOverall) {
  // §2.2.1: a faked name with stable color/type keeps the composite ID
  // similar. Name weight 1, attribute weights 1 each.
  auto sim = CompositeIdSimilarity::Create({1.0, 1.0, 1.0});
  ASSERT_TRUE(sim.ok());
  double camouflaged =
      sim->Similarity("evergreen|green|cargo", "nighthawk|green|cargo");
  double different_ship =
      sim->Similarity("evergreen|green|cargo", "nighthawk|red|tanker");
  EXPECT_GT(camouflaged, 0.6);
  EXPECT_GT(camouflaged, different_ship);
}

TEST(CompositeIdSimilarityTest, FallsBackOnFieldCountMismatch) {
  auto sim = CompositeIdSimilarity::Create({1.0, 1.0});
  ASSERT_TRUE(sim.ok());
  // Plain IDs (one field) against the 2-field schema: whole-string edit
  // similarity fallback keeps comparisons meaningful.
  EXPECT_DOUBLE_EQ(sim->Similarity("abcd", "abcd"), 1.0);
  EXPECT_GT(sim->Similarity("abcd", "abce"), 0.5);
}

TEST(CompositeIdSimilarityTest, CustomFieldMetricIsUsed) {
  JaroWinklerSimilarity jw;
  auto sim = CompositeIdSimilarity::Create({1.0}, &jw);
  ASSERT_TRUE(sim.ok());
  NormalizedEditSimilarity edit;
  // Values must match the wrapped metric, not the default edit metric.
  EXPECT_DOUBLE_EQ(sim->Similarity("martha", "marhta"),
                   jw.Similarity("martha", "marhta"));
  EXPECT_NE(sim->Similarity("martha", "marhta"),
            edit.Similarity("martha", "marhta"));
}

TEST(CompositeIdSimilarityTest, SymmetricAndBounded) {
  auto sim = CompositeIdSimilarity::Create({2.0, 1.0});
  ASSERT_TRUE(sim.ok());
  const char* ids[] = {"abc|red", "abd|red", "zzz|blue", "abc|blu"};
  for (const char* a : ids) {
    for (const char* b : ids) {
      double s1 = sim->Similarity(a, b);
      double s2 = sim->Similarity(b, a);
      EXPECT_DOUBLE_EQ(s1, s2);
      EXPECT_GE(s1, 0.0);
      EXPECT_LE(s1, 1.0);
    }
  }
}

}  // namespace
}  // namespace idrepair
