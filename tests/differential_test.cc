// Cross-engine differential suite: seeded synthetic datasets over several
// transition-graph shapes and error rates, run through all five engines via
// the unified Repairer interface. The core and partitioned engines must
// agree byte-for-byte (candidates, selection, rewrites, Ω); every engine
// must conserve records; the transition-graph engines must only ever apply
// joins that produce valid trajectories; and the streaming engine's
// incremental path must emit valid merges.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repair_graph.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::AllEngineNames;
using testutil::MakeEngineByName;

struct Scenario {
  std::string name;
  TransitionGraph graph;
  TrajectorySet set;
  RepairOptions options;
};

std::vector<Scenario> MakeScenarios() {
  struct Shape {
    const char* name;
    TransitionGraph graph;
    size_t theta;
    int64_t travel_lo, travel_hi;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"paper", MakePaperExampleGraph(), 5, 60, 180});
  shapes.push_back({"real_like", MakeRealLikeGraph(), 4, 60, 180});
  // Shorter legs so full chain traversals fit the η bound (see bench/fig11).
  shapes.push_back({"chain8", MakeChainGraph(8), 8, 30, 60});
  shapes.push_back({"grid", MakeGridNetwork(3, 4), 6, 30, 90});

  std::vector<Scenario> scenarios;
  uint64_t seed = 1000;
  for (auto& shape : shapes) {
    for (double error_rate : {0.05, 0.2}) {
      SyntheticConfig config;
      config.num_trajectories = 120;
      config.record_error_rate = error_rate;
      config.max_path_len = shape.theta;
      config.window_seconds = 3600;
      config.travel_median_lo = shape.travel_lo;
      config.travel_median_hi = shape.travel_hi;
      config.seed = ++seed;
      auto ds = GenerateSyntheticDataset(shape.graph, config);
      if (!ds.ok()) {
        ADD_FAILURE() << shape.name << ": " << ds.status();
        continue;
      }
      Scenario s;
      s.name = std::string(shape.name) + "_err" +
               std::to_string(static_cast<int>(error_rate * 100));
      s.graph = shape.graph;
      s.set = ds->BuildObservedTrajectories();
      s.options.theta = shape.theta;
      s.options.eta = 600;
      scenarios.push_back(std::move(s));
    }
  }
  return scenarios;
}

// The partitioned engine must reproduce the core engine exactly — same
// candidates in the same order, same selection, same rewrites, and the
// same Ω down to the last bit (it recomputes the sum in global selection
// order, so even float association matches).
TEST(DifferentialTest, PartitionedIsByteIdenticalToCore) {
  for (const Scenario& s : MakeScenarios()) {
    SCOPED_TRACE(s.name);
    auto core = MakeEngineByName("core", s.graph, s.options)->Repair(s.set);
    auto part =
        MakeEngineByName("partitioned", s.graph, s.options)->Repair(s.set);
    ASSERT_TRUE(core.ok()) << core.status();
    ASSERT_TRUE(part.ok()) << part.status();

    ASSERT_EQ(part->candidates.size(), core->candidates.size());
    const CandidateSet& a = core->candidates;
    const CandidateSet& b = part->candidates;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(b.members(i), a.members(i)) << "candidate " << i;
      EXPECT_EQ(b.target_id(i), a.target_id(i)) << "candidate " << i;
      EXPECT_EQ(b.invalid_members(i), a.invalid_members(i))
          << "candidate " << i;
      EXPECT_EQ(b.similarity(i), a.similarity(i)) << "candidate " << i;
      EXPECT_EQ(b.rarity(i), a.rarity(i)) << "candidate " << i;
      EXPECT_EQ(b.effectiveness(i), a.effectiveness(i)) << "candidate " << i;
    }
    EXPECT_EQ(part->selected, core->selected);
    EXPECT_EQ(part->rewrites, core->rewrites);
    EXPECT_EQ(part->total_effectiveness, core->total_effectiveness);

    // Phase-1 counters decompose exactly over chain components.
    EXPECT_EQ(part->stats.jnb_checks, core->stats.jnb_checks);
    EXPECT_EQ(part->stats.joinable_subsets, core->stats.joinable_subsets);
    EXPECT_EQ(part->stats.cliques_enumerated, core->stats.cliques_enumerated);
    EXPECT_EQ(part->stats.gm_edges, core->stats.gm_edges);
    EXPECT_EQ(part->stats.num_candidates, core->stats.num_candidates);
    EXPECT_EQ(part->stats.num_selected, core->stats.num_selected);
  }
}

// Selection-grain torture: --selection-grain 1 forces every selection
// stage (effectiveness-sort shards, repair-graph shards, invalidation
// fan-out) onto the pool even for small components, and the result must
// still match a single-thread default-grain core run byte for byte — for
// both the EMAX cover fast path and the graph-materializing DMIN path, on
// both exact engines, at every thread count.
TEST(DifferentialTest, SelectionGrainOneIsByteIdenticalAcrossThreads) {
  for (const Scenario& s : MakeScenarios()) {
    if (s.name.find("err20") == std::string::npos) continue;
    for (SelectionAlgorithm algorithm :
         {SelectionAlgorithm::kEmax, SelectionAlgorithm::kDmin}) {
      RepairOptions reference_options = s.options;
      reference_options.selection = algorithm;
      reference_options.exec.num_threads = 1;
      auto reference = MakeEngineByName("core", s.graph, reference_options)
                           ->Repair(s.set);
      ASSERT_TRUE(reference.ok()) << reference.status();
      for (int threads : {1, 2, 8}) {
        for (std::string_view engine_name : {"core", "partitioned"}) {
          SCOPED_TRACE(s.name + " / " + std::string(engine_name) + " / algo" +
                       std::to_string(static_cast<int>(algorithm)) + " / t" +
                       std::to_string(threads));
          RepairOptions options = reference_options;
          options.exec.num_threads = threads;
          options.exec.min_selection_grain = 1;
          auto result =
              MakeEngineByName(engine_name, s.graph, options)->Repair(s.set);
          ASSERT_TRUE(result.ok()) << result.status();
          EXPECT_EQ(result->selected, reference->selected);
          EXPECT_EQ(result->rewrites, reference->rewrites);
          EXPECT_EQ(result->total_effectiveness,
                    reference->total_effectiveness);
          EXPECT_EQ(result->stats.gr_edges, reference->stats.gr_edges);
        }
      }
    }
  }
}

// Every engine, behind the same interface: must succeed and conserve
// records (repair only relabels, never drops or invents data).
TEST(DifferentialTest, AllEnginesConserveRecords) {
  for (const Scenario& s : MakeScenarios()) {
    for (std::string_view engine_name : AllEngineNames()) {
      SCOPED_TRACE(s.name + " / " + std::string(engine_name));
      auto engine = MakeEngineByName(engine_name, s.graph, s.options);
      ASSERT_NE(engine, nullptr);
      EXPECT_EQ(engine->name(), engine_name);
      auto result = engine->Repair(s.set);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->repaired.total_records(), s.set.total_records());
    }
  }
}

// The candidate-based transition-graph engines only ever apply joins whose
// merged trajectory is valid, and their selections are compatible
// (pairwise disjoint members).
TEST(DifferentialTest, CandidateEnginesApplyOnlyValidCompatibleJoins) {
  for (const Scenario& s : MakeScenarios()) {
    for (std::string_view engine_name : {"core", "partitioned"}) {
      SCOPED_TRACE(s.name + " / " + std::string(engine_name));
      auto result =
          MakeEngineByName(engine_name, s.graph, s.options)->Repair(s.set);
      ASSERT_TRUE(result.ok()) << result.status();
      std::set<TrajIndex> used;
      for (RepairIndex r : result->selected) {
        for (TrajIndex m : result->candidates.members(r)) {
          EXPECT_TRUE(used.insert(m).second) << "overlapping selection";
        }
      }
      auto idx = result->repaired.BuildIdIndex();
      for (RepairIndex r : result->selected) {
        const CandidateSet& cands = result->candidates;
        if (cands.num_members(r) < 2) continue;
        auto it = idx.find(cands.target_id(r));
        ASSERT_NE(it, idx.end()) << cands.target_id(r);
        EXPECT_TRUE(result->repaired.at(it->second).IsValid(s.graph))
            << "invalid join applied to " << cands.target_id(r);
      }
    }
  }
}

// The streaming engine's genuine incremental path (Append/Poll/Finish):
// emitted trajectories carry every input record exactly once, and any
// emission that merged fragments of two or more observed IDs is a valid
// trajectory — streaming never applies a join batch repair would reject.
TEST(DifferentialTest, StreamingEmitsOnlyValidMerges) {
  for (const Scenario& s : MakeScenarios()) {
    SCOPED_TRACE(s.name);

    // Flatten to a time-ordered stream, remembering each point's observed
    // ID (a deque per (loc, ts) absorbs point collisions).
    std::vector<TrackingRecord> records;
    std::map<std::pair<LocationId, Timestamp>, std::deque<std::string>>
        source_ids;
    for (TrajIndex i = 0; i < s.set.size(); ++i) {
      for (const auto& p : s.set.at(i).points()) {
        records.push_back(TrackingRecord{s.set.at(i).id(), p.loc, p.ts});
      }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const TrackingRecord& a, const TrackingRecord& b) {
                       return std::tie(a.ts, a.id, a.loc) <
                              std::tie(b.ts, b.id, b.loc);
                     });
    for (const auto& r : records) {
      source_ids[{r.loc, r.ts}].push_back(r.id);
    }

    StreamingRepairer stream(s.graph, s.options);
    std::vector<Trajectory> emitted;
    Timestamp last_poll = records.empty() ? 0 : records.front().ts;
    for (const auto& r : records) {
      ASSERT_TRUE(stream.Append(r).ok());
      if (stream.watermark() - last_poll > s.options.eta) {
        auto got = stream.Poll();
        emitted.insert(emitted.end(), got.begin(), got.end());
        last_poll = stream.watermark();
      }
    }
    auto tail = stream.Finish();
    emitted.insert(emitted.end(), tail.begin(), tail.end());

    size_t emitted_records = 0;
    for (const Trajectory& t : emitted) {
      emitted_records += t.size();
      std::set<std::string> sources;
      for (const auto& p : t.points()) {
        auto it = source_ids.find({p.loc, p.ts});
        ASSERT_NE(it, source_ids.end()) << "emitted a point never appended";
        ASSERT_FALSE(it->second.empty()) << "emitted a point twice";
        sources.insert(it->second.front());
        it->second.pop_front();
      }
      if (sources.size() >= 2) {
        EXPECT_TRUE(t.IsValid(s.graph))
            << "invalid merge of " << sources.size() << " fragments under "
            << t.id();
      }
    }
    EXPECT_EQ(emitted_records, records.size());
    EXPECT_EQ(stream.pending_records(), 0u);

    // The batch adapter over the same input conserves records too.
    auto batch = StreamingRepairer(s.graph, s.options).Repair(s.set);
    ASSERT_TRUE(batch.ok()) << batch.status();
    EXPECT_EQ(batch->repaired.total_records(), s.set.total_records());
  }
}

// ------------------------------------------------ storage-layer regression

// A dense conflict workload for the storage-layer suites below: 300
// candidates over 36 trajectories in three 12-trajectory groups, each
// candidate an 8-member subset of its group. Heavy member overlap is the
// worst case for the seed's push-then-dedup adjacency build (every shared
// trajectory pushed a duplicate neighbor entry) and the best case for the
// member-set dictionary (sets repeat, invalid == members always).
CandidateSet DenseStorageInstance(size_t* num_trajs) {
  constexpr size_t kGroups = 3;
  constexpr size_t kGroupTrajs = 12;
  constexpr size_t kMembers = 8;
  *num_trajs = kGroups * kGroupTrajs;
  Rng rng(20260809);
  CandidateSet out;
  out.Reserve(300);  // production merges reserve exactly; measure that shape
  std::vector<TrajIndex> members;
  for (int i = 0; i < 300; ++i) {
    TrajIndex base = static_cast<TrajIndex>((i % kGroups) * kGroupTrajs);
    std::set<TrajIndex> picked;
    while (picked.size() < kMembers) {
      picked.insert(base + static_cast<TrajIndex>(rng.UniformIndex(kGroupTrajs)));
    }
    members.assign(picked.begin(), picked.end());
    size_t r = out.Append(members, members, "id" + std::to_string(i % 7),
                          0.5);
    out.set_scores(r, 1, 0.5);
  }
  return out;
}

// The CSR adjacency must equal the O(n²) first-principles definition of Gr:
// an edge wherever two candidates' member sets intersect — at every thread
// count, and the cover index must equal a per-trajectory scan.
TEST(StorageLayerTest, CsrAdjacencyMatchesBruteForceDefinition) {
  size_t num_trajs = 0;
  CandidateSet candidates = DenseStorageInstance(&num_trajs);

  // Reference: direct pairwise member-set intersection.
  std::vector<std::vector<RepairIndex>> reference(candidates.size());
  for (size_t a = 0; a < candidates.size(); ++a) {
    for (size_t b = a + 1; b < candidates.size(); ++b) {
      auto ma = candidates.members(a);
      auto mb = candidates.members(b);
      bool intersect = std::find_first_of(ma.begin(), ma.end(), mb.begin(),
                                          mb.end()) != ma.end();
      if (intersect) {
        reference[a].push_back(static_cast<RepairIndex>(b));
        reference[b].push_back(static_cast<RepairIndex>(a));
      }
    }
  }

  for (int threads : {1, 2, 8}) {
    ExecOptions exec;
    exec.num_threads = threads;
    exec.min_selection_grain = 1;
    auto built = RepairGraph::Build(candidates, num_trajs, exec);
    ASSERT_TRUE(built.ok()) << built.status();
    size_t edges = 0;
    for (RepairIndex v = 0; v < candidates.size(); ++v) {
      EXPECT_EQ(built->Neighbors(v), reference[v])
          << "threads=" << threads << " v=" << v;
      edges += reference[v].size();
    }
    EXPECT_EQ(built->num_edges(), edges / 2) << "threads=" << threads;
    for (TrajIndex t = 0; t < num_trajs; ++t) {
      std::vector<RepairIndex> cover;
      for (size_t r = 0; r < candidates.size(); ++r) {
        auto m = candidates.members(r);
        if (std::find(m.begin(), m.end(), t) != m.end()) {
          cover.push_back(static_cast<RepairIndex>(r));
        }
      }
      EXPECT_EQ(built->Cover(t), cover) << "threads=" << threads << " t=" << t;
    }
  }
}

namespace seedmodel {

// Simulates std::vector's geometric growth under push_back: the capacity a
// vector ends at after `pushes` appends with no reserve. The seed built its
// per-vertex adjacency lists and candidate vectors exactly this way, and
// sort+unique+erase never returns capacity.
size_t GrownCapacity(size_t pushes) {
  size_t cap = 0;
  for (size_t size = 0; size < pushes; ++size) {
    if (size == cap) cap = cap == 0 ? 1 : cap * 2;
  }
  return cap;
}

// Heap bytes of the pre-refactor candidate layout for the same logical
// content: an AoS vector of structs, each row owning two heap vectors
// (members, invalid_members) plus an SSO string and three scalar scores.
size_t CandidateBytes(const CandidateSet& c) {
  // sizeof(CandidateRepair) on this ABI: 24 (vector) + 32 (string) +
  // 24 (vector) + 8 + 4(+4 pad) + 8 = 104 bytes.
  constexpr size_t kRowBytes = 104;
  size_t bytes = GrownCapacity(c.size()) * kRowBytes;
  for (size_t r = 0; r < c.size(); ++r) {
    bytes += c.num_members(r) * sizeof(TrajIndex);   // members heap payload
    bytes += c.num_invalid(r) * sizeof(TrajIndex);   // invalid heap payload
  }
  return bytes;
}

// Heap bytes of the seed's serial Gr construction: one heap vector per
// vertex, filled by pushing one entry per *shared trajectory occurrence*
// (multiplicity included) and deduplicated afterwards — capacity keeps the
// pre-dedup high-water mark.
size_t GraphBytes(const CandidateSet& c, size_t num_trajs) {
  std::vector<std::vector<RepairIndex>> covers(num_trajs);
  for (RepairIndex r = 0; r < c.size(); ++r) {
    for (TrajIndex t : c.members(r)) covers[t].push_back(r);
  }
  std::vector<size_t> pushes(c.size(), 0);
  for (const auto& list : covers) {
    for (size_t i = 0; i < list.size(); ++i) {
      // Each co-occurrence pushed one entry into both endpoints.
      pushes[list[i]] += list.size() - 1;
    }
  }
  size_t bytes = c.size() * 24;  // per-vertex vector headers (adj_ is exact)
  for (size_t p : pushes) bytes += GrownCapacity(p) * sizeof(RepairIndex);
  // The covers themselves were transient in the seed; not charged.
  return bytes;
}

}  // namespace seedmodel

// The headline storage win: on the dense instance, the interned columnar
// candidate set plus the CSR repair graph must occupy at least 4x fewer
// bytes than the seed's AoS-plus-adjacency-vectors layout holding the same
// logical content. Guards the storage layer against regressing into
// per-row allocations.
TEST(StorageLayerTest, CsrAndInterningCutCandidatePlusGraphBytes4x) {
  size_t num_trajs = 0;
  CandidateSet candidates = DenseStorageInstance(&num_trajs);
  ExecOptions exec;
  exec.num_threads = 1;
  auto built = RepairGraph::Build(candidates, num_trajs, exec);
  ASSERT_TRUE(built.ok()) << built.status();
  candidates.Freeze();  // engines freeze finalized results; measure that

  size_t seed_bytes = seedmodel::CandidateBytes(candidates) +
                      seedmodel::GraphBytes(candidates, num_trajs);
  size_t actual_bytes = candidates.MemoryBytes() + built->MemoryBytes();
  ASSERT_GT(actual_bytes, 0u);
  double ratio = static_cast<double>(seed_bytes) /
                 static_cast<double>(actual_bytes);
  EXPECT_GE(ratio, 4.0) << "seed layout " << seed_bytes << " B vs current "
                        << actual_bytes << " B (" << ratio << "x)";
  // Sanity on the instance shape: it really is one dense conflict workload.
  EXPECT_GT(built->num_edges(), 10000u);
}

}  // namespace
}  // namespace idrepair
