// City-scale & adversarial scenario tier.
//
// The declarative workload catalog (gen/scenario_catalog.h) — topology
// family x temporal traffic model x ID-error model — is driven through all
// five repair engines at several thread counts, with metamorphic and
// oracle checks on every cell:
//
//  * record conservation — repair relabels, never drops or invents data;
//  * core == partitioned byte-identity (selection, rewrites, Ω) at every
//    thread count, on city-scale inputs rather than toy graphs;
//  * same-seed reproduction — regenerating a scenario yields byte-identical
//    records, and repairing twice yields byte-identical rewrites;
//  * streaming-vs-batch window equivalence on the bursty timeline (the
//    arrival shape that stresses watermarks and forced flushes);
//  * repair-quality floors against the generator's ground truth, both as
//    the paper's f-measure and as an OSPA-style trajectory-set distance
//    (eval/set_distance.h) — floors are pinned per scenario, so a repair
//    regression that exact-match metrics miss (bad merges of correct
//    fragments) still trips the tier.
//
// IDREPAIR_SCENARIO_LIGHT=1 shrinks the matrix (smaller networks, fewer
// trips, threads {1,2}) so the sanitizer lanes can afford it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "eval/metrics.h"
#include "eval/set_distance.h"
#include "gen/scenario_catalog.h"
#include "repair/repairer.h"
#include "stream/streaming_repairer.h"
#include "test_util.h"
#include "traj/trajectory_set.h"

namespace idrepair {
namespace {

using testutil::AllEngineNames;
using testutil::MakeEngineByName;

bool LightMode() {
  const char* v = std::getenv("IDREPAIR_SCENARIO_LIGHT");
  return v != nullptr && v[0] == '1';
}

std::vector<int> ThreadCounts() {
  return LightMode() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 8};
}

/// Quality floors for the core engine, pinned from measured values (both
/// full and light matrices) with a safety margin; see QualityFloorsHold.
struct QualityFloor {
  const char* name;
  double f_measure_floor;
  double set_distance_bound;
};

const QualityFloor kFloors[] = {
    {"city_grid_10k_diurnal_ocr", 0.90, 0.06},
    {"grid_rush_burst_ocr", 0.78, 0.14},
    {"ring_radial_zipf_ocr", 0.80, 0.08},
    {"hub_spoke_churn_ocr", 0.18, 0.55},
    {"grid_near_miss", 0.68, 0.15},
    {"prefix_fleet_ties", 0.70, 0.15},
    {"grid_dropout_burst", 0.85, 0.04},
};

QualityFloor FloorFor(const std::string& name) {
  for (const QualityFloor& f : kFloors) {
    if (name == f.name) return f;
  }
  return QualityFloor{"", 0.0, 1.0};  // unknown scenarios are report-only
}

RepairOptions OptionsFor(const ScenarioCatalogEntry& entry, int threads) {
  RepairOptions options;
  options.theta = entry.theta;
  options.eta = entry.eta;
  options.zeta = 4;
  options.lambda = 0.5;
  options.exec.num_threads = threads;
  return options;
}

struct Scenario {
  ScenarioCatalogEntry entry;
  Dataset dataset;
};

/// The scenario matrix is expensive to generate (a 10k-vertex network among
/// it); build once and share across tests in the binary.
const std::vector<Scenario>& Scenarios() {
  static const std::vector<Scenario>* scenarios = [] {
    auto* out = new std::vector<Scenario>();
    for (ScenarioCatalogEntry& entry : ScenarioCatalog(LightMode())) {
      auto dataset = BuildScenarioDataset(entry);
      if (!dataset.ok()) {
        ADD_FAILURE() << entry.name << ": " << dataset.status();
        continue;
      }
      out->push_back(Scenario{std::move(entry), *std::move(dataset)});
    }
    return out;
  }();
  return *scenarios;
}

// ---------------------------------------------------------------------------
// The engine x thread matrix: conservation everywhere, exact-engine
// byte-identity against the single-thread core reference.
// ---------------------------------------------------------------------------

TEST(ScenarioTest, MatrixConservesRecordsAndExactEnginesAgree) {
  for (const Scenario& s : Scenarios()) {
    SCOPED_TRACE(s.entry.name);
    TrajectorySet set = s.dataset.BuildObservedTrajectories();
    ASSERT_GT(set.size(), 0u);

    auto reference =
        MakeEngineByName("core", s.dataset.graph, OptionsFor(s.entry, 1))
            ->Repair(set);
    ASSERT_TRUE(reference.ok()) << reference.status();
    EXPECT_TRUE(reference->completion.ok());

    for (std::string_view engine_name : AllEngineNames()) {
      for (int threads : ThreadCounts()) {
        SCOPED_TRACE(std::string(engine_name) + "/t" +
                     std::to_string(threads));
        auto engine = MakeEngineByName(engine_name, s.dataset.graph,
                                       OptionsFor(s.entry, threads));
        ASSERT_NE(engine, nullptr);
        auto result = engine->Repair(set);
        ASSERT_TRUE(result.ok()) << result.status();

        // Conservation: repair relabels records, never drops or invents.
        EXPECT_EQ(result->repaired.total_records(), set.total_records());

        // The exact engines must reproduce the reference run byte for
        // byte regardless of decomposition and parallelism.
        if (engine_name == "core" || engine_name == "partitioned") {
          EXPECT_EQ(result->selected, reference->selected);
          EXPECT_EQ(result->rewrites, reference->rewrites);
          EXPECT_EQ(result->total_effectiveness,
                    reference->total_effectiveness);
          EXPECT_EQ(result->repaired.trajectories(),
                    reference->repaired.trajectories());
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Repair-quality floors vs ground truth. Exact-match f-measure and the
// OSPA-style set distance are pinned per scenario: the former catches
// engines that stop fixing errors, the latter catches engines that "fix"
// them by merging the wrong fragments (which can leave f-measure intact).
// ---------------------------------------------------------------------------

TEST(ScenarioTest, QualityFloorsHold) {
  for (const Scenario& s : Scenarios()) {
    SCOPED_TRACE(s.entry.name);
    TrajectorySet observed = s.dataset.BuildObservedTrajectories();
    auto result =
        MakeEngineByName("core", s.dataset.graph, OptionsFor(s.entry, 1))
            ->Repair(observed);
    ASSERT_TRUE(result.ok()) << result.status();

    std::vector<std::string> truth = ComputeFragmentTruth(s.dataset, observed);
    QualityMetrics metrics =
        EvaluateRewrites(truth, observed, result->rewrites);
    TrajectorySet true_set = s.dataset.BuildTrueTrajectories();
    double observed_distance = TrajectorySetDistance(observed, true_set);
    double repaired_distance =
        TrajectorySetDistance(result->repaired, true_set);

    // Keep the measured numbers visible in the log: re-pinning after an
    // intentional quality change starts from here.
    RecordProperty(s.entry.name + "_f_measure",
                   std::to_string(metrics.f_measure));
    RecordProperty(s.entry.name + "_set_distance",
                   std::to_string(repaired_distance));
    std::cout << "[scenario] " << s.entry.name << " records="
              << s.dataset.records.size() << " erroneous="
              << metrics.num_erroneous << " f=" << metrics.f_measure
              << " dist(observed)=" << observed_distance
              << " dist(repaired)=" << repaired_distance << "\n";

    QualityFloor floor = FloorFor(s.entry.name);
    EXPECT_GE(metrics.f_measure, floor.f_measure_floor);
    EXPECT_LE(repaired_distance, floor.set_distance_bound);
    // Repair must move the set toward the truth, not away from it.
    EXPECT_LE(repaired_distance, observed_distance);
  }
}

// ---------------------------------------------------------------------------
// Same-seed reproduction: the whole generation stack — network build,
// traffic, adversarial corruption — is a pure function of the catalog
// entry, and the repair of the result is a pure function of the dataset.
// ---------------------------------------------------------------------------

TEST(ScenarioTest, SameSeedReproducesDatasetAndRepair) {
  for (const Scenario& s : Scenarios()) {
    if (s.entry.name == "city_grid_10k_diurnal_ocr" && !LightMode()) {
      continue;  // regeneration of the 10k network is covered by gen_test
    }
    SCOPED_TRACE(s.entry.name);
    auto again = BuildScenarioDataset(s.entry);
    ASSERT_TRUE(again.ok()) << again.status();
    ASSERT_EQ(again->records.size(), s.dataset.records.size());
    EXPECT_TRUE(again->records == s.dataset.records);

    TrajectorySet set = s.dataset.BuildObservedTrajectories();
    auto engine =
        MakeEngineByName("core", s.dataset.graph, OptionsFor(s.entry, 2));
    auto first = engine->Repair(set);
    auto second = engine->Repair(set);
    ASSERT_TRUE(first.ok()) << first.status();
    ASSERT_TRUE(second.ok()) << second.status();
    EXPECT_EQ(first->rewrites, second->rewrites);
    EXPECT_EQ(first->repaired.trajectories(),
              second->repaired.trajectories());
  }
}

// ---------------------------------------------------------------------------
// Streaming-vs-batch equivalence on the bursty timeline: every window the
// incremental engine repairs — settled, forced, or drained — must reproduce
// the batch pipeline over exactly those records, and the emitted stream
// must conserve the input.
// ---------------------------------------------------------------------------

TEST(ScenarioTest, StreamingMatchesBatchOnBurstyTraffic) {
  bool found = false;
  for (const Scenario& s : Scenarios()) {
    if (!s.entry.bursty) continue;
    found = true;
    SCOPED_TRACE(s.entry.name);

    std::vector<TrackingRecord> records = s.dataset.ObservedRecords();
    std::sort(records.begin(), records.end(),
              [](const TrackingRecord& a, const TrackingRecord& b) {
                return std::tie(a.ts, a.id, a.loc) <
                       std::tie(b.ts, b.id, b.loc);
              });

    for (int threads : ThreadCounts()) {
      SCOPED_TRACE(std::string("t") + std::to_string(threads));
      RepairOptions options = OptionsFor(s.entry, threads);
      StreamingRepairer stream(s.dataset.graph, options);
      stream.set_capture_windows(true);

      size_t emitted_points = 0;
      size_t since_poll = 0;
      for (const auto& r : records) {
        ASSERT_TRUE(stream.Append(r).ok());
        if (++since_poll >= 64) {
          since_poll = 0;
          for (const auto& t : stream.Poll()) emitted_points += t.size();
        }
      }
      for (const auto& t : stream.Finish()) emitted_points += t.size();

      EXPECT_EQ(stream.pending_records(), 0u);
      EXPECT_EQ(emitted_points, records.size());

      const auto& windows = stream.captured_windows();
      ASSERT_FALSE(windows.empty());
      IdRepairer batch(s.dataset.graph, options);
      for (size_t w = 0; w < windows.size(); ++w) {
        SCOPED_TRACE(std::string("window ") + std::to_string(w));
        ASSERT_FALSE(windows[w].degraded);
        TrajectorySet window_set =
            TrajectorySet::FromRecords(windows[w].records);
        auto ref = batch.Repair(window_set);
        ASSERT_TRUE(ref.ok()) << ref.status();
        EXPECT_EQ(windows[w].repaired, ref->repaired.trajectories());
      }
    }
  }
  EXPECT_TRUE(found) << "no bursty scenario in the catalog";
}

// ---------------------------------------------------------------------------
// The catalog must keep its contractual breadth: at least six shapes, one
// city-scale (10k+ vertices) topology, and at least two adversarial error
// models — the acceptance envelope of the scenario tier.
// ---------------------------------------------------------------------------

TEST(ScenarioTest, MatrixKeepsContractualBreadth) {
  const auto& scenarios = Scenarios();
  EXPECT_GE(scenarios.size(), 6u);
  size_t adversarial = 0;
  size_t city_scale = 0;
  for (const Scenario& s : scenarios) {
    if (s.entry.errors != ScenarioError::kOcr) ++adversarial;
    if (s.dataset.graph.num_locations() >= 10000) ++city_scale;
  }
  EXPECT_GE(adversarial, 2u);
  if (!LightMode()) {
    EXPECT_GE(city_scale, 1u);
  }
}

}  // namespace
}  // namespace idrepair
