// Cross-module property tests: the paper's theorems and the invariants
// linking the predicates, index and enumeration, exercised over randomized
// workloads.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "fault/deadline.h"
#include "fault/failpoint.h"
#include "gen/error_model.h"
#include "gen/id_generator.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "graph/paths.h"
#include "graph/reachability.h"
#include "lig/length_indexed_grids.h"
#include "repair/partitioned.h"
#include "repair/predicates.h"
#include "repair/repairer.h"
#include "sim/edit_distance.h"
#include "stream/streaming_repairer.h"
#include "traj/merge.h"

namespace idrepair {
namespace {

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Theorem 3.2 direction: cex is necessary for pairwise joinability — every
// jnb pair must be a cex pair.
TEST_P(SeededPropertyTest, CexIsNecessaryForPairwiseJnb) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 60;
  config.max_path_len = 4;
  config.seed = GetParam();
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  PredicateEvaluator pred(graph, 4, 600);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    if (!pred.InternallyFeasible(set.at(i))) continue;
    for (TrajIndex j = i + 1; j < set.size(); ++j) {
      if (!pred.InternallyFeasible(set.at(j))) continue;
      const Trajectory* pair[] = {&set.at(i), &set.at(j)};
      if (pred.Jnb(pair)) {
        EXPECT_TRUE(pred.Cex(set.at(i), set.at(j)))
            << "jnb pair without cex: " << i << "," << j;
      }
    }
  }
}

// Theorem 5.3 direction: pck is necessary for jnb on start-time-sorted
// pairs.
TEST_P(SeededPropertyTest, PckIsNecessaryForJnb) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 60;
  config.max_path_len = 4;
  config.seed = GetParam() ^ 0xf00d;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  PredicateEvaluator pred(graph, 4, 600);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    for (TrajIndex j = i + 1; j < set.size(); ++j) {
      // TrajectorySet order is start-time order, so (i, j) is sorted.
      const Trajectory* pair[] = {&set.at(i), &set.at(j)};
      if (pred.Jnb(pair)) {
        EXPECT_TRUE(pred.Pck(pair)) << i << "," << j;
      }
    }
  }
}

// The LIG grid criteria are necessary for cex: no cex-positive pair may be
// filtered out by the index.
TEST_P(SeededPropertyTest, LigIsNecessaryForCex) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 80;
  config.max_path_len = 4;
  config.seed = GetParam() ^ 0xbeef;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  PredicateEvaluator pred(graph, 4, 600);
  LengthIndexedGrids::Options lig_opts{4, 600, 60};
  LengthIndexedGrids lig(set, lig_opts);
  std::vector<TrajIndex> out;
  for (TrajIndex i = 0; i < set.size(); ++i) {
    out.clear();
    lig.CollectCandidates(i, &out);
    std::set<TrajIndex> candidates(out.begin(), out.end());
    for (TrajIndex j = 0; j < set.size(); ++j) {
      if (i == j) continue;
      if (!pred.InternallyFeasible(set.at(i)) ||
          !pred.InternallyFeasible(set.at(j))) {
        continue;
      }
      if (pred.Cex(set.at(i), set.at(j))) {
        EXPECT_TRUE(candidates.count(j) > 0)
            << "LIG dropped cex pair " << i << "," << j;
      }
    }
  }
}

// Merging is order-insensitive: any permutation of the group produces the
// same (loc, ts) sequence.
TEST_P(SeededPropertyTest, MergeIsOrderInsensitive) {
  Rng rng(GetParam() ^ 0xcafe);
  std::vector<Trajectory> trajs;
  for (int t = 0; t < 4; ++t) {
    std::vector<TrajectoryPoint> points;
    size_t len = 1 + rng.UniformIndex(3);
    Timestamp ts = static_cast<Timestamp>(rng.UniformIndex(100));
    for (size_t i = 0; i < len; ++i) {
      ts += 1 + static_cast<Timestamp>(rng.UniformIndex(50));
      points.push_back(
          TrajectoryPoint{static_cast<LocationId>(rng.UniformIndex(4)), ts});
    }
    std::string name = "t";
    name += std::to_string(t);
    trajs.emplace_back(std::move(name), std::move(points));
  }
  std::vector<const Trajectory*> order = {&trajs[0], &trajs[1], &trajs[2],
                                          &trajs[3]};
  auto reference = MergeChronological(order);
  for (int perm = 0; perm < 5; ++perm) {
    rng.Shuffle(order.begin(), order.end());
    auto merged = MergeChronological(order);
    ASSERT_EQ(merged.size(), reference.size());
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].loc, reference[i].loc);
      EXPECT_EQ(merged[i].ts, reference[i].ts);
    }
  }
}

// Reachability on graphs WITH cycles: hop counts still match BFS, and the
// diagonal equals the shortest cycle through each vertex.
TEST_P(SeededPropertyTest, ReachabilityHandlesCycles) {
  Rng rng(GetParam() ^ 0x51de);
  TransitionGraph g = MakeChainGraph(7);
  AddRandomEdges(g, 5, rng);  // may add backward edges -> cycles
  auto m = ReachabilityMatrix::Build(g);
  size_t n = g.num_locations();
  for (LocationId s = 0; s < n; ++s) {
    std::vector<uint32_t> dist(n, ReachabilityMatrix::kUnreachable);
    std::vector<LocationId> frontier = {s};
    uint32_t depth = 0;
    while (!frontier.empty() && depth <= n + 1) {
      ++depth;
      std::vector<LocationId> next;
      for (LocationId u : frontier) {
        for (LocationId v : g.OutNeighbors(u)) {
          if (dist[v] == ReachabilityMatrix::kUnreachable) {
            dist[v] = depth;
            next.push_back(v);
          }
        }
      }
      frontier = std::move(next);
    }
    for (LocationId t = 0; t < n; ++t) {
      if (s == t) {
        EXPECT_EQ(m.Hops(s, s), dist[s]) << "cycle through " << s;
      } else {
        EXPECT_EQ(m.Hops(s, t), dist[t]) << s << "->" << t;
      }
    }
  }
}

// Streaming: the multiset of emitted records is the input multiset no
// matter how often the stream is polled.
TEST_P(SeededPropertyTest, StreamingConservesRecordsAtAnyPollCadence) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 60;
  config.max_path_len = 4;
  config.seed = GetParam() ^ 0x1234;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  auto records = ds->ObservedRecords();
  std::sort(records.begin(), records.end(), RecordChronoLess);

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  for (size_t cadence : {1u, 7u, 50u, 10000u}) {
    StreamingRepairer stream(graph, options);
    size_t emitted_records = 0;
    size_t count = 0;
    for (const auto& r : records) {
      ASSERT_TRUE(stream.Append(r).ok());
      if (++count % cadence == 0) {
        for (const auto& t : stream.Poll()) emitted_records += t.size();
      }
    }
    for (const auto& t : stream.Finish()) emitted_records += t.size();
    EXPECT_EQ(emitted_records, records.size()) << "cadence " << cadence;
  }
}

// Watermark semantics: the watermark is monotone over the stream's
// lifetime (polls never move it, appends only advance it), and nothing a
// Poll() emits can still be affected by an in-window arrival — every
// emitted trajectory starts at least η behind the watermark at emission
// time, even under the most aggressive flush horizon.
TEST_P(SeededPropertyTest, StreamingWatermarkIsMonotoneAndGatesEmission) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 60;
  config.max_path_len = 4;
  config.seed = GetParam() ^ 0x5151;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  auto records = ds->ObservedRecords();
  std::sort(records.begin(), records.end(), RecordChronoLess);

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  StreamOptions stream_options;
  stream_options.flush_horizon_multiplier = 1.0;  // horizon clamps to η
  StreamingRepairer stream(graph, options, stream_options);
  Rng rng(GetParam() ^ 0x9292);
  Timestamp last_watermark = 0;
  bool saw_any = false;
  for (const auto& r : records) {
    ASSERT_TRUE(stream.Append(r).ok());
    if (saw_any) {
      EXPECT_GE(stream.watermark(), last_watermark);
    }
    saw_any = true;
    last_watermark = stream.watermark();
    if (rng.UniformIndex(4) == 0) {
      for (const auto& t : stream.Poll()) {
        EXPECT_LE(t.start_time(), stream.watermark() - options.eta)
            << "emitted trajectory still affectable by in-window arrivals";
      }
      EXPECT_EQ(stream.watermark(), last_watermark)
          << "polls must not move the watermark";
    }
  }
}

// Eviction under bounded-buffer backpressure conserves records: rejected
// appends mutate nothing and can be retried after draining, and the
// multiset of emitted records is exactly the input.
TEST_P(SeededPropertyTest, StreamingBackpressureConservesRecords) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 50;
  config.max_path_len = 4;
  config.seed = GetParam() ^ 0x7b7b;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  auto records = ds->ObservedRecords();
  std::sort(records.begin(), records.end(), RecordChronoLess);

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  StreamOptions stream_options;
  stream_options.flush_horizon_multiplier = 1.0;
  stream_options.max_buffered = 16 + GetParam() % 17;  // vary the bound
  StreamingRepairer stream(graph, options, stream_options);
  size_t emitted_records = 0;
  for (const auto& r : records) {
    Status appended = stream.Append(r);
    if (!appended.ok()) {
      ASSERT_EQ(appended.code(), StatusCode::kResourceExhausted)
          << appended;
      // Drain and retry: a poll may free nothing (an open component can
      // legitimately hold the whole buffer), so fall back to Finish().
      for (const auto& t : stream.Poll()) emitted_records += t.size();
      if (stream.pending_records() >= stream_options.max_buffered) {
        for (const auto& t : stream.Finish()) emitted_records += t.size();
      }
      appended = stream.Append(r);
      ASSERT_TRUE(appended.ok()) << appended;
    }
  }
  EXPECT_GT(stream.appends_rejected(), 0u)
      << "backpressure never engaged; bound too large for the dataset";
  for (const auto& t : stream.Finish()) emitted_records += t.size();
  EXPECT_EQ(emitted_records, records.size());
  EXPECT_EQ(stream.pending_records(), 0u);
}

// Valid paths sampled by the generator always satisfy IsValidPath, and
// their prefixes satisfy IsValidPathPrefix.
TEST_P(SeededPropertyTest, SampledPathPrefixesAreValidPrefixes) {
  TransitionGraph g = MakeGridNetwork(3, 4);
  auto sampler = ValidPathSampler::Create(g, 7);
  ASSERT_TRUE(sampler.ok());
  Rng rng(GetParam() ^ 0x7777);
  for (int i = 0; i < 30; ++i) {
    const auto& path = sampler->Sample(rng);
    EXPECT_TRUE(g.IsValidPath(path));
    for (size_t len = 1; len <= path.size(); ++len) {
      EXPECT_TRUE(g.IsValidPathPrefix(
          std::span<const LocationId>(path.data(), len)));
    }
  }
}

// Graceful degradation dominates nothing: a partial result produced under
// a (forced) deadline can only lose Eq. (3)/(4) effectiveness relative to
// the fault-free run on the same seed — partitions that pass through
// unrepaired contribute zero — and every repair it does emit is still a
// valid trajectory of Gt (starts in I, follows transition edges, ends in
// O), exactly like a fault-free repair.
TEST_P(SeededPropertyTest, PartialResultsAreDominatedAndStillValid) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 80;
  config.record_error_rate = 0.2;
  config.max_path_len = 4;
  config.seed = GetParam() ^ 0xdead;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  options.exec.num_threads = 1;  // deterministic which boundaries expire

  PartitionedRepairer engine(graph, options);
  auto full = engine.Repair(set);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(full->completion.ok());

  // Force expiry at a seeded per-partition check — expiry latches, so the
  // cutoff point varies with the seed and everything after it passes
  // through unrepaired. The run needs a (never actually elapsing) budget so
  // the deadline is enabled at all.
  fault::FaultSpec expire;
  expire.one_in = 2;
  expire.seed = GetParam();
  ASSERT_TRUE(fault::FailPointRegistry::Global()
                  .Arm(fault::kDeadlineExpireSite, expire)
                  .ok());
  RepairOptions budgeted = options;
  budgeted.deadline_ms = 600000;
  auto partial = PartitionedRepairer(graph, budgeted).Repair(set);
  fault::FailPointRegistry::Global().DisarmAll();
  ASSERT_TRUE(partial.ok()) << partial.status();

  // Eq. (3) domination: Ω(partial) <= Ω(full) on the same input.
  EXPECT_LE(partial->total_effectiveness, full->total_effectiveness);
  // Degradation is never destructive: nothing dropped or invented.
  EXPECT_EQ(partial->repaired.total_records(), set.total_records());
  // If any partition was skipped, the result says so.
  if (partial->total_effectiveness < full->total_effectiveness) {
    EXPECT_EQ(partial->completion.code(), StatusCode::kDeadlineExceeded);
  }

  // Every repair the partial run did apply is still a valid trajectory.
  auto idx = partial->repaired.BuildIdIndex();
  for (RepairIndex r : partial->selected) {
    const auto& cands = partial->candidates;
    if (cands.num_members(r) < 2) continue;
    auto it = idx.find(cands.target_id(r));
    ASSERT_NE(it, idx.end()) << cands.target_id(r);
    EXPECT_TRUE(partial->repaired.at(it->second).IsValid(graph))
        << "partial run applied an invalid join to " << cands.target_id(r);
  }
}

// Phase 2 invariants (Eq. 3/4) for every greedy selection algorithm: the
// selected set is pairwise compatible (no shared member trajectory — an
// independent set of Gr), maximal (every unselected candidate the algorithm
// was allowed to take conflicts with a selected one), and the reported Ω is
// exactly the Eq. 3 sum recomputed from each candidate's stored similarity
// and rarity.
TEST_P(SeededPropertyTest, SelectionInvariantsHold) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 80;
  config.record_error_rate = 0.25;
  config.max_path_len = 4;
  config.seed = GetParam() ^ 0x5e1ec7;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();

  for (SelectionAlgorithm algorithm :
       {SelectionAlgorithm::kEmax, SelectionAlgorithm::kDmin,
        SelectionAlgorithm::kDmax}) {
    RepairOptions options;
    options.theta = 4;
    options.eta = 600;
    options.selection = algorithm;
    IdRepairer engine(graph, options);
    auto result = engine.Repair(set);
    ASSERT_TRUE(result.ok()) << result.status();
    const auto& candidates = result->candidates;

    // Pairwise compatible: no trajectory belongs to two selected repairs.
    std::vector<uint8_t> used(set.size(), 0);
    std::vector<uint8_t> selected_mask(candidates.size(), 0);
    for (RepairIndex r : result->selected) {
      selected_mask[r] = 1;
      for (TrajIndex m : candidates.members(r)) {
        EXPECT_FALSE(used[m])
            << "selected repairs share trajectory " << m << " (algorithm "
            << static_cast<int>(algorithm) << ")";
        used[m] = 1;
      }
    }

    // Maximality: any candidate left out must conflict with the selection.
    // EMAX never takes ω <= 0 (Example 4.2), so those are exempt for it;
    // the degree heuristics are blind to ω and must be maximal outright.
    for (RepairIndex r = 0; r < candidates.size(); ++r) {
      if (selected_mask[r]) continue;
      if (algorithm == SelectionAlgorithm::kEmax &&
          candidates.effectiveness(r) <= 0.0) {
        continue;
      }
      bool conflicts = false;
      for (TrajIndex m : candidates.members(r)) {
        if (used[m]) {
          conflicts = true;
          break;
        }
      }
      EXPECT_TRUE(conflicts)
          << "candidate " << r << " is compatible with the whole selection "
          << "but was not taken (algorithm " << static_cast<int>(algorithm)
          << ")";
    }

    // Ω equals the Eq. 3 sum, recomputed from first principles:
    // ω(R) = sim(R) + λ · log_{ra+offset}(|ivt(R)|).
    double recomputed = 0.0;
    for (RepairIndex r : result->selected) {
      double ivt = static_cast<double>(candidates.num_invalid(r));
      double base =
          static_cast<double>(candidates.rarity(r) + options.rarity_base_offset);
      recomputed += candidates.similarity(r) +
                    options.lambda * (std::log(ivt) / std::log(base));
    }
    EXPECT_DOUBLE_EQ(result->total_effectiveness, recomputed);
  }
}

// Generator property (§6.1.1 ID model): every ID the generator hands out
// is fresh — across an entire dataset's worth of draws — and sits inside
// the 7..9 lowercase-letter envelope. Collision-freedom is what carries
// the paper's sparsity-of-IDs premise into every synthetic workload.
TEST_P(SeededPropertyTest, UniqueIdGeneratorIsCollisionFreeWithinBounds) {
  Rng rng(GetParam() * 7919);
  UniqueIdGenerator gen;
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    std::string id = gen.Next(rng);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate ID: " << id;
    EXPECT_GE(id.size(), 7u);
    EXPECT_LE(id.size(), 9u);
    for (char c : id) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << "non-lowercase ID: " << id;
    }
    EXPECT_TRUE(gen.IsUsed(id));
  }
  // Reserve blocks externally chosen IDs from ever being drawn again.
  gen.Reserve("reservedid");
  EXPECT_TRUE(gen.IsUsed("reservedid"));
}

// Generator property: the empirical edit-distance histogram of mutated IDs
// tracks ErrorDistanceDistribution. Each sampled distance k is realized as
// k single edits, and independent random edits can partially cancel (an
// insert un-done by a delete), so mass may only leak *downward* — the
// empirical share at distance k must be within tolerance of the nominal
// probability plus any leakage from above, and distances above the support
// must never appear.
TEST_P(SeededPropertyTest, IdErrorModelTracksDistanceDistribution) {
  ErrorDistanceDistribution dist;  // nominal {0.55, 0.30, 0.10, 0.05}
  IdErrorModel model(dist);
  Rng rng(GetParam() * 104729);
  const std::string id = "abcdefgh";
  const int kTrials = 4000;
  std::vector<int> counts(dist.probs_by_distance.size() + 1, 0);
  for (int i = 0; i < kTrials; ++i) {
    size_t d = EditDistance(id, model.Mutate(id, rng));
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, dist.probs_by_distance.size());
    ++counts[d];
  }
  double cumulative_nominal = 0.0;
  double cumulative_observed = 0.0;
  for (size_t k = dist.probs_by_distance.size(); k >= 1; --k) {
    cumulative_nominal += dist.probs_by_distance[k - 1];
    cumulative_observed += static_cast<double>(counts[k]) / kTrials;
    // Tail mass at >= k: cancellation only moves mass below k, so the
    // observed tail is bounded above by nominal (+ sampling noise) and
    // below by nominal minus the cancellation allowance.
    EXPECT_LE(cumulative_observed, cumulative_nominal + 0.04)
        << "tail >= " << k;
    EXPECT_GE(cumulative_observed, cumulative_nominal - 0.08)
        << "tail >= " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace idrepair
