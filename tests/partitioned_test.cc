#include <gtest/gtest.h>

#include <algorithm>

#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/partitioned.h"
#include "test_util.h"

namespace idrepair {
namespace {

RepairOptions RealOptions() {
  RepairOptions o;
  o.theta = 4;
  o.eta = 600;
  return o;
}

TEST(PartitionTest, SplitsAtGapsLargerThanEta) {
  std::vector<TrackingRecord> records = {
      {"a", 0, 0},     {"a", 1, 100},  // starts at 0
      {"b", 2, 200},                    // starts at 200 (gap 200 <= η)
      {"c", 0, 2000},                   // starts at 2000 (gap 1800 > η)
      {"d", 2, 2100},
  };
  TrajectorySet set = TrajectorySet::FromRecords(records);
  PartitionedRepairer repairer(MakeRealLikeGraph(), RealOptions());
  auto partitions = repairer.Partition(set);
  ASSERT_EQ(partitions.size(), 2u);
  EXPECT_EQ(partitions[0].size(), 2u);
  EXPECT_EQ(partitions[1].size(), 2u);
}

TEST(PartitionTest, DenseSetIsOnePartition) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  PartitionedRepairer repairer(ds->graph, RealOptions());
  auto partitions = repairer.Partition(set);
  // Rush-hour traffic every few seconds: the chain never breaks.
  EXPECT_EQ(partitions.size(), 1u);
}

TEST(PartitionTest, EveryTrajectoryInExactlyOnePartition) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 150;
  config.max_path_len = 4;
  config.window_seconds = 40000;  // sparse: gaps occur
  config.seed = 5;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  PartitionedRepairer repairer(graph, RealOptions());
  auto partitions = repairer.Partition(set);
  EXPECT_GT(partitions.size(), 1u);
  std::vector<bool> seen(set.size(), false);
  for (const auto& p : partitions) {
    for (TrajIndex t : p) {
      EXPECT_FALSE(seen[t]);
      seen[t] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

// The headline property: partitioned repair gives exactly the whole-batch
// answer (no cross-partition joinable subsets exist by the η bound).
TEST(PartitionedRepairTest, MatchesWholeBatchExactly) {
  TransitionGraph graph = MakeRealLikeGraph();
  for (uint64_t seed : {11u, 12u, 13u}) {
    SyntheticConfig config;
    config.num_trajectories = 200;
    config.max_path_len = 4;
    config.window_seconds = 60000;  // sparse enough to partition
    config.seed = seed;
    auto ds = GenerateSyntheticDataset(graph, config);
    ASSERT_TRUE(ds.ok());
    TrajectorySet set = ds->BuildObservedTrajectories();

    IdRepairer whole(graph, RealOptions());
    auto batch = whole.Repair(set);
    ASSERT_TRUE(batch.ok());

    PartitionedRepairer partitioned(graph, RealOptions());
    auto chunked = partitioned.Repair(set);
    ASSERT_TRUE(chunked.ok());

    EXPECT_GT(chunked->stats.num_partitions, 1u) << "seed " << seed;
    EXPECT_EQ(chunked->rewrites, batch->rewrites) << "seed " << seed;
    EXPECT_EQ(chunked->candidates.size(), batch->candidates.size());
    EXPECT_NEAR(chunked->total_effectiveness, batch->total_effectiveness,
                1e-9);
    EXPECT_EQ(chunked->repaired.total_records(), set.total_records());
  }
}

TEST(PartitionedRepairTest, SelectedCandidatesUseGlobalIndices) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 120;
  config.max_path_len = 4;
  config.window_seconds = 50000;
  config.seed = 9;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  PartitionedRepairer repairer(graph, RealOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  for (RepairIndex r : result->selected) {
    ASSERT_LT(r, result->candidates.size());
    for (TrajIndex m : result->candidates.members(r)) {
      ASSERT_LT(m, set.size());
    }
  }
  // Rewrites reference global trajectories whose observed ID differs.
  for (const auto& [traj, id] : result->rewrites) {
    EXPECT_NE(set.at(traj).id(), id);
  }
}

TEST(PartitionedRepairTest, EmptySet) {
  PartitionedRepairer repairer(MakeRealLikeGraph(), RealOptions());
  auto result = repairer.Repair(TrajectorySet{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_partitions, 0u);
  EXPECT_TRUE(result->rewrites.empty());
}

TEST(PartitionedRepairTest, StatsReportPartitionShape) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 150;
  config.max_path_len = 4;
  config.window_seconds = 40000;
  config.seed = 5;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  PartitionedRepairer repairer(graph, RealOptions());
  auto partitions = repairer.Partition(set);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_partitions, partitions.size());
  size_t largest = 0;
  for (const auto& p : partitions) largest = std::max(largest, p.size());
  EXPECT_EQ(result->stats.largest_partition, largest);
  EXPECT_GE(result->stats.threads_used, 1);
}

// The parallel engine's headline guarantee: the merged result is
// byte-identical for every thread count, including the sequential run.
TEST(PartitionedRepairTest, DeterminismAcrossThreadCounts) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 240;
  config.max_path_len = 4;
  config.window_seconds = 60000;  // sparse: multiple chain components
  config.seed = 77;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();

  RepairOptions options = RealOptions();
  options.exec.min_partition_grain = 1;  // force real parallel dispatch

  options.exec.num_threads = 1;
  PartitionedRepairer sequential(graph, options);
  auto reference = sequential.Repair(set);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->stats.num_partitions, 1u);

  for (int threads : {2, 8}) {
    options.exec.num_threads = threads;
    PartitionedRepairer parallel(graph, options);
    auto result = parallel.Repair(set);
    ASSERT_TRUE(result.ok()) << threads << " threads";
    EXPECT_EQ(result->rewrites, reference->rewrites) << threads;
    EXPECT_EQ(result->selected, reference->selected) << threads;
    EXPECT_EQ(result->total_effectiveness, reference->total_effectiveness)
        << threads;  // bit-identical, not just approximately equal
    ASSERT_EQ(result->candidates.size(), reference->candidates.size());
    for (size_t c = 0; c < result->candidates.size(); ++c) {
      EXPECT_EQ(result->candidates.members(c),
                reference->candidates.members(c));
      EXPECT_EQ(result->candidates.target_id(c),
                reference->candidates.target_id(c));
      EXPECT_EQ(result->candidates.effectiveness(c),
                reference->candidates.effectiveness(c));
    }
    EXPECT_EQ(result->stats.num_partitions, reference->stats.num_partitions);
    EXPECT_EQ(result->stats.cex_evaluations,
              reference->stats.cex_evaluations);
    EXPECT_EQ(result->stats.gm_edges, reference->stats.gm_edges);
  }
}

TEST(PartitionedRepairTest, RunningExampleSinglePartition) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = testutil::MakeTable2Trajectories();
  PartitionedRepairer repairer(graph, testutil::RunningExampleOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewrites.size(), 1u);
  EXPECT_EQ(result->rewrites.at(1), "GL83248");
}

}  // namespace
}  // namespace idrepair
