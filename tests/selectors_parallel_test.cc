// Verification suite for the parallel deterministic selection phase: the
// context-aware (sharded) selectors and the sharded repair-graph build must
// be *byte-identical* to their serial references at every thread count —
// same indices, same order, same Ω — never merely "equivalent". The dense
// instance below is a single conflict component, the worst case for
// selection parallelism, and the EMAX commit order on it is pinned as a
// golden so an accidental tie-break or merge-order change fails loudly.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "fault/deadline.h"
#include "repair/selectors.h"

namespace idrepair {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 8};

// Builds a synthetic candidate set from (members, ω) specs; member lists
// induce the incompatibility edges exactly as in production.
struct Spec {
  std::vector<TrajIndex> members;
  double omega;
};

CandidateSet MakeCandidates(const std::vector<Spec>& specs) {
  CandidateSet out;
  for (const auto& s : specs) {
    // Invalid members mirror the member set — immaterial for selection.
    size_t r = out.Append(s.members, s.members, "", 0.0);
    out.set_scores(r, 0, s.omega);
  }
  return out;
}

// Serial-schedule Build(): threads=1 with the default grain runs the
// one-shard reference path, which is the byte-identity baseline below.
RepairGraph BuildSerial(const CandidateSet& candidates, size_t num_trajs) {
  ExecOptions exec;
  exec.num_threads = 1;
  auto built = RepairGraph::Build(candidates, num_trajs, exec);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

// The running example's candidate set (Figure 4(b)): R1-R2 share T1, R2-R3
// share T2.
CandidateSet RunningExampleCandidates() {
  return MakeCandidates({{{0}, 0.0}, {{0, 1}, 0.428}, {{1, 2}, 1.029}});
}

// 300 candidates over 40 heavily shared trajectories: every trajectory is
// covered ~19 times, so Gr is one dense component (asserted below) — the
// case where selection, not generation, dominates and where a wrong shard
// merge would actually change the answer. A slice of the ω range dips below
// zero to keep the EMAX skip rule in play.
constexpr size_t kDenseTrajs = 40;

CandidateSet DenseInstance() {
  Rng rng(20260807);
  CandidateSet out;
  std::vector<TrajIndex> members_vec;
  for (int i = 0; i < 300; ++i) {
    size_t k = rng.UniformIndex(4) + 1;
    std::set<TrajIndex> members;
    while (members.size() < k) {
      members.insert(static_cast<TrajIndex>(rng.UniformIndex(kDenseTrajs)));
    }
    members_vec.assign(members.begin(), members.end());
    size_t r = out.Append(members_vec, members_vec, "", 0.0);
    out.set_scores(r, 0, rng.UniformReal(-0.1, 1.5));
  }
  return out;
}

SelectionContext MakeContext(int threads) {
  SelectionContext ctx;
  ctx.exec.num_threads = threads;
  // Grain 1 forces real sharding even on these small inputs; production
  // defaults would keep them serial and test nothing.
  ctx.exec.min_selection_grain = 1;
  return ctx;
}

bool IsConnected(const RepairGraph& gr) {
  if (gr.num_vertices() == 0) return true;
  std::vector<uint8_t> seen(gr.num_vertices(), 0);
  std::vector<RepairIndex> stack = {0};
  seen[0] = 1;
  size_t reached = 1;
  while (!stack.empty()) {
    RepairIndex v = stack.back();
    stack.pop_back();
    for (RepairIndex w : gr.Neighbors(v)) {
      if (!seen[w]) {
        seen[w] = 1;
        ++reached;
        stack.push_back(w);
      }
    }
  }
  return reached == gr.num_vertices();
}

// ------------------------------------------------- sharded graph build

TEST(ParallelRepairGraphTest, BuildMatchesSerialScheduleAcrossThreads) {
  for (int which = 0; which < 2; ++which) {
    CandidateSet candidates =
        which == 0 ? RunningExampleCandidates() : DenseInstance();
    size_t num_trajs = candidates.size() == 3 ? 3 : kDenseTrajs;
    RepairGraph serial = BuildSerial(candidates, num_trajs);
    for (int threads : kThreadCounts) {
      ExecOptions exec;
      exec.num_threads = threads;
      exec.min_selection_grain = 1;
      auto built = RepairGraph::Build(candidates, num_trajs, exec);
      ASSERT_TRUE(built.ok()) << built.status();
      ASSERT_EQ(built->num_vertices(), serial.num_vertices());
      EXPECT_EQ(built->num_edges(), serial.num_edges())
          << "threads=" << threads;
      for (RepairIndex v = 0; v < serial.num_vertices(); ++v) {
        EXPECT_EQ(built->Neighbors(v), serial.Neighbors(v))
            << "threads=" << threads << " v=" << v;
      }
    }
  }
}

TEST(ParallelRepairGraphTest, DenseInstanceIsOneComponent) {
  auto candidates = DenseInstance();
  RepairGraph gr = BuildSerial(candidates, kDenseTrajs);
  EXPECT_TRUE(IsConnected(gr));
}

// ------------------------------------------------- selector byte-identity

TEST(ParallelSelectorsTest, GreedySelectorsMatchSerialReferenceAcrossThreads) {
  EmaxSelector emax;
  DminSelector dmin;
  DmaxSelector dmax;
  const std::vector<const RepairSelector*> selectors = {&emax, &dmin, &dmax};
  for (int which = 0; which < 2; ++which) {
    CandidateSet candidates =
        which == 0 ? RunningExampleCandidates() : DenseInstance();
    size_t num_trajs = candidates.size() == 3 ? 3 : kDenseTrajs;
    RepairGraph gr = BuildSerial(candidates, num_trajs);
    for (const RepairSelector* selector : selectors) {
      std::vector<RepairIndex> reference = selector->Select(gr, candidates);
      for (int threads : kThreadCounts) {
        auto parallel = selector->Select(gr, candidates,
                                         MakeContext(threads));
        ASSERT_TRUE(parallel.ok()) << parallel.status();
        EXPECT_EQ(*parallel, reference)
            << selector->name() << " threads=" << threads;
        EXPECT_EQ(TotalEffectiveness(candidates, *parallel),
                  TotalEffectiveness(candidates, reference))
            << selector->name() << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelSelectorsTest, CoverFastPathMatchesSerialReferenceAcrossThreads) {
  for (int which = 0; which < 2; ++which) {
    CandidateSet candidates =
        which == 0 ? RunningExampleCandidates() : DenseInstance();
    size_t num_trajs = candidates.size() == 3 ? 3 : kDenseTrajs;
    std::vector<RepairIndex> reference =
        SelectEmaxByCover(candidates, num_trajs);
    for (int threads : kThreadCounts) {
      auto parallel =
          SelectEmaxByCover(candidates, num_trajs, MakeContext(threads));
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      EXPECT_EQ(*parallel, reference) << "threads=" << threads;
    }
  }
}

// The cover-mask fast path and the graph-materializing EMAX are two
// implementations of the same algorithm; their outputs must agree.
TEST(ParallelSelectorsTest, CoverFastPathAgreesWithGraphEmax) {
  auto candidates = DenseInstance();
  RepairGraph gr = BuildSerial(candidates, kDenseTrajs);
  EmaxSelector emax;
  EXPECT_EQ(SelectEmaxByCover(candidates, kDenseTrajs),
            emax.Select(gr, candidates));
}

// ------------------------------------------------- pinned EMAX golden

// The full EMAX commit (pick) sequence on the dense instance, highest ω
// first. Regenerate only for a *deliberate* algorithm change: any edit to
// the sort order, the merge, or the tie-break shows up here as a diff.
const std::vector<RepairIndex> kDenseEmaxCommitOrder = {
    250, 15,  14,  275, 187, 62,  162, 141, 236, 203, 244, 262,
    56,  85,  111, 18,  80,  88,  30,  282, 293, 254, 133, 173,
};

TEST(ParallelSelectorsTest, EmaxCommitOrderIsPinned) {
  auto candidates = DenseInstance();
  RepairGraph gr = BuildSerial(candidates, kDenseTrajs);
  EmaxSelector emax;
  for (int threads : kThreadCounts) {
    SelectionContext ctx = MakeContext(threads);
    std::vector<RepairIndex> commit_order;
    ctx.commit_order = &commit_order;
    auto selected = emax.Select(gr, candidates, ctx);
    ASSERT_TRUE(selected.ok()) << selected.status();
    EXPECT_EQ(commit_order, kDenseEmaxCommitOrder) << "threads=" << threads;
    // The returned set is the commit sequence, re-sorted ascending.
    std::vector<RepairIndex> sorted = commit_order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(*selected, sorted);
    // Commits are emitted in strictly decreasing (ω, then index) order.
    for (size_t i = 1; i < commit_order.size(); ++i) {
      double prev = candidates.effectiveness(commit_order[i - 1]);
      double cur = candidates.effectiveness(commit_order[i]);
      EXPECT_TRUE(prev > cur ||
                  (prev == cur && commit_order[i - 1] < commit_order[i]));
    }
  }
}

TEST(ParallelSelectorsTest, RunningExampleCommitOrderIsPinned) {
  // Figure 4(b): R3 (ω=1.029) commits first and discards R2; R1 has ω=0 and
  // is never taken (Example 4.2). One commit.
  auto candidates = RunningExampleCandidates();
  RepairGraph gr = BuildSerial(candidates, 3);
  EmaxSelector emax;
  SelectionContext ctx = MakeContext(8);
  std::vector<RepairIndex> commit_order;
  ctx.commit_order = &commit_order;
  auto selected = emax.Select(gr, candidates, ctx);
  ASSERT_TRUE(selected.ok()) << selected.status();
  EXPECT_EQ(commit_order, (std::vector<RepairIndex>{2}));
  EXPECT_EQ(*selected, (std::vector<RepairIndex>{2}));
}

// ------------------------------------------------- randomized stress

// Chain shape: candidate i conflicts with i-1 and i+1 only — many small
// fan-outs, the opposite extreme from the dense component.
CandidateSet ChainInstance() {
  Rng rng(20260808);
  CandidateSet out;
  for (int i = 0; i < 200; ++i) {
    std::vector<TrajIndex> members = {static_cast<TrajIndex>(i),
                                      static_cast<TrajIndex>(i + 1)};
    size_t r = out.Append(members, members, "", 0.0);
    out.set_scores(r, 0, rng.UniformReal(-0.1, 1.5));
  }
  return out;
}

// Clustered shape: 20 clusters of 15 candidates, each cluster sharing one
// hub trajectory — mid-size components with a few heavy hubs, the skewed
// case dynamic claiming exists for.
CandidateSet ClusteredInstance() {
  Rng rng(20260809);
  CandidateSet out;
  for (int c = 0; c < 20; ++c) {
    TrajIndex hub = static_cast<TrajIndex>(c * 6);
    for (int i = 0; i < 15; ++i) {
      std::set<TrajIndex> members = {hub};
      size_t k = rng.UniformIndex(3) + 1;
      while (members.size() < k + 1) {
        members.insert(
            static_cast<TrajIndex>(c * 6 + 1 + rng.UniformIndex(5)));
      }
      std::vector<TrajIndex> members_vec(members.begin(), members.end());
      size_t r = out.Append(members_vec, members_vec, "", 0.0);
      out.set_scores(r, 0, rng.UniformReal(-0.1, 1.5));
    }
  }
  return out;
}

size_t NumTrajsFor(const CandidateSet& candidates) {
  TrajIndex max_traj = 0;
  for (size_t r = 0; r < candidates.size(); ++r) {
    for (TrajIndex m : candidates.members(r)) {
      max_traj = std::max(max_traj, m);
    }
  }
  return static_cast<size_t>(max_traj) + 1;
}

// Property: for EVERY (grain, threads, shape) draw — including `auto` and
// adversarially tiny/huge explicit grains — the sharded Build and all
// three greedy selectors are byte-identical to the 1-thread serial
// reference, and the commit count matches the selected count exactly.
TEST(ParallelSelectorsTest, RandomizedGrainsMatchSerialAcrossShapes) {
  EmaxSelector emax;
  DminSelector dmin;
  DmaxSelector dmax;
  const std::vector<const RepairSelector*> selectors = {&emax, &dmin, &dmax};
  const std::vector<CandidateSet> shapes = [] {
    std::vector<CandidateSet> s;
    s.push_back(DenseInstance());
    s.push_back(ChainInstance());
    s.push_back(ClusteredInstance());
    return s;
  }();
  Rng rng(20260810);
  for (size_t shape = 0; shape < shapes.size(); ++shape) {
    const CandidateSet& candidates = shapes[shape];
    const size_t num_trajs = NumTrajsFor(candidates);
    RepairGraph serial = BuildSerial(candidates, num_trajs);
    std::vector<std::vector<RepairIndex>> reference;
    for (const RepairSelector* selector : selectors) {
      reference.push_back(selector->Select(serial, candidates));
    }
    for (int round = 0; round < 4; ++round) {
      // Grain 0 is the auto sentinel; the explicit draws cover degenerate
      // (1), mid, and larger-than-input grains.
      size_t grain = round == 0 ? 0 : rng.UniformIndex(2 * candidates.size());
      for (int threads : {1, 2, 4, 8}) {
        ExecOptions exec;
        exec.num_threads = threads;
        exec.min_selection_grain = grain;
        auto built = RepairGraph::Build(candidates, num_trajs, exec);
        ASSERT_TRUE(built.ok()) << built.status();
        ASSERT_EQ(built->num_edges(), serial.num_edges())
            << "shape=" << shape << " grain=" << grain
            << " threads=" << threads;
        for (RepairIndex v = 0; v < serial.num_vertices(); ++v) {
          ASSERT_EQ(built->Neighbors(v), serial.Neighbors(v))
              << "shape=" << shape << " grain=" << grain
              << " threads=" << threads;
        }
        for (size_t s = 0; s < selectors.size(); ++s) {
          SelectionContext ctx;
          ctx.exec.num_threads = threads;
          ctx.exec.min_selection_grain = grain;
          std::vector<RepairIndex> commit_order;
          ctx.commit_order = &commit_order;
          auto got = selectors[s]->Select(*built, candidates, ctx);
          ASSERT_TRUE(got.ok()) << got.status();
          EXPECT_EQ(*got, reference[s])
              << selectors[s]->name() << " shape=" << shape
              << " grain=" << grain << " threads=" << threads;
          // Conservation: every commit lands in the output, nothing else.
          EXPECT_EQ(commit_order.size(), got->size())
              << selectors[s]->name() << " shape=" << shape
              << " grain=" << grain << " threads=" << threads;
        }
      }
    }
  }
}

// ------------------------------------------------- deadline degradation

// An already-expired deadline stops the commit loop before the first
// commit; a deadline that expires mid-loop leaves a compatible prefix.
// (Chaos coverage of forced expiry through a full engine run lives in
// chaos_test; this pins the selector-level contract.)
TEST(ParallelSelectorsTest, ExpiredDeadlineYieldsEmptyPrefix) {
  auto candidates = DenseInstance();
  RepairGraph gr = BuildSerial(candidates, kDenseTrajs);
  fault::Deadline expired = fault::Deadline::FromMillis(1);
  while (!expired.Expired()) {
  }
  for (int threads : kThreadCounts) {
    SelectionContext ctx = MakeContext(threads);
    ctx.deadline = &expired;
    EmaxSelector emax;
    auto selected = emax.Select(gr, candidates, ctx);
    ASSERT_TRUE(selected.ok()) << selected.status();
    EXPECT_TRUE(selected->empty());
    DminSelector dmin;
    auto dmin_selected = dmin.Select(gr, candidates, ctx);
    ASSERT_TRUE(dmin_selected.ok()) << dmin_selected.status();
    EXPECT_TRUE(dmin_selected->empty());
    auto cover = SelectEmaxByCover(candidates, kDenseTrajs, ctx);
    ASSERT_TRUE(cover.ok()) << cover.status();
    EXPECT_TRUE(cover->empty());
  }
}

}  // namespace
}  // namespace idrepair
