// Golden test for the --stats-json document shape: the key set and order
// emitted by WriteStatsJson are a stable machine-readable contract (CI
// dashboards and the bench harness parse it), so any change here must be a
// deliberate, reviewed one — update the pinned lists below in the same
// commit that changes the writer.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/failpoint.h"
#include "obs/obs.h"
#include "repair/repairer.h"
#include "repair/stats_json.h"
#include "test_util.h"

namespace idrepair {
namespace {

// Every `"key":` token of the document, in emission order (objects and
// nested objects flattened; array contents skipped by construction since
// no key inside the metrics array collides with the top-level names we
// pin when metrics are absent).
std::vector<std::string> ExtractKeys(const std::string& json) {
  std::vector<std::string> keys;
  size_t pos = 0;
  while ((pos = json.find('"', pos)) != std::string::npos) {
    size_t end = json.find('"', pos + 1);
    if (end == std::string::npos) break;
    if (end + 1 < json.size() && json[end + 1] == ':') {
      keys.push_back(json.substr(pos + 1, end - pos - 1));
    }
    pos = end + 1;
  }
  return keys;
}

std::string RenderStatsJson(const RepairOptions& options,
                            const RepairResult& result) {
  std::ostringstream out;
  WriteStatsJson(out, "core", options, result);
  return std::move(out).str();
}

TEST(StatsJsonTest, KeyOrderIsPinned) {
  auto set = testutil::MakeTable2Trajectories();
  auto graph = MakePaperExampleGraph();
  RepairOptions options = testutil::RunningExampleOptions();
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok()) << result.status();

  // The golden key sequence (obs disabled, so no trailing metrics array).
  ASSERT_FALSE(obs::Enabled())
      << "run this test before anything enables obs globally";
  const std::vector<std::string> kGolden = {
      "engine", "threads",
      // options
      "options", "theta", "eta", "zeta", "lambda", "time_bin", "use_lig",
      "use_mcp_pruning", "selection", "num_threads", "min_partition_grain",
      "min_candidate_grain", "min_selection_grain", "obs_enabled",
      "trace_capacity", "deadline_ms", "metrics_interval_ms",
      // stats
      "stats", "num_trajectories", "num_invalid", "gm_edges",
      "cex_evaluations", "cliques_enumerated", "pck_pruned", "jnb_checks",
      "joinable_subsets", "num_candidates", "gr_edges", "num_selected",
      "seconds_gm", "seconds_generation", "seconds_selection",
      "seconds_total", "cpu_seconds_gm", "cpu_seconds_generation",
      "cpu_seconds_total", "cpu_clock_source", "threads_used",
      "num_partitions", "largest_partition",
      // scheduler footprint (generation-phase dynamic claiming)
      "scheduler", "generation_blocks", "generation_workers",
      "generation_imbalance",
      // incremental-streaming footprint (zero for batch engines)
      "stream", "polls", "dirty_components", "records_reused",
      "appends_rejected", "generation_runs",
      // result summary + run health
      "total_effectiveness", "num_rewrites", "completion", "code", "message",
      "fault", "armed_sites", "total_fires",
      // daemon admission counters (zero in a one-shot run)
      "server", "admitted", "rejected", "queue_peak",
  };
  EXPECT_EQ(ExtractKeys(RenderStatsJson(options, *result)), kGolden);
}

TEST(StatsJsonTest, CompletionAndFaultBlocksReflectRunHealth) {
  auto set = testutil::MakeTable2Trajectories();
  auto graph = MakePaperExampleGraph();
  RepairOptions options = testutil::RunningExampleOptions();
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok()) << result.status();

  std::string clean = RenderStatsJson(options, *result);
  EXPECT_NE(clean.find("\"completion\":{\"code\":\"OK\",\"message\":\"\"}"),
            std::string::npos)
      << clean;
  EXPECT_NE(clean.find("\"fault\":{\"armed_sites\":0,\"total_fires\":0"),
            std::string::npos)
      << clean;
  // No daemon in this process: the admission block is present but zero.
  EXPECT_NE(clean.find("\"server\":{\"admitted\":0,\"rejected\":0,"
                       "\"queue_peak\":0}"),
            std::string::npos)
      << clean;

  // A degraded result and an armed site both show up in the document.
  result->completion = Status::DeadlineExceeded("budget ran out");
  fault::FaultSpec spec;
  spec.fire_on_hit = 1000000000;
  ASSERT_TRUE(fault::FailPointRegistry::Global()
                  .Arm("stats_json.test.site", spec)
                  .ok());
  std::string degraded = RenderStatsJson(options, *result);
  fault::FailPointRegistry::Global().DisarmAll();

  EXPECT_NE(degraded.find("\"code\":\"DeadlineExceeded\""),
            std::string::npos)
      << degraded;
  EXPECT_NE(degraded.find("\"message\":\"budget ran out\""),
            std::string::npos)
      << degraded;
  EXPECT_NE(degraded.find("\"armed_sites\":1"), std::string::npos)
      << degraded;
  // Touched sites get a per-site breakdown (the --failpoints-status data,
  // machine-readable); clean runs omit the array entirely.
  EXPECT_NE(degraded.find("\"sites\":[{\"name\":\"stats_json.test.site\","
                          "\"armed\":true,\"hits\":0,\"fires\":0}]"),
            std::string::npos)
      << degraded;
  EXPECT_EQ(clean.find("\"sites\""), std::string::npos) << clean;
}

TEST(StatsJsonTest, DeadlineOptionRoundTripsIntoOptionsBlock) {
  auto set = testutil::MakeTable2Trajectories();
  auto graph = MakePaperExampleGraph();
  RepairOptions options =
      testutil::RunningExampleOptions().WithDeadlineMs(1234);
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(RenderStatsJson(options, *result).find("\"deadline_ms\":1234"),
            std::string::npos);
}

TEST(StatsJsonTest, MetricsIntervalOptionRoundTripsIntoOptionsBlock) {
  auto set = testutil::MakeTable2Trajectories();
  auto graph = MakePaperExampleGraph();
  RepairOptions options =
      testutil::RunningExampleOptions().WithMetricsIntervalMs(250);
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(RenderStatsJson(options, *result)
                .find("\"metrics_interval_ms\":250"),
            std::string::npos);
}

}  // namespace
}  // namespace idrepair
