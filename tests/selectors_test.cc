#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "repair/selectors.h"

namespace idrepair {
namespace {

// Builds a synthetic candidate set + repair graph from (members, ω) specs.
// Member lists induce the incompatibility edges exactly as in production.
struct Spec {
  std::vector<TrajIndex> members;
  double omega;
};

CandidateSet MakeCandidates(const std::vector<Spec>& specs) {
  CandidateSet out;
  for (const auto& s : specs) {
    // Invalid members mirror the member set — immaterial for selection.
    size_t r = out.Append(s.members, s.members, "", 0.0);
    out.set_scores(r, 0, s.omega);
  }
  return out;
}

// Serial-schedule Build(): the only construction path since the serial
// constructor was retired.
RepairGraph BuildGraph(const CandidateSet& candidates, size_t num_trajs) {
  ExecOptions exec;
  exec.num_threads = 1;
  auto built = RepairGraph::Build(candidates, num_trajs, exec);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

size_t MaxTraj(const std::vector<Spec>& specs) {
  size_t n = 0;
  for (const auto& s : specs) {
    for (TrajIndex m : s.members) n = std::max<size_t>(n, m + 1);
  }
  return n;
}

bool IsIndependent(const RepairGraph& gr,
                   const std::vector<RepairIndex>& selected) {
  for (size_t a = 0; a < selected.size(); ++a) {
    for (size_t b = a + 1; b < selected.size(); ++b) {
      const auto& nbrs = gr.Neighbors(selected[a]);
      if (std::binary_search(nbrs.begin(), nbrs.end(), selected[b])) {
        return false;
      }
    }
  }
  return true;
}

// Exhaustive optimum for cross-checking (specs must stay small).
double BruteForceOptimum(const RepairGraph& gr,
                         const CandidateSet& candidates) {
  size_t n = candidates.size();
  double best = 0.0;
  for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
    std::vector<RepairIndex> sel;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) sel.push_back(static_cast<RepairIndex>(i));
    }
    if (!IsIndependent(gr, sel)) continue;
    best = std::max(best, TotalEffectiveness(candidates, sel));
  }
  return best;
}

// --------------------------------------------------------- RepairGraph

TEST(RepairGraphTest, EdgesFollowSharedTrajectories) {
  // The running example's Gr: R1-R2 share T1, R2-R3 share T2 (Figure 4(b)).
  auto candidates =
      MakeCandidates({{{0}, 0.0}, {{0, 1}, 0.428}, {{1, 2}, 1.029}});
  RepairGraph gr = BuildGraph(candidates, 3);
  EXPECT_EQ(gr.num_vertices(), 3u);
  EXPECT_EQ(gr.num_edges(), 2u);
  EXPECT_EQ(gr.Neighbors(0), (std::vector<RepairIndex>{1}));
  EXPECT_EQ(gr.Neighbors(1), (std::vector<RepairIndex>{0, 2}));
  EXPECT_EQ(gr.Neighbors(2), (std::vector<RepairIndex>{1}));
}

TEST(RepairGraphTest, NoDuplicateEdgesWhenSharingMultipleTrajectories) {
  auto candidates = MakeCandidates({{{0, 1}, 1.0}, {{0, 1}, 1.0}});
  RepairGraph gr = BuildGraph(candidates, 2);
  EXPECT_EQ(gr.num_edges(), 1u);
  EXPECT_EQ(gr.Degree(0), 1u);
}

TEST(RepairGraphTest, EmptyCandidateSet) {
  RepairGraph gr = BuildGraph(CandidateSet(), 5);
  EXPECT_EQ(gr.num_vertices(), 0u);
  EXPECT_EQ(gr.num_edges(), 0u);
}

// ---------------------------------------------------------------- EMAX

TEST(EmaxTest, ReproducesExample42) {
  auto candidates =
      MakeCandidates({{{0}, 0.0}, {{0, 1}, 0.428}, {{1, 2}, 1.029}});
  RepairGraph gr = BuildGraph(candidates, 3);
  EmaxSelector emax;
  // R3 selected; R2 discarded as a neighbor; R1 skipped (ω = 0).
  EXPECT_EQ(emax.Select(gr, candidates), (std::vector<RepairIndex>{2}));
}

TEST(EmaxTest, PicksGreedyNotOptimal) {
  // A center vertex with weight 3 conflicting with two weight-2 leaves:
  // EMAX takes the center (3), the optimum is the leaves (4).
  auto candidates =
      MakeCandidates({{{0, 1}, 3.0}, {{0}, 2.0}, {{1}, 2.0}});
  RepairGraph gr = BuildGraph(candidates, 2);
  EmaxSelector emax;
  EXPECT_EQ(emax.Select(gr, candidates), (std::vector<RepairIndex>{0}));
  ExactSelector exact;
  EXPECT_EQ(exact.Select(gr, candidates), (std::vector<RepairIndex>{1, 2}));
}

TEST(EmaxTest, SelectionIsIndependentSet) {
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Spec> specs;
    for (int i = 0; i < 12; ++i) {
      std::vector<TrajIndex> members;
      size_t sz = 1 + rng.UniformIndex(3);
      for (size_t j = 0; j < sz; ++j) {
        members.push_back(static_cast<TrajIndex>(rng.UniformIndex(8)));
      }
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      specs.push_back({members, rng.UniformReal(0.1, 2.0)});
    }
    auto candidates = MakeCandidates(specs);
    RepairGraph gr = BuildGraph(candidates, MaxTraj(specs));
    EmaxSelector emax;
    EXPECT_TRUE(IsIndependent(gr, emax.Select(gr, candidates)));
  }
}

// ----------------------------------------------------------- DMIN / DMAX

TEST(DegreeSelectorsTest, DminPrefersLowDegreeVertices) {
  // Star: center (repair over {0,1,2}) conflicts with three leaves.
  auto candidates = MakeCandidates(
      {{{0, 1, 2}, 1.0}, {{0}, 1.0}, {{1}, 1.0}, {{2}, 1.0}});
  RepairGraph gr = BuildGraph(candidates, 3);
  DminSelector dmin;
  EXPECT_EQ(dmin.Select(gr, candidates),
            (std::vector<RepairIndex>{1, 2, 3}));
  DmaxSelector dmax;
  EXPECT_EQ(dmax.Select(gr, candidates), (std::vector<RepairIndex>{0}));
}

TEST(DegreeSelectorsTest, SelectionsAreIndependentSets) {
  Rng rng(67);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Spec> specs;
    for (int i = 0; i < 12; ++i) {
      std::vector<TrajIndex> members;
      size_t sz = 1 + rng.UniformIndex(3);
      for (size_t j = 0; j < sz; ++j) {
        members.push_back(static_cast<TrajIndex>(rng.UniformIndex(6)));
      }
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      specs.push_back({members, rng.UniformReal(0.1, 2.0)});
    }
    auto candidates = MakeCandidates(specs);
    RepairGraph gr = BuildGraph(candidates, MaxTraj(specs));
    DminSelector dmin;
    DmaxSelector dmax;
    EXPECT_TRUE(IsIndependent(gr, dmin.Select(gr, candidates)));
    EXPECT_TRUE(IsIndependent(gr, dmax.Select(gr, candidates)));
  }
}

TEST(DegreeSelectorsTest, IsolatedVerticesAllSelected) {
  auto candidates =
      MakeCandidates({{{0}, 1.0}, {{1}, 1.0}, {{2}, 1.0}});
  RepairGraph gr = BuildGraph(candidates, 3);
  DminSelector dmin;
  DmaxSelector dmax;
  EXPECT_EQ(dmin.Select(gr, candidates).size(), 3u);
  EXPECT_EQ(dmax.Select(gr, candidates).size(), 3u);
}

// ------------------------------------------------------------------ exact

TEST(ExactSelectorTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(71);
  ExactSelector exact;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Spec> specs;
    size_t n = 4 + rng.UniformIndex(9);  // up to 12 repairs
    for (size_t i = 0; i < n; ++i) {
      std::vector<TrajIndex> members;
      size_t sz = 1 + rng.UniformIndex(3);
      for (size_t j = 0; j < sz; ++j) {
        members.push_back(static_cast<TrajIndex>(rng.UniformIndex(7)));
      }
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      specs.push_back({members, rng.UniformReal(0.01, 2.0)});
    }
    auto candidates = MakeCandidates(specs);
    RepairGraph gr = BuildGraph(candidates, MaxTraj(specs));
    auto selected = exact.Select(gr, candidates);
    ASSERT_TRUE(IsIndependent(gr, selected));
    double got = TotalEffectiveness(candidates, selected);
    double want = BruteForceOptimum(gr, candidates);
    EXPECT_NEAR(got, want, 1e-9) << "trial " << trial;
  }
}

TEST(ExactSelectorTest, HandlesDisconnectedComponents) {
  auto candidates = MakeCandidates(
      {{{0}, 1.0}, {{0}, 2.0},    // component 1: pick the 2.0
       {{5}, 0.5}, {{5, 6}, 0.4},  // component 2: pick the 0.5
       {{9}, 3.0}});               // isolated
  RepairGraph gr = BuildGraph(candidates, 10);
  ExactSelector exact;
  auto selected = exact.Select(gr, candidates);
  EXPECT_EQ(selected, (std::vector<RepairIndex>{1, 2, 4}));
}

TEST(ExactSelectorTest, EmptyInput) {
  CandidateSet empty;
  RepairGraph gr = BuildGraph(empty, 0);
  ExactSelector exact;
  EXPECT_TRUE(exact.Select(gr, empty).empty());
}

// ----------------------------------------------------------------- oracle

TEST(OracleSelectorTest, SelectsExactlyCorrectRepairs) {
  // Trajectories 0,1 belong to entity "aaa" (fragments of one trajectory);
  // trajectory 2 is entity "bbb" on its own.
  std::vector<std::string> truth = {"aaa", "aaa", "bbb"};
  CandidateSet candidates;
  std::vector<TrajIndex> m01 = {0, 1};
  std::vector<TrajIndex> m12 = {1, 2};
  candidates.Append(m01, m01, "aaa", 0.0);  // correct
  candidates.Append(m01, m01, "zzz", 0.0);  // wrong target
  candidates.Append(m12, m12, "aaa", 0.0);  // mixes entities
  RepairGraph gr = BuildGraph(candidates, 3);
  OracleSelector oracle(truth);
  EXPECT_EQ(oracle.Select(gr, candidates), (std::vector<RepairIndex>{0}));
}

TEST(OracleSelectorTest, RequiresFullFragmentCoverage) {
  // Entity "aaa" has fragments {0, 1, 2}; a repair over {0, 1} with the
  // right target is still not the full true trajectory.
  std::vector<std::string> truth = {"aaa", "aaa", "aaa"};
  CandidateSet candidates;
  std::vector<TrajIndex> m01 = {0, 1};
  std::vector<TrajIndex> m012 = {0, 1, 2};
  candidates.Append(m01, m01, "aaa", 0.0);
  candidates.Append(m012, m012, "aaa", 0.0);
  RepairGraph gr = BuildGraph(candidates, 3);
  OracleSelector oracle(truth);
  EXPECT_EQ(oracle.Select(gr, candidates), (std::vector<RepairIndex>{1}));
}

// ---------------------------------------------------------------- factory

TEST(MakeSelectorTest, CoversAllAlgorithms) {
  EXPECT_EQ(MakeSelector(SelectionAlgorithm::kEmax)->name(), "EMAX");
  EXPECT_EQ(MakeSelector(SelectionAlgorithm::kDmin)->name(), "DMIN");
  EXPECT_EQ(MakeSelector(SelectionAlgorithm::kDmax)->name(), "DMAX");
  EXPECT_EQ(MakeSelector(SelectionAlgorithm::kExact)->name(), "exact");
}

TEST(SelectEmaxByCoverTest, MatchesGraphBasedEmaxOnRandomInstances) {
  Rng rng(83);
  EmaxSelector emax;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Spec> specs;
    size_t n = 3 + rng.UniformIndex(15);
    for (size_t i = 0; i < n; ++i) {
      std::vector<TrajIndex> members;
      size_t sz = 1 + rng.UniformIndex(3);
      for (size_t j = 0; j < sz; ++j) {
        members.push_back(static_cast<TrajIndex>(rng.UniformIndex(8)));
      }
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      // Include occasional zero and tied weights to exercise ordering.
      double w = rng.Bernoulli(0.2) ? 0.0 : rng.UniformReal(0.1, 1.0);
      if (rng.Bernoulli(0.3)) w = 0.5;
      specs.push_back({members, w});
    }
    auto candidates = MakeCandidates(specs);
    RepairGraph gr = BuildGraph(candidates, MaxTraj(specs));
    EXPECT_EQ(SelectEmaxByCover(candidates, MaxTraj(specs)),
              emax.Select(gr, candidates))
        << "trial " << trial;
  }
}

TEST(TotalEffectivenessTest, SumsSelectedOmegas) {
  auto candidates = MakeCandidates({{{0}, 1.5}, {{1}, 2.5}, {{2}, 4.0}});
  EXPECT_DOUBLE_EQ(TotalEffectiveness(candidates, {0, 2}), 5.5);
  EXPECT_DOUBLE_EQ(TotalEffectiveness(candidates, {}), 0.0);
}

}  // namespace
}  // namespace idrepair
