// Scaling-regression smoke: the dense single-component workload — where
// only intra-component parallelism can help — run at 1 and 8 threads.
//
// Two halves with different guarantees:
//  1. Byte-identity (ALWAYS asserted): the 8-thread run must reproduce the
//     1-thread candidate set and stats exactly, per the repo's determinism
//     contract.
//  2. Wall-clock speedup (hardware-gated): on a machine with enough real
//     cores the 8-thread generation must beat the conservative floor. The
//     floor deliberately sits far below the ≥4x bench target so scheduler
//     noise on shared CI machines cannot flake it; the CI `scaling` stage
//     enforces the real target against the committed bench artifacts.
//
// Environment knobs (for CI machines with few or contended cores):
//   IDREPAIR_SCALING_SKIP_TIMING=1   skip the timing half entirely
//   IDREPAIR_SCALING_MIN_SPEEDUP=F   override the speedup floor (e.g. 1.2)
// The timing half also auto-skips when hardware_concurrency < 4 — a 1- or
// 2-core container cannot physically produce a 2x 8-thread speedup.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/candidates.h"
#include "repair/repair_graph.h"
#include "repair/selectors.h"

namespace idrepair {
namespace {

double SecondsOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Min-of-N: the repetition least disturbed by the machine, same policy as
// bench/bench_util.h.
double MinSecondsOf(int reps, const std::function<void()>& fn) {
  double best = SecondsOf(fn);
  for (int i = 1; i < reps; ++i) best = std::min(best, SecondsOf(fn));
  return best;
}

struct GenerationRun {
  CandidateSet candidates;
  GenerationStats stats;
};

TEST(ScalingTest, GiantComponentIsByteIdenticalAndScales) {
  // One dense chain component: every start-time gap far below η, so the
  // partitioner could not split it and all parallelism is intra-component.
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 320;
  config.window_seconds = 3600;
  config.max_path_len = 4;
  config.seed = 2026;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok()) << ds.status();
  TrajectorySet set = ds->BuildObservedTrajectories();

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  PredicateEvaluator pred(graph, options.theta, options.eta);
  NormalizedEditSimilarity similarity;
  std::vector<bool> is_valid(set.size());
  for (TrajIndex i = 0; i < set.size(); ++i) {
    is_valid[i] = set.at(i).IsValid(graph);
  }

  // Gm is input, not the phase under test: build it once and share it (its
  // edge set depends on θ/η only, never on the thread budget).
  TrajectoryGraph gm(set, pred, options);
  auto run_generation = [&](int threads, GenerationRun* out) {
    RepairOptions o = options;
    o.exec.num_threads = threads;  // grains stay `auto`
    auto generated = GenerateCandidates(set, gm, pred, o, similarity,
                                        is_valid, &out->stats);
    ASSERT_TRUE(generated.ok()) << generated.status();
    out->candidates = std::move(generated).value();
    ASSERT_TRUE(ComputeEffectiveness(out->candidates, o, set.size()).ok());
  };

  // Decide up front whether the timing half will run, so the identity-only
  // configuration does one run per width instead of min-of-3.
  bool time_it = true;
  const char* skip_env = std::getenv("IDREPAIR_SCALING_SKIP_TIMING");
  if (skip_env != nullptr && *skip_env != '\0' &&
      std::string(skip_env) != "0") {
    GTEST_LOG_(INFO) << "timing half skipped (IDREPAIR_SCALING_SKIP_TIMING)";
    time_it = false;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (time_it && hw < 4) {
    GTEST_LOG_(INFO) << "timing half skipped: only " << hw
                     << " hardware threads (need >= 4 for a meaningful "
                        "8-thread speedup)";
    time_it = false;
  }
  const int reps = time_it ? 3 : 1;

  // ---- Half 1: byte-identity (always on) ----
  GenerationRun serial, parallel;
  double serial_seconds =
      MinSecondsOf(reps, [&] { run_generation(1, &serial); });
  double parallel_seconds =
      MinSecondsOf(reps, [&] { run_generation(8, &parallel); });
  ASSERT_GT(serial.candidates.size(), 200u)
      << "workload too easy to be a scaling test";

  ASSERT_EQ(parallel.candidates.size(), serial.candidates.size());
  for (size_t i = 0; i < serial.candidates.size(); ++i) {
    ASSERT_EQ(parallel.candidates.members(i), serial.candidates.members(i))
        << "candidate " << i;
    ASSERT_EQ(parallel.candidates.invalid_members(i),
              serial.candidates.invalid_members(i))
        << "candidate " << i;
    ASSERT_EQ(parallel.candidates.target_id(i),
              serial.candidates.target_id(i))
        << "candidate " << i;
    // Bit-identical floats, never approximate.
    ASSERT_EQ(parallel.candidates.similarity(i),
              serial.candidates.similarity(i))
        << "candidate " << i;
    ASSERT_EQ(parallel.candidates.rarity(i), serial.candidates.rarity(i))
        << "candidate " << i;
    ASSERT_EQ(parallel.candidates.effectiveness(i),
              serial.candidates.effectiveness(i))
        << "candidate " << i;
  }
  EXPECT_EQ(parallel.stats.jnb_checks, serial.stats.jnb_checks);
  EXPECT_EQ(parallel.stats.joinable_subsets, serial.stats.joinable_subsets);
  EXPECT_EQ(parallel.stats.clique_stats.cliques_emitted,
            serial.stats.clique_stats.cliques_emitted);

  // Selection rides the same instance: Gr build + DMIN at 8 threads must
  // match the 1-thread reference indices exactly.
  ExecOptions serial_exec;
  serial_exec.num_threads = 1;
  auto gr1 = RepairGraph::Build(serial.candidates, set.size(), serial_exec);
  ASSERT_TRUE(gr1.ok()) << gr1.status();
  ExecOptions parallel_exec;
  parallel_exec.num_threads = 8;
  auto gr8 =
      RepairGraph::Build(parallel.candidates, set.size(), parallel_exec);
  ASSERT_TRUE(gr8.ok()) << gr8.status();
  ASSERT_EQ(gr8->num_edges(), gr1->num_edges());
  DminSelector dmin;
  SelectionContext ctx1, ctx8;
  ctx1.exec = serial_exec;
  ctx8.exec = parallel_exec;
  auto sel1 = dmin.Select(*gr1, serial.candidates, ctx1);
  auto sel8 = dmin.Select(*gr8, parallel.candidates, ctx8);
  ASSERT_TRUE(sel1.ok()) << sel1.status();
  ASSERT_TRUE(sel8.ok()) << sel8.status();
  EXPECT_EQ(*sel8, *sel1);

  // ---- Half 2: wall-clock speedup (hardware-gated) ----
  if (!time_it) return;
  double floor = 2.0;
  if (const char* env = std::getenv("IDREPAIR_SCALING_MIN_SPEEDUP");
      env != nullptr && *env != '\0') {
    floor = std::strtod(env, nullptr);
  }
  const double speedup = serial_seconds / parallel_seconds;
  GTEST_LOG_(INFO) << "generation 1-thread " << serial_seconds
                   << "s, 8-thread " << parallel_seconds << "s, speedup "
                   << speedup << "x (floor " << floor << "x, hw " << hw
                   << ")";
  EXPECT_GE(speedup, floor)
      << "8-thread generation regressed below the scaling floor; if this "
         "machine is contended, set IDREPAIR_SCALING_MIN_SPEEDUP or "
         "IDREPAIR_SCALING_SKIP_TIMING";
}

}  // namespace
}  // namespace idrepair
