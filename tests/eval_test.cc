#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "graph/generators.h"

namespace idrepair {
namespace {

Dataset MakeLabeledDataset() {
  // Entity "aaaa" broken into fragments "aaaa" and "axaa"; entity "bbbb"
  // intact.
  Dataset ds;
  ds.graph = MakeRealLikeGraph();
  ds.records = {
      {"aaaa", "aaaa", 0, 10},
      {"aaaa", "axaa", 1, 20},
      {"aaaa", "aaaa", 3, 30},
      {"bbbb", "bbbb", 2, 40},
      {"bbbb", "bbbb", 3, 50},
  };
  return ds;
}

TEST(FragmentTruthTest, MapsFragmentsToMajorityEntity) {
  Dataset ds = MakeLabeledDataset();
  TrajectorySet observed = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, observed);
  auto idx = observed.BuildIdIndex();
  EXPECT_EQ(truth[idx.at("aaaa")], "aaaa");
  EXPECT_EQ(truth[idx.at("axaa")], "aaaa");
  EXPECT_EQ(truth[idx.at("bbbb")], "bbbb");
}

TEST(FragmentTruthTest, MajorityVoteOnCollidingObservedIds) {
  Dataset ds;
  ds.graph = MakeRealLikeGraph();
  // Observed id "xxxx" covers two records of entity "e1" and one of "e2".
  ds.records = {
      {"e1", "xxxx", 0, 10},
      {"e1", "xxxx", 1, 20},
      {"e2", "xxxx", 2, 30},
  };
  TrajectorySet observed = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, observed);
  EXPECT_EQ(truth[0], "e1");
}

TEST(EvaluateRewritesTest, PerfectRepair) {
  Dataset ds = MakeLabeledDataset();
  TrajectorySet observed = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, observed);
  auto idx = observed.BuildIdIndex();
  std::unordered_map<TrajIndex, std::string> rewrites = {
      {idx.at("axaa"), "aaaa"}};
  auto m = EvaluateRewrites(truth, observed, rewrites);
  EXPECT_EQ(m.num_erroneous, 1u);
  EXPECT_EQ(m.num_rewritten, 1u);
  EXPECT_EQ(m.num_correct, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f_measure, 1.0);
}

TEST(EvaluateRewritesTest, WrongRewriteCostsPrecision) {
  Dataset ds = MakeLabeledDataset();
  TrajectorySet observed = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, observed);
  auto idx = observed.BuildIdIndex();
  std::unordered_map<TrajIndex, std::string> rewrites = {
      {idx.at("axaa"), "aaaa"},   // correct
      {idx.at("bbbb"), "zzzz"}};  // spurious
  auto m = EvaluateRewrites(truth, observed, rewrites);
  EXPECT_EQ(m.num_rewritten, 2u);
  EXPECT_EQ(m.num_correct, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.f_measure, 2.0 * 0.5 / 1.5, 1e-12);
}

TEST(EvaluateRewritesTest, MissedRepairCostsRecall) {
  Dataset ds = MakeLabeledDataset();
  TrajectorySet observed = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, observed);
  auto m = EvaluateRewrites(truth, observed, {});
  EXPECT_EQ(m.num_erroneous, 1u);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);  // nothing rewritten
  EXPECT_DOUBLE_EQ(m.f_measure, 0.0);
}

TEST(EvaluateRewritesTest, CleanDatasetScoresPerfect) {
  Dataset ds = MakeLabeledDataset();
  for (auto& r : ds.records) r.observed_id = r.true_id;
  TrajectorySet observed = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, observed);
  auto m = EvaluateRewrites(truth, observed, {});
  EXPECT_EQ(m.num_erroneous, 0u);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

TEST(TrajectoryAccuracyTest, CountsCorrectIds) {
  Dataset ds = MakeLabeledDataset();
  TrajectorySet observed = ds.BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(ds, observed);
  // 2 of 3 observed trajectories carry their true ID.
  EXPECT_NEAR(TrajectoryAccuracy(truth, observed, {}), 2.0 / 3.0, 1e-12);
  auto idx = observed.BuildIdIndex();
  std::unordered_map<TrajIndex, std::string> rewrites = {
      {idx.at("axaa"), "aaaa"}};
  EXPECT_DOUBLE_EQ(TrajectoryAccuracy(truth, observed, rewrites), 1.0);
}

TEST(TrajectoryAccuracyTest, EmptySetIsPerfect) {
  EXPECT_DOUBLE_EQ(TrajectoryAccuracy({}, TrajectorySet{}, {}), 1.0);
}

}  // namespace
}  // namespace idrepair
