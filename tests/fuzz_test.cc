// Randomized robustness tests: throw structurally messy inputs at the whole
// pipeline and check the invariants that must hold regardless of data —
// no crashes, record conservation, compatibility, validity of applied
// joins, and optimization-independence of results.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "fault/failpoint.h"
#include "gen/scenario_catalog.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"
#include "test_util.h"

namespace idrepair {
namespace {

// Completely unstructured records: random locations, timestamps (with
// collisions), and short IDs (with collisions). Nothing here resembles a
// valid trajectory; the pipeline must cope gracefully.
std::vector<TrackingRecord> RandomChaosRecords(Rng& rng, size_t n,
                                               size_t num_locations) {
  std::vector<TrackingRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string id(1 + rng.UniformIndex(3), 'a');
    for (char& c : id) c = static_cast<char>('a' + rng.UniformIndex(4));
    records.push_back(TrackingRecord{
        std::move(id),
        static_cast<LocationId>(rng.UniformIndex(num_locations)),
        static_cast<Timestamp>(rng.UniformIndex(500))});
  }
  return records;
}

class ChaosFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosFuzzTest, PipelineSurvivesUnstructuredInput) {
  Rng rng(GetParam());
  TransitionGraph graph = MakePaperExampleGraph();
  auto records = RandomChaosRecords(rng, 120, graph.num_locations());
  TrajectorySet set = TrajectorySet::FromRecords(records);

  RepairOptions options;
  options.theta = 5;
  options.eta = 300;
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());

  // Conservation.
  EXPECT_EQ(result->repaired.total_records(), set.total_records());
  // Compatibility.
  std::set<TrajIndex> used;
  for (RepairIndex r : result->selected) {
    for (TrajIndex m : result->candidates.members(r)) {
      EXPECT_TRUE(used.insert(m).second);
    }
  }
  // Selected joins are valid.
  auto idx = result->repaired.BuildIdIndex();
  for (RepairIndex r : result->selected) {
    auto it = idx.find(result->candidates.target_id(r));
    ASSERT_NE(it, idx.end());
    EXPECT_TRUE(result->repaired.at(it->second).IsValid(graph));
  }
}

TEST_P(ChaosFuzzTest, OptimizationsNeverChangeTheAnswer) {
  Rng rng(GetParam() ^ 0xabcdef);
  TransitionGraph graph = MakeRealLikeGraph();
  auto records = RandomChaosRecords(rng, 80, graph.num_locations());
  TrajectorySet set = TrajectorySet::FromRecords(records);

  RepairOptions options;
  options.theta = 4;
  options.eta = 200;
  std::vector<std::unordered_map<TrajIndex, std::string>> rewrites;
  for (bool lig : {true, false}) {
    for (bool mcp : {true, false}) {
      RepairOptions o = options;
      o.use_lig = lig;
      o.use_mcp_pruning = mcp;
      IdRepairer repairer(graph, o);
      auto result = repairer.Repair(set);
      ASSERT_TRUE(result.ok());
      rewrites.push_back(result->rewrites);
    }
  }
  for (size_t i = 1; i < rewrites.size(); ++i) {
    EXPECT_EQ(rewrites[i], rewrites[0]) << "config " << i;
  }
}

TEST_P(ChaosFuzzTest, SelectorsAlwaysReturnCompatibleSets) {
  Rng rng(GetParam() ^ 0x5555);
  TransitionGraph graph = MakeRealLikeGraph();
  auto records = RandomChaosRecords(rng, 60, graph.num_locations());
  TrajectorySet set = TrajectorySet::FromRecords(records);
  RepairOptions options;
  options.theta = 4;
  options.eta = 200;
  for (auto alg : {SelectionAlgorithm::kEmax, SelectionAlgorithm::kDmin,
                   SelectionAlgorithm::kDmax, SelectionAlgorithm::kExact}) {
    RepairOptions o = options;
    o.selection = alg;
    IdRepairer repairer(graph, o);
    auto result = repairer.Repair(set);
    ASSERT_TRUE(result.ok());
    std::set<TrajIndex> used;
    for (RepairIndex r : result->selected) {
      for (TrajIndex m : result->candidates.members(r)) {
        EXPECT_TRUE(used.insert(m).second) << "selector " << (int)alg;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

// Chaos input through every engine at every thread count: no crash, record
// conservation, and — the parallel-engine contract — output independent of
// the thread count. Tiny grains force real sharding even on small inputs.
class EngineChaosTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(EngineChaosTest, ThreadCountNeverChangesTheAnswer) {
  const auto& [engine_name, seed] = GetParam();
  Rng rng(seed ^ 0xfeed);
  TransitionGraph graph = MakeRealLikeGraph();
  auto records = RandomChaosRecords(rng, 100, graph.num_locations());
  TrajectorySet set = TrajectorySet::FromRecords(records);

  std::vector<std::unordered_map<TrajIndex, std::string>> rewrites;
  std::vector<size_t> selected_counts;
  for (int threads : {1, 2, 8}) {
    RepairOptions options;
    options.theta = 5;
    options.eta = 300;
    options.exec.num_threads = threads;
    options.exec.min_partition_grain = 8;
    options.exec.min_candidate_grain = 2;
    auto engine = testutil::MakeEngineByName(engine_name, graph, options);
    ASSERT_NE(engine, nullptr) << engine_name;
    auto result = engine->Repair(set);
    ASSERT_TRUE(result.ok()) << engine_name << " @" << threads << " threads: "
                             << result.status();
    EXPECT_EQ(result->repaired.total_records(), set.total_records())
        << engine_name << " @" << threads << " threads";
    rewrites.push_back(result->rewrites);
    selected_counts.push_back(result->selected.size());
  }
  for (size_t i = 1; i < rewrites.size(); ++i) {
    EXPECT_EQ(rewrites[i], rewrites[0])
        << engine_name << ": thread count changed the rewrites";
    EXPECT_EQ(selected_counts[i], selected_counts[0])
        << engine_name << ": thread count changed the selection";
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, EngineChaosTest,
    ::testing::Combine(::testing::Values("core", "partitioned", "streaming",
                                         "idsim", "neighborhood"),
                       ::testing::Range<uint64_t>(1, 6)),
    [](const ::testing::TestParamInfo<EngineChaosTest::ParamType>& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// The same thread-count contract on an adversarial catalog workload:
// near-miss corruptions (gen/scenario_catalog.h, light variant) collide
// with other live entities, so the candidate landscape is full of
// contested, near-tied repairs — exactly where a schedule-dependent
// tie-break would first surface. Tiny grains force real sharding.
TEST(EngineChaosCatalogTest, NearMissScenarioIsThreadCountInvariant) {
  auto entry = FindScenario("grid_near_miss", /*light=*/true);
  ASSERT_TRUE(entry.ok()) << entry.status();
  auto ds = BuildScenarioDataset(*entry);
  ASSERT_TRUE(ds.ok()) << ds.status();
  TrajectorySet set = ds->BuildObservedTrajectories();

  for (std::string_view engine_name : testutil::AllEngineNames()) {
    std::vector<std::unordered_map<TrajIndex, std::string>> rewrites;
    for (int threads : {1, 2, 8}) {
      RepairOptions options;
      options.theta = entry->theta;
      options.eta = entry->eta;
      options.exec.num_threads = threads;
      options.exec.min_partition_grain = 8;
      options.exec.min_candidate_grain = 2;
      auto engine = testutil::MakeEngineByName(engine_name, ds->graph, options);
      ASSERT_NE(engine, nullptr) << engine_name;
      auto result = engine->Repair(set);
      ASSERT_TRUE(result.ok()) << engine_name << " @" << threads
                               << " threads: " << result.status();
      EXPECT_EQ(result->repaired.total_records(), set.total_records())
          << engine_name << " @" << threads << " threads";
      rewrites.push_back(result->rewrites);
    }
    for (size_t i = 1; i < rewrites.size(); ++i) {
      EXPECT_EQ(rewrites[i], rewrites[0])
          << engine_name << ": thread count changed the rewrites";
    }
  }
}

// Streaming chaos arm: random Append/Poll/Finish interleavings with the
// stream.append and stream.poll failpoints armed probabilistically. The
// engine must only ever fail with a clean, documented status (the injected
// code, or ResourceExhausted from bounded-buffer backpressure), conserve
// every accepted record through to emission, and — once the chaos is
// disarmed — serve a clean replay on the *same* engine object that is
// byte-identical to a fresh engine's, proving Finish() leaves no residue.
TEST_P(ChaosFuzzTest, StreamingInterleavingsSurviveFaults) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 50;
  config.max_path_len = 4;
  config.seed = GetParam() ^ 0x515;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  auto records = ds->ObservedRecords();
  std::sort(records.begin(), records.end(),
            [](const TrackingRecord& a, const TrackingRecord& b) {
              return std::tie(a.ts, a.id, a.loc) <
                     std::tie(b.ts, b.id, b.loc);
            });
  ASSERT_FALSE(records.empty());

  fault::FailPointRegistry::Global().DisarmAll();
  fault::FaultSpec flaky;
  flaky.one_in = 4;
  flaky.seed = GetParam();
  ASSERT_TRUE(
      fault::FailPointRegistry::Global().Arm("stream.append", flaky).ok());
  ASSERT_TRUE(
      fault::FailPointRegistry::Global().Arm("stream.poll", flaky).ok());

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  StreamOptions stream_options;
  stream_options.flush_horizon_multiplier = 1.0;
  stream_options.max_buffered = 32;
  StreamingRepairer stream(graph, options, stream_options);

  Rng rng(GetParam() ^ 0xfeed);
  size_t accepted = 0;
  size_t emitted = 0;
  size_t next = 0;
  while (next < records.size()) {
    size_t roll = rng.UniformIndex(10);
    if (roll < 7) {
      Status appended = stream.Append(records[next]);
      if (appended.ok()) {
        ++accepted;
        ++next;
      } else {
        EXPECT_TRUE(appended.code() == StatusCode::kInternal ||
                    appended.code() == StatusCode::kResourceExhausted)
            << appended;
        if (appended.code() == StatusCode::kResourceExhausted) {
          // Drain and move on; a faulted poll may free nothing, so fall
          // back to a full Finish() when the buffer stays full.
          for (const auto& t : stream.Poll()) emitted += t.size();
          if (stream.pending_records() >= stream_options.max_buffered) {
            for (const auto& t : stream.Finish()) emitted += t.size();
          }
        }
      }
    } else if (roll < 9) {
      for (const auto& t : stream.Poll()) emitted += t.size();
    } else {
      for (const auto& t : stream.Finish()) emitted += t.size();
    }
  }
  for (const auto& t : stream.Finish()) emitted += t.size();
  fault::FailPointRegistry::Global().DisarmAll();
  EXPECT_EQ(emitted, accepted) << "accepted records leaked or duplicated";
  EXPECT_EQ(stream.pending_records(), 0u);

  // No-residue rerun: replay the dataset (time-shifted past the surviving
  // watermark) through the battered engine and a fresh one — outputs must
  // be byte-identical.
  const Timestamp offset = records.back().ts + 10000;
  StreamingRepairer fresh(graph, options, stream_options);
  auto drive = [&](StreamingRepairer& engine, std::vector<Trajectory>* out) {
    for (const auto& r : records) {
      TrackingRecord shifted{r.id, r.loc, r.ts + offset};
      Status appended = engine.Append(shifted);
      if (!appended.ok()) {
        ASSERT_EQ(appended.code(), StatusCode::kResourceExhausted)
            << appended;
        auto drained = engine.Poll();
        out->insert(out->end(), drained.begin(), drained.end());
        if (engine.pending_records() >= stream_options.max_buffered) {
          auto flushed = engine.Finish();
          out->insert(out->end(), flushed.begin(), flushed.end());
        }
        appended = engine.Append(shifted);
        ASSERT_TRUE(appended.ok()) << appended;
      }
    }
    auto tail = engine.Finish();
    out->insert(out->end(), tail.begin(), tail.end());
  };
  std::vector<Trajectory> reused_out;
  std::vector<Trajectory> fresh_out;
  drive(stream, &reused_out);
  drive(fresh, &fresh_out);
  ASSERT_EQ(reused_out.size(), fresh_out.size());
  for (size_t i = 0; i < reused_out.size(); ++i) {
    EXPECT_EQ(reused_out[i].id(), fresh_out[i].id()) << "trajectory " << i;
    ASSERT_EQ(reused_out[i].size(), fresh_out[i].size());
    for (size_t j = 0; j < reused_out[i].size(); ++j) {
      EXPECT_EQ(reused_out[i].points()[j].loc, fresh_out[i].points()[j].loc);
      EXPECT_EQ(reused_out[i].points()[j].ts, fresh_out[i].points()[j].ts);
    }
  }
}

// Structured-but-degenerate datasets: extreme parameter corners.
struct Corner {
  const char* name;
  size_t theta;
  Timestamp eta;
  size_t zeta;
};

class CornerTest : public ::testing::TestWithParam<Corner> {};

TEST_P(CornerTest, DegenerateBoundsNeverCrash) {
  const Corner& corner = GetParam();
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 60;
  config.max_path_len = 4;
  config.seed = 77;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = corner.theta;
  options.eta = corner.eta;
  options.zeta = corner.zeta;
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->repaired.total_records(), set.total_records());
}

INSTANTIATE_TEST_SUITE_P(
    Corners, CornerTest,
    ::testing::Values(Corner{"theta1", 1, 600, 4},
                      Corner{"eta0", 4, 0, 4},
                      Corner{"zeta1", 4, 600, 1},
                      Corner{"huge_theta", 100, 600, 4},
                      Corner{"huge_eta", 4, 1000000, 4},
                      Corner{"all_tight", 1, 0, 1},
                      Corner{"wide_open", 16, 100000, 5}),
    [](const ::testing::TestParamInfo<Corner>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace idrepair
